// strip_replay: run a recorded workload trace through the system.
//
//   strip_replay <trace-file> [--name=value ...] [--seed=N]
//                [--trace-out=FILE] [--quiet]
//
// The trace format is documented in workload/trace_replay.h. All
// Config parameters are settable as --name=value (policy, staleness,
// cost knobs, ...); sim_seconds defaults to just past the last arrival
// unless set explicitly. --trace-out writes the per-transaction /
// per-update outcome CSV produced by core::TraceWriter.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <variant>
#include <vector>

#include "core/config.h"
#include "core/system.h"
#include "core/trace_writer.h"
#include "exp/config_flags.h"
#include "sim/simulator.h"
#include "workload/trace_replay.h"

int main(int argc, char** argv) {
  strip::core::Config config;
  config.external_workload = true;
  std::vector<std::string> rest;
  if (const auto error =
          strip::exp::ApplyConfigFlags(argc, argv, config, &rest)) {
    std::fprintf(stderr, "strip_replay: %s\n", error->c_str());
    return 2;
  }

  std::string trace_path;
  std::string trace_out_path;
  std::uint64_t seed = 1;
  bool quiet = false;
  bool sim_seconds_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sim_seconds=", 14) == 0) {
      sim_seconds_set = true;
    }
  }
  for (const std::string& arg : rest) {
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out_path = arg.substr(12);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "strip_replay: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      trace_path = arg;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr,
                 "usage: strip_replay <trace-file> [--name=value ...]\n");
    return 2;
  }

  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "strip_replay: cannot open %s\n",
                 trace_path.c_str());
    return 1;
  }
  std::vector<strip::workload::TraceReplay::Record> records;
  if (const auto error = strip::workload::TraceReplay::Parse(in, &records)) {
    std::fprintf(stderr, "strip_replay: %s: %s\n", trace_path.c_str(),
                 error->c_str());
    return 1;
  }
  if (records.empty()) {
    std::fprintf(stderr, "strip_replay: trace is empty\n");
    return 1;
  }

  if (!sim_seconds_set) {
    // Run until one second past the last arrival (or the latest
    // transaction deadline, so nothing is cut off mid-flight).
    double end = 0;
    for (const auto& record : records) {
      if (const auto* update =
              std::get_if<strip::db::Update>(&record)) {
        end = std::max(end, update->arrival_time);
      } else {
        end = std::max(
            end,
            std::get<strip::txn::Transaction::Params>(record).deadline);
      }
    }
    config.sim_seconds = end + 1.0;
  }

  if (const auto invalid = config.Validate()) {
    std::fprintf(stderr, "strip_replay: invalid configuration: %s\n",
                 invalid->c_str());
    return 2;
  }

  strip::sim::Simulator simulator;
  strip::core::System system(&simulator, config, strip::base::RngSeed(seed));

  std::ofstream trace_out;
  std::unique_ptr<strip::core::TraceWriter> writer;
  if (!trace_out_path.empty()) {
    trace_out.open(trace_out_path);
    if (!trace_out) {
      std::fprintf(stderr, "strip_replay: cannot write %s\n",
                   trace_out_path.c_str());
      return 1;
    }
    strip::core::TraceWriter::Options options;
    options.transactions = true;
    options.updates = true;
    writer = std::make_unique<strip::core::TraceWriter>(&trace_out, options);
    system.AddObserver(writer.get());
  }

  strip::workload::TraceReplay replay(
      &simulator, records,
      [&](const strip::db::Update& u) { system.InjectUpdate(u); },
      [&](const strip::txn::Transaction::Params& p) {
        system.InjectTransaction(p);
      });

  const strip::core::RunMetrics metrics = system.Run();
  if (!quiet) {
    std::printf("replayed %zu records from %s under %s/%s\n\n",
                replay.size(), trace_path.c_str(),
                strip::core::PolicyKindName(config.policy),
                strip::db::StalenessCriterionName(config.staleness));
  }
  std::fputs(metrics.ToString().c_str(), stdout);
  return 0;
}
