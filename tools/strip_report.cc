// strip_report: cross-run analysis over the artifacts the other tools
// write — telemetry documents, sweep-cell directories, benchmark JSON.
//
//   strip_report diff A B [--threshold=REL] [--all]
//               [--md=PATH] [--json=PATH]
//     Structural run-vs-run / sweep-vs-sweep comparison. A and B may
//     each be a telemetry doc, a sweep-cell file, or a sweep output
//     directory (both must be the same kind). Exits 1 when any metric
//     moves more than --threshold relative (default 0: any delta), or
//     when the runs are structurally unlike (different policy/config).
//
//   strip_report summarize DIR [--by-shard] [--metrics=a,b,...]
//               [--md=PATH] [--csv=PATH]
//     Aggregates a sweep directory into per-policy × per-x tables
//     (replication means), the paper-figure shape. --by-shard adds
//     cluster imbalance analytics (load/staleness/remote-traffic skew,
//     worst-shard attribution, bucket-merged cluster percentiles) over
//     per-shard telemetry documents.
//
//   strip_report bench-diff BASE NEW [--tolerance=REL]
//               [--family=PREFIX:REL]... [--allow-build-mismatch]
//               [--warn-only] [--md=PATH] [--json=PATH]
//               [--snapshot=PATH] [--label=NAME]
//     Noise-aware benchmark comparison (min-of-N, cpu-time gated,
//     per-family tolerance, build-type checked). Exits 1 on
//     regression unless --warn-only. --snapshot writes NEW as a
//     strip.bench-history/v1 document (the docs/bench_history/
//     trajectory format, itself accepted as a BASE).
//
// All outputs are byte-deterministic: same inputs, same bytes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/atomic_io.h"
#include "obs/report/bench_diff.h"
#include "obs/report/diff.h"
#include "obs/report/format.h"
#include "obs/report/summary.h"

namespace {

namespace report = strip::obs::report;

[[noreturn]] void Fail(const std::string& message) {
  std::fprintf(stderr, "strip_report: %s\n", message.c_str());
  std::exit(2);
}

bool FlagValue(const std::string& arg, const char* name,
               std::string* value) {
  const std::string prefix = std::string(name) + "=";
  if (arg.compare(0, prefix.size(), prefix) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

double ParseFraction(const std::string& text, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || value < 0) {
    Fail(std::string(what) + " needs a non-negative number, got '" + text +
         "'");
  }
  return value;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!item.empty()) items.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

void WriteOrFail(const std::string& path, const std::string& contents) {
  if (const auto error = strip::exp::WriteFileAtomic(path, contents)) {
    Fail(*error);
  }
}

int RunDiff(const std::vector<std::string>& args) {
  report::DiffOptions options;
  std::string md_path;
  std::string json_path;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    std::string value;
    if (FlagValue(arg, "--threshold", &value)) {
      options.threshold = ParseFraction(value, "--threshold");
    } else if (arg == "--all") {
      options.all_rows = true;
    } else if (FlagValue(arg, "--md", &value)) {
      md_path = value;
    } else if (FlagValue(arg, "--json", &value)) {
      json_path = value;
    } else if (!arg.empty() && arg[0] == '-') {
      Fail("unknown diff flag: " + arg);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) Fail("diff needs exactly two artifacts: diff A B");

  std::string error;
  const auto result = report::DiffPaths(paths[0], paths[1], options, &error);
  if (!result) Fail(error);

  const std::string markdown = report::DiffMarkdown(*result, options);
  std::fputs(markdown.c_str(), stdout);
  if (!md_path.empty()) WriteOrFail(md_path, markdown);
  if (!json_path.empty()) WriteOrFail(json_path, report::DiffJson(*result));

  if (result->Exceeds()) {
    for (const std::string& name : result->over_threshold_names) {
      std::fprintf(stderr, "strip_report: over threshold: %s\n",
                   name.c_str());
    }
    for (const std::string& note : result->notes) {
      std::fprintf(stderr, "strip_report: note: %s\n", note.c_str());
    }
    return 1;
  }
  return 0;
}

int RunSummarize(const std::vector<std::string>& args) {
  report::SummaryOptions options;
  std::string md_path;
  std::string csv_path;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    std::string value;
    if (arg == "--by-shard") {
      options.by_shard = true;
    } else if (FlagValue(arg, "--metrics", &value)) {
      options.metrics = SplitCommas(value);
    } else if (FlagValue(arg, "--md", &value)) {
      md_path = value;
    } else if (FlagValue(arg, "--csv", &value)) {
      csv_path = value;
    } else if (!arg.empty() && arg[0] == '-') {
      Fail("unknown summarize flag: " + arg);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 1) Fail("summarize needs one directory");

  std::string error;
  const auto data = report::LoadSweepDir(paths[0], &error);
  if (!data) Fail(error);
  const report::SummaryReport result = report::SummarizeSweep(*data, options);

  const std::string markdown = report::SummaryMarkdown(result);
  std::fputs(markdown.c_str(), stdout);
  if (!md_path.empty()) WriteOrFail(md_path, markdown);
  if (!csv_path.empty()) WriteOrFail(csv_path, report::SummaryCsv(result));
  return 0;
}

int RunBenchDiff(const std::vector<std::string>& args) {
  report::BenchDiffOptions options;
  bool warn_only = false;
  std::string md_path;
  std::string json_path;
  std::string snapshot_path;
  std::string label = "current";
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    std::string value;
    if (FlagValue(arg, "--tolerance", &value)) {
      options.tolerance = ParseFraction(value, "--tolerance");
    } else if (FlagValue(arg, "--family", &value)) {
      const std::size_t colon = value.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        Fail("--family needs PREFIX:REL, got '" + value + "'");
      }
      options.family_tolerance.emplace_back(
          value.substr(0, colon),
          ParseFraction(value.substr(colon + 1), "--family tolerance"));
    } else if (arg == "--allow-build-mismatch") {
      options.allow_build_mismatch = true;
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (FlagValue(arg, "--md", &value)) {
      md_path = value;
    } else if (FlagValue(arg, "--json", &value)) {
      json_path = value;
    } else if (FlagValue(arg, "--snapshot", &value)) {
      snapshot_path = value;
    } else if (FlagValue(arg, "--label", &value)) {
      label = value;
    } else if (!arg.empty() && arg[0] == '-') {
      Fail("unknown bench-diff flag: " + arg);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    Fail("bench-diff needs exactly two documents: bench-diff BASE NEW");
  }

  std::string error;
  const auto result =
      report::BenchDiffPaths(paths[0], paths[1], options, &error);
  if (!result) Fail(error);

  const std::string markdown = report::BenchDiffMarkdown(*result);
  std::fputs(markdown.c_str(), stdout);
  if (!md_path.empty()) WriteOrFail(md_path, markdown);
  if (!json_path.empty()) {
    WriteOrFail(json_path, report::BenchDiffJson(*result));
  }
  if (!snapshot_path.empty()) {
    const auto next = report::LoadBenchDoc(paths[1], &error);
    if (!next) Fail(error);
    WriteOrFail(snapshot_path, report::BenchHistorySnapshot(*next, label));
  }

  if (result->Exceeds() && !warn_only) {
    for (const report::BenchDiffRow& row : result->rows) {
      if (row.regressed) {
        std::fprintf(stderr, "strip_report: regression: %s (%sx)\n",
                     row.name.c_str(),
                     report::FormatCompact(row.cpu_ratio).c_str());
      }
    }
    for (const std::string& note : result->notes) {
      std::fprintf(stderr, "strip_report: note: %s\n", note.c_str());
    }
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    Fail("usage: strip_report diff|summarize|bench-diff ... "
         "(see header comment)");
  }
  const std::string verb = args.front();
  args.erase(args.begin());
  if (verb == "diff") return RunDiff(args);
  if (verb == "summarize") return RunSummarize(args);
  if (verb == "bench-diff") return RunBenchDiff(args);
  Fail("unknown verb '" + verb + "' (want diff, summarize, or bench-diff)");
}
