// strip_lint: token-level static analysis for determinism hygiene.
//
//   strip_lint [--root=DIR] [--allowlist=FILE] [--json=FILE]
//              [--strict] [--list-rules] [FILE...]
//
// Scans src/ tools/ bench/ examples/ under --root (default: the
// current directory) — or just the FILEs given — with the rule set in
// src/check/lint/rules.h. Replaces the grep heuristics that used to
// live in scripts/lint_determinism.sh: comments and string literals
// are lexed away before matching, so a banned name in a doc comment
// no longer counts, and AST-lite rules (unordered iteration,
// RandomStream copies, float ==) work where grep cannot.
//
// Findings print as `file:line:col: severity: message [rule]` with a
// fix hint; --json additionally writes a machine-readable
// `strip.lint/v1` document (atomically, for CI artifact upload).
//
// The allowlist (default: <root>/scripts/determinism_allowlist.txt)
// uses `<path-substring>:<rule-id> -- <justification>` lines; entries
// without a justification are a hard error, and entries that matched
// nothing are reported as dead (fatal under --strict, so CI keeps the
// list tight).
//
// Exit codes: 0 clean, 1 findings (or dead entries with --strict),
// 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "base/atomic_io.h"
#include "check/lint/rules.h"

namespace {

namespace fs = std::filesystem;
using strip::check::lint::AllowEntry;
using strip::check::lint::Allowlist;
using strip::check::lint::ApplyAllowlist;
using strip::check::lint::Finding;
using strip::check::lint::LintOptions;
using strip::check::lint::LintSource;
using strip::check::lint::ParseAllowlist;
using strip::check::lint::RuleInfo;
using strip::check::lint::Rules;
using strip::check::lint::SeverityName;

[[noreturn]] void Fail(const std::string& message) {
  std::cerr << "strip_lint: " << message << "\n";
  std::exit(2);
}

bool FlagValue(const std::string& arg, const char* name,
               std::string* value) {
  const std::string prefix = std::string(name) + "=";
  if (arg.compare(0, prefix.size(), prefix) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

std::optional<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool HasSourceExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp";
}

// The directories the grep lint scanned; src/ additionally gets the
// src-only rules (float-eq, wallclock-include).
constexpr const char* kScanDirs[] = {"src", "tools", "bench", "examples"};

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderJson(const std::vector<Finding>& findings,
                       const std::vector<const AllowEntry*>& dead,
                       std::size_t files_scanned,
                       std::size_t allowlisted) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"strip.lint/v1\",\n";
  out << "  \"files_scanned\": " << files_scanned << ",\n";
  out << "  \"allowlisted\": " << allowlisted << ",\n";
  out << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": "
        << f.line << ", \"col\": " << f.col << ", \"rule\": \"" << f.rule
        << "\", \"severity\": \"" << SeverityName(f.severity)
        << "\", \"message\": \"" << JsonEscape(f.message)
        << "\", \"fix_hint\": \"" << JsonEscape(f.fix_hint) << "\"}";
  }
  out << (findings.empty() ? "],\n" : "\n  ],\n");
  out << "  \"dead_allowlist_entries\": [";
  for (std::size_t i = 0; i < dead.size(); ++i) {
    const AllowEntry* entry = dead[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"path\": \"" << JsonEscape(entry->path)
        << "\", \"rule\": \"" << JsonEscape(entry->rule)
        << "\", \"line\": " << entry->line << "}";
  }
  out << (dead.empty() ? "],\n" : "\n  ],\n");
  out << "  \"ok\": " << (findings.empty() && dead.empty() ? "true" : "false")
      << "\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string allowlist_path;
  std::string json_path;
  bool strict = false;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (FlagValue(arg, "--root", &value)) {
      root = value;
    } else if (FlagValue(arg, "--allowlist", &value)) {
      allowlist_path = value;
    } else if (FlagValue(arg, "--json", &value)) {
      json_path = value;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& rule : Rules()) {
        std::cout << rule.id << "  [" << SeverityName(rule.severity)
                  << "]  " << rule.summary << "\n";
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      Fail("unknown flag '" + arg + "' (see --list-rules, --root, "
           "--allowlist, --json, --strict)");
    } else {
      explicit_files.push_back(arg);
    }
  }

  const fs::path root_path(root);
  if (allowlist_path.empty()) {
    const fs::path candidate =
        root_path / "scripts" / "determinism_allowlist.txt";
    if (fs::exists(candidate)) allowlist_path = candidate.string();
  }

  Allowlist allowlist;
  if (!allowlist_path.empty()) {
    const auto text = ReadFile(allowlist_path);
    if (!text.has_value()) Fail("cannot read allowlist " + allowlist_path);
    const std::string error = ParseAllowlist(*text, &allowlist);
    if (!error.empty()) Fail(allowlist_path + ": " + error);
  }

  // Build the file list, sorted for deterministic output.
  std::vector<fs::path> files;
  if (!explicit_files.empty()) {
    for (const std::string& file : explicit_files) files.emplace_back(file);
  } else {
    for (const char* dir : kScanDirs) {
      const fs::path base = root_path / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && HasSourceExtension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t raw_findings = 0;
  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    const auto source = ReadFile(file);
    if (!source.has_value()) Fail("cannot read " + file.string());
    // Report paths relative to the root so allowlist entries and CI
    // output are machine-independent.
    std::string display = fs::relative(file, root_path).string();
    if (display.rfind("..", 0) == 0) display = file.string();

    LintOptions options;
    options.in_src_tree = display.rfind("src/", 0) == 0;
    // A .cc's unordered members are usually declared in its header:
    // feed the companion so loops over members are caught.
    if (file.extension() == ".cc" || file.extension() == ".cpp") {
      fs::path header = file;
      header.replace_extension(".h");
      if (const auto companion = ReadFile(header); companion.has_value()) {
        options.companion_sources.push_back(*companion);
      }
    }
    std::vector<Finding> file_findings =
        LintSource(display, *source, options);
    raw_findings += file_findings.size();
    std::vector<Finding> kept =
        ApplyAllowlist(std::move(file_findings), &allowlist);
    findings.insert(findings.end(),
                    std::make_move_iterator(kept.begin()),
                    std::make_move_iterator(kept.end()));
  }

  std::vector<const AllowEntry*> dead;
  // Dead-entry detection only makes sense on a full-tree scan; a
  // file-subset invocation legitimately misses most entries.
  if (explicit_files.empty()) {
    for (const AllowEntry& entry : allowlist.entries) {
      if (!entry.used) dead.push_back(&entry);
    }
  }

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ":" << f.col << ": "
              << SeverityName(f.severity) << ": " << f.message << " ["
              << f.rule << "]\n    hint: " << f.fix_hint << "\n";
  }
  for (const AllowEntry* entry : dead) {
    std::cout << allowlist_path << ":" << entry->line
              << ": dead allowlist entry '" << entry->path << ":"
              << entry->rule << "' matched nothing — delete it\n";
  }

  const std::size_t allowlisted = raw_findings - findings.size();
  if (!json_path.empty()) {
    const std::string doc =
        RenderJson(findings, dead, files.size(), allowlisted);
    if (const auto error = strip::base::WriteFileAtomic(json_path, doc);
        error.has_value()) {
      Fail("cannot write " + json_path + ": " + *error);
    }
  }

  const bool failed = !findings.empty() || (strict && !dead.empty());
  if (failed) {
    std::cout << "strip_lint: FAILED (" << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s");
    if (!dead.empty()) {
      std::cout << ", " << dead.size() << " dead allowlist entr"
                << (dead.size() == 1 ? "y" : "ies");
    }
    std::cout << "; " << files.size() << " files scanned, " << allowlisted
              << " allowlisted)\n";
    return 1;
  }
  std::cout << "strip_lint: OK (" << files.size() << " files scanned, "
            << allowlisted << " allowlisted";
  if (!dead.empty()) {
    std::cout << ", " << dead.size() << " dead allowlist entries";
  }
  std::cout << ")\n";
  return 0;
}
