// strip_sweep: run an arbitrary parameter sweep from the command line.
//
//   strip_sweep --x=lambda_t --values=5,10,15,20,25
//               --policies=UF,TF,SU,OD --metrics=av,p_success
//               [--name=value ...] [--reps=N] [--seed=N] [--csv]
//               [--jobs=N] [--pin-cores] [--progress=MODE]
//               [--json=PATH] [--telemetry-dir=DIR] [--flight-dir=DIR]
//               [--out-dir=DIR] [--resume] [--cell-timeout=S] [--audit]
//
// Grid cells are dispatched to a pool of --jobs worker threads (0 =
// one per hardware core, the default; --pin-cores pins worker i to
// core i on Linux). Every worker
// runs fully isolated Simulation/RNG state, so cell files, telemetry,
// flight dumps, and the aggregate tables are byte-identical for any
// job count. --progress=MODE (auto|on|off, default auto: on when
// stderr is a terminal) reports "cells done / total" on stderr from a
// single mutex-guarded section that is also where cell files are
// written — the progress line never interleaves with a cell write.
//
// --audit attaches the invariant auditor (src/check) to every run of
// every cell; violations print to stderr (with the cell and
// replication) and the sweep exits 3. Audited output is bit-identical
// to a non-audit sweep.
//
// --telemetry-dir=DIR writes one telemetry JSON document per sweep
// cell (first replication only) into DIR, named
// <policy>_<x-index>.json; DIR must already exist.
//
// --flight-dir=DIR attaches a flight recorder (obs/trace) to the
// first replication of every cell and, for cells where an anomaly
// predicate trips (deadline-miss burst, stale fraction, update-queue
// depth spike, outage recovery), writes the post-mortem window to
// DIR/flight_<policy>_<x-index>.txt for strip_trace to dissect.
//
// Crash-safe grids: --out-dir=DIR persists every finished cell as
// DIR/cell_<policy>_<x-index>.json (schema strip.sweep-cell/v1, all
// replications' metrics) the moment the cell completes. Every file in
// this tool is written atomically (tmp + rename), so a killed sweep
// leaves only whole cell files behind; --resume skips cells whose
// file already exists (and clears stale *.tmp leftovers), re-running
// just the missing ones — the resumed grid is byte-identical to an
// uninterrupted run. --cell-timeout=S bounds each cell's wall-clock
// time across its replications; on overrun the cell is finalized
// early and marked "timed_out" in its file.
//
// Any Config parameter (see strip_sim --help) can be fixed with
// --name=value and any numeric one swept with --x/--values. This is
// the same machinery the per-figure bench binaries use, exposed for
// ad-hoc exploration.
//
// Cluster-level flags (--shards=, --placement=, --shard_faults=, ...)
// make every cell an M-shard cluster run: each cell's swept Config
// becomes the per-shard base, --audit adds the cross-shard
// ClusterAuditor census on top of the per-shard auditors, and
// --telemetry-dir writes one document per shard
// (<cell>.json.shard<k>). --shards=1 (the default) is byte-identical
// to the pre-sharding tool.
//
// Cluster-level parameters are themselves sweepable: --x=shards or
// --x=link_latency_us applies each value to the cell's cluster shape
// instead of the per-shard base, so one grid can compare cluster
// sizes or interconnect latencies directly (see
// examples/run_telemetry.cpp and EXPERIMENTS.md):
//
//   strip_sweep --x=shards --values=1,2,4,8 --metrics=av,response_p95
//   strip_sweep --shards=4 --x=link_latency_us --values=0,100,1000,5000

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/cluster_auditor.h"
#include "check/invariant_auditor.h"
#include "core/cluster.h"
#include "core/config.h"
#include "core/metrics_json.h"
#include "core/sharded_config.h"
#include "exp/atomic_io.h"
#include "exp/config_flags.h"
#include "exp/experiment.h"
#include "exp/report.h"
#include "exp/sweep_cell.h"
#include "obs/telemetry.h"
#include "obs/trace/flight_recorder.h"

namespace {

using strip::core::PolicyKind;
using strip::core::RunMetrics;

struct MetricDef {
  const char* name;
  strip::exp::MetricFn fn;
};

using strip::exp::Metric;

const MetricDef kMetrics[] = {
    {"av", Metric(&RunMetrics::av)},
    {"p_md", Metric(&RunMetrics::p_md)},
    {"p_success", Metric(&RunMetrics::p_success)},
    {"p_suc_nontardy", Metric(&RunMetrics::p_suc_nontardy)},
    {"f_old_l", Metric(&RunMetrics::f_old_low)},
    {"f_old_h", Metric(&RunMetrics::f_old_high)},
    {"rho_t", Metric(&RunMetrics::rho_t)},
    {"rho_u", Metric(&RunMetrics::rho_u)},
    {"response_p95", Metric(&RunMetrics::response_p95)},
    {"uq_avg", Metric(&RunMetrics::uq_length_avg)},
    {"remote_retries", Metric(&RunMetrics::remote_retries)},
    {"remote_timeouts", Metric(&RunMetrics::remote_timeouts)},
    {"remote_degraded", Metric(&RunMetrics::remote_degraded_reads)},
    {"remote_unavailable", Metric(&RunMetrics::txns_remote_unavailable)},
};

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) {
      items.push_back(list.substr(start));
      break;
    }
    items.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return items;
}

[[noreturn]] void Fail(const std::string& message) {
  std::fprintf(stderr, "strip_sweep: %s\n", message.c_str());
  std::exit(2);
}

PolicyKind ParsePolicy(const std::string& name) {
  for (PolicyKind kind :
       {PolicyKind::kUpdateFirst, PolicyKind::kTransactionFirst,
        PolicyKind::kSplitUpdates, PolicyKind::kOnDemand,
        PolicyKind::kFixedFraction}) {
    if (name == strip::core::PolicyKindName(kind)) return kind;
  }
  Fail("unknown policy: " + name);
}

// Cell naming and the strip.sweep-cell/v1 document live in the exp
// library (exp/sweep_cell.h) so obs/report reads the same format this
// tool writes.
using strip::exp::SweepCellJson;
using strip::exp::SweepCellName;

// Writes a string atomically; any failure aborts the sweep (a silent
// half-written grid is worse than a loud stop).
void WriteOrFail(const std::string& path, const std::string& contents) {
  if (const auto error = strip::exp::WriteFileAtomic(path, contents)) {
    Fail(*error);
  }
}

}  // namespace

int main(int argc, char** argv) {
  strip::core::ShardedConfig cluster;
  strip::core::Config& base = cluster.base;
  std::vector<std::string> rest;
  if (const auto error =
          strip::exp::ApplyConfigFlags(argc, argv, cluster, &rest)) {
    Fail(*error);
  }

  std::string x_name;
  std::vector<double> x_values;
  std::vector<PolicyKind> policies = {
      PolicyKind::kUpdateFirst, PolicyKind::kTransactionFirst,
      PolicyKind::kSplitUpdates, PolicyKind::kOnDemand};
  std::vector<std::string> metric_names = {"av", "p_success"};
  int reps = 2;
  std::uint64_t seed = 42;
  strip::exp::ParallelOptions parallel;
  std::string progress = "auto";
  bool csv = false;
  std::string json_path;
  std::string telemetry_dir;
  std::string flight_dir;
  std::string out_dir;
  bool resume = false;
  bool audit = false;
  double cell_timeout = 0;

  for (const std::string& arg : rest) {
    if (arg.rfind("--x=", 0) == 0) {
      x_name = arg.substr(4);
    } else if (arg.rfind("--values=", 0) == 0) {
      for (const std::string& v : SplitCommas(arg.substr(9))) {
        x_values.push_back(std::atof(v.c_str()));
      }
    } else if (arg.rfind("--policies=", 0) == 0) {
      policies.clear();
      for (const std::string& p : SplitCommas(arg.substr(11))) {
        policies.push_back(ParsePolicy(p));
      }
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metric_names = SplitCommas(arg.substr(10));
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      parallel.jobs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--threads=", 0) == 0) {
      Fail("--threads= was removed; use --jobs=" + arg.substr(10));
    } else if (arg == "--pin-cores") {
      parallel.pin_cores = true;
    } else if (arg.rfind("--progress=", 0) == 0) {
      progress = arg.substr(11);
      if (progress != "auto" && progress != "on" && progress != "off") {
        Fail("--progress needs auto, on, or off");
      }
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--telemetry-dir=", 0) == 0) {
      telemetry_dir = arg.substr(16);
    } else if (arg.rfind("--flight-dir=", 0) == 0) {
      flight_dir = arg.substr(13);
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(10);
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg.rfind("--cell-timeout=", 0) == 0) {
      cell_timeout = std::atof(arg.c_str() + 15);
      if (cell_timeout <= 0) Fail("--cell-timeout needs seconds > 0");
    } else {
      Fail("unknown flag: " + arg + " (config flags need --name=value)");
    }
  }
  if (x_name.empty() || x_values.empty()) {
    Fail("need --x=<param> and --values=v1,v2,...");
  }
  if (reps < 1) Fail("--reps must be at least 1");
  if (resume && out_dir.empty()) Fail("--resume needs --out-dir=DIR");

  // A cluster-level x axis (--x=shards, --x=link_latency_us, ...)
  // changes the cluster shape per cell, so every cell runs the
  // Cluster path — including shards == 1 values, which stay seed- and
  // metric-identical to single-System runs.
  bool cluster_x = false;
  for (const std::string& name : strip::exp::ShardedConfigFlagNames()) {
    if (name == x_name) {
      cluster_x = true;
      break;
    }
  }
  const bool sharded = cluster.shards > 1 || cluster_x;

  strip::exp::SweepSpec spec;
  spec.base = base;
  spec.cluster = cluster;
  spec.policies = policies;
  spec.x_name = x_name;
  spec.x_values = x_values;
  spec.replications = reps;
  spec.base_seed = seed;
  spec.parallel = parallel;
  if (cluster_x) {
    spec.apply_x_cluster = [x_name](strip::core::ShardedConfig& config,
                                    double x) {
      char value[64];
      std::snprintf(value, sizeof(value), "%.17g", x);
      const auto error = strip::exp::ApplyConfigFlag(
          x_name + "=" + value, config);
      if (error.has_value()) Fail(*error);
    };
  } else {
    spec.apply_x = [x_name](strip::core::Config& config, double x) {
      char value[64];
      std::snprintf(value, sizeof(value), "%.17g", x);
      const auto error = strip::exp::ApplyConfigFlag(
          x_name + "=" + value, config);
      if (error.has_value()) Fail(*error);
    };
  }
  spec.budget.wall_seconds = cell_timeout;

  // Progress reporting rides the sweep's serialized completion
  // section (see SweepSpec::on_progress), so the line never
  // interleaves with a cell-file write or a second progress line. On
  // a terminal the line rewrites itself in place; piped, each cell
  // appends one full line.
  const bool stderr_tty = isatty(fileno(stderr)) != 0;
  if (progress == "on" || (progress == "auto" && stderr_tty)) {
    spec.on_progress = [stderr_tty](std::size_t done, std::size_t total) {
      if (stderr_tty) {
        std::fprintf(stderr, "\rstrip_sweep: %zu/%zu cells done", done,
                     total);
        if (done == total) std::fputc('\n', stderr);
      } else {
        std::fprintf(stderr, "strip_sweep: %zu/%zu cells done\n", done,
                     total);
      }
      std::fflush(stderr);
    };
  }

  if (!out_dir.empty()) {
    // Persist every finished cell immediately; an interrupted sweep
    // keeps everything completed so far.
    spec.on_cell_done = [&spec, out_dir](
                            std::size_t p, std::size_t x,
                            const std::vector<RunMetrics>& runs,
                            bool timed_out) {
      const std::string path =
          out_dir + "/cell_" + SweepCellName(spec.policies[p], x) + ".json";
      WriteOrFail(path, SweepCellJson(spec, p, x, runs, timed_out));
    };
    if (resume) {
      for (const std::string& name :
           strip::exp::RemoveStaleTmpFiles(out_dir)) {
        std::fprintf(stderr,
                     "strip_sweep: removed stale partial write %s\n",
                     name.c_str());
      }
      spec.skip_cell = [&spec, out_dir](std::size_t p, std::size_t x) {
        return strip::exp::FileExists(
            out_dir + "/cell_" + SweepCellName(spec.policies[p], x) + ".json");
      };
    }
  }

  // Validate the x parameter name and one full config up front, before
  // launching the fleet. Sharded sweeps validate the cluster shape
  // against the swept base too (per-shard override lengths, skew).
  {
    strip::core::ShardedConfig probe = cluster;
    if (spec.apply_x) spec.apply_x(probe.base, x_values.front());
    if (spec.apply_x_cluster) spec.apply_x_cluster(probe, x_values.front());
    if (const auto invalid = probe.Validate()) Fail(*invalid);
  }

  std::atomic<bool> audit_failed{false};

  // Per-cell recorders: the first replication of every (policy, x)
  // cell carries a telemetry recorder and/or a flight recorder. The
  // hook runs on worker threads; each cell writes its own files, so no
  // cross-thread state is shared. A flight dump is only written for
  // cells where an anomaly predicate actually tripped.
  if (!sharded && (!telemetry_dir.empty() || !flight_dir.empty())) {
    const std::vector<PolicyKind> hook_policies = policies;
    spec.on_run = [telemetry_dir, flight_dir, hook_policies](
                      strip::core::System& system,
                      const strip::exp::RunContext& context)
        -> strip::exp::RunFinisher {
      if (context.replication != 0) return nullptr;
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%s_%02zu",
                    strip::core::PolicyKindName(
                        hook_policies[context.policy_index]),
                    context.x_index);
      std::shared_ptr<strip::obs::RunTelemetry> telemetry;
      std::string telemetry_path;
      if (!telemetry_dir.empty()) {
        strip::obs::RunTelemetry::Options options;
        options.seed = context.seed;
        telemetry = std::make_shared<strip::obs::RunTelemetry>(
            &system, options);
        telemetry_path = telemetry_dir + "/" + cell + ".json";
      }
      std::shared_ptr<strip::obs::trace::FlightRecorder> recorder;
      std::string flight_path;
      if (!flight_dir.empty()) {
        recorder = std::make_shared<strip::obs::trace::FlightRecorder>();
        system.AddObserver(recorder.get());
        flight_path = flight_dir + "/flight_" + cell + ".txt";
      }
      return [telemetry, telemetry_path, recorder, flight_path](
                 const strip::core::RunMetrics& metrics) {
        if (telemetry != nullptr) {
          std::ostringstream out;
          telemetry->WriteJson(out, metrics);
          WriteOrFail(telemetry_path, out.str());
        }
        if (recorder != nullptr && recorder->tripped()) {
          std::ostringstream out;
          recorder->DumpTo(out);
          WriteOrFail(flight_path, out.str());
        }
      };
    };
  }

  // --audit layers the invariant auditor under the per-cell recorders
  // on every replication. The hook runs on worker threads; the only
  // shared state is the failure flag.
  if (!sharded && audit) {
    const strip::exp::RunHook base_hook = spec.on_run;
    const std::vector<PolicyKind> hook_policies = policies;
    spec.on_run = [base_hook, hook_policies, &audit_failed](
                      strip::core::System& system,
                      const strip::exp::RunContext& context)
        -> strip::exp::RunFinisher {
      auto auditor = std::make_shared<strip::check::InvariantAuditor>();
      auditor->set_system(&system);
      system.AddObserver(auditor.get());
      strip::exp::RunFinisher base_finisher =
          base_hook ? base_hook(system, context) : nullptr;
      const std::string cell =
          SweepCellName(hook_policies[context.policy_index], context.x_index);
      const int replication = context.replication;
      return [auditor, base_finisher, cell, replication, &audit_failed](
                 const strip::core::RunMetrics& metrics) {
        if (base_finisher) base_finisher(metrics);
        if (!auditor->ok()) {
          audit_failed.store(true, std::memory_order_relaxed);
          std::fprintf(stderr,
                       "strip_sweep: audit FAILED (cell %s, "
                       "replication %d)\n%s",
                       cell.c_str(), replication,
                       auditor->Report().c_str());
        }
      };
    };
  }

  // Sharded cells route observation through the cluster hook instead:
  // telemetry and flight recorders attach per shard on the first
  // replication, --audit attaches one InvariantAuditor per shard plus
  // the cross-shard ClusterAuditor census on every replication.
  if (sharded && (!telemetry_dir.empty() || !flight_dir.empty() || audit)) {
    const std::vector<PolicyKind> hook_policies = policies;
    spec.on_cluster_run = [telemetry_dir, flight_dir, audit, hook_policies,
                           &audit_failed](
                              strip::core::Cluster& cell_cluster,
                              const strip::exp::RunContext& context)
        -> strip::exp::RunFinisher {
      struct Recorders {
        std::vector<std::unique_ptr<strip::obs::RunTelemetry>> telemetry;
        std::vector<std::unique_ptr<strip::obs::trace::FlightRecorder>>
            flight;
        std::vector<std::unique_ptr<strip::check::InvariantAuditor>>
            auditors;
        std::unique_ptr<strip::check::ClusterAuditor> census;
      };
      auto recorders = std::make_shared<Recorders>();
      const std::string cell =
          SweepCellName(hook_policies[context.policy_index], context.x_index);
      const bool first = context.replication == 0;
      if (first && !telemetry_dir.empty()) {
        for (int s = 0; s < cell_cluster.shards(); ++s) {
          strip::obs::RunTelemetry::Options options;
          options.seed = context.seed;
          options.shard = s;
          options.shards = cell_cluster.shards();
          recorders->telemetry.push_back(
              std::make_unique<strip::obs::RunTelemetry>(
                  &cell_cluster.shard(s), options));
        }
      }
      if (first && !flight_dir.empty()) {
        for (int s = 0; s < cell_cluster.shards(); ++s) {
          auto recorder =
              std::make_unique<strip::obs::trace::FlightRecorder>();
          cell_cluster.shard(s).AddObserver(recorder.get());
          recorders->flight.push_back(std::move(recorder));
        }
      }
      if (audit) {
        for (int s = 0; s < cell_cluster.shards(); ++s) {
          auto auditor =
              std::make_unique<strip::check::InvariantAuditor>();
          auditor->set_system(&cell_cluster.shard(s));
          cell_cluster.shard(s).AddObserver(auditor.get());
          recorders->auditors.push_back(std::move(auditor));
        }
        recorders->census =
            std::make_unique<strip::check::ClusterAuditor>();
        recorders->census->set_cluster(&cell_cluster);
        cell_cluster.AddObserverToAllShards(recorders->census.get());
      }
      if (recorders->telemetry.empty() && recorders->flight.empty() &&
          recorders->auditors.empty()) {
        return nullptr;
      }
      strip::core::Cluster* cluster_ptr = &cell_cluster;
      const int replication = context.replication;
      const std::string telemetry_base =
          telemetry_dir.empty() ? std::string()
                                : telemetry_dir + "/" + cell + ".json";
      const std::string flight_base =
          flight_dir.empty() ? std::string()
                             : flight_dir + "/flight_" + cell;
      return [recorders, cluster_ptr, cell, replication, telemetry_base,
              flight_base,
              &audit_failed](const strip::core::RunMetrics& metrics) {
        (void)metrics;  // per-shard documents use shard metrics
        for (std::size_t s = 0; s < recorders->telemetry.size(); ++s) {
          std::ostringstream out;
          recorders->telemetry[s]->WriteJson(
              out, cluster_ptr->shard_metrics(static_cast<int>(s)));
          WriteOrFail(telemetry_base + ".shard" + std::to_string(s),
                      out.str());
        }
        for (std::size_t s = 0; s < recorders->flight.size(); ++s) {
          if (!recorders->flight[s]->tripped()) continue;
          std::ostringstream out;
          recorders->flight[s]->DumpTo(out);
          WriteOrFail(
              flight_base + "_shard" + std::to_string(s) + ".txt",
              out.str());
        }
        for (std::size_t s = 0; s < recorders->auditors.size(); ++s) {
          if (recorders->auditors[s]->ok()) continue;
          audit_failed.store(true, std::memory_order_relaxed);
          std::fprintf(stderr,
                       "strip_sweep: audit FAILED (cell %s, "
                       "replication %d, shard %zu)\n%s",
                       cell.c_str(), replication, s,
                       recorders->auditors[s]->Report().c_str());
        }
        if (recorders->census != nullptr) {
          recorders->census->FinishRun();
          if (!recorders->census->ok()) {
            audit_failed.store(true, std::memory_order_relaxed);
            std::fprintf(stderr,
                         "strip_sweep: cluster audit FAILED (cell %s, "
                         "replication %d)\n%s",
                         cell.c_str(), replication,
                         recorders->census->Report().c_str());
          }
        }
      };
    };
  }

  // With --resume, previously-finished cells are not re-run: their
  // authoritative results live in their cell files, and their rows in
  // the summary tables below are zeros.
  if (resume && spec.skip_cell) {
    std::size_t skipped = 0;
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      for (std::size_t x = 0; x < spec.x_values.size(); ++x) {
        if (spec.skip_cell(p, x)) ++skipped;
      }
    }
    if (skipped > 0) {
      std::fprintf(stderr,
                   "strip_sweep: resume: %zu cell(s) already done, "
                   "skipping (summary tables cover re-run cells only; "
                   "cell files are authoritative)\n",
                   skipped);
    }
  }

  const strip::exp::SweepResult result = strip::exp::RunSweep(spec);
  std::ostringstream json;
  if (!json_path.empty()) json << "{\"series\": [";
  bool first_series = true;
  for (const std::string& metric_name : metric_names) {
    const MetricDef* found = nullptr;
    for (const MetricDef& metric : kMetrics) {
      if (metric_name == metric.name) found = &metric;
    }
    if (found == nullptr) Fail("unknown metric: " + metric_name);
    strip::exp::PrintSeries(std::cout, spec, result, metric_name,
                            found->fn, /*with_ci=*/reps > 1);
    if (csv) {
      strip::exp::PrintSeriesCsv(std::cout, spec, result, metric_name,
                                 found->fn);
    }
    if (!json_path.empty()) {
      json << (first_series ? "\n  " : ",\n  ");
      first_series = false;
      strip::exp::PrintSeriesJson(json, spec, result, metric_name,
                                  found->fn);
    }
  }
  if (!json_path.empty()) {
    json << "\n]}\n";
    WriteOrFail(json_path, json.str());
  }
  return audit_failed.load() ? 3 : 0;
}
