// strip_trace: inspect lifecycle traces written by the tracing sinks.
//
//   strip_trace --flight=PATH | --chrome=PATH   pick the input
//               [--txn=ID] [--object=low:3]     event filters
//               [--from=T] [--to=T]             time window (seconds)
//               [--shard=K]       keep one shard's track group
//                                 (sharded chrome traces only)
//               [--decisions]     per-policy scheduler-decision counts
//               [--critical-path=ID|auto]   one transaction's CPU
//                                 timeline; "auto" picks the first
//                                 missed-deadline transaction
//               [--print]         dump the (filtered) event rows
//
// With no command flags, prints a per-kind event summary. Inputs are
// flight-recorder dumps (strip_sweep --flight-dir) or Chrome trace
// JSON (strip_sim --chrome-trace).
//
// Examples:
//   strip_trace --flight=out/flight_OD_03.txt
//   strip_trace --flight=out/flight_OD_03.txt --critical-path=auto
//   strip_trace --chrome=t.json --decisions
//   strip_trace --chrome=t.json --txn=17 --print

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace/trace_analysis.h"

namespace {

using strip::obs::trace::kNoId;
using strip::obs::trace::ParsedEvent;
using strip::obs::trace::ParsedTrace;

[[noreturn]] void Fail(const std::string& message) {
  std::fprintf(stderr, "strip_trace: %s\n", message.c_str());
  std::exit(2);
}

void PrintEvents(const std::vector<ParsedEvent>& events) {
  std::printf("%-18s %14s %8s %8s %10s %-18s %s\n", "kind", "time", "txn",
              "update", "object", "detail", "reason");
  for (const ParsedEvent& event : events) {
    char txn[24] = "";
    char update[24] = "";
    if (event.txn != kNoId) {
      std::snprintf(txn, sizeof(txn), "%llu",
                    static_cast<unsigned long long>(event.txn));
    }
    if (event.update != kNoId) {
      std::snprintf(update, sizeof(update), "%llu",
                    static_cast<unsigned long long>(event.update));
    }
    std::printf("%-18s %14.6f %8s %8s %10s %-18s %s\n", event.kind.c_str(),
                event.time, txn, update, event.object.c_str(),
                event.detail.c_str(), event.reason.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string flight_path;
  std::string chrome_path;
  std::uint64_t txn_filter = kNoId;
  std::string object_filter;
  double from = -1e300;
  double to = 1e300;
  bool decisions = false;
  bool print = false;
  std::string critical_path;
  int shard_filter = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--flight=", 0) == 0) {
      flight_path = arg.substr(9);
    } else if (arg.rfind("--chrome=", 0) == 0) {
      chrome_path = arg.substr(9);
    } else if (arg.rfind("--txn=", 0) == 0) {
      txn_filter = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--object=", 0) == 0) {
      object_filter = arg.substr(9);
    } else if (arg.rfind("--from=", 0) == 0) {
      from = std::atof(arg.c_str() + 7);
    } else if (arg.rfind("--to=", 0) == 0) {
      to = std::atof(arg.c_str() + 5);
    } else if (arg == "--decisions") {
      decisions = true;
    } else if (arg.rfind("--shard=", 0) == 0) {
      shard_filter = std::atoi(arg.c_str() + 8);
      if (shard_filter < 0) Fail("--shard needs an index >= 0");
    } else if (arg.rfind("--critical-path=", 0) == 0) {
      critical_path = arg.substr(16);
    } else if (arg == "--print") {
      print = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: strip_trace --flight=PATH|--chrome=PATH [--txn=ID] "
          "[--object=cls:idx] [--from=T] [--to=T] [--shard=K] "
          "[--decisions] [--critical-path=ID|auto] [--print]\n");
      return 0;
    } else {
      Fail("unknown flag " + arg + " (try --help)");
    }
  }
  if (flight_path.empty() == chrome_path.empty()) {
    Fail("need exactly one of --flight=PATH or --chrome=PATH");
  }

  const std::string& path = flight_path.empty() ? chrome_path : flight_path;
  std::ifstream in(path);
  if (!in) Fail("cannot open " + path);
  std::string error;
  const std::optional<ParsedTrace> parsed =
      flight_path.empty() ? strip::obs::trace::ParseChromeTrace(in, &error)
                          : strip::obs::trace::ParseFlightDump(in, &error);
  if (!parsed.has_value()) Fail(path + ": " + error);

  std::vector<ParsedEvent> events = parsed->events;
  if (txn_filter != kNoId) {
    events = strip::obs::trace::FilterByTxn(events, txn_filter);
  }
  if (!object_filter.empty()) {
    events = strip::obs::trace::FilterByObject(events, object_filter);
  }
  if (from > -1e299 || to < 1e299) {
    events = strip::obs::trace::FilterByWindow(events, from, to);
  }
  if (shard_filter >= 0) {
    if (shard_filter >= parsed->shards) {
      Fail("--shard=" + std::to_string(shard_filter) +
           " but the trace has " + std::to_string(parsed->shards) +
           " shard(s)");
    }
    events = strip::obs::trace::FilterByShard(events, shard_filter);
  }

  if (!flight_path.empty()) {
    std::printf("flight record: trip=%s trip_time=%.6f events=%zu",
                parsed->trip_predicate.c_str(), parsed->trip_time,
                parsed->events.size());
    // An outage-recovery trip names the fault window that blew its
    // recovery deadline.
    if (!parsed->trip_window.empty()) {
      std::printf(" window=%s", parsed->trip_window.c_str());
    }
    std::printf("\n");
  } else if (parsed->shards > 1) {
    std::printf("chrome trace: events=%zu shards=%d\n",
                parsed->events.size(), parsed->shards);
  } else {
    std::printf("chrome trace: events=%zu\n", parsed->events.size());
  }
  if (events.size() != parsed->events.size()) {
    std::printf("after filters: %zu events\n", events.size());
  }

  bool did_command = false;
  if (decisions) {
    did_command = true;
    std::printf("\nscheduler decisions (choice/reason -> count):\n");
    for (const auto& [key, count] :
         strip::obs::trace::DecisionCounts(events)) {
      std::printf("  %-40s %8llu\n", key.c_str(),
                  static_cast<unsigned long long>(count));
    }
    // Multi-shard traces: attribute the tallies to their shards, so a
    // remote-retry storm points at the engine suffering it.
    if (parsed->shards > 1 && shard_filter < 0) {
      for (int s = 0; s < parsed->shards; ++s) {
        const auto per = strip::obs::trace::DecisionCounts(
            strip::obs::trace::FilterByShard(events, s));
        if (per.empty()) continue;
        std::printf("  shard %d:\n", s);
        for (const auto& [key, count] : per) {
          std::printf("    %-38s %8llu\n", key.c_str(),
                      static_cast<unsigned long long>(count));
        }
      }
    }
    // The interconnect's side of those decisions: which reads timed
    // out, fell back to a degraded local value, or died in the fabric.
    bool any_remote = false;
    for (const ParsedEvent& event : events) {
      if (event.kind != "remote-timeout" &&
          event.kind != "remote-degraded" &&
          event.kind != "remote-dropped") {
        continue;
      }
      if (!any_remote) {
        std::printf("\nremote robustness events:\n");
        any_remote = true;
      }
      char txn[24] = "";
      if (event.txn != kNoId) {
        std::snprintf(txn, sizeof(txn), " txn=%llu",
                      static_cast<unsigned long long>(event.txn));
      }
      std::printf("  %14.6f shard %d %-16s %-12s%s\n", event.time,
                  event.shard, event.kind.c_str(), event.detail.c_str(),
                  txn);
    }
    // Fault windows give the decision counts their context: which
    // injected windows were open during the traced interval.
    bool any_fault = false;
    for (const ParsedEvent& event : events) {
      if (event.kind != "fault-begin" && event.kind != "fault-end") {
        continue;
      }
      if (!any_fault) {
        std::printf("\nfault windows:\n");
        any_fault = true;
      }
      std::printf("  %14.6f %-12s %s\n", event.time, event.kind.c_str(),
                  event.reason.c_str());
    }
  }
  if (!critical_path.empty()) {
    did_command = true;
    std::uint64_t target;
    if (critical_path == "auto") {
      const std::optional<std::uint64_t> miss =
          strip::obs::trace::FirstMissedDeadlineTxn(events);
      if (!miss.has_value()) Fail("no missed-deadline transaction in trace");
      target = *miss;
    } else {
      target = std::strtoull(critical_path.c_str(), nullptr, 10);
    }
    const std::optional<strip::obs::trace::CriticalPath> cp =
        strip::obs::trace::ExtractCriticalPath(events, target, &error);
    if (!cp.has_value()) Fail(error);
    std::printf("\n");
    strip::obs::trace::PrintCriticalPath(std::cout, *cp);
  }
  if (print) {
    did_command = true;
    std::printf("\n");
    PrintEvents(events);
  }
  if (!did_command) {
    std::printf("\nevents by kind:\n");
    for (const auto& [kind, count] : strip::obs::trace::KindCounts(events)) {
      std::printf("  %-20s %8llu\n", kind.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }
  return 0;
}
