// strip_sim: command-line runner for one simulation configuration.
//
// Any Config parameter can be set as --name=value (see --help for the
// full list), including the cluster-level flags (--shards=,
// --placement=, --shard_ips=, --feed_hot_shard=, ...); runner flags:
//   --seed=N    base random seed            (default 1)
//   --reps=N    replications                (default 1)
//   --telemetry=PATH   write run telemetry JSON (first replication;
//               sharded runs write one document per shard, suffixed
//               PATH.shard0, PATH.shard1, ...)
//   --chrome-trace=PATH   write a Chrome trace-event JSON lifecycle
//               trace of the first replication (open in Perfetto /
//               chrome://tracing; inspect with strip_trace --chrome=);
//               sharded runs land every shard in the one file, one
//               process ("shard N") per shard
//   --audit     attach the invariant auditor (src/check) to every
//               replication (sharded runs: one per shard plus the
//               cross-shard ClusterAuditor); violations print to
//               stderr and the run exits 3. Output is bit-identical
//               to a non-audit run.
//   --print-config   echo the resolved configuration and exit
//   --quiet     print only the summary line
//
// Examples:
//   strip_sim --policy=OD --lambda_t=15 --sim_seconds=300
//   strip_sim --policy=TF --staleness=UU --abort_on_stale=true --reps=5
//   strip_sim --policy=OD --shards=4 --placement=range --audit
//   strip_sim --config=baseline.cfg --lambda_t=20   # file, then overrides
//
// --config=FILE reads name=value lines ('#' comments allowed); flags
// given after it override the file.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/cluster_auditor.h"
#include "check/invariant_auditor.h"
#include "core/cluster.h"
#include "core/config.h"
#include "core/metrics.h"
#include "exp/atomic_io.h"
#include "exp/config_flags.h"
#include "exp/experiment.h"
#include "obs/telemetry.h"
#include "obs/trace/chrome_trace.h"
#include "sim/stats.h"

namespace {

[[noreturn]] void PrintHelpAndExit() {
  std::printf("usage: strip_sim [--name=value ...]\n\n");
  std::printf(
      "runner flags: --seed=N --reps=N --telemetry=PATH "
      "--chrome-trace=PATH --audit --print-config --quiet\n\n");
  std::printf("model parameters (defaults are the paper's baseline):\n");
  std::fputs(strip::exp::ConfigFlagsHelp().c_str(), stdout);
  std::exit(0);
}

void PrintSummary(const std::vector<strip::core::RunMetrics>& runs) {
  struct Line {
    const char* name;
    double (strip::core::RunMetrics::*fn)() const;
  };
  const Line lines[] = {
      {"p_MD", &strip::core::RunMetrics::p_md},
      {"p_success", &strip::core::RunMetrics::p_success},
      {"p_suc|nontardy", &strip::core::RunMetrics::p_suc_nontardy},
      {"AV", &strip::core::RunMetrics::av},
      {"rho_t", &strip::core::RunMetrics::rho_t},
      {"rho_u", &strip::core::RunMetrics::rho_u},
  };
  std::printf("%-16s %10s %10s\n", "metric", "mean", "ci95");
  for (const Line& line : lines) {
    std::vector<double> samples;
    samples.reserve(runs.size());
    for (const auto& run : runs) samples.push_back((run.*line.fn)());
    const strip::sim::Summary s = strip::sim::Summary::FromSamples(samples);
    std::printf("%-16s %10.4f %10.4f\n", line.name, s.mean, s.ci95);
  }
  std::vector<double> fold_low, fold_high;
  for (const auto& run : runs) {
    fold_low.push_back(run.f_old_low);
    fold_high.push_back(run.f_old_high);
  }
  const strip::sim::Summary low =
      strip::sim::Summary::FromSamples(fold_low);
  const strip::sim::Summary high =
      strip::sim::Summary::FromSamples(fold_high);
  std::printf("%-16s %10.4f %10.4f\n", "f_old_l", low.mean, low.ci95);
  std::printf("%-16s %10.4f %10.4f\n", "f_old_h", high.mean, high.ci95);
}

}  // namespace

namespace {

// Applies name=value lines from a file; '#' starts a comment. Files
// may set cluster-level parameters (shards=, placement=, ...) next to
// base ones.
bool ApplyConfigFile(const std::string& path,
                     strip::core::ShardedConfig& config) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "strip_sim: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (const auto error = strip::exp::ApplyConfigFlag(line, config)) {
      std::fprintf(stderr, "strip_sim: %s:%d: %s\n", path.c_str(),
                   line_number, error->c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  strip::core::ShardedConfig sharded;
  strip::core::Config& config = sharded.base;
  // First pass: a --config file establishes the base...
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--config=", 9) == 0) {
      if (!ApplyConfigFile(argv[i] + 9, sharded)) return 2;
    }
  }
  // ...then the command-line flags override it.
  std::vector<std::string> rest;
  const std::optional<std::string> error =
      strip::exp::ApplyConfigFlags(argc, argv, sharded, &rest);
  if (error.has_value()) {
    std::fprintf(stderr, "strip_sim: %s\n", error->c_str());
    return 2;
  }

  std::uint64_t seed = 1;
  int reps = 1;
  bool print_config = false;
  bool quiet = false;
  bool audit = false;
  std::string telemetry_path;
  std::string chrome_trace_path;
  for (const std::string& arg : rest) {
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      telemetry_path = arg.substr(12);
    } else if (arg.rfind("--chrome-trace=", 0) == 0) {
      chrome_trace_path = arg.substr(15);
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--print-config") {
      print_config = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintHelpAndExit();
    } else if (arg.rfind("--config=", 0) == 0) {
      // Already applied in the first pass.
    } else {
      std::fprintf(stderr, "strip_sim: unknown flag %s (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }

  if (const std::optional<std::string> invalid = sharded.Validate()) {
    std::fprintf(stderr, "strip_sim: invalid configuration: %s\n",
                 invalid->c_str());
    return 2;
  }
  if (print_config) {
    // Single-shard output stays byte-identical to the pre-sharding
    // tool; shards > 1 appends the cluster-level parameters.
    std::fputs(sharded.single_shard()
                   ? strip::exp::ConfigToString(config).c_str()
                   : strip::exp::ConfigToString(sharded).c_str(),
               stdout);
    return 0;
  }
  if (reps < 1) {
    std::fprintf(stderr, "strip_sim: --reps must be at least 1\n");
    return 2;
  }

  bool audit_failed = false;
  std::vector<strip::core::RunMetrics> runs;

  if (sharded.single_shard()) {
    // With --telemetry / --chrome-trace, the first replication carries
    // the corresponding recorders and writes the documents once its
    // run completes. The Chrome trace streams while the run executes;
    // the finisher only closes the document.
    strip::exp::RunHook hook;
    if (!telemetry_path.empty() || !chrome_trace_path.empty()) {
      hook = [&telemetry_path, &chrome_trace_path](
                 strip::core::System& system,
                 const strip::exp::RunContext& context)
          -> strip::exp::RunFinisher {
        if (context.replication != 0) return nullptr;
        std::shared_ptr<strip::obs::RunTelemetry> telemetry;
        if (!telemetry_path.empty()) {
          strip::obs::RunTelemetry::Options options;
          options.seed = context.seed;
          telemetry = std::make_shared<strip::obs::RunTelemetry>(
              &system, options);
        }
        std::shared_ptr<std::ofstream> trace_out;
        std::shared_ptr<strip::obs::trace::ChromeTraceWriter> trace;
        if (!chrome_trace_path.empty()) {
          trace_out = std::make_shared<std::ofstream>(chrome_trace_path);
          if (!*trace_out) {
            std::fprintf(stderr, "strip_sim: cannot write trace to %s\n",
                         chrome_trace_path.c_str());
            std::exit(2);
          }
          trace = std::make_shared<strip::obs::trace::ChromeTraceWriter>(
              trace_out.get());
          system.AddObserver(trace.get());
        }
        return [telemetry, &telemetry_path, trace, trace_out](
                   const strip::core::RunMetrics& metrics) {
          if (telemetry != nullptr) {
            // Atomic (tmp + rename): a killed run never leaves a torn
            // telemetry document behind.
            std::ostringstream out;
            telemetry->WriteJson(out, metrics);
            if (const auto write_error = strip::exp::WriteFileAtomic(
                    telemetry_path, out.str())) {
              std::fprintf(stderr, "strip_sim: %s\n",
                           write_error->c_str());
              std::exit(2);
            }
          }
          if (trace != nullptr) trace->Finish();
        };
      };
    }

    // --audit layers the invariant auditor under whatever observers
    // the base hook attaches; the auditor is read-only, so audited
    // output stays byte-identical. Violations fail the process with
    // exit 3.
    if (audit) {
      strip::exp::RunHook base_hook = std::move(hook);
      hook = [&audit_failed, base_hook](
                 strip::core::System& system,
                 const strip::exp::RunContext& context)
          -> strip::exp::RunFinisher {
        auto auditor = std::make_shared<strip::check::InvariantAuditor>();
        auditor->set_system(&system);
        system.AddObserver(auditor.get());
        strip::exp::RunFinisher base_finisher =
            base_hook ? base_hook(system, context) : nullptr;
        const int replication = context.replication;
        return [auditor, base_finisher, replication, &audit_failed](
                   const strip::core::RunMetrics& metrics) {
          if (base_finisher) base_finisher(metrics);
          if (!auditor->ok()) {
            audit_failed = true;
            std::fprintf(stderr,
                         "strip_sim: audit FAILED (replication %d)\n%s",
                         replication, auditor->Report().c_str());
          }
        };
      };
    }

    runs = strip::exp::Replicate(config, reps, seed, hook);
  } else {
    // Sharded path: the same layering against a Cluster. Telemetry
    // writes one per-shard document; the Chrome trace shares one
    // document across per-shard writers; --audit runs one
    // InvariantAuditor per shard plus the cross-shard ClusterAuditor.
    strip::exp::ClusterRunHook hook = [&](strip::core::Cluster& cluster,
                                          const strip::exp::RunContext&
                                              context)
        -> strip::exp::RunFinisher {
      struct Recorders {
        std::vector<std::unique_ptr<strip::obs::RunTelemetry>> telemetry;
        std::unique_ptr<std::ofstream> trace_out;
        std::unique_ptr<strip::obs::trace::ChromeTraceDocument> trace_doc;
        std::vector<std::unique_ptr<strip::obs::trace::ChromeTraceWriter>>
            trace;
        std::vector<std::unique_ptr<strip::check::InvariantAuditor>>
            auditors;
        std::unique_ptr<strip::check::ClusterAuditor> cluster_auditor;
      };
      auto recorders = std::make_shared<Recorders>();
      const bool first = context.replication == 0;
      if (first && !telemetry_path.empty()) {
        for (int s = 0; s < cluster.shards(); ++s) {
          strip::obs::RunTelemetry::Options options;
          options.seed = context.seed;
          options.shard = s;
          options.shards = cluster.shards();
          recorders->telemetry.push_back(
              std::make_unique<strip::obs::RunTelemetry>(&cluster.shard(s),
                                                         options));
        }
      }
      if (first && !chrome_trace_path.empty()) {
        recorders->trace_out =
            std::make_unique<std::ofstream>(chrome_trace_path);
        if (!*recorders->trace_out) {
          std::fprintf(stderr, "strip_sim: cannot write trace to %s\n",
                       chrome_trace_path.c_str());
          std::exit(2);
        }
        recorders->trace_doc =
            std::make_unique<strip::obs::trace::ChromeTraceDocument>(
                recorders->trace_out.get());
        for (int s = 0; s < cluster.shards(); ++s) {
          recorders->trace.push_back(
              std::make_unique<strip::obs::trace::ChromeTraceWriter>(
                  recorders->trace_doc.get(), s + 1,
                  "shard " + std::to_string(s)));
          cluster.shard(s).AddObserver(recorders->trace.back().get());
        }
      }
      if (audit) {
        for (int s = 0; s < cluster.shards(); ++s) {
          auto auditor = std::make_unique<strip::check::InvariantAuditor>();
          auditor->set_system(&cluster.shard(s));
          cluster.shard(s).AddObserver(auditor.get());
          recorders->auditors.push_back(std::move(auditor));
        }
        recorders->cluster_auditor =
            std::make_unique<strip::check::ClusterAuditor>();
        recorders->cluster_auditor->set_cluster(&cluster);
        cluster.AddObserverToAllShards(recorders->cluster_auditor.get());
      }
      const int replication = context.replication;
      return [recorders, replication, &cluster, &telemetry_path,
              &audit_failed](const strip::core::RunMetrics&) {
        for (std::size_t s = 0; s < recorders->telemetry.size(); ++s) {
          std::ostringstream out;
          recorders->telemetry[s]->WriteJson(
              out, cluster.shard_metrics(static_cast<int>(s)));
          const std::string path =
              telemetry_path + ".shard" + std::to_string(s);
          if (const auto write_error =
                  strip::exp::WriteFileAtomic(path, out.str())) {
            std::fprintf(stderr, "strip_sim: %s\n", write_error->c_str());
            std::exit(2);
          }
        }
        for (auto& writer : recorders->trace) writer->Finish();
        if (recorders->trace_doc != nullptr) recorders->trace_doc->Finish();
        for (std::size_t s = 0; s < recorders->auditors.size(); ++s) {
          if (!recorders->auditors[s]->ok()) {
            audit_failed = true;
            std::fprintf(
                stderr,
                "strip_sim: audit FAILED (replication %d, shard %zu)\n%s",
                replication, s, recorders->auditors[s]->Report().c_str());
          }
        }
        if (recorders->cluster_auditor != nullptr) {
          recorders->cluster_auditor->FinishRun();
          if (!recorders->cluster_auditor->ok()) {
            audit_failed = true;
            std::fprintf(
                stderr,
                "strip_sim: cluster audit FAILED (replication %d)\n%s",
                replication,
                recorders->cluster_auditor->Report().c_str());
          }
        }
      };
    };

    runs = strip::exp::Replicate(sharded, reps, seed, hook);
  }

  if (audit_failed) return 3;
  if (!quiet) {
    std::printf("policy=%s staleness=%s lambda_t=%g lambda_u=%g "
                "seconds=%g reps=%d",
                strip::core::PolicyKindName(config.policy),
                strip::db::StalenessCriterionName(config.staleness),
                config.lambda_t, config.lambda_u, config.sim_seconds,
                reps);
    if (!sharded.single_shard()) {
      std::printf(" shards=%d placement=%s", sharded.shards,
                  strip::db::PlacementKindName(sharded.placement));
    }
    std::printf("\n\n");
    std::fputs(runs[0].ToString().c_str(), stdout);
    std::printf("\n");
  }
  PrintSummary(runs);
  return 0;
}
