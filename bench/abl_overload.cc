// Ablation A10: overload management — bursty feeds and admission
// control.
//
// Part 1: the paper's motivating feed peaks at 500 updates/s (Section
// 1). A bursty stream alternating 350/s normal with 500/s peaks (same
// long-run average as the 400/s baseline) is compared against the
// steady baseline: UF absorbs bursts by stealing transaction time,
// TF/OD by letting data age through the burst.
//
// Part 2: admission control caps the transaction backlog. Combined
// with feasible-deadline screening it trims p_MD further at heavy
// overload, at a small cost in AV (some admitted-and-completable work
// is turned away).

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf("== Ablation A10: overload management ==\n\n");

  {
    exp::SweepSpec steady = bench::BaseSpec(args);
    steady.x_name = "lambda_t";
    steady.x_values = {5, 10, 15};
    steady.apply_x = [](core::Config& c, double x) { c.lambda_t = x; };

    exp::SweepSpec bursty = steady;
    bursty.apply_x = [](core::Config& c, double x) {
      c.lambda_t = x;
      c.bursty_updates = true;
      c.lambda_u = 350;       // normal phase
      c.lambda_u_peak = 500;  // the paper's peak
      c.normal_dwell_seconds = 15;
      c.burst_dwell_seconds = 5;
    };

    const exp::SweepResult steady_result = exp::RunSweep(steady);
    const exp::SweepResult bursty_result = exp::RunSweep(bursty);
    bench::Emit(args, steady, steady_result, "p_success, steady 400/s",
                bench::MetricPsuccess);
    bench::Emit(args, bursty, bursty_result,
                "p_success, bursty 350/500 per s", bench::MetricPsuccess);
    bench::Emit(args, steady, steady_result, "p_MD, steady 400/s",
                bench::MetricPmd);
    bench::Emit(args, bursty, bursty_result, "p_MD, bursty 350/500 per s",
                bench::MetricPmd);
  }
  {
    exp::SweepSpec spec = bench::BaseSpec(args);
    spec.policies = {core::PolicyKind::kOnDemand};
    spec.x_name = "limit";
    spec.x_values = {0, 2, 4, 8, 16};
    spec.apply_x = [](core::Config& c, double x) {
      c.lambda_t = 25;
      c.admission_limit = static_cast<int>(x);
    };
    const exp::SweepResult result = exp::RunSweep(spec);
    bench::Emit(args, spec, result, "AV vs admission limit (lambda_t=25)",
                bench::MetricAv);
    bench::Emit(args, spec, result, "p_MD vs admission limit",
                bench::MetricPmd);
    bench::Emit(args, spec, result, "p95 response vs admission limit",
                exp::Metric(&core::RunMetrics::response_p95));
  }
  return 0;
}
