// Figure 10: effect of the maximum age alpha.
//
// Panel (a): AV as alpha sweeps alone — looser age bounds mean fewer
// stale reads and less expiry churn. Panel (b): AV as alpha sweeps
// with N_l and N_h scaled proportionally (N = 500·alpha/7), holding
// the staleness floor constant.
//
// Paper shape: panel (a) moves AV mainly at very small alpha; in panel
// (b) AV barely changes — it is the ratio (N_l + N_h)/alpha that
// matters, not alpha itself.

#include <cmath>
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Figure 10: maximum age (MA, no stale aborts, lambda_t=10) "
      "==\n\n");

  {
    exp::SweepSpec spec = bench::BaseSpec(args);
    spec.x_name = "alpha";
    spec.x_values = {2, 3, 4, 5, 6, 7, 8, 9};
    spec.apply_x = [](core::Config& c, double x) { c.alpha = x; };
    const exp::SweepResult result = exp::RunSweep(spec);
    bench::Emit(args, spec, result, "AV (fig 10a: alpha alone)",
                bench::MetricAv);
    bench::Emit(args, spec, result, "f_old_l (fig 10a companion)",
                bench::MetricFoldLow);
  }
  {
    exp::SweepSpec spec = bench::BaseSpec(args);
    spec.x_name = "alpha";
    spec.x_values = {2, 3, 4, 5, 6, 7, 8, 9};
    spec.apply_x = [](core::Config& c, double x) {
      c.alpha = x;
      // Keep (N_l + N_h) / alpha constant at the baseline ratio.
      const int n = static_cast<int>(std::lround(500.0 * x / 7.0));
      c.n_low = n;
      c.n_high = n;
    };
    const exp::SweepResult result = exp::RunSweep(spec);
    bench::Emit(args, spec, result, "AV (fig 10b: alpha with N scaled)",
                bench::MetricAv);
  }
  return 0;
}
