// Shared helpers for the per-figure bench binaries.
//
// Every figure bench builds a SweepSpec from the paper's baseline
// config plus the figure's x-axis, runs it, and prints the series the
// figure plots. Metric extractors and the standard lambda_t sweep live
// here so the figures stay single-purpose.

#ifndef STRIP_BENCH_BENCH_UTIL_H_
#define STRIP_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <vector>

#include "exp/bench_args.h"
#include "exp/experiment.h"
#include "exp/report.h"

namespace strip::bench {

// The transaction-rate sweep most figures use (the paper plots
// lambda_t from light load to far past saturation at ~10/s).
inline std::vector<double> LambdaTSweep() {
  return {1, 5, 10, 15, 20, 25};
}

// A sweep spec preloaded with the paper baseline and the bench args.
inline exp::SweepSpec BaseSpec(const exp::BenchArgs& args) {
  exp::SweepSpec spec;
  args.ApplyTo(spec.base);
  spec.replications = args.replications;
  spec.base_seed = args.seed;
  spec.threads = args.threads;
  return spec;
}

// Standard metric extractors.
inline double MetricAv(const core::RunMetrics& m) { return m.av(); }
inline double MetricPmd(const core::RunMetrics& m) { return m.p_md(); }
inline double MetricPsuccess(const core::RunMetrics& m) {
  return m.p_success();
}
inline double MetricPsucNontardy(const core::RunMetrics& m) {
  return m.p_suc_nontardy();
}
inline double MetricFoldLow(const core::RunMetrics& m) {
  return m.f_old_low;
}
inline double MetricFoldHigh(const core::RunMetrics& m) {
  return m.f_old_high;
}
inline double MetricRhoT(const core::RunMetrics& m) { return m.rho_t(); }
inline double MetricRhoU(const core::RunMetrics& m) { return m.rho_u(); }

// Prints a series table (and optionally its CSV twin).
inline void Emit(const exp::BenchArgs& args, const exp::SweepSpec& spec,
                 const exp::SweepResult& result, const char* metric_name,
                 const exp::MetricFn& metric) {
  exp::PrintSeries(std::cout, spec, result, metric_name, metric);
  if (args.csv) {
    exp::PrintSeriesCsv(std::cout, spec, result, metric_name, metric);
  }
}

}  // namespace strip::bench

#endif  // STRIP_BENCH_BENCH_UTIL_H_
