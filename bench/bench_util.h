// Shared helpers for the per-figure bench binaries.
//
// Every figure bench builds a SweepSpec from the paper's baseline
// config plus the figure's x-axis, runs it, and prints the series the
// figure plots. Metric extractors and the standard lambda_t sweep live
// here so the figures stay single-purpose.
//
// Declaration-only on purpose: the printing machinery (iostream,
// formatting, the --json sink) is in bench_util.cc so the ~30 figure
// TUs don't each pay its include and codegen cost.

#ifndef STRIP_BENCH_BENCH_UTIL_H_
#define STRIP_BENCH_BENCH_UTIL_H_

#include <vector>

#include "exp/bench_args.h"
#include "exp/experiment.h"

namespace strip::bench {

// The transaction-rate sweep most figures use (the paper plots
// lambda_t from light load to far past saturation at ~10/s).
std::vector<double> LambdaTSweep();

// A sweep spec preloaded with the paper baseline and the bench args.
exp::SweepSpec BaseSpec(const exp::BenchArgs& args);

// Standard metric extractors.
double MetricAv(const core::RunMetrics& m);
double MetricPmd(const core::RunMetrics& m);
double MetricPsuccess(const core::RunMetrics& m);
double MetricPsucNontardy(const core::RunMetrics& m);
double MetricFoldLow(const core::RunMetrics& m);
double MetricFoldHigh(const core::RunMetrics& m);
double MetricRhoT(const core::RunMetrics& m);
double MetricRhoU(const core::RunMetrics& m);

// Prints a series table (and optionally its CSV twin). With
// args.json set, also records the series and rewrites the JSON
// results file ({"series": [...]}) so partial runs stay readable.
void Emit(const exp::BenchArgs& args, const exp::SweepSpec& spec,
          const exp::SweepResult& result, const char* metric_name,
          const exp::MetricFn& metric);

}  // namespace strip::bench

#endif  // STRIP_BENCH_BENCH_UTIL_H_
