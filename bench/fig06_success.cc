// Figure 6: effects of lambda_t on transaction success.
//
// Panel (a): p_success — the fraction of transactions that meet their
// deadline AND read only fresh data. Panel (b): p_suc|nontardy — of
// the transactions that meet their deadline, the fraction that read
// only fresh data.
//
// Paper shape: p_success falls with load for everyone, but OD wins
// across the whole range (it refreshes exactly the data transactions
// touch); TF is worst. p_suc|nontardy is high for OD and UF (staleness
// is a non-issue for their committed transactions) and low for TF; SU
// shows a counter-intuitive dip before recovering toward UF's level as
// only high-value transactions survive overload.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Figure 6: success vs lambda_t (MA, no stale aborts) ==\n\n");

  exp::SweepSpec spec = bench::BaseSpec(args);
  spec.x_name = "lambda_t";
  spec.x_values = bench::LambdaTSweep();
  spec.apply_x = [](core::Config& c, double x) { c.lambda_t = x; };

  const exp::SweepResult result = exp::RunSweep(spec);
  bench::Emit(args, spec, result, "p_success (fig 6a)",
              bench::MetricPsuccess);
  bench::Emit(args, spec, result, "p_suc|nontardy (fig 6b)",
              bench::MetricPsucNontardy);
  return 0;
}
