// Ablation A4: transaction-over-transaction preemption.
//
// Table 3 fixes `preemption = FALSE` in the baseline: a running
// transaction is never preempted by a newly arrived, denser one. This
// ablation flips the switch and compares p_MD and AV across the load
// sweep to show what the baseline choice costs.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Ablation A4: transaction preemption on/off (MA, no stale "
      "aborts) ==\n\n");

  exp::SweepSpec off = bench::BaseSpec(args);
  off.x_name = "lambda_t";
  off.x_values = {5, 10, 15, 20, 25};
  off.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.txn_preemption = false;
  };

  exp::SweepSpec on = off;
  on.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.txn_preemption = true;
  };

  const exp::SweepResult off_result = exp::RunSweep(off);
  const exp::SweepResult on_result = exp::RunSweep(on);

  bench::Emit(args, off, off_result, "AV, no preemption", bench::MetricAv);
  bench::Emit(args, on, on_result, "AV, with preemption", bench::MetricAv);
  bench::Emit(args, off, off_result, "p_MD, no preemption",
              bench::MetricPmd);
  bench::Emit(args, on, on_result, "p_MD, with preemption",
              bench::MetricPmd);
  return 0;
}
