// Figure 16: p_success under the Unapplied Update (UU) criterion.
//
// Under UU an object is stale exactly while a newer update for it sits
// unapplied in the update queue. UF never queues updates, so its data
// is never stale; OD must scan the queue on every read (the only way
// to detect UU staleness), which lengthens transactions slightly.
//
// Paper shape: the ranking is unchanged from MA — OD best, then UF,
// SU, TF — with UF and TF pushed further apart than under MA.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Figure 16: p_success under UU (no stale aborts) ==\n\n");

  exp::SweepSpec spec = bench::BaseSpec(args);
  spec.x_name = "lambda_t";
  spec.x_values = {2, 4, 6, 8, 10, 12, 14, 16};
  spec.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.staleness = db::StalenessCriterion::kUnappliedUpdate;
  };

  const exp::SweepResult result = exp::RunSweep(spec);
  bench::Emit(args, spec, result, "p_success (fig 16)",
              bench::MetricPsuccess);
  bench::Emit(args, spec, result, "p_MD (companion)", bench::MetricPmd);
  return 0;
}
