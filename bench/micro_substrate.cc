// M1: google-benchmark microbenchmarks of the simulation substrate.
//
// These measure the wall-clock cost of the hot data structures — the
// event queue, the update queue, the database apply path — and the
// end-to-end simulation rate (simulated seconds per wall second) for
// each scheduling policy at the paper baseline.

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/config.h"
#include "core/system.h"
#include "db/database.h"
#include "db/staleness.h"
#include "db/update_queue.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "txn/ready_queue.h"

namespace {

using namespace strip;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue queue;
  sim::RandomStream random(base::RngSeed(7));
  double t = 0;
  int dummy = 0;
  // Keep a standing population so heap depth is realistic.
  for (int i = 0; i < 1024; ++i) {
    queue.Schedule(t + random.Uniform(0, 10), [&dummy] { ++dummy; });
  }
  for (auto _ : state) {
    queue.Schedule(t + random.Uniform(0, 10), [&dummy] { ++dummy; });
    auto fired = queue.PopNext();
    t = fired->time;
    fired->callback();
    benchmark::DoNotOptimize(dummy);
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_EventQueueCancel(benchmark::State& state) {
  sim::EventQueue queue;
  int dummy = 0;
  for (auto _ : state) {
    auto handle = queue.Schedule(1.0, [&dummy] { ++dummy; });
    benchmark::DoNotOptimize(queue.Cancel(handle));
  }
}
BENCHMARK(BM_EventQueueCancel);

db::Update MakeUpdate(std::uint64_t id, sim::RandomStream& random) {
  db::Update u;
  u.id = base::UpdateId(id);
  u.object = {random.WithProbability(0.5)
                  ? db::ObjectClass::kLowImportance
                  : db::ObjectClass::kHighImportance,
              random.UniformInt(0, 499)};
  u.generation_time = random.Uniform(0, 1000);
  u.arrival_time = u.generation_time + 0.1;
  return u;
}

void BM_UpdateQueuePushPop(benchmark::State& state) {
  db::UpdateQueue queue(5600);
  sim::RandomStream random(base::RngSeed(7));
  std::uint64_t id = 0;
  for (int i = 0; i < 2800; ++i) queue.Push(MakeUpdate(++id, random));
  for (auto _ : state) {
    queue.Push(MakeUpdate(++id, random));
    benchmark::DoNotOptimize(queue.PopOldest());
  }
}
BENCHMARK(BM_UpdateQueuePushPop);

void BM_UpdateQueuePeekNewestFor(benchmark::State& state) {
  db::UpdateQueue queue(5600);
  sim::RandomStream random(base::RngSeed(7));
  std::uint64_t id = 0;
  for (int i = 0; i < 2800; ++i) queue.Push(MakeUpdate(++id, random));
  for (auto _ : state) {
    const db::ObjectId object = {db::ObjectClass::kLowImportance,
                                 random.UniformInt(0, 499)};
    benchmark::DoNotOptimize(queue.PeekNewestFor(object));
  }
}
BENCHMARK(BM_UpdateQueuePeekNewestFor);

void BM_DatabaseApply(benchmark::State& state) {
  db::Database database(500, 500);
  sim::RandomStream random(base::RngSeed(7));
  std::uint64_t id = 0;
  double t = 0;
  for (auto _ : state) {
    db::Update u = MakeUpdate(++id, random);
    u.generation_time = (t += 0.001);
    benchmark::DoNotOptimize(database.Apply(u));
  }
}
BENCHMARK(BM_DatabaseApply);

void BM_StalenessTrackerApply(benchmark::State& state) {
  sim::Simulator simulator;
  db::StalenessTracker tracker(&simulator,
                               db::StalenessCriterion::kMaxAge, 7.0, 500,
                               500);
  sim::RandomStream random(base::RngSeed(7));
  double t = 0;
  for (auto _ : state) {
    t += 0.0025;
    // Advance the clock so expiry events fire and superseded ones are
    // reclaimed, as in a real run.
    simulator.RunUntil(t);
    tracker.OnApply({db::ObjectClass::kLowImportance,
                     random.UniformInt(0, 499)},
                    t);
    benchmark::DoNotOptimize(tracker.StaleCount(
        db::ObjectClass::kLowImportance));
  }
}
BENCHMARK(BM_StalenessTrackerApply);

void BM_ReadyQueuePopBest(benchmark::State& state) {
  sim::RandomStream random(base::RngSeed(7));
  std::vector<std::unique_ptr<txn::Transaction>> pool;
  for (int i = 0; i < 32; ++i) {
    txn::Transaction::Params p;
    p.id = base::TxnId(i);
    p.value = random.Uniform(0.5, 2.5);
    p.deadline = random.Uniform(1, 2);
    p.computation_instructions = random.Uniform(1e6, 1e7);
    pool.push_back(std::make_unique<txn::Transaction>(p));
  }
  txn::ReadyQueue queue;
  for (auto& t : pool) queue.Add(t.get());
  for (auto _ : state) {
    txn::Transaction* best = queue.PopBest(50e6);
    benchmark::DoNotOptimize(best);
    queue.Add(best);
  }
}
BENCHMARK(BM_ReadyQueuePopBest);

// Simulated seconds per wall second for a full baseline run.
void BM_SystemBaseline(benchmark::State& state) {
  const auto policy = static_cast<core::PolicyKind>(state.range(0));
  for (auto _ : state) {
    core::Config config;
    config.policy = policy;
    config.sim_seconds = 20.0;
    sim::Simulator simulator;
    core::System system(&simulator, config, base::RngSeed(1));
    benchmark::DoNotOptimize(system.Run());
  }
  state.counters["sim_s_per_wall_s"] = benchmark::Counter(
      20.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SystemBaseline)
    ->Arg(static_cast<int>(core::PolicyKind::kUpdateFirst))
    ->Arg(static_cast<int>(core::PolicyKind::kTransactionFirst))
    ->Arg(static_cast<int>(core::PolicyKind::kSplitUpdates))
    ->Arg(static_cast<int>(core::PolicyKind::kOnDemand))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
