// Figure 8: effect of x_scan on AV.
//
// x_scan is the cost to examine one queued update during an On Demand
// search (the search costs x_scan · queue length). Only OD pays it
// under the MA criterion.
//
// Paper shape: OD degrades gracefully as x_scan grows (its queue stays
// small at light load and expires entries under heavy load); the other
// algorithms are flat.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Figure 8: scan cost vs AV (MA, no stale aborts, lambda_t=10) "
      "==\n\n");

  exp::SweepSpec spec = bench::BaseSpec(args);
  spec.x_name = "x_scan";
  spec.x_values = {0, 2000, 4000, 6000, 8000, 10000};
  spec.apply_x = [](core::Config& c, double x) { c.x_scan = x; };

  const exp::SweepResult result = exp::RunSweep(spec);
  bench::Emit(args, spec, result, "AV (fig 8)", bench::MetricAv);
  return 0;
}
