// Ablation A6: transaction scheduling rule.
//
// The paper fixes value-density scheduling for transactions (Section
// 3.4). This ablation swaps in earliest-deadline-first and
// first-come-first-served under the OD update policy: under overload,
// value density converts more of the offered value into commits
// because it spends the scarce CPU on the dense opportunities, while
// EDF maximizes on-time completions at light overload and FCFS ignores
// both value and urgency.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf("== Ablation A6: transaction scheduling rule (OD, MA) ==\n\n");

  auto run_with = [&](txn::TxnSchedPolicy sched, const char* label) {
    exp::SweepSpec spec = bench::BaseSpec(args);
    spec.policies = {core::PolicyKind::kOnDemand};
    spec.x_name = "lambda_t";
    spec.x_values = {5, 10, 15, 20, 25};
    spec.apply_x = [sched](core::Config& c, double x) {
      c.lambda_t = x;
      c.txn_sched = sched;
    };
    const exp::SweepResult result = exp::RunSweep(spec);
    std::printf("--- %s ---\n", label);
    bench::Emit(args, spec, result, "AV", bench::MetricAv);
    bench::Emit(args, spec, result, "p_MD", bench::MetricPmd);
  };

  run_with(txn::TxnSchedPolicy::kValueDensity, "value density (paper)");
  run_with(txn::TxnSchedPolicy::kEarliestDeadline, "EDF");
  run_with(txn::TxnSchedPolicy::kFcfs, "FCFS");
  return 0;
}
