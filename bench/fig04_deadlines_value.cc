// Figure 4: effects of lambda_t on missed deadlines and value.
//
// Panel (a): p_MD, the fraction of transactions missing their
// deadline. Panel (b): AV, average value returned per second.
//
// Paper shape: p_MD rises with load for every algorithm, lowest for
// TF/OD (they spend the least on updates); AV *increases* with load —
// overload gives the value-density scheduler more high-value work to
// choose from — and TF/OD dominate.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Figure 4: deadlines & value vs lambda_t (MA, no stale aborts) "
      "==\n\n");

  exp::SweepSpec spec = bench::BaseSpec(args);
  spec.x_name = "lambda_t";
  spec.x_values = bench::LambdaTSweep();
  spec.apply_x = [](core::Config& c, double x) { c.lambda_t = x; };

  const exp::SweepResult result = exp::RunSweep(spec);
  bench::Emit(args, spec, result, "p_MD (fig 4a)", bench::MetricPmd);
  bench::Emit(args, spec, result, "AV (fig 4b)", bench::MetricAv);
  return 0;
}
