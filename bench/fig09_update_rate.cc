// Figure 9: effect of the update arrival rate lambda_u.
//
// Panel (a): p_success; panel (b): AV, as the update stream rate
// sweeps 200..600 updates/second at the baseline transaction load.
//
// Paper shape: TF and OD hold their AV flat across the whole range
// while UF and SU — which install everything, or everything
// high-importance, at top priority — return less value as the stream
// intensifies. OD improves its p_success with rate (fresher queue to
// fetch from) and is the clear winner by 550/s.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Figure 9: update rate (MA, no stale aborts, lambda_t=10) ==\n\n");

  exp::SweepSpec spec = bench::BaseSpec(args);
  spec.x_name = "lambda_u";
  spec.x_values = {200, 250, 300, 350, 400, 450, 500, 550, 600};
  spec.apply_x = [](core::Config& c, double x) { c.lambda_u = x; };

  const exp::SweepResult result = exp::RunSweep(spec);
  bench::Emit(args, spec, result, "p_success (fig 9a)",
              bench::MetricPsuccess);
  bench::Emit(args, spec, result, "AV (fig 9b)", bench::MetricAv);
  return 0;
}
