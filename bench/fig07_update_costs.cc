// Figure 7: effects of x_update and x_queue on AV.
//
// Panel (a): AV as the per-install cost x_update sweeps 0..50k
// instructions. Panel (b): AV as the queue-operation cost factor
// x_queue sweeps 0..5k.
//
// Paper shape: UF and SU fall sharply with x_update (they install the
// most updates) while TF/OD barely move; with x_queue the queue-based
// schemes TF/OD (and to a lesser degree SU) pay, while UF — which has
// no update queue — is untouched.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Figure 7: update costs vs AV (MA, no stale aborts, lambda_t=10) "
      "==\n\n");

  {
    exp::SweepSpec spec = bench::BaseSpec(args);
    spec.x_name = "x_update";
    spec.x_values = {0, 10000, 20000, 30000, 40000, 50000};
    spec.apply_x = [](core::Config& c, double x) { c.x_update = x; };
    const exp::SweepResult result = exp::RunSweep(spec);
    bench::Emit(args, spec, result, "AV (fig 7a)", bench::MetricAv);
  }
  {
    exp::SweepSpec spec = bench::BaseSpec(args);
    spec.x_name = "x_queue";
    spec.x_values = {0, 1000, 2000, 3000, 4000, 5000};
    spec.apply_x = [](core::Config& c, double x) { c.x_queue = x; };
    const exp::SweepResult result = exp::RunSweep(spec);
    bench::Emit(args, spec, result, "AV (fig 7b)", bench::MetricAv);
  }
  return 0;
}
