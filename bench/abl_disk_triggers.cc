// Ablation A7: disk-resident data and update-fired triggers.
//
// Two of the paper's future-work items (Section 7) as cost-model
// extensions. Part 1 drops the buffer hit ratio from the main-memory
// baseline (1.0) toward disk-resident territory: every policy loses
// value, but UF/SU — which perform the most installs — lose the most.
// Part 2 makes installs fire derived-data rules with increasing
// probability: the effective install cost grows, reproducing the
// x_update sweep of Figure 7(a) through a different mechanism.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Ablation A7: disk residence & triggers (MA, lambda_t=10) ==\n\n");

  {
    exp::SweepSpec spec = bench::BaseSpec(args);
    spec.x_name = "hit_ratio";
    spec.x_values = {1.0, 0.99, 0.95, 0.9, 0.8};
    spec.apply_x = [](core::Config& c, double x) {
      c.buffer_hit_ratio = x;
      c.io_seconds = 0.002;  // a 1995-era 2 ms random read
    };
    const exp::SweepResult result = exp::RunSweep(spec);
    bench::Emit(args, spec, result, "AV vs buffer hit ratio",
                bench::MetricAv);
    bench::Emit(args, spec, result, "p_success vs buffer hit ratio",
                bench::MetricPsuccess);
  }
  {
    exp::SweepSpec spec = bench::BaseSpec(args);
    spec.x_name = "p_trigger";
    spec.x_values = {0.0, 0.25, 0.5, 0.75, 1.0};
    spec.apply_x = [](core::Config& c, double x) {
      c.trigger_probability = x;
      c.x_trigger = 30000;  // rule recomputation > the install itself
    };
    const exp::SweepResult result = exp::RunSweep(spec);
    bench::Emit(args, spec, result, "AV vs trigger probability",
                bench::MetricAv);
    bench::Emit(args, spec, result, "f_old_l vs trigger probability",
                bench::MetricFoldLow);
  }
  return 0;
}
