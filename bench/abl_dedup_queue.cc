// Ablation A11: the deduplicating hash-bounded update queue.
//
// Section 4.2: "For systems with complete updates to snapshot views
// ... it is not necessary to store more than one update per view
// object since all updates but the newest are worthless. A hash table
// can be built on the update queue to help eliminate old updates and
// keep the queue size bounded. This approach is not evaluated in our
// experiments but does indicate an interesting direction for future
// work." — evaluated here.
//
// Expected: the queue shrinks from ~alpha·lambda_u entries to at most
// one per object, expiry churn disappears, staleness is unchanged (the
// newest update per object is exactly what would have survived), and
// OD's linear scans become affordable without the separate index.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Ablation A11: deduplicating update queue (MA) ==\n\n");

  {
    exp::SweepSpec plain = bench::BaseSpec(args);
    plain.policies = {core::PolicyKind::kTransactionFirst,
                      core::PolicyKind::kOnDemand};
    plain.x_name = "lambda_t";
    plain.x_values = {5, 10, 15, 20};
    plain.apply_x = [](core::Config& c, double x) {
      c.lambda_t = x;
      c.dedup_update_queue = false;
    };
    exp::SweepSpec dedup = plain;
    dedup.apply_x = [](core::Config& c, double x) {
      c.lambda_t = x;
      c.dedup_update_queue = true;
    };
    const exp::SweepResult plain_result = exp::RunSweep(plain);
    const exp::SweepResult dedup_result = exp::RunSweep(dedup);
    const exp::MetricFn uq_avg =
        exp::Metric(&core::RunMetrics::uq_length_avg);
    bench::Emit(args, plain, plain_result, "avg queue length, plain",
                uq_avg);
    bench::Emit(args, dedup, dedup_result, "avg queue length, dedup",
                uq_avg);
    bench::Emit(args, plain, plain_result, "f_old_l, plain",
                bench::MetricFoldLow);
    bench::Emit(args, dedup, dedup_result, "f_old_l, dedup",
                bench::MetricFoldLow);
  }
  {
    // The scan-cost sweep of Figure 8, with the dedup queue standing in
    // for the index.
    exp::SweepSpec spec = bench::BaseSpec(args);
    spec.policies = {core::PolicyKind::kOnDemand};
    spec.x_name = "x_scan";
    spec.x_values = {0, 2000, 4000, 8000};
    spec.apply_x = [](core::Config& c, double x) {
      c.x_scan = x;
      c.dedup_update_queue = true;
    };
    const exp::SweepResult result = exp::RunSweep(spec);
    bench::Emit(args, spec, result, "AV vs x_scan, dedup queue (cf fig 8)",
                bench::MetricAv);
  }
  return 0;
}
