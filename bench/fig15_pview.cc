// Figure 15: effect of p_view under abort-on-stale.
//
// p_view is the fraction of a transaction's computation done *before*
// it reads view data. The later a transaction reads (larger p_view),
// the more work is wasted when a stale read aborts it.
//
// Paper shape: every algorithm degrades as p_view grows; SU and TF are
// hurt the most because their transactions read stale data most often.
// Reading view data as early as possible is best.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Figure 15: p_view with abort-on-stale (MA, lambda_t=10) ==\n\n");

  exp::SweepSpec spec = bench::BaseSpec(args);
  spec.x_name = "p_view";
  spec.x_values = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  spec.apply_x = [](core::Config& c, double x) {
    c.p_view = x;
    c.abort_on_stale = true;
  };

  const exp::SweepResult result = exp::RunSweep(spec);
  bench::Emit(args, spec, result, "AV (fig 15)", bench::MetricAv);
  bench::Emit(args, spec, result, "stale-abort fraction (companion)",
              [](const core::RunMetrics& m) {
                const double total =
                    static_cast<double>(m.txns_terminal());
                return total == 0 ? 0.0
                                  : static_cast<double>(m.txns_stale_aborted) /
                                        total;
              });
  return 0;
}
