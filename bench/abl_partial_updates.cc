// Ablation A8: partial updates (Sections 2/7 future work).
//
// With n_attributes > 1, each update refreshes one attribute of its
// object and the object is only as fresh as its *oldest* attribute.
// At a fixed stream rate, the per-attribute refresh period grows
// A-fold, so freshness degrades for every policy — most visibly for
// UF, whose whole purpose is freshness. OD's on-demand fetch also
// weakens: one fetched update freshens one attribute, not the object.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Ablation A8: partial updates (MA, lambda_t=10) ==\n\n");

  exp::SweepSpec spec = bench::BaseSpec(args);
  spec.x_name = "attrs";
  spec.x_values = {1, 2, 4, 8};
  spec.apply_x = [](core::Config& c, double x) {
    c.n_attributes = static_cast<int>(x);
  };

  const exp::SweepResult result = exp::RunSweep(spec);
  bench::Emit(args, spec, result, "f_old_l vs attributes/object",
              bench::MetricFoldLow);
  bench::Emit(args, spec, result, "f_old_h vs attributes/object",
              bench::MetricFoldHigh);
  bench::Emit(args, spec, result, "p_success vs attributes/object",
              bench::MetricPsuccess);
  bench::Emit(args, spec, result, "AV vs attributes/object",
              bench::MetricAv);
  return 0;
}
