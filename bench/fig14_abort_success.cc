// Figure 14: p_success when stale reads abort transactions.
//
// Paper shape: OD still wins, beating UF by 10-15 percentage points;
// TF — the big loser without aborts — climbs to second place, because
// aborting its stale readers both frees CPU for updates and leaves its
// surviving commits fresh.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf("== Figure 14: p_success with abort-on-stale (MA) ==\n\n");

  exp::SweepSpec spec = bench::BaseSpec(args);
  spec.x_name = "lambda_t";
  spec.x_values = {5, 10, 15, 20, 25};
  spec.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.abort_on_stale = true;
  };

  const exp::SweepResult result = exp::RunSweep(spec);
  bench::Emit(args, spec, result, "p_success (fig 14)",
              bench::MetricPsuccess);
  return 0;
}
