// Figure 11: FIFO versus LIFO update-queue service.
//
// Panel (a): the ratio f_old_l(FIFO) / f_old_l(LIFO); panel (b) the
// ratio p_success(FIFO) / p_success(LIFO), versus lambda_t.
//
// Paper shape: every queue-based algorithm shows ratios above 1 in (a)
// — FIFO installs nearly expired updates first and keeps data staler —
// and below 1 in (b); TF is hurt the most. UF has no queue, so its
// ratios sit at 1.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "exp/report.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Figure 11: FIFO vs LIFO queue discipline (MA, no stale aborts) "
      "==\n\n");

  exp::SweepSpec fifo = bench::BaseSpec(args);
  fifo.x_name = "lambda_t";
  fifo.x_values = {5, 10, 15, 20, 25};
  fifo.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.queue_discipline = core::QueueDiscipline::kFifo;
  };

  exp::SweepSpec lifo = fifo;
  lifo.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.queue_discipline = core::QueueDiscipline::kLifo;
  };

  const exp::SweepResult fifo_result = exp::RunSweep(fifo);
  const exp::SweepResult lifo_result = exp::RunSweep(lifo);

  exp::PrintSeriesRatio(std::cout, fifo, fifo_result, lifo_result,
                        "f_old_l(FIFO)/f_old_l(LIFO) (fig 11a)",
                        bench::MetricFoldLow);
  exp::PrintSeriesRatio(std::cout, fifo, fifo_result, lifo_result,
                        "p_success(FIFO)/p_success(LIFO) (fig 11b)",
                        bench::MetricPsuccess);
  if (args.csv) {
    exp::PrintSeriesCsv(std::cout, fifo, fifo_result, "f_old_l_fifo",
                        bench::MetricFoldLow);
    exp::PrintSeriesCsv(std::cout, lifo, lifo_result, "f_old_l_lifo",
                        bench::MetricFoldLow);
  }
  return 0;
}
