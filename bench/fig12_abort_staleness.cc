// Figure 12: staleness when stale reads abort transactions.
//
// Scenario of Section 6.2: a transaction is aborted the moment it
// reads a stale object. Panel (a): f_old_h under abort-on-stale;
// panel (b): the ratio f_old_h(abort) / f_old_h(no abort).
//
// Paper shape: TF's high-importance data becomes dramatically fresher
// (below 20% stale versus ~99% without aborts): aborted transactions
// free CPU which the updater uses to catch up. The ratio plot shows TF
// far below 1 while UF/SU sit at 1 (their high data was already
// fresh).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "exp/report.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Figure 12: staleness with abort-on-stale (MA) ==\n\n");

  exp::SweepSpec abort_spec = bench::BaseSpec(args);
  abort_spec.x_name = "lambda_t";
  abort_spec.x_values = {5, 10, 15, 20, 25};
  abort_spec.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.abort_on_stale = true;
  };

  exp::SweepSpec noabort_spec = abort_spec;
  noabort_spec.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.abort_on_stale = false;
  };

  const exp::SweepResult with_abort = exp::RunSweep(abort_spec);
  const exp::SweepResult without_abort = exp::RunSweep(noabort_spec);

  bench::Emit(args, abort_spec, with_abort, "f_old_h w/abort (fig 12a)",
              bench::MetricFoldHigh);
  exp::PrintSeriesRatio(std::cout, abort_spec, with_abort, without_abort,
                        "f_old_h(abort)/f_old_h(no abort) (fig 12b)",
                        bench::MetricFoldHigh);
  return 0;
}
