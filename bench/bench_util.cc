#include "bench_util.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "exp/report.h"

namespace strip::bench {

std::vector<double> LambdaTSweep() { return {1, 5, 10, 15, 20, 25}; }

exp::SweepSpec BaseSpec(const exp::BenchArgs& args) {
  exp::SweepSpec spec;
  args.ApplyTo(spec.base);
  spec.replications = args.replications;
  spec.base_seed = args.seed;
  spec.parallel = args.parallel;
  return spec;
}

double MetricAv(const core::RunMetrics& m) { return m.av(); }
double MetricPmd(const core::RunMetrics& m) { return m.p_md(); }
double MetricPsuccess(const core::RunMetrics& m) { return m.p_success(); }
double MetricPsucNontardy(const core::RunMetrics& m) {
  return m.p_suc_nontardy();
}
double MetricFoldLow(const core::RunMetrics& m) { return m.f_old_low; }
double MetricFoldHigh(const core::RunMetrics& m) { return m.f_old_high; }
double MetricRhoT(const core::RunMetrics& m) { return m.rho_t(); }
double MetricRhoU(const core::RunMetrics& m) { return m.rho_u(); }

namespace {

// Series accumulated for --json over the lifetime of the bench binary.
// Rewritten wholesale after each Emit so an interrupted run still
// leaves a valid document.
std::vector<std::string>& JsonSeries() {
  static std::vector<std::string> series;
  return series;
}

void WriteJsonFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench: cannot write JSON results to " << path << "\n";
    return;
  }
  out << "{\"series\": [";
  const std::vector<std::string>& series = JsonSeries();
  for (std::size_t i = 0; i < series.size(); ++i) {
    out << (i ? ",\n  " : "\n  ") << series[i];
  }
  out << "\n]}\n";
}

}  // namespace

void Emit(const exp::BenchArgs& args, const exp::SweepSpec& spec,
          const exp::SweepResult& result, const char* metric_name,
          const exp::MetricFn& metric) {
  exp::PrintSeries(std::cout, spec, result, metric_name, metric);
  if (args.csv) {
    exp::PrintSeriesCsv(std::cout, spec, result, metric_name, metric);
  }
  if (!args.json.empty()) {
    std::ostringstream series;
    exp::PrintSeriesJson(series, spec, result, metric_name, metric);
    JsonSeries().push_back(series.str());
    WriteJsonFile(args.json);
  }
}

}  // namespace strip::bench
