// Figure 5: effects of lambda_t on data staleness.
//
// Panel (a): f_old_l, the time-averaged fraction of stale
// low-importance objects. Panel (b): f_old_h for the high-importance
// partition.
//
// Paper shape: UF is flat and low (<10%) regardless of load; TF and OD
// climb toward 1 as transactions crowd out installs (OD slightly
// better than TF); SU sits between — its high partition stays as fresh
// as UF's, its low partition goes stale like TF's.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Figure 5: staleness vs lambda_t (MA, no stale aborts) ==\n\n");

  exp::SweepSpec spec = bench::BaseSpec(args);
  spec.x_name = "lambda_t";
  spec.x_values = bench::LambdaTSweep();
  spec.apply_x = [](core::Config& c, double x) { c.lambda_t = x; };

  const exp::SweepResult result = exp::RunSweep(spec);
  bench::Emit(args, spec, result, "f_old_l (fig 5a)", bench::MetricFoldLow);
  bench::Emit(args, spec, result, "f_old_h (fig 5b)",
              bench::MetricFoldHigh);
  return 0;
}
