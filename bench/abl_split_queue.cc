// Ablation A2: split-importance update-queue service for TF.
//
// Section 4.2 sketches splitting the update queue by importance and
// installing high-importance updates first when the updater runs. This
// ablation compares plain TF against TF with split-queue service on
// the lambda_t sweep: the split keeps the high partition fresher at no
// cost to deadlines.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Ablation A2: split-importance queue service for TF (MA) ==\n\n");

  exp::SweepSpec plain = bench::BaseSpec(args);
  plain.policies = {core::PolicyKind::kTransactionFirst,
                    core::PolicyKind::kSplitUpdates};
  plain.x_name = "lambda_t";
  plain.x_values = {5, 10, 15, 20, 25};
  plain.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.split_importance_queues = false;
  };

  exp::SweepSpec split = plain;
  split.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.split_importance_queues = true;
  };

  const exp::SweepResult plain_result = exp::RunSweep(plain);
  const exp::SweepResult split_result = exp::RunSweep(split);

  bench::Emit(args, plain, plain_result, "f_old_h, single queue",
              bench::MetricFoldHigh);
  bench::Emit(args, split, split_result, "f_old_h, split queues",
              bench::MetricFoldHigh);
  bench::Emit(args, plain, plain_result, "p_success, single queue",
              bench::MetricPsuccess);
  bench::Emit(args, split, split_result, "p_success, split queues",
              bench::MetricPsuccess);
  return 0;
}
