// Figure 13: value returned when stale reads abort transactions.
//
// Panel (a): AV under abort-on-stale versus lambda_t; panel (b): the
// ratio AV(abort) / AV(no abort).
//
// Paper shape: OD pulls clearly ahead — it avoids most stale-read
// aborts by refreshing on demand. TF, the closest contender without
// aborts, is hurt the most by them. SU, surprisingly, returns more
// value than either TF or UF: it keeps exactly the data of high-value
// transactions fresh, so those commit.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "exp/report.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf("== Figure 13: AV with abort-on-stale (MA) ==\n\n");

  exp::SweepSpec abort_spec = bench::BaseSpec(args);
  abort_spec.x_name = "lambda_t";
  abort_spec.x_values = {5, 10, 15, 20, 25};
  abort_spec.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.abort_on_stale = true;
  };

  exp::SweepSpec noabort_spec = abort_spec;
  noabort_spec.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.abort_on_stale = false;
  };

  const exp::SweepResult with_abort = exp::RunSweep(abort_spec);
  const exp::SweepResult without_abort = exp::RunSweep(noabort_spec);

  bench::Emit(args, abort_spec, with_abort, "AV w/abort (fig 13a)",
              bench::MetricAv);
  exp::PrintSeriesRatio(std::cout, abort_spec, with_abort, without_abort,
                        "AV(abort)/AV(no abort) (fig 13b)",
                        bench::MetricAv);
  // Companion: value earned from the high class alone. The paper's
  // explanation of SU's surprise win is that exactly these
  // transactions survive ("they are not aborted because the high
  // importance data they access is kept fresh by SU").
  bench::Emit(args, abort_spec, with_abort,
              "AV from high-value txns w/abort (companion)",
              [](const core::RunMetrics& m) {
                return m.observed_seconds <= 0
                           ? 0.0
                           : m.value_committed_by_class[1] /
                                 m.observed_seconds;
              });
  return 0;
}
