// Figure 3: effects of lambda_t on the transaction/update CPU mix.
//
// Reproduces both panels: (a) rho_t, the fraction of CPU time spent on
// transactions, and (b) rho_u, the fraction spent on updates, as the
// transaction arrival rate sweeps from light load past saturation.
//
// Paper shape: rho_u is flat at ~0.19 for UF (updates always win) and
// decreases with lambda_t for TF/OD; total utilization saturates at 1
// around lambda_t = 10 for every algorithm.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf("== Figure 3: CPU mix vs lambda_t (MA, no stale aborts) ==\n\n");

  exp::SweepSpec spec = bench::BaseSpec(args);
  spec.x_name = "lambda_t";
  spec.x_values = bench::LambdaTSweep();
  spec.apply_x = [](core::Config& c, double x) { c.lambda_t = x; };

  const exp::SweepResult result = exp::RunSweep(spec);
  bench::Emit(args, spec, result, "rho_t (fig 3a)", bench::MetricRhoT);
  bench::Emit(args, spec, result, "rho_u (fig 3b)", bench::MetricRhoU);
  bench::Emit(args, spec, result, "rho_total",
              exp::Metric(&core::RunMetrics::rho_total));
  return 0;
}
