// Ablation A3: a fixed CPU fraction for the update process.
//
// The paper's future-work list (Section 7) proposes giving the updater
// a fixed CPU share. Two views: (1) FCF at the baseline share versus
// the paper's four policies across lambda_t; (2) the share itself
// swept at lambda_t = 10, showing the freshness/value trade directly.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf("== Ablation A3: fixed-CPU-fraction updater (MA) ==\n\n");

  {
    exp::SweepSpec spec = bench::BaseSpec(args);
    spec.policies = {core::PolicyKind::kUpdateFirst,
                     core::PolicyKind::kTransactionFirst,
                     core::PolicyKind::kOnDemand,
                     core::PolicyKind::kFixedFraction};
    spec.x_name = "lambda_t";
    spec.x_values = {5, 10, 15, 20, 25};
    spec.apply_x = [](core::Config& c, double x) {
      c.lambda_t = x;
      c.update_cpu_fraction = 0.2;  // the stream's full demand
    };
    const exp::SweepResult result = exp::RunSweep(spec);
    bench::Emit(args, spec, result, "p_success (FCF share = 0.20)",
                bench::MetricPsuccess);
    bench::Emit(args, spec, result, "AV (FCF share = 0.20)",
                bench::MetricAv);
    bench::Emit(args, spec, result, "f_old_l (FCF share = 0.20)",
                bench::MetricFoldLow);
  }
  {
    exp::SweepSpec spec = bench::BaseSpec(args);
    spec.policies = {core::PolicyKind::kFixedFraction};
    spec.x_name = "share";
    spec.x_values = {0.0, 0.05, 0.1, 0.15, 0.2, 0.3};
    spec.apply_x = [](core::Config& c, double x) {
      c.update_cpu_fraction = x;
    };
    const exp::SweepResult result = exp::RunSweep(spec);
    bench::Emit(args, spec, result, "p_success vs updater share",
                bench::MetricPsuccess);
    bench::Emit(args, spec, result, "AV vs updater share",
                bench::MetricAv);
    bench::Emit(args, spec, result, "f_old_l vs updater share",
                bench::MetricFoldLow);
  }
  return 0;
}
