// Ablation A9: the four staleness criteria side by side.
//
// Section 2 defines MA (generation-based age bound) and UU (unapplied
// update in the queue) and sketches two variations: MA on *arrival*
// time, and the MA-or-UU combination. This ablation runs the OD and UF
// policies under all four criteria across the load sweep.
//
// Expected: MA-arrival reads fresher than MA (arrival >= generation,
// so values age out later); MA+UU is the strictest (stale under
// either); UU makes UF perfectly fresh and gives OD a per-read scan
// obligation.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Ablation A9: staleness criteria (no stale aborts) ==\n\n");

  const struct {
    db::StalenessCriterion criterion;
    const char* label;
  } criteria[] = {
      {db::StalenessCriterion::kMaxAge, "MA (generation)"},
      {db::StalenessCriterion::kMaxAgeArrival, "MA (arrival)"},
      {db::StalenessCriterion::kUnappliedUpdate, "UU"},
      {db::StalenessCriterion::kCombined, "MA+UU"},
  };

  for (const auto& entry : criteria) {
    exp::SweepSpec spec = bench::BaseSpec(args);
    spec.policies = {core::PolicyKind::kUpdateFirst,
                     core::PolicyKind::kOnDemand};
    spec.x_name = "lambda_t";
    spec.x_values = {5, 10, 15, 20};
    const db::StalenessCriterion criterion = entry.criterion;
    spec.apply_x = [criterion](core::Config& c, double x) {
      c.lambda_t = x;
      c.staleness = criterion;
    };
    const exp::SweepResult result = exp::RunSweep(spec);
    std::printf("--- %s ---\n", entry.label);
    bench::Emit(args, spec, result, "p_success", bench::MetricPsuccess);
    bench::Emit(args, spec, result, "f_old_l", bench::MetricFoldLow);
  }
  return 0;
}
