// perf_core: the hot-path micro-suite that seeds the perf trajectory.
//
// Measures the simulation substrate the way the paper's experiments
// exercise it: event schedule→pop throughput at realistic standing
// populations, timer-churn (schedule/cancel) mixes, update-queue
// push/pop/purge under both the realistic near-in-generation-order
// arrival pattern and an adversarial random one, and an end-to-end
// 60-simulated-second baseline run.
//
// CI runs this with --benchmark_min_time=0.1x and uploads the JSON:
//   perf_core --benchmark_out=BENCH_core.json --benchmark_out_format=json
// Compare against the checked-in BENCH_core.json to read the perf
// trajectory across PRs.
//
// The JSON context carries `strip_build_type` / `strip_lto` — this
// binary's own compile configuration, stamped by CMake. (The library's
// `library_build_type` key reflects how the google-benchmark *package*
// was compiled, which on distro packages is "debug" regardless of our
// flags, so it cannot certify a baseline.)
// scripts/check_bench_build_type.sh gates checked-in baselines on
// strip_build_type == "release".

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "check/invariant_auditor.h"
#include "core/config.h"
#include "core/system.h"
#include "db/update_queue.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace {

using namespace strip;

// --- event queue -----------------------------------------------------------

// Steady-state schedule→pop at a standing population of range(0)
// pending events (a 300 s paper run holds a few thousand pending
// deadline/expiry/arrival events; 64k approximates a scaled-up feed).
void BM_EventScheduleThenPop(benchmark::State& state) {
  sim::EventQueue queue;
  sim::RandomStream random(base::RngSeed(7));
  double t = 0;
  int dummy = 0;
  const int population = static_cast<int>(state.range(0));
  for (int i = 0; i < population; ++i) {
    queue.Schedule(t + random.Uniform(0, 10), [&dummy] { ++dummy; });
  }
  for (auto _ : state) {
    queue.Schedule(t + random.Uniform(0, 10), [&dummy] { ++dummy; });
    auto fired = queue.PopNext();
    t = fired->time;
    fired->callback();
    benchmark::DoNotOptimize(dummy);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventScheduleThenPop)->Arg(1024)->Arg(65536);

// Schedule+cancel with no pop: the deadline-timer pattern (most firm
// deadlines are cancelled at commit, long before they fire).
void BM_EventScheduleCancel(benchmark::State& state) {
  sim::EventQueue queue;
  int dummy = 0;
  for (auto _ : state) {
    auto handle = queue.Schedule(1.0, [&dummy] { ++dummy; });
    benchmark::DoNotOptimize(queue.Cancel(handle));
  }
}
BENCHMARK(BM_EventScheduleCancel);

// Mixed churn at a standing population: cancel-and-replace one timer,
// pop-and-fire one event, schedule its replacement.
void BM_EventTimerChurn(benchmark::State& state) {
  sim::EventQueue queue;
  sim::RandomStream random(base::RngSeed(7));
  double t = 0;
  int dummy = 0;
  const std::size_t population = static_cast<std::size_t>(state.range(0));
  std::vector<sim::EventQueue::Handle> timers(population);
  for (std::size_t i = 0; i < population; ++i) {
    timers[i] = queue.Schedule(t + random.Uniform(0, 10), [&dummy] { ++dummy; });
  }
  std::size_t next = 0;
  for (auto _ : state) {
    queue.Cancel(timers[next]);
    timers[next] = queue.Schedule(t + random.Uniform(0, 10), [&dummy] { ++dummy; });
    next = (next + 1) % population;
    auto fired = queue.PopNext();
    if (fired) {
      t = fired->time;
      fired->callback();
    }
    queue.Schedule(t + random.Uniform(0, 10), [&dummy] { ++dummy; });
    benchmark::DoNotOptimize(dummy);
  }
}
BENCHMARK(BM_EventTimerChurn)->Arg(8192);

// --- update queue ----------------------------------------------------------

db::Update MakeUpdate(std::uint64_t id, double generation,
                      sim::RandomStream& random) {
  db::Update u;
  u.id = base::UpdateId(id);
  u.object = {random.WithProbability(0.5) ? db::ObjectClass::kLowImportance
                                          : db::ObjectClass::kHighImportance,
              random.UniformInt(0, 499)};
  u.generation_time = generation;
  u.arrival_time = generation + 0.1;
  return u;
}

// Realistic feed: generation times advance with small network jitter,
// so inserts land near the tail and FIFO service pops the head.
void BM_UpdatePushPopFifo(benchmark::State& state) {
  db::UpdateQueue queue(5600);
  sim::RandomStream random(base::RngSeed(7));
  std::uint64_t id = 0;
  double t = 0;
  for (int i = 0; i < 2800; ++i) {
    queue.Push(MakeUpdate(++id, t += 0.0025, random));
  }
  for (auto _ : state) {
    queue.Push(MakeUpdate(++id, (t += 0.0025) - random.Uniform(0, 0.01),
                          random));
    benchmark::DoNotOptimize(queue.PopOldest());
  }
  state.counters["updates_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UpdatePushPopFifo);

// Adversarial feed: generation times uniform over the whole run, so
// every insert lands at a random position in the ordering.
void BM_UpdatePushPopRandom(benchmark::State& state) {
  db::UpdateQueue queue(5600);
  sim::RandomStream random(base::RngSeed(7));
  std::uint64_t id = 0;
  for (int i = 0; i < 2800; ++i) {
    queue.Push(MakeUpdate(++id, random.Uniform(0, 1000), random));
  }
  for (auto _ : state) {
    queue.Push(MakeUpdate(++id, random.Uniform(0, 1000), random));
    benchmark::DoNotOptimize(queue.PopOldest());
  }
}
BENCHMARK(BM_UpdatePushPopRandom);

// Maximum-Age service: batches of pushes followed by a purge of the
// expired prefix (Section 3.3's discard-from-front path).
void BM_UpdatePushPurge(benchmark::State& state) {
  db::UpdateQueue queue(100000);
  sim::RandomStream random(base::RngSeed(7));
  std::uint64_t id = 0;
  double t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.Push(MakeUpdate(++id, (t += 0.0025) - random.Uniform(0, 0.01),
                            random));
    }
    benchmark::DoNotOptimize(queue.PurgeGeneratedBefore(t - 0.08));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_UpdatePushPurge);

// Split-queue service (Section 4.2): class-filtered pops.
void BM_UpdateClassPops(benchmark::State& state) {
  db::UpdateQueue queue(5600);
  sim::RandomStream random(base::RngSeed(7));
  std::uint64_t id = 0;
  double t = 0;
  for (int i = 0; i < 2800; ++i) {
    queue.Push(MakeUpdate(++id, t += 0.0025, random));
  }
  for (auto _ : state) {
    queue.Push(MakeUpdate(++id, t += 0.0025, random));
    const auto cls = (id & 1) != 0 ? db::ObjectClass::kHighImportance
                                   : db::ObjectClass::kLowImportance;
    auto popped = queue.PopOldestOfClass(cls);
    if (!popped.has_value()) popped = queue.PopOldest();
    benchmark::DoNotOptimize(popped);
  }
}
BENCHMARK(BM_UpdateClassPops);

// On-Demand lookup: newest queued update for a random object.
void BM_UpdatePeekNewestFor(benchmark::State& state) {
  db::UpdateQueue queue(5600);
  sim::RandomStream random(base::RngSeed(7));
  std::uint64_t id = 0;
  double t = 0;
  for (int i = 0; i < 2800; ++i) {
    queue.Push(MakeUpdate(++id, t += 0.0025, random));
  }
  for (auto _ : state) {
    const db::ObjectId object = {db::ObjectClass::kLowImportance,
                                 random.UniformInt(0, 499)};
    benchmark::DoNotOptimize(queue.PeekNewestFor(object));
  }
}
BENCHMARK(BM_UpdatePeekNewestFor);

// --- end to end ------------------------------------------------------------

// A full 60-simulated-second baseline run per policy; reports both
// simulated-seconds and dispatched-events per wall second.
void BM_SimEndToEnd60s(benchmark::State& state) {
  const auto policy = static_cast<core::PolicyKind>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    core::Config config;
    config.policy = policy;
    config.sim_seconds = 60.0;
    sim::Simulator simulator;
    core::System system(&simulator, config, base::RngSeed(1));
    benchmark::DoNotOptimize(system.Run());
    events += simulator.events_dispatched();
  }
  state.counters["sim_s_per_wall_s"] = benchmark::Counter(
      60.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimEndToEnd60s)
    ->Arg(static_cast<int>(core::PolicyKind::kUpdateFirst))
    ->Arg(static_cast<int>(core::PolicyKind::kOnDemand))
    ->Unit(benchmark::kMillisecond);

// Observer overhead: the same 60-simulated-second baseline run with a
// no-op observer attached. Arg 0 runs bare (the bus's emptiness test
// only), arg 1 attaches an observer that receives every lifecycle
// hook and does nothing. The gap between the two is the cost of the
// tracing layer's hook plumbing; the bare variant should match
// BM_SimEndToEnd60s within noise.
class NoopObserver final : public core::SystemObserver {};

void BM_SimObserverOverhead60s(benchmark::State& state) {
  const bool attach = state.range(0) != 0;
  std::uint64_t events = 0;
  NoopObserver observer;
  for (auto _ : state) {
    core::Config config;
    config.sim_seconds = 60.0;
    sim::Simulator simulator;
    core::System system(&simulator, config, base::RngSeed(1));
    if (attach) system.AddObserver(&observer);
    benchmark::DoNotOptimize(system.Run());
    events += simulator.events_dispatched();
  }
  state.counters["sim_s_per_wall_s"] = benchmark::Counter(
      60.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimObserverOverhead60s)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Auditor overhead: the same 60-simulated-second baseline run with the
// full InvariantAuditor attached (arg 1) vs bare (arg 0). Unlike the
// no-op observer above, the auditor re-derives conservation, queue
// accounting, and staleness conformance on every hook, so this is the
// real cost of `strip_sim --audit`. Documented in BENCH_core.json,
// not gated — audit mode is a debugging/CI tool, not the hot path.
void BM_SimAuditorOverhead60s(benchmark::State& state) {
  const bool attach = state.range(0) != 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    core::Config config;
    config.sim_seconds = 60.0;
    sim::Simulator simulator;
    core::System system(&simulator, config, base::RngSeed(1));
    check::InvariantAuditor auditor;
    if (attach) {
      auditor.set_system(&system);
      system.AddObserver(&auditor);
    }
    benchmark::DoNotOptimize(system.Run());
    if (attach && !auditor.ok()) state.SkipWithError("audit violation");
    events += simulator.events_dispatched();
  }
  state.counters["sim_s_per_wall_s"] = benchmark::Counter(
      60.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimAuditorOverhead60s)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Fallbacks so the file still compiles outside the repo's CMake (the
// stamp then honestly reads "unspecified").
#ifndef STRIP_BENCH_BUILD_TYPE
#define STRIP_BENCH_BUILD_TYPE "unspecified"
#endif
#ifndef STRIP_BENCH_LTO
#define STRIP_BENCH_LTO "unknown"
#endif

// BENCHMARK_MAIN(), plus the build-configuration context stamp.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("strip_build_type", STRIP_BENCH_BUILD_TYPE);
  benchmark::AddCustomContext("strip_lto", STRIP_BENCH_LTO);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
