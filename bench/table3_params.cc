// Table 3: scheduler baseline settings for the system.
//
// Prints the same rows as the paper's Table 3, read from the library's
// default Config.

#include <cstdio>

#include "core/config.h"

int main() {
  const strip::core::Config c;
  std::printf("== Table 3: baseline settings for system ==\n\n");
  std::printf("%-58s %-12s %s\n", "Description", "Parameter", "Value");
  std::printf("%-58s %-12s %g\n", "# of instructions executed per second",
              "ips", c.ips);
  std::printf("%-58s %-12s %g\n",
              "# of instructions required to find a data object", "x_lookup",
              c.x_lookup);
  std::printf("%-58s %-12s %g\n",
              "# of instructions required to update a data object",
              "x_update", c.x_update);
  std::printf("%-58s %-12s %g\n",
              "# of instructions required for context switch", "x_switch",
              c.x_switch);
  std::printf("%-58s %-12s %g\n",
              "# of instructions to add an update to a queue", "x_queue",
              c.x_queue);
  std::printf("%-58s %-12s %g\n",
              "# of instructions to read one queued update", "x_scan",
              c.x_scan);
  std::printf("%-58s %-12s %d\n", "maximum size of OS queue (updates)",
              "OS_max", c.os_max);
  std::printf("%-58s %-12s %d\n", "maximum size of update queue (updates)",
              "UQ_max", c.uq_max);
  std::printf("%-58s %-12s %s\n",
              "only schedule transactions that can meet deadline",
              "feasible_dl", c.feasible_deadline ? "TRUE" : "FALSE");
  std::printf("%-58s %-12s %s\n", "can transactions preempt each other",
              "preemption", c.txn_preemption ? "TRUE" : "FALSE");
  std::printf("%-58s %-12s %s\n",
              "should the next update applied be the most recent",
              "queue policy",
              strip::core::QueueDisciplineName(c.queue_discipline));
  return 0;
}
