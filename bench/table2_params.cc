// Table 2: scheduler baseline settings for transactions.
//
// Prints the same rows as the paper's Table 2, read from the library's
// default Config.

#include <cstdio>

#include "core/config.h"

int main() {
  const strip::core::Config c;
  std::printf("== Table 2: baseline settings for transactions ==\n\n");
  std::printf("%-52s %-10s %s\n", "Description", "Parameter", "Base value");
  std::printf("%-52s %-10s %g\n", "transaction arrival rate", "lambda_t",
              c.lambda_t);
  std::printf("%-52s %-10s %g\n",
              "probability of transaction being low value", "p_tl", c.p_tl);
  std::printf("%-52s %-10s %g sec\n", "minimum slack of transactions",
              "S_min", c.s_min);
  std::printf("%-52s %-10s %g sec\n", "maximum slack of transactions",
              "S_max", c.s_max);
  std::printf("%-52s %-10s %g\n", "mean value of low value transaction",
              "v_l", c.v_low_mean);
  std::printf("%-52s %-10s %g\n", "mean value of high value transaction",
              "v_h", c.v_high_mean);
  std::printf("%-52s %-10s %g\n", "S.D. of value of low value transaction",
              "sd(v_l)", c.v_low_sd);
  std::printf("%-52s %-10s %g\n", "S.D. of value of high value transaction",
              "sd(v_h)", c.v_high_sd);
  std::printf("%-52s %-10s %g\n",
              "mean # of view objects read by transactions", "r", c.reads_mean);
  std::printf("%-52s %-10s %g\n",
              "S.D. of # of view objects read by transactions", "sd(r)",
              c.reads_sd);
  std::printf("%-52s %-10s %g sec\n",
              "maximum age of data used by transactions", "alpha", c.alpha);
  std::printf("%-52s %-10s %g sec\n", "mean computation time of transactions",
              "x_bar", c.comp_mean);
  std::printf("%-52s %-10s %g\n", "S.D. of computation time of transactions",
              "sd(x)", c.comp_sd);
  std::printf("%-52s %-10s %g\n",
              "fraction of computation done before view reads", "p_view",
              c.p_view);
  return 0;
}
