// Ablation A1: hash-indexed update queue for On Demand.
//
// Sections 4.2/4.4 suggest an index on the update queue so that an On
// Demand search costs a constant probe instead of x_scan · queue
// length. This ablation sweeps x_scan with and without the index and
// compares OD's AV and p_success; the other policies never search, so
// only OD appears.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Ablation A1: indexed vs scanned update queue (OD, MA) ==\n\n");

  exp::SweepSpec plain = bench::BaseSpec(args);
  plain.policies = {core::PolicyKind::kOnDemand};
  plain.x_name = "x_scan";
  plain.x_values = {0, 2000, 4000, 6000, 8000, 10000};
  plain.apply_x = [](core::Config& c, double x) {
    c.x_scan = x;
    c.indexed_update_queue = false;
  };

  exp::SweepSpec indexed = plain;
  indexed.apply_x = [](core::Config& c, double x) {
    c.x_scan = x;
    c.indexed_update_queue = true;
  };

  const exp::SweepResult plain_result = exp::RunSweep(plain);
  const exp::SweepResult indexed_result = exp::RunSweep(indexed);

  bench::Emit(args, plain, plain_result, "AV, linear scan",
              bench::MetricAv);
  bench::Emit(args, indexed, indexed_result, "AV, hash index",
              bench::MetricAv);
  bench::Emit(args, plain, plain_result, "p_success, linear scan",
              bench::MetricPsuccess);
  bench::Emit(args, indexed, indexed_result, "p_success, hash index",
              bench::MetricPsuccess);
  return 0;
}
