// Table 1: scheduler baseline settings for data and updates.
//
// Prints the same rows as the paper's Table 1, read from the library's
// default Config — verifying that the shipped defaults are the paper's
// baseline.

#include <cstdio>

#include "core/config.h"

int main() {
  const strip::core::Config c;
  std::printf("== Table 1: baseline settings for data and updates ==\n\n");
  std::printf("%-42s %-10s %s\n", "Description", "Parameter", "Base value");
  std::printf("%-42s %-10s %g\n", "update arrival rate", "lambda_u",
              c.lambda_u);
  std::printf("%-42s %-10s %g\n",
              "probability of update being on low priority data", "p_ul",
              c.p_ul);
  std::printf("%-42s %-10s %g sec\n", "mean age of updates on arrival",
              "a_update", c.a_update);
  std::printf("%-42s %-10s %d\n", "# of low priority view objects", "N_l",
              c.n_low);
  std::printf("%-42s %-10s %d\n", "# of high priority view objects", "N_h",
              c.n_high);
  return 0;
}
