// Ablation A5: the feasible-deadline policy.
//
// Table 3 fixes `feasible_dl = TRUE`: transactions that can no longer
// meet their deadline are aborted early instead of wasting CPU. This
// ablation disables the screen and compares AV and p_MD: without it,
// overload wastes cycles on doomed transactions and AV collapses.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace strip;
  const exp::BenchArgs args = exp::BenchArgs::Parse(argc, argv);
  std::printf(
      "== Ablation A5: feasible-deadline screening on/off (MA) ==\n\n");

  exp::SweepSpec on = bench::BaseSpec(args);
  on.x_name = "lambda_t";
  on.x_values = {5, 10, 15, 20, 25};
  on.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.feasible_deadline = true;
  };

  exp::SweepSpec off = on;
  off.apply_x = [](core::Config& c, double x) {
    c.lambda_t = x;
    c.feasible_deadline = false;
  };

  const exp::SweepResult on_result = exp::RunSweep(on);
  const exp::SweepResult off_result = exp::RunSweep(off);

  bench::Emit(args, on, on_result, "AV, feasible_dl=TRUE", bench::MetricAv);
  bench::Emit(args, off, off_result, "AV, feasible_dl=FALSE",
              bench::MetricAv);
  bench::Emit(args, on, on_result, "p_MD, feasible_dl=TRUE",
              bench::MetricPmd);
  bench::Emit(args, off, off_result, "p_MD, feasible_dl=FALSE",
              bench::MetricPmd);
  return 0;
}
