#!/usr/bin/env bash
# Parallel-sweep harness: the tool-level contract of strip_sweep's
# worker pool. Three checks, all against the built binaries:
#
#   1. Byte-identity — the same grid under --jobs=1 and --jobs=8
#      produces byte-identical cell files, per-cell telemetry, and
#      stdout summary (job count only changes which thread runs a
#      cell, never its bytes).
#   2. Kill + resume — a sweep SIGKILLed mid-grid and resumed with
#      --resume --jobs=2 converges to the same bytes as an
#      uninterrupted run (atomic cell writes leave no torn files;
#      finished cells are not re-run).
#   3. Per-worker cell timeout — with --jobs>1 and a tiny
#      --cell-timeout, every cell is truncated and marked
#      "timed_out": true (each worker arms the budget when it picks
#      the cell up, not when the sweep starts).
#
#   scripts/check_parallel_sweep.sh [BUILD_DIR]    # default: build
#
# Exits non-zero on the first violation. CI runs this on every push.

set -eu
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SWEEP="$BUILD/tools/strip_sweep"
[ -x "$SWEEP" ] || { echo "missing $SWEEP (build first)"; exit 2; }

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "check_parallel_sweep: FAILED — $1"; exit 1; }

GRID_ARGS=(--x=lambda_t --values=10,25,40 --policies=UF,TF,OD --reps=2
           --seed=3 --sim_seconds=20 --progress=off)

echo "check_parallel_sweep: byte-identity across --jobs=1/8"
for JOBS in 1 8; do
  mkdir -p "$WORK/grid_j$JOBS" "$WORK/tele_j$JOBS"
  "$SWEEP" "${GRID_ARGS[@]}" --jobs=$JOBS \
    --out-dir="$WORK/grid_j$JOBS" --telemetry-dir="$WORK/tele_j$JOBS" \
    > "$WORK/sweep_j$JOBS.txt"
done
diff -r "$WORK/grid_j1" "$WORK/grid_j8" >/dev/null \
  || fail "cell files differ between --jobs=1 and --jobs=8"
diff -r "$WORK/tele_j1" "$WORK/tele_j8" >/dev/null \
  || fail "telemetry differs between --jobs=1 and --jobs=8"
cmp "$WORK/sweep_j1.txt" "$WORK/sweep_j8.txt" \
  || fail "summary differs between --jobs=1 and --jobs=8"

echo "check_parallel_sweep: SIGKILL mid-grid, then --resume --jobs=2"
mkdir -p "$WORK/grid_resume"
# Long enough cells that the kill lands mid-grid; short enough to
# finish promptly on resume.
RESUME_ARGS=(--x=lambda_t --values=10,25,40 --policies=UF,TF,OD --reps=2
             --seed=3 --sim_seconds=60 --progress=off)
"$SWEEP" "${RESUME_ARGS[@]}" --jobs=2 --out-dir="$WORK/grid_resume" \
  > /dev/null 2>&1 &
PID=$!
# Wait for at least one finished cell, then kill hard.
for _ in $(seq 1 200); do
  if ls "$WORK/grid_resume"/cell_*.json >/dev/null 2>&1; then break; fi
  sleep 0.05
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
ls "$WORK/grid_resume"/*.tmp >/dev/null 2>&1 \
  && fail "torn .tmp file survived the kill"
# Fingerprint the surviving cells: --resume must not re-write them.
stat -c '%n %y' "$WORK/grid_resume"/cell_*.json \
  > "$WORK/mtimes_before.txt" 2>/dev/null || : > "$WORK/mtimes_before.txt"
"$SWEEP" "${RESUME_ARGS[@]}" --jobs=2 --out-dir="$WORK/grid_resume" \
  --resume > "$WORK/resume.txt"
while read -r line; do
  f="${line%% *}"
  grep -qF "$line" <(stat -c '%n %y' "$f") \
    || fail "resume re-wrote already-finished cell $f"
done < "$WORK/mtimes_before.txt"
mkdir -p "$WORK/grid_clean"
"$SWEEP" "${RESUME_ARGS[@]}" --jobs=2 --out-dir="$WORK/grid_clean" \
  > /dev/null
diff -r "$WORK/grid_resume" "$WORK/grid_clean" >/dev/null \
  || fail "resumed grid differs from an uninterrupted run"

echo "check_parallel_sweep: --cell-timeout applies per worker"
mkdir -p "$WORK/grid_timeout"
"$SWEEP" --x=lambda_t --values=10,25 --policies=UF,OD --reps=1 \
  --seed=3 --sim_seconds=100000 --jobs=4 --cell-timeout=0.2 \
  --progress=off --out-dir="$WORK/grid_timeout" > /dev/null
N_CELLS=$(ls "$WORK/grid_timeout"/cell_*.json | wc -l)
[ "$N_CELLS" -eq 4 ] || fail "expected 4 cells, found $N_CELLS"
N_TIMED=$(grep -l '"timed_out": true' "$WORK/grid_timeout"/cell_*.json | wc -l)
[ "$N_TIMED" -eq 4 ] \
  || fail "only $N_TIMED of 4 cells were marked timed_out"

echo "check_parallel_sweep: OK"
