#!/usr/bin/env bash
# Determinism lint — thin wrapper over tools/strip_lint.
#
# The analysis used to live here as four grep patterns; it is now a
# real token-level analyzer (src/check/lint/) that strips comments and
# string literals before matching and adds AST-lite rules grep could
# not express (unordered iteration, RandomStream copies, float ==).
# This wrapper keeps the historical entry point working: it finds (or
# builds) the strip_lint binary and runs the same full-tree scan CI
# runs, against scripts/determinism_allowlist.txt.
#
#   scripts/lint_determinism.sh [extra strip_lint flags...]
#
# Environment:
#   STRIP_LINT  path to a prebuilt strip_lint binary (skips the build)

set -u
cd "$(dirname "$0")/.."

LINT="${STRIP_LINT:-}"
if [ -z "$LINT" ]; then
  for candidate in build/tools/strip_lint build-lint/tools/strip_lint; do
    if [ -x "$candidate" ]; then
      LINT="$candidate"
      break
    fi
  done
fi
if [ -z "$LINT" ]; then
  echo "lint_determinism: building strip_lint (first run)..." >&2
  cmake -B build-lint -S . -DCMAKE_BUILD_TYPE=Release > /dev/null || exit 2
  cmake --build build-lint --target strip_lint_cli -j > /dev/null || exit 2
  LINT=build-lint/tools/strip_lint
fi

exec "$LINT" --root=. --strict "$@"
