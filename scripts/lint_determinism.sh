#!/usr/bin/env bash
# Determinism lint: fails if banned nondeterminism sources appear in
# simulation code outside the allowlist.
#
# The repo's core guarantee is that a (config, seed) pair reproduces a
# run bit-for-bit — telemetry, traces, and sweep grids byte-compare in
# CI. The classic ways that guarantee rots:
#
#   1. libc rand()/random()/drand48() — unseeded global state
#   2. std::random_device — hardware entropy
#   3. wall-clock time (time(), chrono::system_clock::now(), ...)
#      feeding simulation state or output documents
#   4. iterating an unordered_map/unordered_set to *write* output or
#      mutate model state — iteration order is
#      implementation-defined
#
# This script greps for the first three patterns and for unordered
# iteration (a heuristic: range-for over a container whose declaration
# names unordered_*), then strips matches covered by the allowlist
# below. CI runs it on every push.
#
# Allowlist format (scripts/determinism_allowlist.txt):
#   <path-substring>:<pattern-tag>   # comment
# Tags: rand, random_device, wallclock, unordered-iter

set -u
cd "$(dirname "$0")/.."

ALLOWLIST=scripts/determinism_allowlist.txt
SCAN_DIRS="src tools bench examples"
STATUS=0

# Collect "file:line:tag:text" candidate violations.
candidates() {
  # 1/2: libc RNG and std::random_device. Word boundaries keep
  # e.g. "grand(" out; libc random() is zero-arg, so "random()"
  # (not "RandomStream random(7)" declarations) is the call shape.
  grep -RnE '\b(rand|srand|drand48|lrand48)\(|\brandom\(\)' $SCAN_DIRS \
    --include='*.cc' --include='*.h' --include='*.cpp' \
    | sed 's/^\([^:]*:[0-9]*\):/\1:rand:/'
  grep -RnE 'std::random_device' $SCAN_DIRS \
    --include='*.cc' --include='*.h' --include='*.cpp' \
    | sed 's/^\([^:]*:[0-9]*\):/\1:random_device:/'
  # 3: wall-clock reads.
  grep -RnE '(system_clock|steady_clock|high_resolution_clock)::now|[^a-zA-Z_]time\(NULL\)|[^a-zA-Z_]time\(nullptr\)|gettimeofday|clock_gettime' \
    $SCAN_DIRS --include='*.cc' --include='*.h' --include='*.cpp' \
    | sed 's/^\([^:]*:[0-9]*\):/\1:wallclock:/'
  # 4: range-for directly over an unordered container member/variable
  # (heuristic: the loop names something with "unordered" in the same
  # file declaration is too deep for grep; instead flag loops over
  # identifiers that files themselves tag: "for (... : *unordered*" or
  # iteration over a map declared unordered on the same line).
  grep -RnE 'for *\(.*:.*unordered' $SCAN_DIRS \
    --include='*.cc' --include='*.h' --include='*.cpp' \
    | sed 's/^\([^:]*:[0-9]*\):/\1:unordered-iter:/'
}

allowed() {
  local file="$1" tag="$2"
  [ -f "$ALLOWLIST" ] || return 1
  while IFS= read -r line; do
    line="${line%%#*}"
    line="$(echo "$line" | tr -d '[:space:]')"
    [ -z "$line" ] && continue
    local path="${line%%:*}" t="${line##*:}"
    if [ "$t" = "$tag" ] && [[ "$file" == *"$path"* ]]; then
      return 0
    fi
  done < "$ALLOWLIST"
  return 1
}

FOUND=0
while IFS= read -r hit; do
  [ -z "$hit" ] && continue
  file="${hit%%:*}"
  rest="${hit#*:}"         # line:tag:text
  lineno="${rest%%:*}"
  rest="${rest#*:}"
  tag="${rest%%:*}"
  if allowed "$file" "$tag"; then
    continue
  fi
  echo "determinism-lint: $file:$lineno: banned source [$tag]: ${rest#*:}"
  FOUND=1
done < <(candidates)

if [ "$FOUND" -ne 0 ]; then
  echo "determinism-lint: FAILED (add a justified entry to $ALLOWLIST to allow)"
  exit 1
fi
echo "determinism-lint: OK"
exit 0
