#!/usr/bin/env bash
# Partition-tolerance gate for the interconnect fault domain.
#
#   scripts/check_partition_tolerance.sh [BUILD_DIR]   # default: build
#
# Two checks:
#
#   1. Audited partition smoke matrix — {2,4} shards x {stale,abort}
#      fallback x {UF,OD} policy, each run carrying a mid-run
#      partition plus steady link latency/jitter/loss, with --audit
#      attaching the per-shard invariant auditors and the cross-shard
#      census. Every cell must exit 0: the exactly-once remote-read
#      census and the partition fault-bracketing hold under every
#      combination, or this script fails.
#
#   2. Zero-latency byte-identity guard — a cluster run with NO
#      interconnect flags must byte-match the committed golden
#      summaries (tests/integration/testdata/cluster_baseline_*.txt),
#      pinned when the interconnect landed. This is the "inert config
#      is free" contract as checked-in bytes: adding the fault domain
#      must not move a single byte of the no-fault cluster output.
#      Regenerate intentionally changed goldens with
#      STRIP_UPDATE_GOLDEN=1.

set -eu
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SIM="$BUILD/tools/strip_sim"
[ -x "$SIM" ] || { echo "missing $SIM (build first)"; exit 2; }

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "check_partition_tolerance: FAILED — $1"; exit 1; }

echo "check_partition_tolerance: audited partition smoke matrix"
for SHARDS in 2 4; do
  # One side of the cut is shard 0; the rest stay connected to each
  # other. 10s partition in the middle of a 60s run.
  CLUSTER_FAULTS="partition@20+10:shards=0;link-loss@40+5:p=0.2"
  for FB in stale abort; do
    for POLICY in UF OD; do
      "$SIM" --policy="$POLICY" --sim_seconds=60 --seed=11 \
        --shards="$SHARDS" \
        --link_latency_us=200 --link_jitter_us=100 --link_loss_p=0.01 \
        --remote_timeout_s=0.05 --remote_retry_max=2 \
        --remote_fallback="$FB" \
        --cluster_faults="$CLUSTER_FAULTS" --audit \
        > "$WORK/smoke.txt" \
        || fail "audit failed: shards=$SHARDS fallback=$FB policy=$POLICY"
    done
  done
done

echo "check_partition_tolerance: zero-latency byte-identity guard"
GOLDEN_DIR="tests/integration/testdata"
"$SIM" --shards=2 --policy=UF --sim_seconds=30 --seed=7 \
  > "$WORK/base_2_UF.txt"
"$SIM" --shards=4 --policy=OD --sim_seconds=30 --seed=7 \
  > "$WORK/base_4_OD.txt"
if [ "${STRIP_UPDATE_GOLDEN:-0}" = "1" ]; then
  cp "$WORK/base_2_UF.txt" "$GOLDEN_DIR/cluster_baseline_2_UF.txt"
  cp "$WORK/base_4_OD.txt" "$GOLDEN_DIR/cluster_baseline_4_OD.txt"
  echo "check_partition_tolerance: goldens regenerated"
else
  cmp "$WORK/base_2_UF.txt" "$GOLDEN_DIR/cluster_baseline_2_UF.txt" \
    || fail "2-shard UF baseline drifted (inert interconnect must be \
byte-free; STRIP_UPDATE_GOLDEN=1 to regen intentionally)"
  cmp "$WORK/base_4_OD.txt" "$GOLDEN_DIR/cluster_baseline_4_OD.txt" \
    || fail "4-shard OD baseline drifted (inert interconnect must be \
byte-free; STRIP_UPDATE_GOLDEN=1 to regen intentionally)"
fi

echo "check_partition_tolerance: OK"
