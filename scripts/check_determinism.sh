#!/usr/bin/env bash
# Double-run determinism harness: the same (config, seed) twice must
# byte-compare equal across every output surface — summary text,
# telemetry JSON, Chrome trace, and a sweep grid (cell files +
# per-cell telemetry). Run after building:
#
#   scripts/check_determinism.sh [BUILD_DIR]    # default: build
#
# Exits non-zero on the first byte difference. CI calls this on every
# push; it is also the recommended local gate before touching the
# simulation core, RNG plumbing, or any output writer.

set -eu
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SIM="$BUILD/tools/strip_sim"
SWEEP="$BUILD/tools/strip_sweep"
REPORT="$BUILD/tools/strip_report"
[ -x "$SIM" ] || { echo "missing $SIM (build first)"; exit 2; }
[ -x "$SWEEP" ] || { echo "missing $SWEEP (build first)"; exit 2; }
[ -x "$REPORT" ] || { echo "missing $REPORT (build first)"; exit 2; }

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

FAULTS="outage@10+5:speedup=4;burst@30+10:factor=3;loss@20+5:p=0.2"
FAULTS="$FAULTS;dup@25+5:p=0.2;reorder@40+5:p=0.3;cpu@45+5:factor=0.5"

fail() { echo "check_determinism: FAILED — $1"; exit 1; }

echo "check_determinism: single runs (per policy, fault-heavy, audited)"
for POLICY in UF TF SU OD FCF; do
  for PASS in a b; do
    "$SIM" --policy="$POLICY" --sim_seconds=60 --seed=11 \
      --faults="$FAULTS" --shed_by_importance=true \
      --overload_governor=true --uq_max=64 --audit \
      --telemetry="$WORK/t_${POLICY}_$PASS.json" \
      --chrome-trace="$WORK/c_${POLICY}_$PASS.json" \
      > "$WORK/out_${POLICY}_$PASS.txt"
  done
  cmp "$WORK/t_${POLICY}_a.json" "$WORK/t_${POLICY}_b.json" \
    || fail "telemetry differs for $POLICY"
  cmp "$WORK/c_${POLICY}_a.json" "$WORK/c_${POLICY}_b.json" \
    || fail "chrome trace differs for $POLICY"
  cmp "$WORK/out_${POLICY}_a.txt" "$WORK/out_${POLICY}_b.txt" \
    || fail "summary differs for $POLICY"
done

echo "check_determinism: sharded runs (4 shards, fault-heavy, audited)"
SHARD_FAULTS="outage@10+5:speedup=4|cpu@20+5:factor=0.5||burst@30+10:factor=3"
for PASS in a b; do
  "$SIM" --policy=OD --sim_seconds=60 --seed=11 --shards=4 \
    --shard_faults="$SHARD_FAULTS" --audit \
    --telemetry="$WORK/st_$PASS.json" \
    --chrome-trace="$WORK/sc_$PASS.json" \
    > "$WORK/sout_$PASS.txt"
done
for S in 0 1 2 3; do
  cmp "$WORK/st_a.json.shard$S" "$WORK/st_b.json.shard$S" \
    || fail "sharded telemetry differs for shard $S"
done
cmp "$WORK/sc_a.json" "$WORK/sc_b.json" \
  || fail "sharded chrome trace differs"
cmp "$WORK/sout_a.txt" "$WORK/sout_b.txt" \
  || fail "sharded summary differs"

echo "check_determinism: cluster runs under an imperfect interconnect"
# The interconnect fault domain adds RNG streams (link jitter/loss) and
# event paths (delayed delivery, timeouts, retries, degraded reads);
# all of it must replay byte-identically, including during a partition.
CLUSTER_FAULTS="partition@15+10:shards=0/1;link-loss@30+10:p=0.3"
for FB in stale abort; do
  for PASS in a b; do
    "$SIM" --policy=OD --sim_seconds=60 --seed=11 --shards=4 \
      --link_latency_us=200 --link_jitter_us=100 --link_loss_p=0.02 \
      --remote_timeout_s=0.05 --remote_fallback="$FB" \
      --cluster_faults="$CLUSTER_FAULTS" --audit \
      --telemetry="$WORK/it_${FB}_$PASS.json" \
      --chrome-trace="$WORK/ic_${FB}_$PASS.json" \
      > "$WORK/iout_${FB}_$PASS.txt"
  done
  for S in 0 1 2 3; do
    cmp "$WORK/it_${FB}_a.json.shard$S" "$WORK/it_${FB}_b.json.shard$S" \
      || fail "interconnect telemetry differs for shard $S ($FB)"
  done
  cmp "$WORK/ic_${FB}_a.json" "$WORK/ic_${FB}_b.json" \
    || fail "interconnect chrome trace differs ($FB)"
  cmp "$WORK/iout_${FB}_a.txt" "$WORK/iout_${FB}_b.txt" \
    || fail "interconnect summary differs ($FB)"
done

echo "check_determinism: schema-v4 telemetry goldens"
# Pinned bytes, not just self-consistency: a seeded run's telemetry
# must match the committed golden exactly. Regenerate intentionally
# changed goldens with STRIP_UPDATE_GOLDEN=1.
GOLDEN_DIR="tests/obs/testdata"
"$SIM" --policy=OD --sim_seconds=30 --seed=7 --quiet \
  --telemetry="$WORK/gold.json" > /dev/null
"$SIM" --policy=OD --sim_seconds=30 --seed=7 --shards=2 --quiet \
  --telemetry="$WORK/gold2.json" > /dev/null
if [ "${STRIP_UPDATE_GOLDEN:-0}" = "1" ]; then
  cp "$WORK/gold.json" "$GOLDEN_DIR/determinism_telemetry_v4.json"
  cp "$WORK/gold2.json.shard0" \
    "$GOLDEN_DIR/determinism_telemetry_v4.shard0.json"
  cp "$WORK/gold2.json.shard1" \
    "$GOLDEN_DIR/determinism_telemetry_v4.shard1.json"
  echo "check_determinism: goldens regenerated"
else
  cmp "$WORK/gold.json" "$GOLDEN_DIR/determinism_telemetry_v4.json" \
    || fail "telemetry v4 golden drifted (STRIP_UPDATE_GOLDEN=1 to regen)"
  for S in 0 1; do
    cmp "$WORK/gold2.json.shard$S" \
      "$GOLDEN_DIR/determinism_telemetry_v4.shard$S.json" \
      || fail "sharded telemetry v4 golden drifted for shard $S"
  done
fi

echo "check_determinism: sweep grids (threaded vs threaded, audited)"
for PASS in a b; do
  mkdir -p "$WORK/grid_$PASS" "$WORK/tele_$PASS"
  "$SWEEP" --x=lambda_t --values=10,40 --policies=UF,OD --reps=2 \
    --seed=3 --sim_seconds=30 --audit \
    --out-dir="$WORK/grid_$PASS" --telemetry-dir="$WORK/tele_$PASS" \
    > "$WORK/sweep_$PASS.txt"
done
diff -r "$WORK/grid_a" "$WORK/grid_b" >/dev/null \
  || fail "sweep cell files differ"
diff -r "$WORK/tele_a" "$WORK/tele_b" >/dev/null \
  || fail "sweep telemetry differs"
cmp "$WORK/sweep_a.txt" "$WORK/sweep_b.txt" \
  || fail "sweep summary differs"

echo "check_determinism: report surfaces (diff gate + double-run bytes)"
# The structural diff of a double-run pair must be zero rows / exit 0 —
# this is the report-level statement of the byte identity above.
"$REPORT" diff "$WORK/t_OD_a.json" "$WORK/t_OD_b.json" >/dev/null \
  || fail "strip_report diff found deltas in a double-run pair"
"$REPORT" diff "$WORK/grid_a" "$WORK/grid_b" >/dev/null \
  || fail "strip_report diff found deltas across identical sweep grids"
# And the reports themselves are deterministic: rendering the same
# inputs twice must byte-compare equal on every output format.
for PASS in a b; do
  "$REPORT" diff "$WORK/t_UF_a.json" "$WORK/t_OD_a.json" \
    --md="$WORK/rd_$PASS.md" --json="$WORK/rd_$PASS.json" \
    > /dev/null 2>&1 || true
  "$REPORT" summarize "$WORK/grid_a" --csv="$WORK/rs_$PASS.csv" \
    > "$WORK/rs_$PASS.md"
done
cmp "$WORK/rd_a.md" "$WORK/rd_b.md" || fail "diff markdown differs"
cmp "$WORK/rd_a.json" "$WORK/rd_b.json" || fail "diff JSON differs"
cmp "$WORK/rs_a.md" "$WORK/rs_b.md" || fail "summarize output differs"
cmp "$WORK/rs_a.csv" "$WORK/rs_b.csv" || fail "summarize CSV differs"

echo "check_determinism: OK (all surfaces byte-identical)"
