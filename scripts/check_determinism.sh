#!/usr/bin/env bash
# Double-run determinism harness: the same (config, seed) twice must
# byte-compare equal across every output surface — summary text,
# telemetry JSON, Chrome trace, and a sweep grid (cell files +
# per-cell telemetry). Run after building:
#
#   scripts/check_determinism.sh [BUILD_DIR]    # default: build
#
# Exits non-zero on the first byte difference. CI calls this on every
# push; it is also the recommended local gate before touching the
# simulation core, RNG plumbing, or any output writer.

set -eu
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SIM="$BUILD/tools/strip_sim"
SWEEP="$BUILD/tools/strip_sweep"
[ -x "$SIM" ] || { echo "missing $SIM (build first)"; exit 2; }
[ -x "$SWEEP" ] || { echo "missing $SWEEP (build first)"; exit 2; }

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

FAULTS="outage@10+5:speedup=4;burst@30+10:factor=3;loss@20+5:p=0.2"
FAULTS="$FAULTS;dup@25+5:p=0.2;reorder@40+5:p=0.3;cpu@45+5:factor=0.5"

fail() { echo "check_determinism: FAILED — $1"; exit 1; }

echo "check_determinism: single runs (per policy, fault-heavy, audited)"
for POLICY in UF TF SU OD FCF; do
  for PASS in a b; do
    "$SIM" --policy="$POLICY" --sim_seconds=60 --seed=11 \
      --faults="$FAULTS" --shed_by_importance=true \
      --overload_governor=true --uq_max=64 --audit \
      --telemetry="$WORK/t_${POLICY}_$PASS.json" \
      --chrome-trace="$WORK/c_${POLICY}_$PASS.json" \
      > "$WORK/out_${POLICY}_$PASS.txt"
  done
  cmp "$WORK/t_${POLICY}_a.json" "$WORK/t_${POLICY}_b.json" \
    || fail "telemetry differs for $POLICY"
  cmp "$WORK/c_${POLICY}_a.json" "$WORK/c_${POLICY}_b.json" \
    || fail "chrome trace differs for $POLICY"
  cmp "$WORK/out_${POLICY}_a.txt" "$WORK/out_${POLICY}_b.txt" \
    || fail "summary differs for $POLICY"
done

echo "check_determinism: sweep grids (threaded vs threaded, audited)"
for PASS in a b; do
  mkdir -p "$WORK/grid_$PASS" "$WORK/tele_$PASS"
  "$SWEEP" --x=lambda_t --values=10,40 --policies=UF,OD --reps=2 \
    --seed=3 --sim_seconds=30 --audit \
    --out-dir="$WORK/grid_$PASS" --telemetry-dir="$WORK/tele_$PASS" \
    > "$WORK/sweep_$PASS.txt"
done
diff -r "$WORK/grid_a" "$WORK/grid_b" >/dev/null \
  || fail "sweep cell files differ"
diff -r "$WORK/tele_a" "$WORK/tele_b" >/dev/null \
  || fail "sweep telemetry differs"
cmp "$WORK/sweep_a.txt" "$WORK/sweep_b.txt" \
  || fail "sweep summary differs"

echo "check_determinism: OK (all surfaces byte-identical)"
