#!/usr/bin/env bash
# Refuses debug-build benchmark baselines.
#
# Checked-in BENCH_*.json files are the repo's perf reference; numbers
# captured from an unoptimized build are worse than none (they once
# hid a 2x regression story — see EXPERIMENTS.md "Performance"). This
# guard fails when any BENCH_*.json touched by the change — or, with
# no base ref, every checked-in one — carries a context block whose
# build-type marker is not "release".
#
# The marker checked is "strip_build_type", which bench/perf_core
# embeds from its own compile flags (NDEBUG + CMAKE_BUILD_TYPE). The
# stock google-benchmark "library_build_type" key reports how the
# *benchmark library package* was compiled (Debian ships it without
# NDEBUG, so it always says "debug") and is only consulted for legacy
# files that predate the strip_build_type marker.
#
# Usage:
#   scripts/check_bench_build_type.sh [BASE_REF]
#
# With BASE_REF (e.g. origin/main), only BENCH_*.json files that
# differ from BASE_REF are checked — committed baselines are
# grandfathered until touched. Without it, every tracked BENCH_*.json
# must pass.

set -euo pipefail
cd "$(dirname "$0")/.."

base_ref="${1:-}"

if [ -n "$base_ref" ]; then
  mapfile -t files < <(git diff --name-only --diff-filter=d "$base_ref"...HEAD -- 'BENCH_*.json' '**/BENCH_*.json')
else
  mapfile -t files < <(git ls-files 'BENCH_*.json' '**/BENCH_*.json')
fi

if [ "${#files[@]}" -eq 0 ]; then
  echo "check_bench_build_type: no BENCH_*.json files to check"
  exit 0
fi

fail=0
for f in "${files[@]}"; do
  [ -f "$f" ] || continue
  build_type=$(python3 - "$f" <<'EOF'
import json, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
ctx = doc.get("context", {})
# Our own marker, compiled into perf_core; fall back to the library's
# for files that predate it.
print(ctx.get("strip_build_type", ctx.get("library_build_type", "missing")))
EOF
  )
  if [ "$build_type" != "release" ]; then
    echo "check_bench_build_type: $f: build type is \"$build_type\"," \
         "not \"release\" — re-capture it from the release preset:" \
         "cmake --preset release && cmake --build --preset release &&" \
         "./build-release/bench/perf_core --benchmark_out=$f" \
         "--benchmark_out_format=json"
    fail=1
  else
    echo "check_bench_build_type: $f: ok (release)"
  fi
done
exit "$fail"
