#include "obs/sampler.h"

#include <algorithm>

#include "base/check.h"
#include "sim/simulator.h"

namespace strip::obs {

PeriodicSampler::PeriodicSampler(core::System* system, Options options)
    : system_(system), options_(options) {
  STRIP_CHECK(system != nullptr);
  STRIP_CHECK_MSG(options.interval > 0, "sample interval must be positive");
  ScheduleNextProbe();
}

PeriodicSampler::~PeriodicSampler() {
  system_->simulator()->Cancel(next_probe_);
}

void PeriodicSampler::ScheduleNextProbe() {
  next_probe_ = system_->simulator()->ScheduleAfter(options_.interval,
                                                    [this] { Probe(); });
}

void PeriodicSampler::Probe() {
  Sample sample;
  const sim::Time now = system_->simulator()->now();
  sample.time = now;
  sample.uq_depth = system_->update_queue().size();
  sample.os_depth = system_->os_queue().size();
  sample.ready_queue = system_->ready_queue().size();
  sample.live_txns = system_->live_txn_count();
  sample.f_stale_low =
      system_->staleness().FractionStaleNow(db::ObjectClass::kLowImportance);
  sample.f_stale_high =
      system_->staleness().FractionStaleNow(db::ObjectClass::kHighImportance);
  const sim::Duration observed = now - system_->observation_start();
  if (observed > 0) {
    sample.cpu_share_txn = system_->CpuTxnSecondsNow() / observed;
    sample.cpu_share_updater = system_->CpuUpdateSecondsNow() / observed;
    sample.cpu_share_idle = std::max(
        0.0, 1.0 - sample.cpu_share_txn - sample.cpu_share_updater);
  }
  samples_.push_back(sample);
  if (!stopped_) ScheduleNextProbe();
}

void PeriodicSampler::OnPhase(sim::Time now, Phase phase) {
  switch (phase) {
    case Phase::kWarmupEnd:
      warmup_end_ = now;
      break;
    case Phase::kRunEnd:
      run_end_ = now;
      stopped_ = true;
      system_->simulator()->Cancel(next_probe_);
      // Close the series with a probe at the exact end of the run
      // (unless the periodic grid already landed one there).
      if (samples_.empty() || samples_.back().time < now) Probe();
      break;
  }
}

}  // namespace strip::obs
