#include "obs/report/bench_diff.h"

#include <algorithm>
#include <sstream>

#include "obs/report/format.h"

namespace strip::obs::report {

double BenchDiffOptions::ToleranceFor(const std::string& family) const {
  for (const auto& [prefix, pct] : family_tolerance) {
    if (family.compare(0, prefix.size(), prefix) == 0) return pct;
  }
  return tolerance;
}

BenchDiffReport BenchDiff(const BenchDoc& base, const BenchDoc& next,
                          const BenchDiffOptions& options) {
  BenchDiffReport report;
  report.path_base = base.path;
  report.path_new = next.path;
  report.build_type_base = base.build_type;
  report.build_type_new = next.build_type;

  if (base.build_type != next.build_type) {
    report.notes.push_back("build type mismatch: base '" + base.build_type +
                           "' vs new '" + next.build_type + "'");
    if (!options.allow_build_mismatch) {
      report.build_mismatch = true;
    }
  }
  if (base.build_type == "debug" || next.build_type == "debug") {
    report.notes.push_back(
        "debug-build numbers are not representative; gate on release "
        "binaries (see CONTRIBUTING.md)");
  }

  for (const BenchEntry& entry : base.entries) {
    const BenchEntry* other = next.FindEntry(entry.name);
    if (other == nullptr) {
      report.removed.push_back(entry.name);
      continue;
    }
    BenchDiffRow row;
    row.name = entry.name;
    row.family = entry.family;
    row.base_cpu_ns = entry.cpu_time_ns;
    row.new_cpu_ns = other->cpu_time_ns;
    row.base_real_ns = entry.real_time_ns;
    row.new_real_ns = other->real_time_ns;
    row.tolerance = options.ToleranceFor(entry.family);
    row.cpu_ratio = entry.cpu_time_ns > 0
                        ? other->cpu_time_ns / entry.cpu_time_ns
                        : 1.0;
    row.regressed = row.cpu_ratio > 1.0 + row.tolerance;
    row.improved = row.cpu_ratio < 1.0 - row.tolerance;
    if (row.regressed) ++report.regressions;
    if (row.improved) ++report.improvements;
    report.rows.push_back(std::move(row));
  }
  for (const BenchEntry& entry : next.entries) {
    if (base.FindEntry(entry.name) == nullptr) {
      report.added.push_back(entry.name);
    }
  }
  return report;
}

std::optional<BenchDiffReport> BenchDiffPaths(const std::string& path_base,
                                              const std::string& path_new,
                                              const BenchDiffOptions& options,
                                              std::string* error) {
  const auto base = LoadBenchDoc(path_base, error);
  if (!base) return std::nullopt;
  const auto next = LoadBenchDoc(path_new, error);
  if (!next) return std::nullopt;
  return BenchDiff(*base, *next, options);
}

std::string BenchDiffMarkdown(const BenchDiffReport& report) {
  std::ostringstream out;
  out << "# strip_report bench-diff\n\n"
      << "- base: `" << report.path_base << "` (" << report.build_type_base
      << ")\n"
      << "- new: `" << report.path_new << "` (" << report.build_type_new
      << ")\n"
      << "- regressions: " << report.regressions
      << ", improvements: " << report.improvements << "\n";
  for (const std::string& note : report.notes) {
    out << "- note: " << note << "\n";
  }
  if (!report.rows.empty()) {
    out << "\n| benchmark | base cpu | new cpu | ratio | tol | verdict |\n"
        << "|---|---:|---:|---:|---:|:---:|\n";
    for (const BenchDiffRow& row : report.rows) {
      out << "| " << row.name << " | " << FormatCompact(row.base_cpu_ns)
          << "ns | " << FormatCompact(row.new_cpu_ns) << "ns | "
          << FormatCompact(row.cpu_ratio) << " | "
          << FormatCompact(row.tolerance * 100.0) << "% | "
          << (row.regressed ? "REGRESSED"
                            : (row.improved ? "improved" : "ok"))
          << " |\n";
    }
  }
  if (!report.removed.empty()) {
    out << "\n## Removed (in base, missing from new)\n\n";
    for (const std::string& name : report.removed) {
      out << "- " << name << "\n";
    }
  }
  if (!report.added.empty()) {
    out << "\n## Added (new benchmarks, no baseline)\n\n";
    for (const std::string& name : report.added) {
      out << "- " << name << "\n";
    }
  }
  out << "\nGate: " << (report.Exceeds() ? "FAIL" : "PASS") << "\n";
  return out.str();
}

std::string BenchDiffJson(const BenchDiffReport& report) {
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": \"strip.report.bench-diff/v1\",\n"
      << "  \"base\": \"" << report.path_base << "\",\n"
      << "  \"new\": \"" << report.path_new << "\",\n"
      << "  \"build_type_base\": \"" << report.build_type_base << "\",\n"
      << "  \"build_type_new\": \"" << report.build_type_new << "\",\n"
      << "  \"build_mismatch\": "
      << (report.build_mismatch ? "true" : "false") << ",\n"
      << "  \"regressions\": " << report.regressions << ",\n"
      << "  \"improvements\": " << report.improvements << ",\n"
      << "  \"gate\": \"" << (report.Exceeds() ? "fail" : "pass")
      << "\",\n";
  out << "  \"notes\": [";
  for (std::size_t i = 0; i < report.notes.size(); ++i) {
    out << (i ? ", " : "") << "\"" << report.notes[i] << "\"";
  }
  out << "],\n  \"removed\": [";
  for (std::size_t i = 0; i < report.removed.size(); ++i) {
    out << (i ? ", " : "") << "\"" << report.removed[i] << "\"";
  }
  out << "],\n  \"added\": [";
  for (std::size_t i = 0; i < report.added.size(); ++i) {
    out << (i ? ", " : "") << "\"" << report.added[i] << "\"";
  }
  out << "],\n  \"rows\": [";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const BenchDiffRow& row = report.rows[i];
    out << (i ? ",\n" : "\n") << "    {\"name\": \"" << row.name
        << "\", \"family\": \"" << row.family
        << "\", \"base_cpu_ns\": " << FormatNumber(row.base_cpu_ns)
        << ", \"new_cpu_ns\": " << FormatNumber(row.new_cpu_ns)
        << ", \"base_real_ns\": " << FormatNumber(row.base_real_ns)
        << ", \"new_real_ns\": " << FormatNumber(row.new_real_ns)
        << ", \"cpu_ratio\": " << FormatNumber(row.cpu_ratio)
        << ", \"tolerance\": " << FormatNumber(row.tolerance)
        << ", \"verdict\": \""
        << (row.regressed ? "regressed"
                          : (row.improved ? "improved" : "ok"))
        << "\"}";
  }
  out << (report.rows.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return out.str();
}

std::string BenchHistorySnapshot(const BenchDoc& doc,
                                 const std::string& label) {
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": \"strip.bench-history/v1\",\n"
      << "  \"label\": \"" << label << "\",\n"
      << "  \"build_type\": \"" << doc.build_type << "\",\n"
      << "  \"lto\": \"" << doc.lto << "\",\n"
      << "  \"entries\": [";
  for (std::size_t i = 0; i < doc.entries.size(); ++i) {
    const BenchEntry& entry = doc.entries[i];
    out << (i ? ",\n" : "\n") << "    {\"name\": \"" << entry.name
        << "\", \"family\": \"" << entry.family
        << "\", \"samples\": " << entry.samples
        << ", \"real_time_ns\": " << FormatNumber(entry.real_time_ns)
        << ", \"cpu_time_ns\": " << FormatNumber(entry.cpu_time_ns) << "}";
  }
  out << (doc.entries.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return out.str();
}

}  // namespace strip::obs::report
