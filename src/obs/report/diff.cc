#include "obs/report/diff.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/report/format.h"

namespace strip::obs::report {

namespace {

// One comparison row with the threshold verdict applied.
DiffRow MakeRow(const std::string& name, std::optional<double> a,
                std::optional<double> b, double threshold) {
  DiffRow row;
  row.name = name;
  row.a = a;
  row.b = b;
  if (!a && !b) return row;  // null == null
  if (a && b) {
    row.abs_delta = *b - *a;
    row.changed = row.abs_delta != 0;
    if (*a != 0) {
      row.rel_delta = row.abs_delta / std::fabs(*a);
      row.over_threshold =
          row.changed && std::fabs(*row.rel_delta) > threshold;
    } else {
      // Baseline 0: no relative delta exists, so any movement gates.
      row.over_threshold = row.changed;
    }
    return row;
  }
  // null vs number: a structural change, always over threshold.
  row.abs_delta = (b ? *b : 0) - (a ? *a : 0);
  row.changed = true;
  row.over_threshold = true;
  return row;
}

// The union of both metric lists, A's order first, B-only names after.
std::vector<std::string> UnionNames(const MetricList& a,
                                    const MetricList& b) {
  std::vector<std::string> names;
  for (const auto& [name, value] : a) names.push_back(name);
  for (const auto& [name, value] : b) {
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }
  return names;
}

void AddSection(DiffReport* report, DiffSection section) {
  for (const DiffRow& row : section.rows) {
    if (row.changed) ++report->rows_changed;
    if (row.over_threshold) {
      ++report->rows_over_threshold;
      report->over_threshold_names.push_back(section.title + "." + row.name);
    }
  }
  report->sections.push_back(std::move(section));
}

DiffSection DiffMetricLists(const std::string& title, const MetricList& a,
                            const MetricList& b, double threshold) {
  DiffSection section;
  section.title = title;
  for (const std::string& name : UnionNames(a, b)) {
    const bool in_a =
        std::any_of(a.begin(), a.end(),
                    [&](const MetricRow& row) { return row.first == name; });
    const bool in_b =
        std::any_of(b.begin(), b.end(),
                    [&](const MetricRow& row) { return row.first == name; });
    DiffRow row = MakeRow(name, in_a ? FindMetric(a, name) : std::nullopt,
                          in_b ? FindMetric(b, name) : std::nullopt,
                          threshold);
    if (in_a != in_b) {
      // Present on one side only — structural, always gates.
      row.changed = true;
      row.over_threshold = true;
    }
    section.rows.push_back(std::move(row));
  }
  return section;
}

MetricList HistogramSummaryMetrics(const HistogramData& h) {
  MetricList rows;
  rows.emplace_back("count", static_cast<double>(h.count));
  rows.emplace_back("mean", h.mean);
  rows.emplace_back("min", h.min_sample);
  rows.emplace_back("max", h.max_sample);
  rows.emplace_back("p50", h.p50);
  rows.emplace_back("p90", h.p90);
  rows.emplace_back("p99", h.p99);
  rows.emplace_back("underflow", static_cast<double>(h.underflow));
  rows.emplace_back("overflow", static_cast<double>(h.overflow));
  return rows;
}

void NoteIfDiffers(DiffReport* report, const std::string& what,
                   const std::string& a, const std::string& b) {
  if (a != b) {
    report->notes.push_back(what + " differs: '" + a + "' vs '" + b + "'");
  }
}

void NoteIfDiffers(DiffReport* report, const std::string& what, double a,
                   double b) {
  if (a != b) {
    report->notes.push_back(what + " differs: " + FormatCompact(a) +
                            " vs " + FormatCompact(b));
  }
}

}  // namespace

DiffReport DiffTelemetry(const TelemetryDoc& a, const TelemetryDoc& b,
                         const DiffOptions& options) {
  DiffReport report;
  report.kind = "telemetry";
  report.path_a = a.path;
  report.path_b = b.path;
  report.threshold = options.threshold;

  NoteIfDiffers(&report, "run.policy", a.policy, b.policy);
  NoteIfDiffers(&report, "run.staleness", a.staleness, b.staleness);
  NoteIfDiffers(&report, "run.shards", a.shards, b.shards);
  NoteIfDiffers(&report, "run.sim_seconds", a.sim_seconds, b.sim_seconds);
  NoteIfDiffers(&report, "run.lambda_t", a.lambda_t, b.lambda_t);
  NoteIfDiffers(&report, "run.lambda_u", a.lambda_u, b.lambda_u);

  MetricList top_a;
  top_a.emplace_back("stale_reads_seen",
                     static_cast<double>(a.stale_reads_seen));
  MetricList top_b;
  top_b.emplace_back("stale_reads_seen",
                     static_cast<double>(b.stale_reads_seen));
  AddSection(&report,
             DiffMetricLists("run", top_a, top_b, options.threshold));

  AddSection(&report, DiffMetricLists("metrics", a.metrics, b.metrics,
                                      options.threshold));

  // Histograms present in A (B-only histograms become a note).
  for (const HistogramData& ha : a.histograms) {
    const HistogramData* hb = b.FindHistogram(ha.name);
    if (hb == nullptr) {
      report.notes.push_back("histogram '" + ha.name + "' only in A");
      continue;
    }
    AddSection(&report, DiffMetricLists("histograms." + ha.name,
                                        HistogramSummaryMetrics(ha),
                                        HistogramSummaryMetrics(*hb),
                                        options.threshold));
  }
  for (const HistogramData& hb : b.histograms) {
    if (a.FindHistogram(hb.name) == nullptr) {
      report.notes.push_back("histogram '" + hb.name + "' only in B");
    }
  }
  return report;
}

DiffReport DiffSweepCell(const SweepCellDoc& a, const SweepCellDoc& b,
                         const DiffOptions& options) {
  DiffReport report;
  report.kind = "sweep-cell";
  report.path_a = a.path;
  report.path_b = b.path;
  report.threshold = options.threshold;

  NoteIfDiffers(&report, "policy", a.policy, b.policy);
  NoteIfDiffers(&report, "x_name", a.x_name, b.x_name);
  NoteIfDiffers(&report, "x_value", a.x_value, b.x_value);
  NoteIfDiffers(&report, "replications", a.replications, b.replications);
  if (a.timed_out != b.timed_out) {
    report.notes.push_back(std::string("timed_out differs: ") +
                           (a.timed_out ? "true" : "false") + " vs " +
                           (b.timed_out ? "true" : "false"));
  }

  // Per-replication metric diffs keep the determinism gate exact: a
  // single perturbed run cannot hide behind the cell mean.
  const std::size_t shared = std::min(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < shared; ++r) {
    AddSection(&report,
               DiffMetricLists("runs[" + std::to_string(r) + "]",
                               a.runs[r], b.runs[r], options.threshold));
  }
  if (a.runs.size() != b.runs.size()) {
    report.notes.push_back(
        "run count differs: " + std::to_string(a.runs.size()) + " vs " +
        std::to_string(b.runs.size()));
  }
  return report;
}

DiffReport DiffSweepDirs(const SweepDirData& a, const SweepDirData& b,
                         const DiffOptions& options) {
  DiffReport report;
  report.kind = "sweep-dir";
  report.path_a = a.path;
  report.path_b = b.path;
  report.threshold = options.threshold;

  // Match cells on (policy, x_index); A's presentation order rules.
  for (const SweepCellDoc& cell_a : a.cells) {
    const SweepCellDoc* cell_b = nullptr;
    for (const SweepCellDoc& candidate : b.cells) {
      if (candidate.policy == cell_a.policy &&
          candidate.x_index == cell_a.x_index) {
        cell_b = &candidate;
        break;
      }
    }
    const std::string label =
        cell_a.policy + "@" + cell_a.x_name + "=" +
        FormatCompact(cell_a.x_value);
    if (cell_b == nullptr) {
      report.notes.push_back("cell " + label + " only in A");
      continue;
    }
    DiffReport cell_diff = DiffSweepCell(cell_a, *cell_b, options);
    for (DiffSection& section : cell_diff.sections) {
      section.title = label + "." + section.title;
      AddSection(&report, std::move(section));
    }
    for (const std::string& note : cell_diff.notes) {
      report.notes.push_back(label + ": " + note);
    }
  }
  for (const SweepCellDoc& cell_b : b.cells) {
    const bool matched = std::any_of(
        a.cells.begin(), a.cells.end(), [&](const SweepCellDoc& cell_a) {
          return cell_a.policy == cell_b.policy &&
                 cell_a.x_index == cell_b.x_index;
        });
    if (!matched) {
      report.notes.push_back("cell " + cell_b.policy + "@" + cell_b.x_name +
                             "=" + FormatCompact(cell_b.x_value) +
                             " only in B");
    }
  }

  // Per-shard telemetry groups, matched on (label, shard).
  for (const SweepDirData::ShardGroup& group_a : a.shard_groups) {
    const SweepDirData::ShardGroup* group_b = nullptr;
    for (const SweepDirData::ShardGroup& candidate : b.shard_groups) {
      if (candidate.label == group_a.label) {
        group_b = &candidate;
        break;
      }
    }
    if (group_b == nullptr) {
      report.notes.push_back("shard group '" + group_a.label +
                             "' only in A");
      continue;
    }
    const std::size_t shared =
        std::min(group_a.shards.size(), group_b->shards.size());
    for (std::size_t s = 0; s < shared; ++s) {
      DiffReport shard_diff =
          DiffTelemetry(group_a.shards[s], group_b->shards[s], options);
      const std::string label = group_a.label + ".shard" +
                                std::to_string(group_a.shards[s].shard);
      for (DiffSection& section : shard_diff.sections) {
        section.title = label + "." + section.title;
        AddSection(&report, std::move(section));
      }
      for (const std::string& note : shard_diff.notes) {
        report.notes.push_back(label + ": " + note);
      }
    }
    if (group_a.shards.size() != group_b->shards.size()) {
      report.notes.push_back(
          "shard group '" + group_a.label + "' shard count differs: " +
          std::to_string(group_a.shards.size()) + " vs " +
          std::to_string(group_b->shards.size()));
    }
  }
  for (const SweepDirData::ShardGroup& group_b : b.shard_groups) {
    const bool matched =
        std::any_of(a.shard_groups.begin(), a.shard_groups.end(),
                    [&](const SweepDirData::ShardGroup& group_a) {
                      return group_a.label == group_b.label;
                    });
    if (!matched) {
      report.notes.push_back("shard group '" + group_b.label +
                             "' only in B");
    }
  }
  return report;
}

std::optional<DiffReport> DiffPaths(const std::string& path_a,
                                    const std::string& path_b,
                                    const DiffOptions& options,
                                    std::string* error) {
  const auto kind_a = ClassifyArtifact(path_a, error);
  if (!kind_a) return std::nullopt;
  const auto kind_b = ClassifyArtifact(path_b, error);
  if (!kind_b) return std::nullopt;
  if (*kind_a != *kind_b) {
    if (error != nullptr) {
      *error = "cannot diff different artifact kinds (" + path_a + " vs " +
               path_b + ")";
    }
    return std::nullopt;
  }
  switch (*kind_a) {
    case ArtifactKind::kTelemetry: {
      const auto a = LoadTelemetryDoc(path_a, error);
      if (!a) return std::nullopt;
      const auto b = LoadTelemetryDoc(path_b, error);
      if (!b) return std::nullopt;
      return DiffTelemetry(*a, *b, options);
    }
    case ArtifactKind::kSweepCell: {
      const auto a = LoadSweepCellDoc(path_a, error);
      if (!a) return std::nullopt;
      const auto b = LoadSweepCellDoc(path_b, error);
      if (!b) return std::nullopt;
      return DiffSweepCell(*a, *b, options);
    }
    case ArtifactKind::kSweepDir: {
      const auto a = LoadSweepDir(path_a, error);
      if (!a) return std::nullopt;
      const auto b = LoadSweepDir(path_b, error);
      if (!b) return std::nullopt;
      return DiffSweepDirs(*a, *b, options);
    }
    case ArtifactKind::kBench:
      if (error != nullptr) {
        *error = "benchmark JSON goes through 'strip_report bench-diff', "
                 "not 'diff'";
      }
      return std::nullopt;
  }
  return std::nullopt;
}

std::string DiffMarkdown(const DiffReport& report,
                         const DiffOptions& options) {
  std::ostringstream out;
  out << "# strip_report diff (" << report.kind << ")\n\n"
      << "- A: `" << report.path_a << "`\n"
      << "- B: `" << report.path_b << "`\n"
      << "- threshold: " << FormatCompact(report.threshold)
      << " (relative)\n"
      << "- rows changed: " << report.rows_changed
      << ", over threshold: " << report.rows_over_threshold << "\n";
  if (!report.notes.empty()) {
    out << "\n## Notes\n\n";
    for (const std::string& note : report.notes) {
      out << "- " << note << "\n";
    }
  }
  bool any_rows = false;
  for (const DiffSection& section : report.sections) {
    std::vector<const DiffRow*> rows;
    for (const DiffRow& row : section.rows) {
      if (options.all_rows || row.changed) rows.push_back(&row);
    }
    if (rows.empty()) continue;
    any_rows = true;
    out << "\n## " << section.title << "\n\n"
        << "| metric | A | B | Δ | Δ% | gate |\n"
        << "|---|---:|---:|---:|---:|:---:|\n";
    for (const DiffRow* row : rows) {
      out << "| " << row->name << " | " << FormatCompact(row->a) << " | "
          << FormatCompact(row->b) << " | " << FormatCompact(row->abs_delta)
          << " | "
          << (row->rel_delta ? FormatCompact(*row->rel_delta * 100.0) + "%"
                             : std::string("-"))
          << " | " << (row->over_threshold ? "FAIL" : "ok") << " |\n";
    }
  }
  if (!any_rows && report.notes.empty()) {
    out << "\nNo deltas: the artifacts are metric-identical.\n";
  }
  return out.str();
}

std::string DiffJson(const DiffReport& report) {
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": \"strip.report.diff/v1\",\n"
      << "  \"kind\": \"" << report.kind << "\",\n"
      << "  \"a\": \"" << report.path_a << "\",\n"
      << "  \"b\": \"" << report.path_b << "\",\n"
      << "  \"threshold\": " << FormatNumber(report.threshold) << ",\n"
      << "  \"rows_changed\": " << report.rows_changed << ",\n"
      << "  \"rows_over_threshold\": " << report.rows_over_threshold
      << ",\n";
  out << "  \"notes\": [";
  for (std::size_t i = 0; i < report.notes.size(); ++i) {
    out << (i ? ", " : "") << "\"" << report.notes[i] << "\"";
  }
  out << "],\n";
  out << "  \"over_threshold\": [";
  for (std::size_t i = 0; i < report.over_threshold_names.size(); ++i) {
    out << (i ? ", " : "") << "\"" << report.over_threshold_names[i]
        << "\"";
  }
  out << "],\n";
  out << "  \"sections\": [";
  bool first_section = true;
  for (const DiffSection& section : report.sections) {
    std::vector<const DiffRow*> rows;
    for (const DiffRow& row : section.rows) {
      if (row.changed) rows.push_back(&row);
    }
    if (rows.empty()) continue;
    out << (first_section ? "\n" : ",\n");
    first_section = false;
    out << "    {\n      \"title\": \"" << section.title
        << "\",\n      \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const DiffRow* row = rows[i];
      out << (i ? ",\n" : "\n") << "        {\"name\": \"" << row->name
          << "\", \"a\": " << FormatJsonOr(row->a)
          << ", \"b\": " << FormatJsonOr(row->b)
          << ", \"abs\": " << FormatNumber(row->abs_delta)
          << ", \"rel\": " << FormatJsonOr(row->rel_delta)
          << ", \"over_threshold\": "
          << (row->over_threshold ? "true" : "false") << "}";
    }
    out << "\n      ]\n    }";
  }
  out << (first_section ? "]\n" : "\n  ]\n") << "}\n";
  return out.str();
}

}  // namespace strip::obs::report
