#include "obs/report/artifact.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>

namespace strip::obs::report {

namespace {

// Canonical policy presentation order — the order the paper's figures
// use and strip_sweep's default grid follows. Policies outside this
// list (future additions) sort after it, alphabetically.
constexpr const char* kPolicyOrder[] = {"UF", "TF", "SU", "OD", "FCF"};

int PolicyRank(const std::string& policy) {
  for (std::size_t i = 0; i < std::size(kPolicyOrder); ++i) {
    if (policy == kPolicyOrder[i]) return static_cast<int>(i);
  }
  return static_cast<int>(std::size(kPolicyOrder));
}

bool SetError(std::string* error, const std::string& path,
              const std::string& why) {
  if (error != nullptr) *error = path + ": " + why;
  return false;
}

std::uint64_t AsUint64(double v) {
  return v <= 0 ? 0 : static_cast<std::uint64_t>(v);
}

// Parses one telemetry "histograms" entry.
bool ParseHistogramData(const std::string& path, const std::string& name,
                        const JsonValue& value, HistogramData* out,
                        std::string* error) {
  if (!value.is_object()) {
    return SetError(error, path, "histogram '" + name + "' is not an object");
  }
  out->name = name;
  out->count = AsUint64(value.NumberOr("count", 0));
  out->mean = value.NumberOr("mean", 0);
  out->min_sample = value.NumberOr("min", 0);
  out->max_sample = value.NumberOr("max", 0);
  out->p50 = value.NumberOr("p50", 0);
  out->p90 = value.NumberOr("p90", 0);
  out->p99 = value.NumberOr("p99", 0);
  out->underflow = AsUint64(value.NumberOr("underflow", 0));
  out->overflow = AsUint64(value.NumberOr("overflow", 0));
  const JsonValue* range = value.Find("range");
  if (range == nullptr || !range->is_array() || range->items.size() != 2 ||
      !range->items[0].is_number() || !range->items[1].is_number()) {
    return SetError(error, path, "histogram '" + name + "' has no range");
  }
  out->range_min = range->items[0].number_value;
  out->range_max = range->items[1].number_value;
  out->buckets_per_decade =
      static_cast<int>(value.NumberOr("buckets_per_decade", 0));
  const JsonValue* buckets = value.Find("buckets");
  if (buckets == nullptr || !buckets->is_array()) {
    return SetError(error, path, "histogram '" + name + "' has no buckets");
  }
  out->buckets.clear();
  for (const JsonValue& pair : buckets->items) {
    if (!pair.is_array() || pair.items.size() != 2 ||
        !pair.items[0].is_number() || !pair.items[1].is_number()) {
      return SetError(error, path,
                      "histogram '" + name + "' has a malformed bucket");
    }
    out->buckets.emplace_back(
        static_cast<std::size_t>(pair.items[0].number_value),
        AsUint64(pair.items[1].number_value));
  }
  return true;
}

// Parses a metrics-style object: every member becomes a row; null
// members carry an empty optional (e.g. outage_recovery_seconds when
// no outage ended).
bool ParseMetricList(const std::string& path, const JsonValue& object,
                     MetricList* out, std::string* error) {
  if (!object.is_object()) {
    return SetError(error, path, "metrics is not an object");
  }
  out->clear();
  out->reserve(object.members.size());
  for (const auto& [name, value] : object.members) {
    if (value.is_number()) {
      out->emplace_back(name, value.number_value);
    } else if (value.is_null()) {
      out->emplace_back(name, std::nullopt);
    } else if (value.is_bool()) {
      out->emplace_back(name, value.bool_value ? 1.0 : 0.0);
    }
    // Nested structures are not metrics; skip them silently so the
    // model survives future additions.
  }
  return true;
}

double TimeUnitToNs(const std::string& unit) {
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;  // ns, the Google-Benchmark default
}

// "<stem>.json.shard<k>" → stem + k. Returns false for other names.
bool ParseShardSuffix(const std::string& name, std::string* stem,
                      int* shard) {
  const std::string marker = ".json.shard";
  const std::size_t at = name.rfind(marker);
  if (at == std::string::npos) return false;
  const std::string digits = name.substr(at + marker.size());
  if (digits.empty()) return false;
  int value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *stem = name.substr(0, at);
  *shard = value;
  return true;
}

}  // namespace

std::optional<double> FindMetric(const MetricList& metrics,
                                 const std::string& name) {
  for (const auto& [metric, value] : metrics) {
    if (metric == name) return value;
  }
  return std::nullopt;
}

std::optional<LatencyHistogram> HistogramData::Rebuild() const {
  return LatencyHistogram::FromBuckets(range_min, range_max,
                                       buckets_per_decade, buckets, mean,
                                       min_sample, max_sample);
}

const HistogramData* TelemetryDoc::FindHistogram(
    const std::string& name) const {
  for (const HistogramData& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::optional<double> SweepCellDoc::Mean(const std::string& metric) const {
  double sum = 0;
  int samples = 0;
  for (const MetricList& run : runs) {
    if (const auto value = FindMetric(run, metric)) {
      sum += *value;
      ++samples;
    }
  }
  if (samples == 0) return std::nullopt;
  return sum / samples;
}

const BenchEntry* BenchDoc::FindEntry(const std::string& name) const {
  for (const BenchEntry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::optional<std::string> ReadFileToString(const std::string& path,
                                            std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    SetError(error, path, "cannot open");
    return std::nullopt;
  }
  std::string contents;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    SetError(error, path, "read error");
    return std::nullopt;
  }
  return contents;
}

std::optional<std::vector<std::string>> ListDirSorted(const std::string& dir,
                                                      std::string* error) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    SetError(error, dir, "cannot open directory");
    return std::nullopt;
  }
  std::vector<std::string> names;
  while (dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    if (::stat((dir + "/" + name).c_str(), &st) != 0) continue;
    if (!S_ISREG(st.st_mode)) continue;
    names.push_back(name);
  }
  ::closedir(handle);
  std::sort(names.begin(), names.end());
  return names;
}

std::optional<TelemetryDoc> ParseTelemetryDoc(const std::string& path,
                                              const JsonValue& doc,
                                              std::string* error) {
  if (!doc.is_object()) {
    SetError(error, path, "not a JSON object");
    return std::nullopt;
  }
  const std::string schema = doc.StringOr("schema", "");
  // v4 is a strict superset of v3 for everything the report layer
  // reads (it added the interconnect robustness counters), so both
  // generations stay loadable — old archives keep diffing cleanly.
  if (schema != "strip.telemetry/v3" && schema != "strip.telemetry/v4") {
    SetError(error, path, "unsupported schema '" + schema +
                              "' (want strip.telemetry/v3 or v4)");
    return std::nullopt;
  }
  TelemetryDoc out;
  out.path = path;
  const JsonValue* run = doc.Find("run");
  if (run == nullptr || !run->is_object()) {
    SetError(error, path, "missing run object");
    return std::nullopt;
  }
  out.policy = run->StringOr("policy", "");
  out.staleness = run->StringOr("staleness", "");
  out.seed = AsUint64(run->NumberOr("seed", 0));
  out.shard = static_cast<int>(run->NumberOr("shard", 0));
  out.shards = static_cast<int>(run->NumberOr("shards", 1));
  out.sim_seconds = run->NumberOr("sim_seconds", 0);
  out.lambda_t = run->NumberOr("lambda_t", 0);
  out.lambda_u = run->NumberOr("lambda_u", 0);
  out.stale_reads_seen = AsUint64(doc.NumberOr("stale_reads_seen", 0));

  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr ||
      !ParseMetricList(path, *metrics, &out.metrics, error)) {
    if (metrics == nullptr) SetError(error, path, "missing metrics object");
    return std::nullopt;
  }

  const JsonValue* histograms = doc.Find("histograms");
  if (histograms == nullptr || !histograms->is_object()) {
    SetError(error, path, "missing histograms object");
    return std::nullopt;
  }
  for (const auto& [name, value] : histograms->members) {
    HistogramData data;
    if (!ParseHistogramData(path, name, value, &data, error)) {
      return std::nullopt;
    }
    out.histograms.push_back(std::move(data));
  }
  return out;
}

std::optional<TelemetryDoc> LoadTelemetryDoc(const std::string& path,
                                             std::string* error) {
  const auto contents = ReadFileToString(path, error);
  if (!contents) return std::nullopt;
  std::string parse_error;
  const auto doc = ParseJson(*contents, &parse_error);
  if (!doc) {
    SetError(error, path, parse_error);
    return std::nullopt;
  }
  return ParseTelemetryDoc(path, *doc, error);
}

std::optional<SweepCellDoc> LoadSweepCellDoc(const std::string& path,
                                             std::string* error) {
  const auto contents = ReadFileToString(path, error);
  if (!contents) return std::nullopt;
  std::string parse_error;
  const auto doc = ParseJson(*contents, &parse_error);
  if (!doc) {
    SetError(error, path, parse_error);
    return std::nullopt;
  }
  if (!doc->is_object()) {
    SetError(error, path, "not a JSON object");
    return std::nullopt;
  }
  const std::string schema = doc->StringOr("schema", "");
  if (schema != "strip.sweep-cell/v1") {
    SetError(error, path, "unsupported schema '" + schema +
                              "' (want strip.sweep-cell/v1)");
    return std::nullopt;
  }
  SweepCellDoc out;
  out.path = path;
  out.policy = doc->StringOr("policy", "");
  out.x_name = doc->StringOr("x_name", "");
  out.x_value = doc->NumberOr("x_value", 0);
  out.x_index = static_cast<std::size_t>(doc->NumberOr("x_index", 0));
  out.replications = static_cast<int>(doc->NumberOr("replications", 0));
  out.base_seed = AsUint64(doc->NumberOr("base_seed", 0));
  out.timed_out = doc->BoolOr("timed_out", false);
  const JsonValue* runs = doc->Find("runs");
  if (runs == nullptr || !runs->is_array()) {
    SetError(error, path, "missing runs array");
    return std::nullopt;
  }
  for (const JsonValue& run : runs->items) {
    MetricList metrics;
    if (!ParseMetricList(path, run, &metrics, error)) return std::nullopt;
    out.runs.push_back(std::move(metrics));
  }
  return out;
}

std::optional<BenchDoc> LoadBenchDoc(const std::string& path,
                                     std::string* error) {
  const auto contents = ReadFileToString(path, error);
  if (!contents) return std::nullopt;
  std::string parse_error;
  const auto doc = ParseJson(*contents, &parse_error);
  if (!doc) {
    SetError(error, path, parse_error);
    return std::nullopt;
  }
  if (!doc->is_object()) {
    SetError(error, path, "not a JSON object");
    return std::nullopt;
  }

  // A checked-in strip.bench-history/v1 snapshot reloads directly (its
  // entries are already min-of-N reduced).
  if (doc->StringOr("schema", "") == "strip.bench-history/v1") {
    BenchDoc out;
    out.path = path;
    out.build_type = doc->StringOr("build_type", "unknown");
    out.lto = doc->StringOr("lto", "");
    const JsonValue* entries = doc->Find("entries");
    if (entries == nullptr || !entries->is_array()) {
      SetError(error, path, "missing entries array");
      return std::nullopt;
    }
    for (const JsonValue& item : entries->items) {
      if (!item.is_object()) continue;
      BenchEntry entry;
      entry.name = item.StringOr("name", "");
      if (entry.name.empty()) continue;
      entry.family = item.StringOr("family", entry.name);
      entry.samples = static_cast<int>(item.NumberOr("samples", 1));
      entry.real_time_ns = item.NumberOr("real_time_ns", 0);
      entry.cpu_time_ns = item.NumberOr("cpu_time_ns", 0);
      out.entries.push_back(std::move(entry));
    }
    if (out.entries.empty()) {
      SetError(error, path, "no entries in history snapshot");
      return std::nullopt;
    }
    return out;
  }

  const JsonValue* benchmarks = doc->Find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    SetError(error, path, "missing benchmarks array");
    return std::nullopt;
  }
  BenchDoc out;
  out.path = path;
  if (const JsonValue* context = doc->Find("context");
      context != nullptr && context->is_object()) {
    // Prefer the repo's own stamp: the library_build_type the benchmark
    // library reports describes how *it* was compiled, which has been
    // observed to disagree with the actual binary.
    out.build_type = context->StringOr(
        "strip_build_type", context->StringOr("library_build_type", ""));
    out.lto = context->StringOr("strip_lto", "");
  }
  if (out.build_type.empty()) out.build_type = "unknown";

  for (const JsonValue& bench : benchmarks->items) {
    if (!bench.is_object()) continue;
    // Aggregates (mean/median/stddev rows emitted with repetitions)
    // are derived views; the min over the iteration rows is the gate's
    // noise floor, so only iteration rows feed the model.
    const std::string run_type = bench.StringOr("run_type", "iteration");
    if (run_type != "iteration") continue;
    const std::string name = bench.StringOr("name", "");
    if (name.empty()) continue;
    const double scale = TimeUnitToNs(bench.StringOr("time_unit", "ns"));
    const double real_time = bench.NumberOr("real_time", 0) * scale;
    const double cpu_time = bench.NumberOr("cpu_time", 0) * scale;
    BenchEntry* entry = nullptr;
    for (BenchEntry& existing : out.entries) {
      if (existing.name == name) {
        entry = &existing;
        break;
      }
    }
    if (entry == nullptr) {
      out.entries.emplace_back();
      entry = &out.entries.back();
      entry->name = name;
      entry->family = name.substr(0, name.find('/'));
      entry->real_time_ns = real_time;
      entry->cpu_time_ns = cpu_time;
      entry->samples = 1;
      continue;
    }
    // Min-of-N: keep the least-contaminated repetition.
    entry->real_time_ns = std::min(entry->real_time_ns, real_time);
    entry->cpu_time_ns = std::min(entry->cpu_time_ns, cpu_time);
    ++entry->samples;
  }
  if (out.entries.empty()) {
    SetError(error, path, "no iteration benchmarks in document");
    return std::nullopt;
  }
  return out;
}

std::optional<SweepDirData> LoadSweepDir(const std::string& dir,
                                         std::string* error) {
  const auto names = ListDirSorted(dir, error);
  if (!names) return std::nullopt;

  SweepDirData out;
  out.path = dir;
  for (const std::string& name : *names) {
    const std::string path = dir + "/" + name;
    if (name.size() > 10 && name.compare(0, 5, "cell_") == 0 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      auto cell = LoadSweepCellDoc(path, error);
      if (!cell) return std::nullopt;
      out.cells.push_back(std::move(*cell));
      continue;
    }
    std::string stem;
    int shard = 0;
    if (ParseShardSuffix(name, &stem, &shard)) {
      auto doc = LoadTelemetryDoc(path, error);
      if (!doc) return std::nullopt;
      SweepDirData::ShardGroup* group = nullptr;
      for (SweepDirData::ShardGroup& existing : out.shard_groups) {
        if (existing.label == stem) {
          group = &existing;
          break;
        }
      }
      if (group == nullptr) {
        out.shard_groups.emplace_back();
        group = &out.shard_groups.back();
        group->label = stem;
      }
      group->shards.push_back(std::move(*doc));
    }
  }
  if (out.cells.empty() && out.shard_groups.empty()) {
    SetError(error, dir,
             "no cell_*.json or *.json.shard<k> artifacts found");
    return std::nullopt;
  }

  // Cells in presentation order: canonical policy rank, then x_index.
  std::sort(out.cells.begin(), out.cells.end(),
            [](const SweepCellDoc& a, const SweepCellDoc& b) {
              const int ra = PolicyRank(a.policy);
              const int rb = PolicyRank(b.policy);
              if (ra != rb) return ra < rb;
              if (a.policy != b.policy) return a.policy < b.policy;
              return a.x_index < b.x_index;
            });
  for (const SweepCellDoc& cell : out.cells) {
    if (std::find(out.policies.begin(), out.policies.end(), cell.policy) ==
        out.policies.end()) {
      out.policies.push_back(cell.policy);
    }
    if (out.x_name.empty()) out.x_name = cell.x_name;
    if (std::find(out.x_values.begin(), out.x_values.end(), cell.x_value) ==
        out.x_values.end()) {
      out.x_values.push_back(cell.x_value);
    }
  }
  std::sort(out.x_values.begin(), out.x_values.end());

  // Shard docs within a group in shard order (the directory listing
  // sorts ".shard10" before ".shard2").
  for (SweepDirData::ShardGroup& group : out.shard_groups) {
    std::sort(group.shards.begin(), group.shards.end(),
              [](const TelemetryDoc& a, const TelemetryDoc& b) {
                return a.shard < b.shard;
              });
  }
  return out;
}

std::optional<ArtifactKind> ClassifyArtifact(const std::string& path,
                                             std::string* error) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    SetError(error, path, "no such file or directory");
    return std::nullopt;
  }
  if (S_ISDIR(st.st_mode)) return ArtifactKind::kSweepDir;
  const auto contents = ReadFileToString(path, error);
  if (!contents) return std::nullopt;
  std::string parse_error;
  const auto doc = ParseJson(*contents, &parse_error);
  if (!doc) {
    SetError(error, path, parse_error);
    return std::nullopt;
  }
  if (!doc->is_object()) {
    SetError(error, path, "not a JSON object");
    return std::nullopt;
  }
  const std::string schema = doc->StringOr("schema", "");
  if (schema.compare(0, 15, "strip.telemetry") == 0) {
    return ArtifactKind::kTelemetry;
  }
  if (schema.compare(0, 16, "strip.sweep-cell") == 0) {
    return ArtifactKind::kSweepCell;
  }
  if (doc->Find("benchmarks") != nullptr) return ArtifactKind::kBench;
  SetError(error, path, "unrecognized artifact (no known schema marker)");
  return std::nullopt;
}

}  // namespace strip::obs::report
