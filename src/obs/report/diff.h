// Run-vs-run / sweep-vs-sweep structural diff.
//
// Turns two artifacts of the same family into a per-metric comparison:
// absolute and relative delta per row, a threshold verdict, and
// deterministic markdown / JSON renderings. The two headline uses are
// the determinism gate (two byte-identical runs must diff to zero
// rows) and branch-vs-branch comparisons (any metric moving more than
// --threshold relative is named and fails the invocation).

#ifndef STRIP_OBS_REPORT_DIFF_H_
#define STRIP_OBS_REPORT_DIFF_H_

#include <optional>
#include <string>
#include <vector>

#include "obs/report/artifact.h"

namespace strip::obs::report {

struct DiffOptions {
  // Relative-delta gate: a changed row whose |relative delta| exceeds
  // this (or whose baseline is 0/null, where no relative delta exists)
  // counts as over-threshold. 0 means any change at all trips.
  double threshold = 0.0;
  // Markdown: print every row, not just changed ones.
  bool all_rows = false;
};

struct DiffRow {
  std::string name;
  std::optional<double> a;
  std::optional<double> b;
  double abs_delta = 0;
  // (b-a)/|a|; absent when a is 0 or either side is null.
  std::optional<double> rel_delta;
  bool changed = false;
  bool over_threshold = false;
};

struct DiffSection {
  std::string title;
  std::vector<DiffRow> rows;
};

struct DiffReport {
  std::string kind;  // "telemetry" | "sweep-cell" | "sweep-dir"
  std::string path_a;
  std::string path_b;
  double threshold = 0;
  // Context mismatches (policy, config, structure) that are reported
  // and — because comparing unlike runs is never "equal" — also gate.
  std::vector<std::string> notes;
  std::vector<DiffSection> sections;

  int rows_changed = 0;
  int rows_over_threshold = 0;
  // Names of the over-threshold rows, in document order (the CLI
  // prints these so a failing gate names the moving metric).
  std::vector<std::string> over_threshold_names;

  bool Exceeds() const {
    return rows_over_threshold > 0 || !notes.empty();
  }
};

DiffReport DiffTelemetry(const TelemetryDoc& a, const TelemetryDoc& b,
                         const DiffOptions& options);
DiffReport DiffSweepCell(const SweepCellDoc& a, const SweepCellDoc& b,
                         const DiffOptions& options);
DiffReport DiffSweepDirs(const SweepDirData& a, const SweepDirData& b,
                         const DiffOptions& options);

// Classifies both paths and dispatches; fails when the kinds disagree
// or either artifact is malformed.
std::optional<DiffReport> DiffPaths(const std::string& path_a,
                                    const std::string& path_b,
                                    const DiffOptions& options,
                                    std::string* error);

std::string DiffMarkdown(const DiffReport& report,
                         const DiffOptions& options);
std::string DiffJson(const DiffReport& report);

}  // namespace strip::obs::report

#endif  // STRIP_OBS_REPORT_DIFF_H_
