#include "obs/report/summary.h"

#include <algorithm>
#include <sstream>

#include "obs/report/format.h"

namespace strip::obs::report {

namespace {

// The paper-figure default: deadline misses, success, staleness, the
// response tail, and the robustness counters added by the fault and
// governor work.
const char* const kDefaultMetrics[] = {
    "p_md",          "p_success",         "f_old_low",
    "response_p50",  "response_p95",      "response_p99",
    "governor_engaged_seconds", "updates_shed_low", "updates_shed_high",
    "outage_recovery_seconds",
};

ShardImbalance::Dimension MakeDimension(const std::string& name,
                                        std::vector<double> values) {
  ShardImbalance::Dimension dim;
  dim.name = name;
  dim.values = std::move(values);
  double sum = 0;
  for (std::size_t i = 0; i < dim.values.size(); ++i) {
    sum += dim.values[i];
    if (dim.values[i] > dim.max) {
      dim.max = dim.values[i];
      dim.worst_shard = static_cast<int>(i);
    }
  }
  dim.mean = dim.values.empty()
                 ? 0.0
                 : sum / static_cast<double>(dim.values.size());
  dim.skew = dim.mean > 0 ? dim.max / dim.mean : 1.0;
  return dim;
}

double MetricOrZero(const TelemetryDoc& doc, const std::string& name) {
  const auto value = FindMetric(doc.metrics, name);
  return value ? *value : 0.0;
}

ShardImbalance AnalyzeGroup(const SweepDirData::ShardGroup& group,
                            std::vector<std::string>* notes) {
  ShardImbalance result;
  result.label = group.label;
  result.shards = static_cast<int>(group.shards.size());
  if (!group.shards.empty()) result.policy = group.shards.front().policy;

  std::vector<double> load;
  std::vector<double> stale;
  std::vector<double> remote;
  for (const TelemetryDoc& doc : group.shards) {
    load.push_back(MetricOrZero(doc, "txns_committed"));
    stale.push_back(MetricOrZero(doc, "f_old_low"));
    remote.push_back(MetricOrZero(doc, "remote_reads_issued") +
                     MetricOrZero(doc, "remote_reads_served"));
  }
  result.dimensions.push_back(MakeDimension("load", std::move(load)));
  result.dimensions.push_back(MakeDimension("staleness", std::move(stale)));
  result.dimensions.push_back(
      MakeDimension("remote_traffic", std::move(remote)));

  // Worst-shard p99 (what the aggregate RunMetrics reports as the
  // cluster percentile upper bound), attributed to its shard.
  for (std::size_t s = 0; s < group.shards.size(); ++s) {
    const auto p99 = FindMetric(group.shards[s].metrics, "response_p99");
    if (!p99) continue;
    if (!result.worst_p99 || *p99 > *result.worst_p99) {
      result.worst_p99 = *p99;
      result.worst_p99_shard = group.shards[s].shard;
    }
  }

  // True cluster percentiles: bucket-merge the per-shard response
  // histograms (identical layout by construction — all shards share
  // one telemetry config).
  std::optional<LatencyHistogram> merged;
  bool merge_ok = true;
  for (const TelemetryDoc& doc : group.shards) {
    const HistogramData* h = doc.FindHistogram("response_seconds");
    if (h == nullptr) continue;
    auto rebuilt = h->Rebuild();
    if (!rebuilt) {
      merge_ok = false;
      break;
    }
    if (!merged) {
      merged = std::move(rebuilt);
    } else if (!merged->Merge(*rebuilt)) {
      merge_ok = false;
      break;
    }
  }
  if (merged && merge_ok) {
    result.cluster_p50 = merged->Quantile(0.50);
    result.cluster_p90 = merged->Quantile(0.90);
    result.cluster_p99 = merged->Quantile(0.99);
  } else if (!merge_ok) {
    notes->push_back("shard group '" + group.label +
                     "': response histograms not mergeable "
                     "(layout mismatch)");
  }
  return result;
}

}  // namespace

const ShardImbalance::Dimension* ShardImbalance::FindDimension(
    const std::string& name) const {
  for (const Dimension& dim : dimensions) {
    if (dim.name == name) return &dim;
  }
  return nullptr;
}

SummaryReport SummarizeSweep(const SweepDirData& data,
                             const SummaryOptions& options) {
  SummaryReport report;
  report.path = data.path;
  report.x_name = data.x_name;

  std::vector<std::string> metrics = options.metrics;
  if (metrics.empty()) {
    metrics.assign(std::begin(kDefaultMetrics), std::end(kDefaultMetrics));
  }

  for (const std::string& metric : metrics) {
    SummaryTable table;
    table.metric = metric;
    table.x_name = data.x_name;
    table.policies = data.policies;
    table.x_values = data.x_values;
    table.cells.assign(
        data.x_values.size(),
        std::vector<std::optional<double>>(data.policies.size()));
    bool any = false;
    for (const SweepCellDoc& cell : data.cells) {
      const auto x_it = std::find(data.x_values.begin(), data.x_values.end(),
                                  cell.x_value);
      const auto p_it = std::find(data.policies.begin(), data.policies.end(),
                                  cell.policy);
      if (x_it == data.x_values.end() || p_it == data.policies.end()) {
        continue;
      }
      const auto value = cell.Mean(metric);
      if (value) any = true;
      table.cells[static_cast<std::size_t>(x_it - data.x_values.begin())]
                 [static_cast<std::size_t>(p_it - data.policies.begin())] =
          value;
    }
    if (any || data.cells.empty()) report.tables.push_back(std::move(table));
  }

  if (options.by_shard) {
    if (data.shard_groups.empty()) {
      report.notes.push_back(
          "--by-shard: no *.json.shard<k> telemetry documents in " +
          data.path);
    }
    for (const SweepDirData::ShardGroup& group : data.shard_groups) {
      report.imbalance.push_back(AnalyzeGroup(group, &report.notes));
    }
  }
  return report;
}

std::string SummaryMarkdown(const SummaryReport& report) {
  std::ostringstream out;
  out << "# strip_report summarize\n\n- source: `" << report.path << "`\n";
  for (const std::string& note : report.notes) {
    out << "- note: " << note << "\n";
  }

  for (const SummaryTable& table : report.tables) {
    out << "\n## " << table.metric << "\n\n| " << table.x_name << " |";
    for (const std::string& policy : table.policies) {
      out << " " << policy << " |";
    }
    out << "\n|---|";
    for (std::size_t i = 0; i < table.policies.size(); ++i) out << "---:|";
    out << "\n";
    for (std::size_t x = 0; x < table.x_values.size(); ++x) {
      out << "| " << FormatCompact(table.x_values[x]) << " |";
      for (std::size_t p = 0; p < table.policies.size(); ++p) {
        out << " " << FormatCompact(table.cells[x][p]) << " |";
      }
      out << "\n";
    }
  }

  for (const ShardImbalance& group : report.imbalance) {
    out << "\n## shards: " << group.label << " (" << group.policy << ", "
        << group.shards << " shards)\n\n"
        << "| shard |";
    for (const auto& dim : group.dimensions) out << " " << dim.name << " |";
    out << "\n|---|";
    for (std::size_t i = 0; i < group.dimensions.size(); ++i) {
      out << "---:|";
    }
    out << "\n";
    const std::size_t shards =
        group.dimensions.empty() ? 0 : group.dimensions[0].values.size();
    for (std::size_t s = 0; s < shards; ++s) {
      out << "| " << s << " |";
      for (const auto& dim : group.dimensions) {
        out << " " << FormatCompact(dim.values[s]) << " |";
      }
      out << "\n";
    }
    out << "\n";
    for (const auto& dim : group.dimensions) {
      out << "- " << dim.name << " skew (max/mean): "
          << FormatCompact(dim.skew) << " (worst: shard "
          << dim.worst_shard << ", " << FormatCompact(dim.max) << " vs mean "
          << FormatCompact(dim.mean) << ")\n";
    }
    if (group.cluster_p99) {
      out << "- cluster response p50/p90/p99 (bucket-merged): "
          << FormatCompact(group.cluster_p50) << " / "
          << FormatCompact(group.cluster_p90) << " / "
          << FormatCompact(group.cluster_p99) << "\n";
    }
    if (group.worst_p99) {
      out << "- worst-shard response p99: " << FormatCompact(group.worst_p99)
          << " (shard " << group.worst_p99_shard << ")\n";
    }
  }
  return out.str();
}

std::string SummaryCsv(const SummaryReport& report) {
  std::ostringstream out;
  out << "metric,policy,x_name,x_value,value\n";
  for (const SummaryTable& table : report.tables) {
    for (std::size_t x = 0; x < table.x_values.size(); ++x) {
      for (std::size_t p = 0; p < table.policies.size(); ++p) {
        out << table.metric << "," << table.policies[p] << ","
            << table.x_name << "," << FormatNumber(table.x_values[x]) << ",";
        if (table.cells[x][p]) out << FormatNumber(*table.cells[x][p]);
        out << "\n";
      }
    }
  }
  for (const ShardImbalance& group : report.imbalance) {
    for (const auto& dim : group.dimensions) {
      out << "shard_skew." << dim.name << "," << group.policy << ",group,"
          << "0," << FormatNumber(dim.skew) << "\n";
    }
    if (group.cluster_p99) {
      out << "cluster_p99," << group.policy << ",group,0,"
          << FormatNumber(*group.cluster_p99) << "\n";
    }
  }
  return out.str();
}

}  // namespace strip::obs::report
