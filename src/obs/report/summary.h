// Sweep aggregation: paper-figure tables and shard-imbalance analytics.
//
// `summarize DIR` folds a sweep directory into per-policy × per-x
// tables (one per metric — the shape of the paper's figures), and in
// --by-shard mode computes cluster imbalance analytics over per-shard
// telemetry documents: load / staleness / remote-traffic skew
// (max-over-mean shard ratios with worst-shard attribution) plus true
// cluster-level response percentiles obtained by bucket-merging the
// per-shard histograms — the honest counterpart to the worst-shard
// upper bound the aggregate RunMetrics reports.

#ifndef STRIP_OBS_REPORT_SUMMARY_H_
#define STRIP_OBS_REPORT_SUMMARY_H_

#include <optional>
#include <string>
#include <vector>

#include "obs/report/artifact.h"

namespace strip::obs::report {

struct SummaryOptions {
  // Compute shard-imbalance analytics over *.json.shard<k> docs.
  bool by_shard = false;
  // Metrics to tabulate; empty selects the paper-figure default set.
  std::vector<std::string> metrics;
};

// One per-policy × per-x table for a single metric. cells[x][policy]
// is the replication mean, absent when that cell is missing.
struct SummaryTable {
  std::string metric;
  std::string x_name;
  std::vector<std::string> policies;  // columns, canonical order
  std::vector<double> x_values;       // rows, ascending
  std::vector<std::vector<std::optional<double>>> cells;
};

// Imbalance analytics for one sharded run (one telemetry shard group).
struct ShardImbalance {
  std::string label;
  std::string policy;
  int shards = 0;

  // One skew dimension: a per-shard signal with its max/mean ratio and
  // the shard holding the max.
  struct Dimension {
    std::string name;  // "load" | "staleness" | "remote_traffic"
    std::vector<double> values;  // indexed by shard
    double mean = 0;
    double max = 0;
    double skew = 1.0;  // max/mean; 1.0 when the mean is 0
    int worst_shard = 0;
  };
  std::vector<Dimension> dimensions;

  const Dimension* FindDimension(const std::string& name) const;

  // True cluster percentiles (bucket-merged response histograms);
  // absent when histograms cannot be merged (shape mismatch).
  std::optional<double> cluster_p50;
  std::optional<double> cluster_p90;
  std::optional<double> cluster_p99;
  // Worst-shard p99 and which shard holds it, for attribution next to
  // the cluster-true number.
  std::optional<double> worst_p99;
  int worst_p99_shard = 0;
};

struct SummaryReport {
  std::string path;
  std::string x_name;
  std::vector<SummaryTable> tables;
  std::vector<ShardImbalance> imbalance;
  std::vector<std::string> notes;
};

SummaryReport SummarizeSweep(const SweepDirData& data,
                             const SummaryOptions& options);

std::string SummaryMarkdown(const SummaryReport& report);
// Long-format CSV: metric,policy,x_name,x_value,value — one row per
// table cell, machine-joinable across sweeps.
std::string SummaryCsv(const SummaryReport& report);

}  // namespace strip::obs::report

#endif  // STRIP_OBS_REPORT_SUMMARY_H_
