// Deterministic number formatting shared by the report renderers.
//
// Reports are part of the byte-determinism contract (they get compared
// across double runs in check_determinism.sh), so every number printed
// goes through one of these two helpers: full precision for JSON
// (round-trips the double exactly) and a compact form for human tables.

#ifndef STRIP_OBS_REPORT_FORMAT_H_
#define STRIP_OBS_REPORT_FORMAT_H_

#include <cstdio>
#include <optional>
#include <string>

namespace strip::obs::report {

// %.17g — exact double round-trip, the repo-wide JSON convention.
inline std::string FormatNumber(double v) {
  char buffer[32];
  if (v != v || v > 1e308 || v < -1e308) return "null";
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

// %.6g — compact and stable, for markdown/CSV cells.
inline std::string FormatCompact(double v) {
  char buffer[32];
  if (v != v || v > 1e308 || v < -1e308) return "-";
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

inline std::string FormatCompact(const std::optional<double>& v) {
  return v ? FormatCompact(*v) : "-";
}

// JSON value for an optional metric: number or null.
inline std::string FormatJsonOr(const std::optional<double>& v) {
  return v ? FormatNumber(*v) : "null";
}

}  // namespace strip::obs::report

#endif  // STRIP_OBS_REPORT_FORMAT_H_
