// Noise-aware benchmark comparison — the CI perf-regression gate.
//
// Google-Benchmark numbers are noisy; a naive delta gate either cries
// wolf or sleeps through real regressions. This comparator is built
// around the standard noise discipline:
//
//  - min-of-N: with --benchmark_repetitions, each benchmark is reduced
//    to the minimum across repetitions (the least-contaminated sample)
//    before comparing — aggregates rows (mean/median/stddev) are
//    ignored;
//  - cpu-time gating: the verdict is on cpu_time (steadier than
//    real_time under scheduler noise); real_time is reported alongside;
//  - per-family tolerance: micro-benchmarks of different families have
//    different noise floors, so --family=PREFIX:PCT overrides the
//    default tolerance per name prefix;
//  - build-type honesty: the comparison refuses to gate a debug binary
//    against a release baseline (the repo stamps context with
//    strip_build_type precisely for this).
//
// The same module writes the checked-in docs/bench_history/ trajectory
// snapshots (strip.bench-history/v1), which LoadBenchDoc also accepts
// as a BASE, so history entries gate future runs directly.

#ifndef STRIP_OBS_REPORT_BENCH_DIFF_H_
#define STRIP_OBS_REPORT_BENCH_DIFF_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/report/artifact.h"

namespace strip::obs::report {

struct BenchDiffOptions {
  // Relative cpu-time tolerance: ratio above 1 + tolerance regresses.
  double tolerance = 0.10;
  // (family prefix, tolerance) overrides, first match wins.
  std::vector<std::pair<std::string, double>> family_tolerance;
  // Gate even when the build-type stamps disagree (otherwise a
  // mismatch is itself a failure — comparing debug to release numbers
  // is meaningless).
  bool allow_build_mismatch = false;

  double ToleranceFor(const std::string& family) const;
};

struct BenchDiffRow {
  std::string name;
  std::string family;
  double base_cpu_ns = 0;
  double new_cpu_ns = 0;
  double base_real_ns = 0;
  double new_real_ns = 0;
  double cpu_ratio = 1.0;  // new/base
  double tolerance = 0;
  bool regressed = false;
  bool improved = false;
};

struct BenchDiffReport {
  std::string path_base;
  std::string path_new;
  std::string build_type_base;
  std::string build_type_new;
  bool build_mismatch = false;
  std::vector<std::string> notes;
  std::vector<BenchDiffRow> rows;
  std::vector<std::string> added;    // benchmarks only in NEW
  std::vector<std::string> removed;  // benchmarks only in BASE
  int regressions = 0;
  int improvements = 0;

  // The gate verdict: regressions, a refused build mismatch, or
  // benchmarks that disappeared.
  bool Exceeds() const {
    return regressions > 0 || build_mismatch || !removed.empty();
  }
};

BenchDiffReport BenchDiff(const BenchDoc& base, const BenchDoc& next,
                          const BenchDiffOptions& options);

std::optional<BenchDiffReport> BenchDiffPaths(const std::string& path_base,
                                              const std::string& path_new,
                                              const BenchDiffOptions& options,
                                              std::string* error);

std::string BenchDiffMarkdown(const BenchDiffReport& report);
std::string BenchDiffJson(const BenchDiffReport& report);

// A deterministic strip.bench-history/v1 snapshot of `doc` (min-of-N
// entries plus the build stamp) for checking into docs/bench_history/.
std::string BenchHistorySnapshot(const BenchDoc& doc,
                                 const std::string& label);

}  // namespace strip::obs::report

#endif  // STRIP_OBS_REPORT_BENCH_DIFF_H_
