// A minimal JSON Schema validator for the telemetry contract.
//
// docs/telemetry.schema.json is the formal, machine-checkable
// description of strip.telemetry/v3; the test suite validates every
// telemetry document it writes against it, so schema drift is caught
// where it originates (the writer) instead of in downstream parsers.
// The validator implements the subset of JSON Schema the contract
// uses — types, required properties, additionalProperties, items /
// prefixItems, enum / const, numeric bounds — and rejects schemas
// using anything else, so a schema edit cannot silently disable
// validation.

#ifndef STRIP_OBS_REPORT_SCHEMA_H_
#define STRIP_OBS_REPORT_SCHEMA_H_

#include <string>

#include "obs/report/json.h"

namespace strip::obs::report {

// Validates `doc` against `schema`. On failure returns false with
// *error = "<json path>: reason" for the first violation found
// (document order, so failures are deterministic).
bool ValidateJsonSchema(const JsonValue& schema, const JsonValue& doc,
                        std::string* error);

}  // namespace strip::obs::report

#endif  // STRIP_OBS_REPORT_SCHEMA_H_
