// Typed model of the run artifacts this repo writes, plus loaders.
//
// Three artifact families come out of a run today:
//
//  - strip.telemetry/v3 documents (obs/telemetry.h) — one per run, or
//    one per shard suffixed ".shard<k>" for sharded runs;
//  - strip.sweep-cell/v1 documents (exp/sweep_cell.h, written by
//    strip_sweep --out-dir) — one per finished sweep cell, all
//    replications' RunMetrics;
//  - Google-Benchmark JSON (BENCH_*.json) — the perf baseline.
//
// The loaders here parse each family into one common typed model so
// the report engines (diff, summary, bench_diff) never touch raw
// JSON. Every loader is tolerant the same way: a malformed document is
// a one-line error naming the file, never a crash; unknown metrics are
// carried through by name, so the report layer does not need updating
// when RunMetrics grows a counter.

#ifndef STRIP_OBS_REPORT_ARTIFACT_H_
#define STRIP_OBS_REPORT_ARTIFACT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/latency_histogram.h"
#include "obs/report/json.h"

namespace strip::obs::report {

// A flat metric set: (name, value) rows in document order. JSON null
// metrics (e.g. outage_recovery_seconds when no outage ended) carry an
// empty optional.
using MetricRow = std::pair<std::string, std::optional<double>>;
using MetricList = std::vector<MetricRow>;

// Looks up one metric by name; nullopt when absent or null.
std::optional<double> FindMetric(const MetricList& metrics,
                                 const std::string& name);

// One exported histogram (telemetry "histograms" entries): the summary
// scalars plus the sparse bucket dump, enough to rebuild a
// LatencyHistogram for bucket-wise merging across shards.
struct HistogramData {
  std::string name;
  std::uint64_t count = 0;
  double mean = 0;
  double min_sample = 0;
  double max_sample = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  double range_min = 0;
  double range_max = 0;
  int buckets_per_decade = 0;
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;

  // Rebuilds the histogram this data was exported from (exact bucket
  // counts; sum reconstructed as mean*count). nullopt when the shape
  // parameters are invalid.
  std::optional<LatencyHistogram> Rebuild() const;
};

// One parsed strip.telemetry/v3 document.
struct TelemetryDoc {
  std::string path;
  std::string policy;
  std::string staleness;
  std::uint64_t seed = 0;
  int shard = 0;
  int shards = 1;
  double sim_seconds = 0;
  double lambda_t = 0;
  double lambda_u = 0;
  std::uint64_t stale_reads_seen = 0;
  MetricList metrics;
  std::vector<HistogramData> histograms;

  const HistogramData* FindHistogram(const std::string& name) const;
};

// One parsed strip.sweep-cell/v1 document.
struct SweepCellDoc {
  std::string path;
  std::string policy;
  std::string x_name;
  double x_value = 0;
  std::size_t x_index = 0;
  int replications = 0;
  std::uint64_t base_seed = 0;
  bool timed_out = false;
  std::vector<MetricList> runs;

  // Mean of one metric over this cell's replications; nullopt when the
  // metric is absent or null in every run.
  std::optional<double> Mean(const std::string& metric) const;
};

// One benchmark entry of a Google-Benchmark JSON document, already
// min-of-N reduced: with repetitions, the minimum across the
// "iteration" entries of the same name (the standard noise floor for
// regression gating — the min is the least contaminated sample).
struct BenchEntry {
  std::string name;
  std::string family;  // name up to the first '/'
  int samples = 0;     // repetitions folded into the min
  double real_time_ns = 0;
  double cpu_time_ns = 0;
};

struct BenchDoc {
  std::string path;
  // The repo's own stamp ("release"/"debug"; see bench/perf_core) with
  // the library's library_build_type as fallback, "unknown" if neither.
  std::string build_type;
  std::string lto;  // "on"/"off"/"" when unstamped
  std::vector<BenchEntry> entries;

  const BenchEntry* FindEntry(const std::string& name) const;
};

// A sweep directory: the cell documents plus any per-shard telemetry
// documents found next to them (summarize --by-shard groups the
// latter). Cells are ordered by (canonical policy order, x_index);
// shard docs by (cell label, shard).
struct SweepDirData {
  std::string path;
  std::vector<SweepCellDoc> cells;
  // Per-shard telemetry docs grouped by cell label ("<policy>_<xx>"
  // for sweep telemetry, the file stem for bare strip_sim output).
  struct ShardGroup {
    std::string label;
    std::vector<TelemetryDoc> shards;  // ordered by shard index
  };
  std::vector<ShardGroup> shard_groups;

  // Policies (canonical order) and x values (by x_index) present in
  // the cells.
  std::vector<std::string> policies;
  std::vector<double> x_values;
  std::string x_name;
};

// --- loaders ---------------------------------------------------------------
//
// Each returns nullopt with *error = "<path>: reason" on failure.

[[nodiscard]] std::optional<TelemetryDoc> LoadTelemetryDoc(
    const std::string& path, std::string* error);
[[nodiscard]] std::optional<TelemetryDoc> ParseTelemetryDoc(
    const std::string& path, const JsonValue& doc, std::string* error);

[[nodiscard]] std::optional<SweepCellDoc> LoadSweepCellDoc(
    const std::string& path, std::string* error);

[[nodiscard]] std::optional<BenchDoc> LoadBenchDoc(
    const std::string& path, std::string* error);

// Scans `dir` for cell_*.json sweep-cell files and *.shard<k>
// telemetry files (both families may live in one directory or the
// scan may find only one of them). Fails when the directory cannot be
// read, any matching file is malformed, or nothing matches at all.
[[nodiscard]] std::optional<SweepDirData> LoadSweepDir(
    const std::string& dir, std::string* error);

// What kind of artifact a path holds, by probing the filesystem and
// the document's schema/shape.
enum class ArtifactKind { kTelemetry, kSweepCell, kBench, kSweepDir };
std::optional<ArtifactKind> ClassifyArtifact(const std::string& path,
                                             std::string* error);

// Reads one whole file; nullopt with *error set when unreadable.
[[nodiscard]] std::optional<std::string> ReadFileToString(
    const std::string& path, std::string* error);

// Sorted (lexicographic) regular-file names in `dir`; nullopt when the
// directory cannot be opened.
std::optional<std::vector<std::string>> ListDirSorted(
    const std::string& dir, std::string* error);

}  // namespace strip::obs::report

#endif  // STRIP_OBS_REPORT_ARTIFACT_H_
