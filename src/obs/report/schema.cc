#include "obs/report/schema.h"

#include <cmath>

namespace strip::obs::report {

namespace {

// Keywords the validator understands; any other keyword in a schema
// object is an error (a typo'd keyword must not silently validate).
constexpr const char* kKnownKeywords[] = {
    "$schema", "$id",        "title",    "description",
    "type",    "properties", "required", "additionalProperties",
    "items",   "prefixItems", "minItems", "maxItems",
    "enum",    "const",      "minimum",  "maximum",
};

bool Fail(std::string* error, const std::string& path,
          const std::string& why) {
  if (error != nullptr && error->empty()) *error = path + ": " + why;
  return false;
}

const char* KindName(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "boolean";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

bool MatchesType(const JsonValue& doc, const std::string& type) {
  if (type == "null") return doc.is_null();
  if (type == "boolean") return doc.is_bool();
  if (type == "number") return doc.is_number();
  if (type == "integer") {
    return doc.is_number() &&
           std::nearbyint(doc.number_value) == doc.number_value;
  }
  if (type == "string") return doc.is_string();
  if (type == "array") return doc.is_array();
  if (type == "object") return doc.is_object();
  return false;
}

bool ValuesEqual(const JsonValue& a, const JsonValue& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return a.bool_value == b.bool_value;
    case JsonValue::Kind::kNumber: return a.number_value == b.number_value;
    case JsonValue::Kind::kString: return a.string_value == b.string_value;
    default: return false;  // enum/const of composites is unused here
  }
}

bool Validate(const JsonValue& schema, const JsonValue& doc,
              const std::string& path, std::string* error) {
  if (!schema.is_object()) {
    return Fail(error, path, "schema node is not an object");
  }
  for (const auto& [keyword, value] : schema.members) {
    bool known = false;
    for (const char* candidate : kKnownKeywords) {
      if (keyword == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Fail(error, path,
                  "schema uses unsupported keyword '" + keyword + "'");
    }
  }

  if (const JsonValue* type = schema.Find("type")) {
    bool matched = false;
    if (type->is_string()) {
      matched = MatchesType(doc, type->string_value);
    } else if (type->is_array()) {
      for (const JsonValue& option : type->items) {
        if (option.is_string() && MatchesType(doc, option.string_value)) {
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      return Fail(error, path,
                  std::string("type mismatch (got ") + KindName(doc.kind) +
                      ")");
    }
  }

  if (const JsonValue* expect = schema.Find("const")) {
    if (!ValuesEqual(*expect, doc)) {
      return Fail(error, path, "const mismatch");
    }
  }
  if (const JsonValue* options = schema.Find("enum")) {
    bool matched = false;
    for (const JsonValue& option : options->items) {
      if (ValuesEqual(option, doc)) {
        matched = true;
        break;
      }
    }
    if (!matched) return Fail(error, path, "value not in enum");
  }

  if (doc.is_number()) {
    if (const JsonValue* minimum = schema.Find("minimum");
        minimum != nullptr && minimum->is_number() &&
        doc.number_value < minimum->number_value) {
      return Fail(error, path, "below minimum");
    }
    if (const JsonValue* maximum = schema.Find("maximum");
        maximum != nullptr && maximum->is_number() &&
        doc.number_value > maximum->number_value) {
      return Fail(error, path, "above maximum");
    }
  }

  if (doc.is_object()) {
    if (const JsonValue* required = schema.Find("required");
        required != nullptr && required->is_array()) {
      for (const JsonValue& name : required->items) {
        if (name.is_string() && doc.Find(name.string_value) == nullptr) {
          return Fail(error, path,
                      "missing required member '" + name.string_value + "'");
        }
      }
    }
    const JsonValue* properties = schema.Find("properties");
    const JsonValue* additional = schema.Find("additionalProperties");
    for (const auto& [name, member] : doc.members) {
      const JsonValue* member_schema =
          properties != nullptr ? properties->Find(name) : nullptr;
      const std::string member_path = path + "." + name;
      if (member_schema != nullptr) {
        if (!Validate(*member_schema, member, member_path, error)) {
          return false;
        }
        continue;
      }
      if (additional == nullptr) continue;  // default: allow
      if (additional->is_bool()) {
        if (!additional->bool_value) {
          return Fail(error, member_path, "unexpected member");
        }
        continue;
      }
      if (!Validate(*additional, member, member_path, error)) return false;
    }
  }

  if (doc.is_array()) {
    if (const JsonValue* min_items = schema.Find("minItems");
        min_items != nullptr && min_items->is_number() &&
        static_cast<double>(doc.items.size()) < min_items->number_value) {
      return Fail(error, path, "too few items");
    }
    if (const JsonValue* max_items = schema.Find("maxItems");
        max_items != nullptr && max_items->is_number() &&
        static_cast<double>(doc.items.size()) > max_items->number_value) {
      return Fail(error, path, "too many items");
    }
    const JsonValue* prefix = schema.Find("prefixItems");
    const JsonValue* items = schema.Find("items");
    for (std::size_t i = 0; i < doc.items.size(); ++i) {
      const std::string item_path =
          path + "[" + std::to_string(i) + "]";
      if (prefix != nullptr && prefix->is_array() &&
          i < prefix->items.size()) {
        if (!Validate(prefix->items[i], doc.items[i], item_path, error)) {
          return false;
        }
        continue;
      }
      if (items != nullptr) {
        if (!Validate(*items, doc.items[i], item_path, error)) return false;
      }
    }
  }
  return true;
}

}  // namespace

bool ValidateJsonSchema(const JsonValue& schema, const JsonValue& doc,
                        std::string* error) {
  if (error != nullptr) error->clear();
  return Validate(schema, doc, "$", error);
}

}  // namespace strip::obs::report
