#include "obs/report/json.h"

#include <cctype>
#include <cstdlib>

namespace strip::obs::report {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  const std::string& text;
  std::size_t at = 0;
  std::string error;

  bool Fail(const std::string& why) {
    if (error.empty()) {
      error = "byte " + std::to_string(at) + ": " + why;
    }
    return false;
  }

  void SkipWhitespace() {
    while (at < text.size()) {
      const char c = text[at];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++at;
    }
  }

  bool Literal(const char* word, std::size_t n) {
    if (text.compare(at, n, word) != 0) return Fail("bad literal");
    at += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (at >= text.size() || text[at] != '"') {
      return Fail("expected string");
    }
    ++at;
    out->clear();
    while (at < text.size()) {
      const char c = text[at];
      if (c == '"') {
        ++at;
        return true;
      }
      if (c == '\\') {
        if (at + 1 >= text.size()) return Fail("truncated escape");
        const char esc = text[at + 1];
        at += 2;
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (at + 4 > text.size()) return Fail("truncated \\u escape");
            unsigned int code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[at + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned int>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned int>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned int>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            at += 4;
            // UTF-8 encode the code point (surrogate pairs are not
            // recombined; the artifacts this reads are pure ASCII).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(
                  static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("control character in string");
      }
      out->push_back(c);
      ++at;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = at;
    if (at < text.size() && text[at] == '-') ++at;
    if (at >= text.size() || !std::isdigit(static_cast<unsigned char>(
                                 text[at]))) {
      return Fail("expected number");
    }
    while (at < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[at]))) {
      ++at;
    }
    if (at < text.size() && text[at] == '.') {
      ++at;
      if (at >= text.size() || !std::isdigit(static_cast<unsigned char>(
                                   text[at]))) {
        return Fail("bad fraction");
      }
      while (at < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[at]))) {
        ++at;
      }
    }
    if (at < text.size() && (text[at] == 'e' || text[at] == 'E')) {
      ++at;
      if (at < text.size() && (text[at] == '+' || text[at] == '-')) ++at;
      if (at >= text.size() || !std::isdigit(static_cast<unsigned char>(
                                   text[at]))) {
        return Fail("bad exponent");
      }
      while (at < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[at]))) {
        ++at;
      }
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value =
        std::strtod(text.substr(start, at - start).c_str(), nullptr);
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (at >= text.size()) return Fail("unexpected end of document");
    const char c = text[at];
    if (c == '{') {
      ++at;
      out->kind = JsonValue::Kind::kObject;
      SkipWhitespace();
      if (at < text.size() && text[at] == '}') {
        ++at;
        return true;
      }
      while (true) {
        SkipWhitespace();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWhitespace();
        if (at >= text.size() || text[at] != ':') {
          return Fail("expected ':'");
        }
        ++at;
        JsonValue value;
        if (!ParseValue(&value, depth + 1)) return false;
        out->members.emplace_back(std::move(key), std::move(value));
        SkipWhitespace();
        if (at >= text.size()) return Fail("unterminated object");
        if (text[at] == ',') {
          ++at;
          continue;
        }
        if (text[at] == '}') {
          ++at;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++at;
      out->kind = JsonValue::Kind::kArray;
      SkipWhitespace();
      if (at < text.size() && text[at] == ']') {
        ++at;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value, depth + 1)) return false;
        out->items.push_back(std::move(value));
        SkipWhitespace();
        if (at >= text.size()) return Fail("unterminated array");
        if (text[at] == ',') {
          ++at;
          continue;
        }
        if (text[at] == ']') {
          ++at;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Literal("true", 4);
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Literal("false", 5);
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null", 4);
    }
    return ParseNumber(out);
  }
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number() ? value->number_value
                                                : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_string() ? value->string_value
                                                : fallback;
}

bool JsonValue::BoolOr(const std::string& key, bool fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_bool() ? value->bool_value
                                              : fallback;
}

std::optional<JsonValue> ParseJson(const std::string& text,
                                   std::string* error) {
  Parser parser{text, 0, {}};
  JsonValue root;
  if (!parser.ParseValue(&root, 0)) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  parser.SkipWhitespace();
  if (parser.at != text.size()) {
    if (error != nullptr) {
      *error = "byte " + std::to_string(parser.at) +
               ": trailing garbage after document";
    }
    return std::nullopt;
  }
  return root;
}

}  // namespace strip::obs::report
