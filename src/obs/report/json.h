// A small deterministic JSON document parser for the report layer.
//
// The run artifacts strip_report ingests — telemetry documents,
// sweep-cell files, Google-Benchmark JSON — are real JSON, not the
// line-structured subset the trace readers key on, so the report
// library carries a proper recursive-descent DOM parser. Scope is
// deliberately narrow: parse a complete document into a value tree,
// reject anything malformed with a one-line error naming the byte
// offset, never crash on arbitrary bytes (fuzzed, like every other
// input-boundary parser in this repo). Object members keep document
// order — no unordered containers anywhere, so walking a parsed
// document is deterministic by construction.

#ifndef STRIP_OBS_REPORT_JSON_H_
#define STRIP_OBS_REPORT_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace strip::obs::report {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> items;                               // arrays
  std::vector<std::pair<std::string, JsonValue>> members;     // objects

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // First member with this key; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Member lookups with defaults, for tolerant artifact readers.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;
};

// Parses one complete JSON document (surrounding whitespace allowed,
// trailing garbage rejected). Returns nullopt with *error set to
// "byte N: reason" on malformed input. Nesting deeper than 64 levels
// is rejected, keeping the parser safe on adversarial inputs.
[[nodiscard]] std::optional<JsonValue> ParseJson(const std::string& text,
                                   std::string* error);

}  // namespace strip::obs::report

#endif  // STRIP_OBS_REPORT_JSON_H_
