// Machine-readable run telemetry: one JSON document per run.
//
// RunTelemetry bundles the observability layer into a single RAII
// attachment: a PeriodicSampler for the mid-run time series, three
// log-bucketed latency histograms (transaction response time, slack
// remaining at commit, update age at install), and a schema-versioned
// JSON exporter that emits the series, the histograms, and the run's
// RunMetrics in one document. Attach before Run(), write after:
//
//   obs::RunTelemetry telemetry(&system, {.seed = seed});
//   core::RunMetrics metrics = system.Run();
//   std::ofstream out(path);
//   telemetry.WriteJson(out, metrics);
//
// The document is deterministic: same config + seed => bit-identical
// bytes (fixed key order, %.17g number formatting, no timestamps).
// Schema: see "strip.telemetry/v4" in EXPERIMENTS.md § Observability.

#ifndef STRIP_OBS_TELEMETRY_H_
#define STRIP_OBS_TELEMETRY_H_

#include <cstdint>
#include <memory>
#include <ostream>

#include "core/system.h"
#include "obs/latency_histogram.h"
#include "obs/sampler.h"

namespace strip::obs {

// Identifies the telemetry document layout; bump on breaking changes.
// v2 added the robustness counters (fault_*, updates_shed_*,
// governor_*, outage_recovery_seconds, ...) to the metrics object.
// v3 added the sharded model: shard identity ("shard", "shards") in
// the run object and the cross-shard counters (txns_cross_shard,
// remote_*, cpu_remote_seconds) in the metrics object.
// v4 added the interconnect robustness counters (remote_retries,
// remote_timeouts, remote_degraded_reads, txns_remote_unavailable,
// link_messages_lost, partition_windows, partition_seconds,
// time_to_reconnect) to the metrics object.
inline constexpr const char* kTelemetrySchema = "strip.telemetry/v4";

class RunTelemetry : public core::SystemObserver {
 public:
  struct Options {
    // Simulated seconds between time-series probes.
    sim::Duration sample_interval = 1.0;
    // Histogram range [min, max) in seconds; samples outside land in
    // the underflow/overflow buckets.
    double histogram_min_seconds = 1e-4;
    double histogram_max_seconds = 100.0;
    int buckets_per_decade = 36;
    // Echoed into the document so a run is reproducible from its
    // telemetry alone (the System does not retain its seed).
    std::uint64_t seed = 0;
    // Which shard engine of a cluster this document describes (a
    // sharded run writes one document per shard, suffixed ".shard<k>");
    // the uniprocessor defaults identify the whole run.
    int shard = 0;
    int shards = 1;
  };

  // Attaches the recorder and its sampler to the System's observer
  // bus; detaches in the destructor. `system` must outlive this.
  explicit RunTelemetry(core::System* system)
      : RunTelemetry(system, Options()) {}
  RunTelemetry(core::System* system, Options options);
  ~RunTelemetry() override;

  RunTelemetry(const RunTelemetry&) = delete;
  RunTelemetry& operator=(const RunTelemetry&) = delete;

  // Emits the telemetry document. Call after System::Run(), passing
  // the metrics it returned.
  void WriteJson(std::ostream& out, const core::RunMetrics& metrics) const;

  // --- raw access (tests, custom reporting) --------------------------------

  const PeriodicSampler& sampler() const { return *sampler_; }
  // Committed transactions: completion − arrival.
  const LatencyHistogram& response_seconds() const { return response_; }
  // Committed transactions: deadline − completion.
  const LatencyHistogram& slack_at_commit_seconds() const { return slack_; }
  // Installed updates: install time − generation time.
  const LatencyHistogram& update_age_at_install_seconds() const {
    return age_;
  }

  // SystemObserver hooks feeding the histograms.
  void OnTransactionTerminal(sim::Time now,
                             const txn::Transaction& transaction) override;
  void OnUpdateInstalled(sim::Time now, const db::Update& update,
                         const txn::Transaction* on_demand_by) override;
  void OnStaleRead(sim::Time now, const txn::Transaction& transaction,
                   db::ObjectId object) override;
  void OnPhase(sim::Time now, Phase phase) override;

 private:
  LatencyHistogram MakeHistogram() const;

  core::System* system_;
  Options options_;
  std::unique_ptr<PeriodicSampler> sampler_;
  LatencyHistogram response_;
  LatencyHistogram slack_;
  LatencyHistogram age_;
  // Stale reads seen (the histograms' companion counter; the bus hook
  // exists so alerting observers need no polling).
  std::uint64_t stale_reads_seen_ = 0;
  sim::Time warmup_end_ = -1;
  sim::Time run_end_ = -1;
};

}  // namespace strip::obs

#endif  // STRIP_OBS_TELEMETRY_H_
