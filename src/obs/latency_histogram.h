// Log-bucketed histogram for latency-style distributions.
//
// The core's fixed-range linear sim::Histogram serves the paper's
// response-time summary, but latency and age distributions span orders
// of magnitude: a linear grid wide enough for the tail is too coarse
// for the head. This histogram spaces buckets geometrically, giving a
// bounded *relative* quantile error everywhere — the standard shape of
// production latency telemetry (HDR-style histograms).
//
// Layout: one underflow bucket for samples below `min`, then
// `buckets_per_decade` geometric buckets per decade across
// [min, max), then an overflow bucket. With the default 36 buckets per
// decade a bucket spans a factor of 10^(1/36) ≈ 1.066, so any quantile
// is reported within ~6.6% of the exact order statistic. Recording is
// O(1) (a log and an array increment), memory is a few hundred
// counters regardless of sample count.

#ifndef STRIP_OBS_LATENCY_HISTOGRAM_H_
#define STRIP_OBS_LATENCY_HISTOGRAM_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace strip::obs {

class LatencyHistogram {
 public:
  // Geometric buckets spanning [min, max), `buckets_per_decade` per
  // factor of 10. Requires 0 < min < max and buckets_per_decade >= 1.
  LatencyHistogram(double min, double max, int buckets_per_decade = 36);

  // Reconstructs a histogram from previously exported state (the
  // telemetry document layout: sparse occupied [index, count] buckets
  // plus the scalar summary; count is the bucket total and the sum is
  // rebuilt as mean·count). Returns nullopt instead of crashing when
  // the shape parameters are invalid or a bucket index is out of
  // range, so untrusted documents can be rebuilt safely.
  static std::optional<LatencyHistogram> FromBuckets(
      double min, double max, int buckets_per_decade,
      const std::vector<std::pair<std::size_t, std::uint64_t>>& buckets,
      double mean, double min_sample, double max_sample);

  void Add(double sample);

  // Bucket-wise merge of `other` into this histogram: the result is
  // exactly the histogram that would have recorded both sample
  // streams. Requires an identical bucket layout (min, max,
  // buckets_per_decade); returns false and leaves this histogram
  // unchanged on a layout mismatch.
  bool Merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  // Exact smallest / largest recorded sample (not bucket boundaries).
  double min_sample() const;
  double max_sample() const;

  // The q-quantile (q in [0, 1]): the geometric midpoint of the bucket
  // holding the q-th order statistic, clamped to the exact observed
  // min/max. 0 if empty. Relative error is bounded by half a bucket
  // width (~3.3% at 36 buckets/decade).
  double Quantile(double q) const;

  // Samples below min / at or above max (still included in count, sum,
  // and quantiles, as the extreme buckets).
  std::uint64_t underflow() const { return buckets_.front(); }
  std::uint64_t overflow() const { return buckets_.back(); }

  // --- bucket introspection (telemetry export) ------------------------------

  // Number of buckets, including the underflow and overflow buckets.
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t bucket_value(std::size_t i) const { return buckets_[i]; }
  // Upper edge of bucket i (the underflow bucket's edge is `min`; the
  // overflow bucket's is +infinity).
  double bucket_upper_edge(std::size_t i) const;

  double min() const { return min_; }
  double max() const { return max_; }
  int buckets_per_decade() const { return buckets_per_decade_; }

 private:
  // Index of the bucket a sample falls in.
  std::size_t BucketIndex(double sample) const;

  double min_;
  double max_;
  int buckets_per_decade_;
  // log10(min), cached for BucketIndex.
  double log_min_;
  // buckets_[0] = underflow, buckets_[1..n] = geometric,
  // buckets_[n+1] = overflow.
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_sample_ = 0;
  double max_sample_ = 0;
};

}  // namespace strip::obs

#endif  // STRIP_OBS_LATENCY_HISTOGRAM_H_
