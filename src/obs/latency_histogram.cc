#include "obs/latency_histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/check.h"

namespace strip::obs {

LatencyHistogram::LatencyHistogram(double min, double max,
                                   int buckets_per_decade)
    : min_(min),
      max_(max),
      buckets_per_decade_(buckets_per_decade),
      log_min_(std::log10(min)) {
  STRIP_CHECK_MSG(min > 0 && min < max, "need 0 < min < max");
  STRIP_CHECK_MSG(buckets_per_decade >= 1, "need buckets_per_decade >= 1");
  const double decades = std::log10(max) - log_min_;
  const auto geometric_buckets = static_cast<std::size_t>(
      std::ceil(decades * buckets_per_decade - 1e-9));
  // + underflow and overflow.
  buckets_.assign(geometric_buckets + 2, 0);
}

std::optional<LatencyHistogram> LatencyHistogram::FromBuckets(
    double min, double max, int buckets_per_decade,
    const std::vector<std::pair<std::size_t, std::uint64_t>>& buckets,
    double mean, double min_sample, double max_sample) {
  if (!(min > 0) || !(min < max) || buckets_per_decade < 1) {
    return std::nullopt;
  }
  LatencyHistogram h(min, max, buckets_per_decade);
  for (const auto& [index, count] : buckets) {
    if (index >= h.buckets_.size()) return std::nullopt;
    h.buckets_[index] += count;
    h.count_ += count;
  }
  h.sum_ = mean * static_cast<double>(h.count_);
  h.min_sample_ = min_sample;
  h.max_sample_ = max_sample;
  return h;
}

bool LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (min_ != other.min_ || max_ != other.max_ ||
      buckets_per_decade_ != other.buckets_per_decade_ ||
      buckets_.size() != other.buckets_.size()) {
    return false;
  }
  if (other.count_ == 0) return true;
  if (count_ == 0) {
    min_sample_ = other.min_sample_;
    max_sample_ = other.max_sample_;
  } else {
    min_sample_ = std::min(min_sample_, other.min_sample_);
    max_sample_ = std::max(max_sample_, other.max_sample_);
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return true;
}

std::size_t LatencyHistogram::BucketIndex(double sample) const {
  if (sample < min_) return 0;
  if (sample >= max_) return buckets_.size() - 1;
  const double position =
      (std::log10(sample) - log_min_) * buckets_per_decade_;
  // Clamp against floating-point edge cases at the boundaries.
  const auto index = static_cast<std::size_t>(std::max(0.0, position));
  return std::min(index + 1, buckets_.size() - 2);
}

void LatencyHistogram::Add(double sample) {
  if (count_ == 0) {
    min_sample_ = sample;
    max_sample_ = sample;
  } else {
    min_sample_ = std::min(min_sample_, sample);
    max_sample_ = std::max(max_sample_, sample);
  }
  ++count_;
  sum_ += sample;
  ++buckets_[BucketIndex(sample)];
}

double LatencyHistogram::min_sample() const {
  return count_ == 0 ? 0.0 : min_sample_;
}

double LatencyHistogram::max_sample() const {
  return count_ == 0 ? 0.0 : max_sample_;
}

double LatencyHistogram::bucket_upper_edge(std::size_t i) const {
  if (i == 0) return min_;
  if (i >= buckets_.size() - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::pow(10.0, log_min_ + static_cast<double>(i) /
                                       buckets_per_decade_);
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the bucket holding the ceil(q·count)-th sample.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen < rank) continue;
    double value;
    if (i == 0) {
      // Underflow: all we know is "below min"; report the exact
      // smallest sample.
      value = min_sample_;
    } else if (i == buckets_.size() - 1) {
      // Overflow: report the exact largest sample.
      value = max_sample_;
    } else {
      // Geometric midpoint of the bucket's edges.
      const double lower = bucket_upper_edge(i - 1);
      const double upper = bucket_upper_edge(i);
      value = std::sqrt(lower * upper);
    }
    return std::clamp(value, min_sample_, max_sample_);
  }
  return max_sample_;
}

}  // namespace strip::obs
