// Periodic probing of a live System into time series.
//
// The run-level RunMetrics answer *what* happened over a run; the
// paper's evaluation (Sections 5–6) reasons about *why* via quantities
// that evolve mid-run — queue depths, the fraction of stale view
// objects, and where the simulated CPU's time goes. The sampler probes
// the System at a fixed simulated-time interval (riding on the same
// simulator, so probes are deterministic and cost no model time) and
// records one Sample per tick.
//
// The sampler is also a SystemObserver: register it on the System's
// bus so it can pin the warm-up boundary and append a final sample at
// run end. Typical use:
//
//   obs::PeriodicSampler sampler(&system, {.interval = 0.5});
//   core::ScopedObserver scoped(&system.observer_bus(), &sampler);
//   core::RunMetrics metrics = system.Run();
//   // sampler.samples() now holds the run's time series.

#ifndef STRIP_OBS_SAMPLER_H_
#define STRIP_OBS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "core/system.h"
#include "sim/sim_time.h"

namespace strip::obs {

class PeriodicSampler : public core::SystemObserver {
 public:
  struct Options {
    // Simulated seconds between probes.
    sim::Duration interval = 1.0;
  };

  // One probe of the System's live state.
  struct Sample {
    sim::Time time = 0;
    // Queue depths and populations.
    std::uint64_t uq_depth = 0;
    std::uint64_t os_depth = 0;
    std::uint64_t ready_queue = 0;
    std::uint64_t live_txns = 0;
    // Fraction of each view partition currently stale (under the run's
    // active staleness criterion).
    double f_stale_low = 0;
    double f_stale_high = 0;
    // Cumulative CPU shares over the observation window so far; idle is
    // the remainder. All zero until the window has positive length.
    double cpu_share_txn = 0;
    double cpu_share_updater = 0;
    double cpu_share_idle = 0;
  };

  // Schedules the first probe one interval from now on the System's
  // simulator. `system` must outlive the sampler's last probe.
  explicit PeriodicSampler(core::System* system)
      : PeriodicSampler(system, Options()) {}
  PeriodicSampler(core::System* system, Options options);
  // Cancels the pending probe event.
  ~PeriodicSampler() override;

  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

  const std::vector<Sample>& samples() const { return samples_; }
  const Options& options() const { return options_; }
  // Simulated time the warm-up ended; negative if never (no warm-up,
  // or the sampler was not registered as an observer).
  sim::Time warmup_end() const { return warmup_end_; }
  sim::Time run_end() const { return run_end_; }

  // SystemObserver: phase boundaries (all other hooks stay no-ops).
  void OnPhase(sim::Time now, Phase phase) override;

 private:
  void ScheduleNextProbe();
  void Probe();

  core::System* system_;
  Options options_;
  std::vector<Sample> samples_;
  sim::EventQueue::Handle next_probe_;
  sim::Time warmup_end_ = -1;
  sim::Time run_end_ = -1;
  bool stopped_ = false;
};

}  // namespace strip::obs

#endif  // STRIP_OBS_SAMPLER_H_
