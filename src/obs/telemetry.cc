#include "obs/telemetry.h"

#include <cstdio>
#include <string>

#include "base/check.h"
#include "core/metrics_json.h"

namespace strip::obs {

namespace {

// JSON has no inf/nan; clamp to null. %.17g round-trips doubles
// exactly, keeping the document bit-identical for identical runs.
std::string Number(double v) {
  char buffer[32];
  if (v != v || v > 1e308 || v < -1e308) return "null";
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::string Number(std::uint64_t v) { return std::to_string(v); }

// Time values: null when the boundary never happened (< 0 sentinel).
std::string TimeOrNull(sim::Time t) { return t < 0 ? "null" : Number(t); }

void WriteHistogramJson(std::ostream& out, const char* indent,
                        const LatencyHistogram& h) {
  out << "{\n"
      << indent << "  \"count\": " << Number(h.count()) << ",\n"
      << indent << "  \"mean\": " << Number(h.mean()) << ",\n"
      << indent << "  \"min\": " << Number(h.min_sample()) << ",\n"
      << indent << "  \"max\": " << Number(h.max_sample()) << ",\n"
      << indent << "  \"p50\": " << Number(h.Quantile(0.50)) << ",\n"
      << indent << "  \"p90\": " << Number(h.Quantile(0.90)) << ",\n"
      << indent << "  \"p99\": " << Number(h.Quantile(0.99)) << ",\n"
      << indent << "  \"underflow\": " << Number(h.underflow()) << ",\n"
      << indent << "  \"overflow\": " << Number(h.overflow()) << ",\n"
      << indent << "  \"range\": [" << Number(h.min()) << ", "
      << Number(h.max()) << "],\n"
      << indent << "  \"buckets_per_decade\": " << h.buckets_per_decade()
      << ",\n";
  // Sparse bucket dump: [index, count] for the occupied buckets only
  // (edges are derivable from range and buckets_per_decade).
  out << indent << "  \"buckets\": [";
  bool first = true;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket_value(i) == 0) continue;
    out << (first ? "" : ", ") << "[" << i << ", "
        << Number(h.bucket_value(i)) << "]";
    first = false;
  }
  out << "]\n" << indent << "}";
}

template <typename T>
void WriteSeriesColumn(std::ostream& out, const char* name,
                       const std::vector<PeriodicSampler::Sample>& samples,
                       T PeriodicSampler::Sample::* field, bool last = false) {
  out << "    \"" << name << "\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out << (i ? ", " : "") << Number(samples[i].*field);
  }
  out << "]" << (last ? "\n" : ",\n");
}

void WriteMetricsJson(std::ostream& out, const core::RunMetrics& m) {
  out << "  \"metrics\": ";
  core::WriteRunMetricsJson(out, m, "    ", "  ");
}

}  // namespace

RunTelemetry::RunTelemetry(core::System* system, Options options)
    : system_(system),
      options_(options),
      response_(MakeHistogram()),
      slack_(MakeHistogram()),
      age_(MakeHistogram()) {
  STRIP_CHECK(system != nullptr);
  sampler_ = std::make_unique<PeriodicSampler>(
      system, PeriodicSampler::Options{options.sample_interval});
  system_->AddObserver(sampler_.get());
  system_->AddObserver(this);
}

RunTelemetry::~RunTelemetry() {
  system_->RemoveObserver(this);
  system_->RemoveObserver(sampler_.get());
}

LatencyHistogram RunTelemetry::MakeHistogram() const {
  return LatencyHistogram(options_.histogram_min_seconds,
                          options_.histogram_max_seconds,
                          options_.buckets_per_decade);
}

void RunTelemetry::OnTransactionTerminal(sim::Time now,
                                         const txn::Transaction& transaction) {
  if (transaction.outcome() != txn::TxnOutcome::kCommitted) return;
  response_.Add(now - transaction.arrival_time());
  slack_.Add(transaction.deadline() - now);
}

void RunTelemetry::OnUpdateInstalled(sim::Time now, const db::Update& update,
                                     const txn::Transaction* on_demand_by) {
  (void)on_demand_by;
  age_.Add(now - update.generation_time);
}

void RunTelemetry::OnStaleRead(sim::Time now,
                               const txn::Transaction& transaction,
                               db::ObjectId object) {
  (void)now;
  (void)transaction;
  (void)object;
  ++stale_reads_seen_;
}

void RunTelemetry::OnPhase(sim::Time now, Phase phase) {
  switch (phase) {
    case Phase::kWarmupEnd:
      // Restart the distributions so they cover the same observation
      // window as RunMetrics.
      warmup_end_ = now;
      response_ = MakeHistogram();
      slack_ = MakeHistogram();
      age_ = MakeHistogram();
      stale_reads_seen_ = 0;
      break;
    case Phase::kRunEnd:
      run_end_ = now;
      break;
  }
}

void RunTelemetry::WriteJson(std::ostream& out,
                             const core::RunMetrics& metrics) const {
  const core::Config& config = system_->config();
  out << "{\n";
  out << "  \"schema\": \"" << kTelemetrySchema << "\",\n";

  out << "  \"run\": {\n"
      << "    \"policy\": \"" << core::PolicyKindName(config.policy)
      << "\",\n"
      << "    \"staleness\": \""
      << db::StalenessCriterionName(config.staleness) << "\",\n"
      << "    \"seed\": " << options_.seed << ",\n"
      << "    \"shard\": " << options_.shard << ",\n"
      << "    \"shards\": " << options_.shards << ",\n"
      << "    \"sim_seconds\": " << Number(config.sim_seconds) << ",\n"
      << "    \"warmup_seconds\": " << Number(config.warmup_seconds) << ",\n"
      << "    \"lambda_t\": " << Number(config.lambda_t) << ",\n"
      << "    \"lambda_u\": " << Number(config.lambda_u) << ",\n"
      << "    \"alpha\": " << Number(config.alpha) << "\n"
      << "  },\n";

  out << "  \"phases\": {\n"
      << "    \"warmup_end\": " << TimeOrNull(warmup_end_) << ",\n"
      << "    \"run_end\": " << TimeOrNull(run_end_) << "\n"
      << "  },\n";

  const std::vector<PeriodicSampler::Sample>& samples = sampler_->samples();
  out << "  \"series\": {\n"
      << "    \"interval_seconds\": " << Number(options_.sample_interval)
      << ",\n";
  WriteSeriesColumn(out, "time", samples, &PeriodicSampler::Sample::time);
  WriteSeriesColumn(out, "uq_depth", samples,
                    &PeriodicSampler::Sample::uq_depth);
  WriteSeriesColumn(out, "os_depth", samples,
                    &PeriodicSampler::Sample::os_depth);
  WriteSeriesColumn(out, "ready_queue", samples,
                    &PeriodicSampler::Sample::ready_queue);
  WriteSeriesColumn(out, "live_txns", samples,
                    &PeriodicSampler::Sample::live_txns);
  WriteSeriesColumn(out, "f_stale_low", samples,
                    &PeriodicSampler::Sample::f_stale_low);
  WriteSeriesColumn(out, "f_stale_high", samples,
                    &PeriodicSampler::Sample::f_stale_high);
  WriteSeriesColumn(out, "cpu_share_txn", samples,
                    &PeriodicSampler::Sample::cpu_share_txn);
  WriteSeriesColumn(out, "cpu_share_updater", samples,
                    &PeriodicSampler::Sample::cpu_share_updater);
  WriteSeriesColumn(out, "cpu_share_idle", samples,
                    &PeriodicSampler::Sample::cpu_share_idle, /*last=*/true);
  out << "  },\n";

  out << "  \"histograms\": {\n";
  out << "    \"response_seconds\": ";
  WriteHistogramJson(out, "    ", response_);
  out << ",\n    \"slack_at_commit_seconds\": ";
  WriteHistogramJson(out, "    ", slack_);
  out << ",\n    \"update_age_at_install_seconds\": ";
  WriteHistogramJson(out, "    ", age_);
  out << "\n  },\n";

  out << "  \"stale_reads_seen\": " << stale_reads_seen_ << ",\n";
  WriteMetricsJson(out, metrics);
  out << "\n}\n";
}

}  // namespace strip::obs
