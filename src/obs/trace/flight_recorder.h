// Bounded flight recorder with anomaly-triggered post-mortem dumps.
//
// Retains the last `capacity` TraceEvents of a run in a preallocated
// ring buffer (no allocation per event) and watches three anomaly
// predicates as events stream through:
//
//   deadline-miss-burst   >= miss_burst_count deadline failures
//                         (missed-deadline or infeasible terminals)
//                         within miss_burst_window_seconds
//   stale-fraction        over the last stale_window terminal
//                         transactions, the fraction that read stale
//                         data >= stale_fraction
//   uq-depth-spike        the update queue's depth (reconstructed from
//                         enqueue/install/drop events) reached
//                         uq_depth_threshold
//   outage-recovery       after a fault-end event of an outage window,
//                         the reconstructed update-queue depth failed
//                         to drain back to outage_recovery_depth within
//                         outage_recovery_deadline_seconds — the
//                         catch-up burst did not clear the backlog
//
// When a predicate first trips the recorder latches: the tripping
// event is retained and recording stops, so the ring holds the window
// leading up to the anomaly. DumpTo writes it in the flight-record
// text format — a versioned header line, a column header, then one
// CSV row per event (oldest first):
//
//   # strip-flight v1 trip=<predicate> trip_time=<t> events=<n>
//   kind,time,txn,update,object,detail,reason,instructions
//   dispatch,0.004176060,3,,,compute,,30000
//
// The format is byte-deterministic and parsed back by
// obs::trace::ParseFlightDump (trace_analysis.h) / tools/strip_trace.

#ifndef STRIP_OBS_TRACE_FLIGHT_RECORDER_H_
#define STRIP_OBS_TRACE_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <ostream>
#include <unordered_set>
#include <vector>

#include "obs/trace/collector.h"

namespace strip::obs::trace {

struct FlightRecorderOptions {
  // Events retained (the post-mortem window).
  std::size_t capacity = 4096;

  // deadline-miss-burst predicate.
  int miss_burst_count = 8;
  double miss_burst_window_seconds = 1.0;

  // stale-fraction predicate (evaluated once the window is full).
  int stale_window = 256;
  double stale_fraction = 0.5;

  // uq-depth-spike predicate.
  std::size_t uq_depth_threshold = 512;

  // outage-recovery predicate: after an outage window closes the
  // reconstructed queue depth must drain to <= outage_recovery_depth
  // within outage_recovery_deadline_seconds of simulated time.
  double outage_recovery_deadline_seconds = 20.0;
  std::size_t outage_recovery_depth = 64;

  // When false the recorder only records (never trips).
  bool armed = true;
};

class FlightRecorder : public TraceCollector {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  // Did a predicate trip? Once tripped the recorder is latched and
  // ignores further events.
  bool tripped() const { return trip_predicate_ != nullptr; }
  // The tripped predicate's name ("deadline-miss-burst",
  // "stale-fraction", "uq-depth-spike", "outage-recovery"), or nullptr.
  const char* trip_predicate() const { return trip_predicate_; }
  sim::Time trip_time() const { return trip_time_; }
  // For outage-recovery trips: the label of the outage window whose
  // recovery deadline was blown (e.g. "outage@10+5"); nullptr for the
  // other predicates. Points into run-owned storage.
  const char* trip_window() const { return trip_window_; }

  // Events currently retained (<= capacity).
  std::size_t size() const;
  std::uint64_t events_seen() const { return events_seen_; }

  // Writes the retained window, oldest first, in the flight-record
  // text format (see file comment).
  void DumpTo(std::ostream& out) const;

 protected:
  void Emit(const TraceEvent& event) override;

 private:
  void Check(const TraceEvent& event);
  void Trip(const char* predicate, sim::Time when);

  FlightRecorderOptions options_;
  // Ring: slot head_ is the next write position; full_ marks wrap.
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  bool full_ = false;
  std::uint64_t events_seen_ = 0;

  // Predicate state.
  std::deque<sim::Time> recent_miss_times_;
  std::deque<bool> recent_stale_;
  int recent_stale_count_ = 0;
  std::unordered_set<std::uint64_t> queued_updates_;
  // Outage-recovery watch: armed by an outage fault-end, cleared when
  // the queue drains below the threshold.
  bool outage_watch_ = false;
  sim::Time outage_watch_deadline_ = 0;
  const char* outage_watch_label_ = nullptr;
  const char* trip_predicate_ = nullptr;
  sim::Time trip_time_ = 0;
  const char* trip_window_ = nullptr;
};

}  // namespace strip::obs::trace

#endif  // STRIP_OBS_TRACE_FLIGHT_RECORDER_H_
