// Bounded flight recorder with anomaly-triggered post-mortem dumps.
//
// Retains the last `capacity` TraceEvents of a run in a preallocated
// ring buffer (no allocation per event) and watches three anomaly
// predicates as events stream through:
//
//   deadline-miss-burst   >= miss_burst_count deadline failures
//                         (missed-deadline or infeasible terminals)
//                         within miss_burst_window_seconds
//   stale-fraction        over the last stale_window terminal
//                         transactions, the fraction that read stale
//                         data >= stale_fraction
//   uq-depth-spike        the update queue's depth (reconstructed from
//                         enqueue/install/drop events) reached
//                         uq_depth_threshold
//
// When a predicate first trips the recorder latches: the tripping
// event is retained and recording stops, so the ring holds the window
// leading up to the anomaly. DumpTo writes it in the flight-record
// text format — a versioned header line, a column header, then one
// CSV row per event (oldest first):
//
//   # strip-flight v1 trip=<predicate> trip_time=<t> events=<n>
//   kind,time,txn,update,object,detail,reason,instructions
//   dispatch,0.004176060,3,,,compute,,30000
//
// The format is byte-deterministic and parsed back by
// obs::trace::ParseFlightDump (trace_analysis.h) / tools/strip_trace.

#ifndef STRIP_OBS_TRACE_FLIGHT_RECORDER_H_
#define STRIP_OBS_TRACE_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <ostream>
#include <unordered_set>
#include <vector>

#include "obs/trace/collector.h"

namespace strip::obs::trace {

struct FlightRecorderOptions {
  // Events retained (the post-mortem window).
  std::size_t capacity = 4096;

  // deadline-miss-burst predicate.
  int miss_burst_count = 8;
  double miss_burst_window_seconds = 1.0;

  // stale-fraction predicate (evaluated once the window is full).
  int stale_window = 256;
  double stale_fraction = 0.5;

  // uq-depth-spike predicate.
  std::size_t uq_depth_threshold = 512;

  // When false the recorder only records (never trips).
  bool armed = true;
};

class FlightRecorder : public TraceCollector {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  // Did a predicate trip? Once tripped the recorder is latched and
  // ignores further events.
  bool tripped() const { return trip_predicate_ != nullptr; }
  // The tripped predicate's name ("deadline-miss-burst",
  // "stale-fraction", "uq-depth-spike"), or nullptr.
  const char* trip_predicate() const { return trip_predicate_; }
  sim::Time trip_time() const { return trip_time_; }

  // Events currently retained (<= capacity).
  std::size_t size() const;
  std::uint64_t events_seen() const { return events_seen_; }

  // Writes the retained window, oldest first, in the flight-record
  // text format (see file comment).
  void DumpTo(std::ostream& out) const;

 protected:
  void Emit(const TraceEvent& event) override;

 private:
  void Check(const TraceEvent& event);
  void Trip(const char* predicate, sim::Time when);

  FlightRecorderOptions options_;
  // Ring: slot head_ is the next write position; full_ marks wrap.
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  bool full_ = false;
  std::uint64_t events_seen_ = 0;

  // Predicate state.
  std::deque<sim::Time> recent_miss_times_;
  std::deque<bool> recent_stale_;
  int recent_stale_count_ = 0;
  std::unordered_set<std::uint64_t> queued_updates_;
  const char* trip_predicate_ = nullptr;
  sim::Time trip_time_ = 0;
};

}  // namespace strip::obs::trace

#endif  // STRIP_OBS_TRACE_FLIGHT_RECORDER_H_
