#include "obs/trace/chrome_trace.h"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "base/check.h"

namespace strip::obs::trace {

namespace {

// Simulated seconds -> trace microseconds, fixed formatting so the
// document is byte-deterministic.
std::string Ts(sim::Time t) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.3f", t * 1e6);
  return buffer;
}

// %.17g round-trips doubles and is locale-independent for finite
// values (the model produces no inf/nan here).
std::string Num(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::string Id(std::uint64_t id) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, id);
  return buffer;
}

// "low:3" / "high:7" — the object token shared with the flight-record
// format.
std::string Obj(db::ObjectId object) {
  return std::string(db::ObjectClassName(object.cls)) + ":" +
         Id(static_cast<std::uint64_t>(object.index));
}

}  // namespace

ChromeTraceDocument::ChromeTraceDocument(std::ostream* out) : out_(out) {
  STRIP_CHECK(out != nullptr);
  *out_ << "{\"traceEvents\":[";
}

ChromeTraceDocument::~ChromeTraceDocument() { Finish(); }

void ChromeTraceDocument::Finish() {
  if (finished_) return;
  finished_ = true;
  *out_ << "\n]}\n";
  out_->flush();
}

void ChromeTraceDocument::WriteRaw(const std::string& body) {
  STRIP_CHECK_MSG(!finished_, "event emitted after document Finish()");
  *out_ << (first_ ? "\n" : ",\n") << "{" << body << "}";
  first_ = false;
  ++events_written_;
}

ChromeTraceWriter::ChromeTraceWriter(std::ostream* out)
    : owned_document_(std::make_unique<ChromeTraceDocument>(out)),
      document_(owned_document_.get()),
      pid_frag_("\"pid\":1,") {
  WriteRaw("\"name\":\"process_name\",\"ph\":\"M\"," + pid_frag_ +
           "\"args\":{\"name\":\"strip\"}");
  WriteMeta(kSchedulerTid, "scheduler");
  WriteMeta(kUpdatesTid, "updates");
}

ChromeTraceWriter::ChromeTraceWriter(ChromeTraceDocument* document, int pid,
                                     const std::string& process_name)
    : document_(document),
      pid_frag_("\"pid\":" + Id(static_cast<std::uint64_t>(pid)) + ",") {
  STRIP_CHECK(document != nullptr);
  STRIP_CHECK(pid >= 1);
  WriteRaw("\"name\":\"process_name\",\"ph\":\"M\"," + pid_frag_ +
           "\"args\":{\"name\":\"" + process_name + "\"}");
  WriteMeta(kSchedulerTid, "scheduler");
  WriteMeta(kUpdatesTid, "updates");
}

ChromeTraceWriter::~ChromeTraceWriter() { Finish(); }

void ChromeTraceWriter::Finish() {
  if (finished_) return;
  if (span_open_) {
    // The run ended mid-segment: close the span at the last timestamp.
    WriteRaw(std::string("\"name\":\"") + open_name_ +
             "\",\"cat\":\"segment-complete\",\"ph\":\"E\"," + pid_frag_ +
             "\"tid\":" + Id(open_tid_) + ",\"ts\":" + last_ts_);
    span_open_ = false;
  }
  finished_ = true;
  if (owned_document_ != nullptr) owned_document_->Finish();
}

void ChromeTraceWriter::WriteRaw(const std::string& body) {
  STRIP_CHECK_MSG(!finished_, "event emitted after Finish()");
  document_->WriteRaw(body);
  ++events_written_;
}

void ChromeTraceWriter::WriteMeta(std::uint64_t tid, const char* name) {
  WriteRaw(std::string("\"name\":\"thread_name\",\"ph\":\"M\",") + pid_frag_ +
           "\"tid\":" + Id(tid) + ",\"args\":{\"name\":\"" + name + "\"}");
}

std::uint64_t ChromeTraceWriter::TxnTid(std::uint64_t txn_id,
                                        txn::TxnClass cls) {
  const std::uint64_t tid = kTxnTidBase + txn_id;
  if (named_txns_.insert(txn_id).second) {
    const std::string name =
        "txn " + Id(txn_id) + " (" + txn::TxnClassName(cls) + ")";
    WriteRaw(std::string("\"name\":\"thread_name\",\"ph\":\"M\",") +
             pid_frag_ + "\"tid\":" + Id(tid) + ",\"args\":{\"name\":\"" +
             name + "\"}");
  }
  return tid;
}

void ChromeTraceWriter::Emit(const TraceEvent& event) {
  const std::string ts = Ts(event.time);
  last_ts_ = ts;
  switch (event.kind) {
    case EventKind::kTxnAdmitted: {
      const std::uint64_t tid = TxnTid(event.txn_id, event.txn_cls);
      WriteRaw("\"name\":\"admitted\",\"cat\":\"txn-admitted\",\"ph\":\"i\","
               "\"s\":\"t\"," + pid_frag_ + "\"tid\":" + Id(tid) +
               ",\"ts\":" + ts +
               ",\"args\":{\"txn\":" + Id(event.txn_id) + ",\"class\":\"" +
               txn::TxnClassName(event.txn_cls) + "\",\"deadline\":" +
               Num(event.deadline) + ",\"value\":" + Num(event.value) + "}");
      break;
    }
    case EventKind::kTxnTerminal: {
      const std::uint64_t tid = TxnTid(event.txn_id, event.txn_cls);
      WriteRaw(std::string("\"name\":\"") +
               txn::TxnOutcomeName(event.outcome) +
               "\",\"cat\":\"txn-terminal\",\"ph\":\"i\",\"s\":\"t\"," +
               pid_frag_ + "\"tid\":" + Id(tid) + ",\"ts\":" + ts +
               ",\"args\":{\"txn\":" + Id(event.txn_id) + ",\"stale\":" +
               (event.read_stale ? "1" : "0") + "}");
      break;
    }
    case EventKind::kUpdateArrival:
      WriteRaw("\"name\":\"arrival\",\"cat\":\"update-arrival\",\"ph\":\"i\","
               "\"s\":\"t\"," + pid_frag_ + "\"tid\":" + Id(kUpdatesTid) +
               ",\"ts\":" + ts + ",\"args\":{\"update\":" +
               Id(event.update_id) + ",\"obj\":\"" + Obj(event.object) +
               "\"}");
      break;
    case EventKind::kUpdateEnqueued:
      enqueue_times_[event.update_id] = event.time;
      WriteRaw("\"name\":\"enqueue\",\"cat\":\"update-enqueued\",\"ph\":\"i\","
               "\"s\":\"t\"," + pid_frag_ + "\"tid\":" + Id(kUpdatesTid) +
               ",\"ts\":" + ts + ",\"args\":{\"update\":" +
               Id(event.update_id) + ",\"obj\":\"" + Obj(event.object) +
               "\"}");
      break;
    case EventKind::kUpdateInstalled: {
      if (event.txn_id == kNoId) {
        WriteRaw("\"name\":\"install\",\"cat\":\"update-installed\","
                 "\"ph\":\"i\",\"s\":\"t\"," + pid_frag_ + "\"tid\":" +
                 Id(kUpdatesTid) + ",\"ts\":" + ts + ",\"args\":{\"update\":" +
                 Id(event.update_id) + ",\"obj\":\"" + Obj(event.object) +
                 "\"}");
      } else {
        // On-demand install: drawn on the demanding transaction's
        // track, with a flow arrow from the update's enqueue point.
        const std::uint64_t tid = TxnTid(event.txn_id, event.txn_cls);
        WriteRaw("\"name\":\"install-od\",\"cat\":\"update-installed\","
                 "\"ph\":\"i\",\"s\":\"t\"," + pid_frag_ + "\"tid\":" +
                 Id(tid) + ",\"ts\":" + ts + ",\"args\":{\"update\":" +
                 Id(event.update_id) + ",\"obj\":\"" + Obj(event.object) +
                 "\",\"txn\":" + Id(event.txn_id) + "}");
        const auto it = enqueue_times_.find(event.update_id);
        const std::string start_ts =
            it != enqueue_times_.end() ? Ts(it->second) : ts;
        WriteRaw("\"name\":\"od-install\",\"cat\":\"od-flow\",\"ph\":\"s\"," +
                 pid_frag_ + "\"tid\":" + Id(kUpdatesTid) + ",\"ts\":" +
                 start_ts + ",\"id\":" + Id(event.update_id) + "");
        WriteRaw("\"name\":\"od-install\",\"cat\":\"od-flow\",\"ph\":\"f\","
                 "\"bp\":\"e\"," + pid_frag_ + "\"tid\":" + Id(tid) +
                 ",\"ts\":" + ts + ",\"id\":" + Id(event.update_id) + "");
      }
      enqueue_times_.erase(event.update_id);
      break;
    }
    case EventKind::kUpdateDropped:
      WriteRaw(std::string("\"name\":\"") +
               core::DropReasonName(event.drop_reason) +
               "\",\"cat\":\"update-dropped\",\"ph\":\"i\",\"s\":\"t\"," +
               pid_frag_ + "\"tid\":" + Id(kUpdatesTid) + ",\"ts\":" + ts +
               ",\"args\":{\"update\":" + Id(event.update_id) +
               ",\"obj\":\"" + Obj(event.object) + "\"}");
      enqueue_times_.erase(event.update_id);
      break;
    case EventKind::kDispatch: {
      const std::uint64_t tid =
          event.txn_id != kNoId ? TxnTid(event.txn_id, event.txn_cls)
                                : kUpdatesTid;
      const char* name = core::DispatchKindName(event.dispatch_kind);
      std::string args = "\"instr\":" + Num(event.instructions);
      if (event.txn_id != kNoId) args += ",\"txn\":" + Id(event.txn_id);
      if (event.update_id != kNoId) {
        args += ",\"update\":" + Id(event.update_id) + ",\"obj\":\"" +
                Obj(event.object) + "\"";
      }
      WriteRaw(std::string("\"name\":\"") + name +
               "\",\"cat\":\"dispatch\",\"ph\":\"B\"," + pid_frag_ +
               "\"tid\":" + Id(tid) + ",\"ts\":" + ts + ",\"args\":{" +
               args + "}");
      open_tid_ = tid;
      open_name_ = name;
      span_open_ = true;
      break;
    }
    case EventKind::kSegmentComplete:
      STRIP_CHECK_MSG(span_open_, "segment-complete without open span");
      WriteRaw(std::string("\"name\":\"") + open_name_ +
               "\",\"cat\":\"segment-complete\",\"ph\":\"E\"," + pid_frag_ +
               "\"tid\":" + Id(open_tid_) + ",\"ts\":" + ts);
      span_open_ = false;
      break;
    case EventKind::kPreempt: {
      // The preemption closes the open span, then marks why.
      STRIP_CHECK_MSG(span_open_, "preempt without open span");
      WriteRaw(std::string("\"name\":\"") + open_name_ +
               "\",\"cat\":\"segment-complete\",\"ph\":\"E\"," + pid_frag_ +
               "\"tid\":" + Id(open_tid_) + ",\"ts\":" + ts);
      span_open_ = false;
      const std::uint64_t tid = TxnTid(event.txn_id, event.txn_cls);
      WriteRaw("\"name\":\"preempt\",\"cat\":\"preempt\",\"ph\":\"i\","
               "\"s\":\"t\"," + pid_frag_ + "\"tid\":" + Id(tid) +
               ",\"ts\":" + ts +
               ",\"args\":{\"txn\":" + Id(event.txn_id) + ",\"reason\":\"" +
               core::PreemptReasonName(event.preempt_reason) + "\"}");
      break;
    }
    case EventKind::kStaleRead: {
      const std::uint64_t tid = TxnTid(event.txn_id, event.txn_cls);
      WriteRaw("\"name\":\"stale-read\",\"cat\":\"stale-read\",\"ph\":\"i\","
               "\"s\":\"t\"," + pid_frag_ + "\"tid\":" + Id(tid) +
               ",\"ts\":" + ts +
               ",\"args\":{\"txn\":" + Id(event.txn_id) + ",\"obj\":\"" +
               Obj(event.object) + "\"}");
      break;
    }
    case EventKind::kPolicyDecision:
      WriteRaw(std::string("\"name\":\"") +
               core::SchedulerChoiceName(event.choice) +
               "\",\"cat\":\"policy-decision\",\"ph\":\"i\",\"s\":\"t\"," +
               pid_frag_ + "\"tid\":" + Id(kSchedulerTid) + ",\"ts\":" + ts +
               ",\"args\":{\"policy\":\"" +
               core::PolicyKindName(event.policy) + "\",\"reason\":\"" +
               (event.reason != nullptr ? event.reason : "") + "\"}");
      break;
    case EventKind::kPhase:
      WriteRaw(std::string("\"name\":\"") + core::PhaseName(event.phase) +
               "\",\"cat\":\"phase\",\"ph\":\"i\",\"s\":\"t\"," + pid_frag_ +
               "\"tid\":" + Id(kSchedulerTid) + ",\"ts\":" + ts);
      break;
    case EventKind::kFaultBegin:
    case EventKind::kFaultEnd:
      // Process-scoped instants so the fault window is visible on every
      // track while inspecting a trace taken through a fault.
      WriteRaw(std::string("\"name\":\"") +
               (event.fault_kind != nullptr ? event.fault_kind : "fault") +
               (event.kind == EventKind::kFaultBegin ? " begin" : " end") +
               "\",\"cat\":\"" + EventKindName(event.kind) +
               "\",\"ph\":\"i\",\"s\":\"p\"," + pid_frag_ + "\"tid\":" +
               Id(kSchedulerTid) + ",\"ts\":" + ts +
               ",\"args\":{\"window\":\"" +
               (event.fault_label != nullptr ? event.fault_label : "") +
               "\"}");
      break;
    case EventKind::kRemoteIssued:
    case EventKind::kRemoteResolved: {
      // Home-shard instants on the waiting transaction's track (its
      // admission already named the track).
      const std::uint64_t tid = TxnTid(event.txn_id, event.txn_cls);
      WriteRaw(std::string("\"name\":\"") + EventKindName(event.kind) +
               "\",\"cat\":\"" + EventKindName(event.kind) +
               "\",\"ph\":\"i\",\"s\":\"t\"," + pid_frag_ + "\"tid\":" +
               Id(tid) + ",\"ts\":" + ts + ",\"args\":{\"req\":" +
               Id(event.request_id) + ",\"txn\":" + Id(event.txn_id) +
               ",\"peer\":" + Id(static_cast<std::uint64_t>(
                                 event.peer_shard)) +
               ",\"obj\":\"" + Obj(event.object) + "\"" +
               (event.kind == EventKind::kRemoteResolved
                    ? std::string(",\"state\":\"") +
                          (event.reason != nullptr ? event.reason : "") +
                          "\""
                    : std::string()) +
               "}");
      break;
    }
    case EventKind::kRemoteQueued:
    case EventKind::kRemoteServiced:
      // Peer-shard instants on the update process's track (the service
      // segment itself appears as a remote-service dispatch span).
      WriteRaw(std::string("\"name\":\"") + EventKindName(event.kind) +
               "\",\"cat\":\"" + EventKindName(event.kind) +
               "\",\"ph\":\"i\",\"s\":\"t\"," + pid_frag_ + "\"tid\":" +
               Id(kUpdatesTid) + ",\"ts\":" + ts + ",\"args\":{\"req\":" +
               Id(event.request_id) + ",\"txn\":" + Id(event.txn_id) +
               ",\"home\":" + Id(static_cast<std::uint64_t>(
                                  event.home_shard)) +
               ",\"obj\":\"" + Obj(event.object) + "\"}");
      break;
    case EventKind::kRemoteTimeout:
      // Home-shard instants on the waiting transaction's track; the
      // "state" arg distinguishes a retry from budget exhaustion.
      WriteRaw(std::string("\"name\":\"") + EventKindName(event.kind) +
               "\",\"cat\":\"" + EventKindName(event.kind) +
               "\",\"ph\":\"i\",\"s\":\"t\"," + pid_frag_ + "\"tid\":" +
               Id(TxnTid(event.txn_id, event.txn_cls)) + ",\"ts\":" + ts +
               ",\"args\":{\"req\":" + Id(event.request_id) + ",\"txn\":" +
               Id(event.txn_id) + ",\"peer\":" +
               Id(static_cast<std::uint64_t>(event.peer_shard)) +
               ",\"attempt\":" +
               Id(static_cast<std::uint64_t>(event.attempt)) +
               ",\"state\":\"" +
               (event.reason != nullptr ? event.reason : "") + "\"}");
      break;
    case EventKind::kRemoteDegraded:
      WriteRaw(std::string("\"name\":\"") + EventKindName(event.kind) +
               "\",\"cat\":\"" + EventKindName(event.kind) +
               "\",\"ph\":\"i\",\"s\":\"t\"," + pid_frag_ + "\"tid\":" +
               Id(TxnTid(event.txn_id, event.txn_cls)) + ",\"ts\":" + ts +
               ",\"args\":{\"req\":" + Id(event.request_id) + ",\"txn\":" +
               Id(event.txn_id) + ",\"peer\":" +
               Id(static_cast<std::uint64_t>(event.peer_shard)) +
               ",\"obj\":\"" + Obj(event.object) + "\"}");
      break;
    case EventKind::kRemoteDropped:
      // Process-scoped: a message lost in the fabric belongs to no
      // single transaction track's timeline of CPU work.
      WriteRaw(std::string("\"name\":\"") + EventKindName(event.kind) +
               "\",\"cat\":\"" + EventKindName(event.kind) +
               "\",\"ph\":\"i\",\"s\":\"p\"," + pid_frag_ + "\"tid\":" +
               Id(kSchedulerTid) + ",\"ts\":" + ts + ",\"args\":{\"req\":" +
               Id(event.request_id) + ",\"txn\":" + Id(event.txn_id) +
               ",\"leg\":\"" +
               (event.reason != nullptr ? event.reason : "") + "\"}");
      break;
  }
}

}  // namespace strip::obs::trace
