#include "obs/trace/trace_analysis.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace strip::obs::trace {

namespace {

// Splits one CSV row into exactly `n` columns (the formats never quote
// or embed commas).
bool SplitColumns(const std::string& line, std::size_t n,
                  std::vector<std::string>* columns) {
  columns->clear();
  std::size_t start = 0;
  while (columns->size() + 1 < n) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) return false;
    columns->push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  columns->push_back(line.substr(start));
  return columns->size() == n;
}

std::uint64_t ParseId(const std::string& token) {
  if (token.empty()) return kNoId;
  return std::strtoull(token.c_str(), nullptr, 10);
}

// "key=value" token from a header line; "" if absent.
std::string HeaderToken(const std::string& line, const std::string& key) {
  const std::string needle = key + "=";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find(' ', start);
  return line.substr(start, end == std::string::npos ? std::string::npos
                                                     : end - start);
}

// `"key":"value"` from a Chrome event line; "" if absent.
std::string JsonString(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

// `"key":number` from a Chrome event line; nullopt if absent.
std::optional<double> JsonNumber(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

}  // namespace

std::optional<ParsedTrace> ParseFlightDump(std::istream& in,
                                           std::string* error) {
  ParsedTrace trace;
  std::string line;
  if (!std::getline(in, line) || line.rfind("# strip-flight v1", 0) != 0) {
    if (error != nullptr) *error = "not a strip-flight v1 dump";
    return std::nullopt;
  }
  trace.trip_predicate = HeaderToken(line, "trip");
  trace.trip_time = std::strtod(HeaderToken(line, "trip_time").c_str(),
                                nullptr);
  trace.trip_window = HeaderToken(line, "window");
  if (!std::getline(in, line) || line.rfind("kind,time", 0) != 0) {
    if (error != nullptr) *error = "missing column header";
    return std::nullopt;
  }
  std::vector<std::string> columns;
  int row = 2;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) continue;
    if (!SplitColumns(line, 8, &columns)) {
      if (error != nullptr) {
        *error = "malformed row at line " + std::to_string(row);
      }
      return std::nullopt;
    }
    ParsedEvent event;
    event.kind = columns[0];
    event.time = std::strtod(columns[1].c_str(), nullptr);
    event.txn = ParseId(columns[2]);
    event.update = ParseId(columns[3]);
    event.object = columns[4];
    event.detail = columns[5];
    event.reason = columns[6];
    event.instructions = std::strtod(columns[7].c_str(), nullptr);
    trace.events.push_back(std::move(event));
  }
  return trace;
}

std::optional<ParsedTrace> ParseChromeTrace(std::istream& in,
                                            std::string* error) {
  ParsedTrace trace;
  trace.trip_predicate = "chrome";
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (all.find("\"traceEvents\"") == std::string::npos) {
    if (error != nullptr) *error = "not a Chrome trace document";
    return std::nullopt;
  }
  std::istringstream lines(all);
  std::string line;
  // pid → shard, built from the "process_name" metadata records
  // ("strip" is the uniprocessor writer, "shard N" the per-shard
  // writers). Unmapped pids fall back to pid-1 (the writers assign
  // pid = shard + 1).
  std::vector<std::pair<int, int>> pid_to_shard;
  // The last open dispatch *per pid*: sharded traces interleave B/E
  // spans from different shards, so attribution must be per track
  // group — one global slot would hand shard 1's E record shard 0's
  // identities.
  std::vector<std::pair<int, ParsedEvent>> open_by_pid;
  const auto shard_of = [&pid_to_shard](int pid) {
    for (const auto& [known_pid, shard] : pid_to_shard) {
      if (known_pid == pid) return shard;
    }
    return pid >= 1 ? pid - 1 : 0;
  };
  while (std::getline(lines, line)) {
    const int pid =
        static_cast<int>(JsonNumber(line, "pid").value_or(1.0));
    if (JsonString(line, "ph") == "M" &&
        JsonString(line, "name") == "process_name") {
      // The args name is the second "name" on the line.
      const std::string args_needle = "\"args\":{\"name\":\"";
      const std::size_t at = line.find(args_needle);
      if (at != std::string::npos) {
        const std::size_t start = at + args_needle.size();
        const std::size_t end = line.find('"', start);
        const std::string process =
            line.substr(start, end == std::string::npos ? std::string::npos
                                                        : end - start);
        int shard = 0;
        if (process.rfind("shard ", 0) == 0) {
          shard = std::atoi(process.c_str() + 6);
        }
        pid_to_shard.emplace_back(pid, shard);
        trace.shards = std::max(trace.shards, shard + 1);
      }
      continue;
    }
    const std::string cat = JsonString(line, "cat");
    if (cat.empty() || cat == "od-flow") continue;
    const std::string ph = JsonString(line, "ph");
    ParsedEvent event;
    event.kind = cat;
    event.shard = shard_of(pid);
    const std::optional<double> ts = JsonNumber(line, "ts");
    event.time = ts.has_value() ? *ts / 1e6 : 0;
    if (const auto txn = JsonNumber(line, "txn")) {
      event.txn = static_cast<std::uint64_t>(*txn);
    }
    if (const auto update = JsonNumber(line, "update")) {
      event.update = static_cast<std::uint64_t>(*update);
    }
    event.object = JsonString(line, "obj");
    event.reason = JsonString(line, "reason");
    if (const auto instr = JsonNumber(line, "instr")) {
      event.instructions = *instr;
    }
    const std::string name = JsonString(line, "name");
    ParsedEvent* open_dispatch = nullptr;
    for (auto& [open_pid, open] : open_by_pid) {
      if (open_pid == pid) {
        open_dispatch = &open;
        break;
      }
    }
    if (ph == "B") {
      event.detail = name;  // the dispatch kind
      if (open_dispatch != nullptr) {
        *open_dispatch = event;
      } else {
        open_by_pid.emplace_back(pid, event);
      }
    } else if (ph == "E") {
      // E records carry no args: attribute them to this track group's
      // open dispatch.
      if (open_dispatch != nullptr && !open_dispatch->kind.empty()) {
        event.txn = open_dispatch->txn;
        event.update = open_dispatch->update;
        event.object = open_dispatch->object;
        event.instructions = open_dispatch->instructions;
        open_dispatch->kind.clear();
      }
      event.detail = name;
    } else if (cat == "preempt") {
      event.detail = event.reason;  // align with the flight format
      event.reason.clear();
    } else if (cat == "txn-terminal" || cat == "update-dropped" ||
               cat == "policy-decision" || cat == "phase") {
      event.detail = name;
    } else if (cat == "fault-begin" || cat == "fault-end") {
      event.detail = name;
      event.reason = JsonString(line, "window");
    } else if (cat == "remote-resolved" || cat == "remote-timeout") {
      // The writer's "state" arg is the flight-format detail token
      // ("live"/"orphaned", "retry"/"exhausted").
      event.detail = JsonString(line, "state");
    } else if (cat == "remote-dropped") {
      event.detail = JsonString(line, "leg");
    } else if (cat == "remote-degraded") {
      event.detail = "stale-local";
    }
    if (cat == "policy-decision") {
      event.reason = JsonString(line, "reason");
    }
    trace.events.push_back(std::move(event));
  }
  for (const ParsedEvent& event : trace.events) {
    trace.shards = std::max(trace.shards, event.shard + 1);
  }
  return trace;
}

std::vector<ParsedEvent> FilterByTxn(const std::vector<ParsedEvent>& events,
                                     std::uint64_t txn) {
  std::vector<ParsedEvent> out;
  for (const ParsedEvent& event : events) {
    if (event.txn == txn) out.push_back(event);
  }
  return out;
}

std::vector<ParsedEvent> FilterByObject(
    const std::vector<ParsedEvent>& events, const std::string& object) {
  std::vector<ParsedEvent> out;
  for (const ParsedEvent& event : events) {
    if (event.object == object) out.push_back(event);
  }
  return out;
}

std::vector<ParsedEvent> FilterByWindow(
    const std::vector<ParsedEvent>& events, double from, double to) {
  std::vector<ParsedEvent> out;
  for (const ParsedEvent& event : events) {
    if (event.time >= from && event.time <= to) out.push_back(event);
  }
  return out;
}

std::vector<ParsedEvent> FilterByShard(
    const std::vector<ParsedEvent>& events, int shard) {
  std::vector<ParsedEvent> out;
  for (const ParsedEvent& event : events) {
    if (event.shard == shard) out.push_back(event);
  }
  return out;
}

std::map<std::string, std::uint64_t> DecisionCounts(
    const std::vector<ParsedEvent>& events) {
  std::map<std::string, std::uint64_t> counts;
  for (const ParsedEvent& event : events) {
    if (event.kind != "policy-decision") continue;
    ++counts[event.detail + "/" + event.reason];
  }
  return counts;
}

std::map<std::string, std::uint64_t> KindCounts(
    const std::vector<ParsedEvent>& events) {
  std::map<std::string, std::uint64_t> counts;
  for (const ParsedEvent& event : events) ++counts[event.kind];
  return counts;
}

std::optional<std::uint64_t> FirstMissedDeadlineTxn(
    const std::vector<ParsedEvent>& events) {
  // Prefer a transaction whose deadline fired mid-flight (it has CPU
  // segments to dissect); fall back to one screened out as infeasible.
  std::optional<std::uint64_t> infeasible;
  for (const ParsedEvent& event : events) {
    if (event.kind != "txn-terminal") continue;
    if (event.detail == "missed-deadline") return event.txn;
    if (event.detail == "infeasible" && !infeasible.has_value()) {
      infeasible = event.txn;
    }
  }
  return infeasible;
}

namespace {

// What held the CPU during [from, to): dispatch events in the window
// tallied by owner and kind.
std::string AnnotateWait(const std::vector<ParsedEvent>& events, double from,
                         double to, std::uint64_t self) {
  std::map<std::string, std::uint64_t> held;
  for (const ParsedEvent& event : events) {
    if (event.kind != "dispatch") continue;
    if (event.time < from || event.time >= to) continue;
    if (event.txn == self) continue;
    std::string label;
    if (event.txn == kNoId) {
      label = "updater " + event.detail;
    } else {
      label = "txn " + std::to_string(event.txn) + " " + event.detail;
    }
    ++held[label];
  }
  std::string note;
  for (const auto& [label, count] : held) {
    if (!note.empty()) note += ", ";
    note += label;
    if (count > 1) note += " x" + std::to_string(count);
  }
  return note;
}

}  // namespace

std::optional<CriticalPath> ExtractCriticalPath(
    const std::vector<ParsedEvent>& events, std::uint64_t txn,
    std::string* error) {
  CriticalPath path;
  path.txn = txn;
  bool seen = false;
  bool admitted_known = false;
  double run_start = 0;
  std::string run_kind;
  bool running = false;
  double idle_since = 0;  // start of the current wait
  bool waiting = false;

  for (const ParsedEvent& event : events) {
    if (event.txn != txn) continue;
    seen = true;
    if (event.kind == "txn-admitted") {
      path.admitted = event.time;
      admitted_known = true;
      idle_since = event.time;
      waiting = true;
    } else if (event.kind == "dispatch") {
      if (waiting && event.time > idle_since) {
        path.steps.push_back({idle_since, event.time, "wait",
                              AnnotateWait(events, idle_since, event.time,
                                           txn)});
        path.waiting_seconds += event.time - idle_since;
      }
      waiting = false;
      running = true;
      run_start = event.time;
      run_kind = event.detail;
    } else if (event.kind == "segment-complete" && running) {
      path.steps.push_back({run_start, event.time, "run " + run_kind, ""});
      path.running_seconds += event.time - run_start;
      running = false;
      idle_since = event.time;
      waiting = true;
    } else if (event.kind == "preempt") {
      if (running) {
        path.steps.push_back({run_start, event.time, "run " + run_kind, ""});
        path.running_seconds += event.time - run_start;
        running = false;
      }
      path.steps.push_back(
          {event.time, event.time, "preempted " + event.detail, ""});
      idle_since = event.time;
      waiting = true;
    } else if (event.kind == "stale-read") {
      path.steps.push_back(
          {event.time, event.time, "stale-read " + event.object, ""});
    } else if (event.kind == "update-installed") {
      path.steps.push_back({event.time, event.time,
                            "od-install update " +
                                std::to_string(event.update) + " " +
                                event.object,
                            ""});
    } else if (event.kind == "txn-terminal") {
      if (waiting && event.time > idle_since) {
        path.steps.push_back({idle_since, event.time, "wait",
                              AnnotateWait(events, idle_since, event.time,
                                           txn)});
        path.waiting_seconds += event.time - idle_since;
      }
      waiting = false;
      path.terminal = event.time;
      path.outcome = event.detail;
    }
  }
  if (!seen) {
    if (error != nullptr) {
      *error = "transaction " + std::to_string(txn) + " not in trace";
    }
    return std::nullopt;
  }
  if (!admitted_known && !path.steps.empty()) {
    path.admitted = path.steps.front().start;
  }
  return path;
}

void PrintCriticalPath(std::ostream& out, const CriticalPath& path) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "critical path: txn %llu  outcome=%s\n",
                static_cast<unsigned long long>(path.txn),
                path.outcome.empty() ? "(window cut)"
                                     : path.outcome.c_str());
  out << buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  admitted=%.6fs terminal=%.6fs running=%.6fs "
                "waiting=%.6fs\n",
                path.admitted, path.terminal, path.running_seconds,
                path.waiting_seconds);
  out << buffer;
  for (const CriticalPathStep& step : path.steps) {
    if (step.end > step.start) {
      std::snprintf(buffer, sizeof(buffer), "  [%.6f .. %.6f] %9.1fus  ",
                    step.start, step.end, (step.end - step.start) * 1e6);
    } else {
      std::snprintf(buffer, sizeof(buffer), "  [%.6f]                   ",
                    step.start);
    }
    out << buffer << step.what;
    if (!step.note.empty()) out << "  <- " << step.note;
    out << "\n";
  }
}

}  // namespace strip::obs::trace
