// Streaming Chrome trace-event JSON exporter.
//
// Writes the run's causal trace in the Chrome trace-event format
// (viewable in Perfetto / chrome://tracing): one process (pid 1) with
// one track per simulated CPU owner —
//
//   tid 1            the scheduler (policy decisions, phase marks)
//   tid 2            the update process (receive/install spans,
//                    arrivals, enqueues, drops, ordinary installs)
//   tid 1000 + id    one track per transaction (its CPU segments as
//                    B/E spans, admit/stale-read/terminal instants)
//
// Dispatched segments become duration spans (ph B/E); a preemption
// closes the open span and leaves a "preempt" instant with the reason.
// On-demand installs are drawn on the demanding transaction's track
// and linked back to the update's enqueue point on the updates track
// with a flow arrow (ph s/f, id = the update's id) — the OD causal
// chain is visible as an arrow from queue to transaction.
//
// The output is byte-deterministic for a fixed (Config, seed): fixed
// key order, fixed float formatting, no wall-clock timestamps. Each
// event's category is its EventKindName token, which is what the
// analysis CLI (tools/strip_trace.cc) keys on when reading the file
// back.
//
// Timestamps ("ts") are microseconds of simulated time with
// sub-microsecond decimals.

#ifndef STRIP_OBS_TRACE_CHROME_TRACE_H_
#define STRIP_OBS_TRACE_CHROME_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace/collector.h"

namespace strip::obs::trace {

class ChromeTraceWriter : public TraceCollector {
 public:
  // Track ids.
  static constexpr std::uint64_t kSchedulerTid = 1;
  static constexpr std::uint64_t kUpdatesTid = 2;
  static constexpr std::uint64_t kTxnTidBase = 1000;

  // Streams to `out`, which must outlive the writer. Writes the
  // opening bracket and track metadata immediately.
  explicit ChromeTraceWriter(std::ostream* out);
  // Finishes the document if Finish() was not called.
  ~ChromeTraceWriter() override;

  // Closes a span the run left open (the simulation can end mid-
  // segment) and writes the closing bracket. Idempotent; no events may
  // be emitted after.
  void Finish();

  std::uint64_t events_written() const { return events_written_; }

 protected:
  void Emit(const TraceEvent& event) override;

 private:
  // One raw JSON event object; `body` is everything after the opening
  // brace, without the closing brace.
  void WriteRaw(const std::string& body);
  // Ensures the transaction's track has a thread_name metadata record.
  std::uint64_t TxnTid(std::uint64_t txn_id, txn::TxnClass cls);
  void WriteMeta(std::uint64_t tid, const char* name);

  std::ostream* out_;
  bool first_ = true;
  bool finished_ = false;
  std::uint64_t events_written_ = 0;
  // Track of the currently open dispatch span and its B name/category,
  // so E lines match (exactly one span is open at a time).
  std::uint64_t open_tid_ = 0;
  const char* open_name_ = nullptr;
  bool span_open_ = false;
  // Last timestamp emitted, used to close an end-of-run open span.
  std::string last_ts_ = "0.000";
  // Transactions whose track metadata has been written.
  std::unordered_set<std::uint64_t> named_txns_;
  // Enqueue timestamp per queued update id, for the OD flow arrow's
  // start point. Erased on install/drop.
  std::unordered_map<std::uint64_t, sim::Time> enqueue_times_;
};

}  // namespace strip::obs::trace

#endif  // STRIP_OBS_TRACE_CHROME_TRACE_H_
