// Streaming Chrome trace-event JSON exporter.
//
// Writes the run's causal trace in the Chrome trace-event format
// (viewable in Perfetto / chrome://tracing): one process per shard
// (pid 1 for a uniprocessor run) with one track per simulated CPU
// owner —
//
//   tid 1            the scheduler (policy decisions, phase marks)
//   tid 2            the update process (receive/install spans,
//                    arrivals, enqueues, drops, ordinary installs,
//                    remote-service spans in the sharded model)
//   tid 1000 + id    one track per transaction (its CPU segments as
//                    B/E spans, admit/stale-read/terminal instants)
//
// Dispatched segments become duration spans (ph B/E); a preemption
// closes the open span and leaves a "preempt" instant with the reason.
// On-demand installs are drawn on the demanding transaction's track
// and linked back to the update's enqueue point on the updates track
// with a flow arrow (ph s/f, id = the update's id) — the OD causal
// chain is visible as an arrow from queue to transaction.
//
// Sharded runs (core/cluster.h) share one ChromeTraceDocument between
// M writers — one per shard, each a distinct pid / track group — so
// the whole cluster lands in a single viewable file. The single-stream
// constructor (one writer owning its document, pid 1) produces bytes
// identical to the pre-sharding format.
//
// The output is byte-deterministic for a fixed (Config, seed): fixed
// key order, fixed float formatting, no wall-clock timestamps. Each
// event's category is its EventKindName token, which is what the
// analysis CLI (tools/strip_trace.cc) keys on when reading the file
// back.
//
// Timestamps ("ts") are microseconds of simulated time with
// sub-microsecond decimals.

#ifndef STRIP_OBS_TRACE_CHROME_TRACE_H_
#define STRIP_OBS_TRACE_CHROME_TRACE_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace/collector.h"

namespace strip::obs::trace {

// The JSON framing of one trace file: the opening "{"traceEvents":["
// (written on construction), the event-record commas, and the closing
// "]}" (written by Finish). One or many ChromeTraceWriters append to
// it; events interleave in emission order.
class ChromeTraceDocument {
 public:
  // Streams to `out`, which must outlive the document.
  explicit ChromeTraceDocument(std::ostream* out);
  ~ChromeTraceDocument();

  ChromeTraceDocument(const ChromeTraceDocument&) = delete;
  ChromeTraceDocument& operator=(const ChromeTraceDocument&) = delete;

  // Writes the closing bracket. Idempotent; call only after every
  // writer's Finish().
  void Finish();

  std::uint64_t events_written() const { return events_written_; }

 private:
  friend class ChromeTraceWriter;
  // One raw JSON event object; `body` is everything after the opening
  // brace, without the closing brace.
  void WriteRaw(const std::string& body);

  std::ostream* out_;
  bool first_ = true;
  bool finished_ = false;
  std::uint64_t events_written_ = 0;
};

class ChromeTraceWriter : public TraceCollector {
 public:
  // Track ids (within each process/shard track group).
  static constexpr std::uint64_t kSchedulerTid = 1;
  static constexpr std::uint64_t kUpdatesTid = 2;
  static constexpr std::uint64_t kTxnTidBase = 1000;

  // Single-stream form: the writer owns its document (pid 1, process
  // name "strip"). Byte-identical to the historical format.
  explicit ChromeTraceWriter(std::ostream* out);
  // Shared-document form (sharded runs): appends to `document` as
  // process `pid` named `process_name` ("shard 0", ...). The document
  // must outlive the writer; the caller finishes the document after
  // finishing every writer.
  ChromeTraceWriter(ChromeTraceDocument* document, int pid,
                    const std::string& process_name);
  // Finishes this writer (and the owned document, if any) if Finish()
  // was not called.
  ~ChromeTraceWriter() override;

  // Closes a span the run left open (the simulation can end mid-
  // segment); for an owned document also writes the closing bracket.
  // Idempotent; no events may be emitted after.
  void Finish();

  std::uint64_t events_written() const { return events_written_; }

 protected:
  void Emit(const TraceEvent& event) override;

 private:
  void WriteRaw(const std::string& body);
  // Ensures the transaction's track has a thread_name metadata record.
  std::uint64_t TxnTid(std::uint64_t txn_id, txn::TxnClass cls);
  void WriteMeta(std::uint64_t tid, const char* name);

  std::unique_ptr<ChromeTraceDocument> owned_document_;
  ChromeTraceDocument* document_;
  // Rendered "\"pid\":N," fragment shared by every record.
  std::string pid_frag_;
  bool finished_ = false;
  std::uint64_t events_written_ = 0;
  // Track of the currently open dispatch span and its B name/category,
  // so E lines match (exactly one span is open at a time per shard).
  std::uint64_t open_tid_ = 0;
  const char* open_name_ = nullptr;
  bool span_open_ = false;
  // Last timestamp emitted, used to close an end-of-run open span.
  std::string last_ts_ = "0.000";
  // Transactions whose track metadata has been written.
  std::unordered_set<std::uint64_t> named_txns_;
  // Enqueue timestamp per queued update id, for the OD flow arrow's
  // start point. Erased on install/drop.
  std::unordered_map<std::uint64_t, sim::Time> enqueue_times_;
};

}  // namespace strip::obs::trace

#endif  // STRIP_OBS_TRACE_CHROME_TRACE_H_
