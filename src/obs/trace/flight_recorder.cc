#include "obs/trace/flight_recorder.h"

#include <cinttypes>
#include <cstdio>
#include <string_view>

#include "base/check.h"

namespace strip::obs::trace {

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options) {
  STRIP_CHECK_MSG(options_.capacity > 0, "flight recorder needs capacity");
  ring_.resize(options_.capacity);
}

std::size_t FlightRecorder::size() const {
  return full_ ? ring_.size() : head_;
}

void FlightRecorder::Emit(const TraceEvent& event) {
  if (tripped()) return;  // latched: the window is frozen
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (head_ == 0) full_ = true;
  ++events_seen_;
  if (options_.armed) Check(event);
}

void FlightRecorder::Trip(const char* predicate, sim::Time when) {
  trip_predicate_ = predicate;
  trip_time_ = when;
}

void FlightRecorder::Check(const TraceEvent& event) {
  // The outage-recovery watch fires on simulated-time passage, so any
  // event past the deadline trips it — checked first, before this
  // event can drain the queue below the threshold "just in time".
  if (outage_watch_ && event.time >= outage_watch_deadline_ &&
      queued_updates_.size() > options_.outage_recovery_depth) {
    trip_window_ = outage_watch_label_;
    Trip("outage-recovery", event.time);
    return;
  }
  switch (event.kind) {
    case EventKind::kTxnTerminal: {
      // Both flavours of deadline failure count toward the burst:
      // deadlines that fired mid-flight and transactions screened out
      // as infeasible before their deadline arrived.
      if (event.outcome == txn::TxnOutcome::kMissedDeadline ||
          event.outcome == txn::TxnOutcome::kInfeasible) {
        recent_miss_times_.push_back(event.time);
        while (!recent_miss_times_.empty() &&
               recent_miss_times_.front() <
                   event.time - options_.miss_burst_window_seconds) {
          recent_miss_times_.pop_front();
        }
        if (static_cast<int>(recent_miss_times_.size()) >=
            options_.miss_burst_count) {
          Trip("deadline-miss-burst", event.time);
          return;
        }
      }
      recent_stale_.push_back(event.read_stale);
      if (event.read_stale) ++recent_stale_count_;
      if (static_cast<int>(recent_stale_.size()) > options_.stale_window) {
        if (recent_stale_.front()) --recent_stale_count_;
        recent_stale_.pop_front();
      }
      if (static_cast<int>(recent_stale_.size()) == options_.stale_window &&
          static_cast<double>(recent_stale_count_) >=
              options_.stale_fraction *
                  static_cast<double>(options_.stale_window)) {
        Trip("stale-fraction", event.time);
      }
      break;
    }
    case EventKind::kUpdateEnqueued:
      queued_updates_.insert(event.update_id);
      if (queued_updates_.size() >= options_.uq_depth_threshold) {
        Trip("uq-depth-spike", event.time);
      }
      break;
    case EventKind::kUpdateInstalled:
    case EventKind::kUpdateDropped:
      queued_updates_.erase(event.update_id);
      break;
    case EventKind::kFaultEnd:
      if (event.fault_kind != nullptr &&
          std::string_view(event.fault_kind) == "outage") {
        outage_watch_ = true;
        outage_watch_deadline_ =
            event.time + options_.outage_recovery_deadline_seconds;
        outage_watch_label_ = event.fault_label;
      }
      break;
    default:
      break;
  }
  if (outage_watch_ &&
      queued_updates_.size() <= options_.outage_recovery_depth) {
    outage_watch_ = false;  // drained in time: recovered
  }
}

namespace {

void DumpEvent(std::ostream& out, const TraceEvent& event) {
  char time_buffer[40];
  std::snprintf(time_buffer, sizeof(time_buffer), "%.9f", event.time);
  out << EventKindName(event.kind) << "," << time_buffer << ",";
  if (event.txn_id != kNoId) out << event.txn_id;
  out << ",";
  if (event.update_id != kNoId) out << event.update_id;
  out << ",";
  if (event.has_object) {
    out << db::ObjectClassName(event.object.cls) << ":"
        << event.object.index;
  }
  out << "," << EventDetail(event) << ",";
  // The rationale column: a policy decision's reason token, or a
  // fault boundary's window label.
  if (event.kind == EventKind::kPolicyDecision && event.reason != nullptr) {
    out << event.reason;
  } else if ((event.kind == EventKind::kFaultBegin ||
              event.kind == EventKind::kFaultEnd) &&
             event.fault_label != nullptr) {
    out << event.fault_label;
  }
  out << ",";
  if (event.kind == EventKind::kDispatch ||
      event.kind == EventKind::kSegmentComplete) {
    char instr_buffer[40];
    std::snprintf(instr_buffer, sizeof(instr_buffer), "%.17g",
                  event.instructions);
    out << instr_buffer;
  }
  out << "\n";
}

}  // namespace

void FlightRecorder::DumpTo(std::ostream& out) const {
  char trip_buffer[40];
  std::snprintf(trip_buffer, sizeof(trip_buffer), "%.9f", trip_time_);
  out << "# strip-flight v1 trip="
      << (trip_predicate_ != nullptr ? trip_predicate_ : "none")
      << " trip_time=" << (tripped() ? trip_buffer : "0.000000000")
      << " events=" << size();
  // Only outage-recovery trips name the fault window that caused them;
  // the header stays byte-identical to v1 dumps otherwise.
  if (trip_window_ != nullptr) out << " window=" << trip_window_;
  out << "\n";
  out << "kind,time,txn,update,object,detail,reason,instructions\n";
  const std::size_t count = size();
  const std::size_t start = full_ ? head_ : 0;
  for (std::size_t i = 0; i < count; ++i) {
    DumpEvent(out, ring_[(start + i) % ring_.size()]);
  }
}

}  // namespace strip::obs::trace
