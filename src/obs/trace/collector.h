// TraceCollector: SystemObserver -> TraceEvent translation.
//
// Implements every observer hook once, normalizing the callback
// payloads into flat TraceEvents; sinks (the Chrome exporter, the
// flight recorder) derive from it and implement Emit. Attach to a run
// with core::ScopedObserver or System::AddObserver like any observer.

#ifndef STRIP_OBS_TRACE_COLLECTOR_H_
#define STRIP_OBS_TRACE_COLLECTOR_H_

#include "core/observer.h"
#include "obs/trace/trace_event.h"

namespace strip::obs::trace {

class TraceCollector : public core::SystemObserver {
 public:
  // --- outcome hooks ---
  void OnTransactionTerminal(sim::Time now,
                             const txn::Transaction& transaction) override;
  void OnUpdateInstalled(sim::Time now, const db::Update& update,
                         const txn::Transaction* on_demand_by) override;
  void OnUpdateDropped(sim::Time now, const db::Update& update,
                       DropReason reason) override;
  void OnStaleRead(sim::Time now, const txn::Transaction& transaction,
                   db::ObjectId object) override;
  void OnPhase(sim::Time now, Phase phase) override;

  // --- lifecycle hooks ---
  void OnTxnAdmitted(sim::Time now,
                     const txn::Transaction& transaction) override;
  void OnUpdateArrival(sim::Time now, const db::Update& update) override;
  void OnUpdateEnqueued(sim::Time now, const db::Update& update) override;
  void OnDispatch(sim::Time now, const DispatchInfo& dispatch) override;
  void OnSegmentComplete(sim::Time now,
                         const DispatchInfo& dispatch) override;
  void OnPreempt(sim::Time now, const txn::Transaction& transaction,
                 PreemptReason reason) override;
  void OnPolicyDecision(sim::Time now, core::PolicyKind policy,
                        SchedulerChoice choice, const char* reason) override;
  void OnFaultWindow(sim::Time now, const FaultWindowInfo& window) override;

  // --- sharded-model hooks ---
  void OnShardRemoteIssued(sim::Time now,
                           const core::RemoteRead& read) override;
  void OnShardRemoteQueued(sim::Time now,
                           const core::RemoteRead& read) override;
  void OnShardRemoteServiced(sim::Time now,
                             const core::RemoteRead& read) override;
  void OnShardRemoteResolved(sim::Time now, const core::RemoteRead& read,
                             bool txn_live) override;
  void OnShardRemoteDropped(sim::Time now, const core::RemoteRead& read,
                            bool reply_leg) override;
  void OnRemoteTimeout(sim::Time now, const core::RemoteRead& read,
                       int attempt, bool will_retry) override;
  void OnDegradedRead(sim::Time now, const core::RemoteRead& read) override;

 protected:
  // Receives every normalized event, in simulation order.
  virtual void Emit(const TraceEvent& event) = 0;

 private:
  static TraceEvent FromDispatchInfo(EventKind kind, sim::Time now,
                                     const DispatchInfo& dispatch);
  static TraceEvent FromRemoteRead(EventKind kind, sim::Time now,
                                   const core::RemoteRead& read);
};

}  // namespace strip::obs::trace

#endif  // STRIP_OBS_TRACE_COLLECTOR_H_
