// The causal tracing layer's event record.
//
// Every SystemObserver hook is translated into one flat TraceEvent by
// TraceCollector (collector.h); the Chrome exporter (chrome_trace.h)
// and the flight recorder (flight_recorder.h) consume the same record.
// Events carry stable identities — transaction ids and update ids are
// the model's own monotonically assigned ids — so the full lifecycle
// of each transaction (admit → dispatch → segments → preemptions →
// stale reads → terminal) and each update (arrive → enqueue →
// dedup/drop → install) can be reconstructed from the stream, and the
// on-demand install of an update can be causally linked back to the
// demanding transaction.
//
// TraceEvent is a flat value type (no heap members; `reason` points at
// static storage) so the flight recorder can keep thousands of them in
// a preallocated ring without allocation on the hot path.

#ifndef STRIP_OBS_TRACE_TRACE_EVENT_H_
#define STRIP_OBS_TRACE_TRACE_EVENT_H_

#include <cstdint>

#include "core/observer.h"
#include "db/object.h"
#include "sim/sim_time.h"
#include "txn/transaction.h"

namespace strip::obs::trace {

// Sentinel for "no transaction / no update involved".
inline constexpr std::uint64_t kNoId = ~std::uint64_t{0};

// One lifecycle event. The tokens returned by EventKindName are the
// wire names used both as Chrome trace categories and as the first
// column of flight-record dumps.
enum class EventKind {
  kTxnAdmitted = 0,   // transaction entered the ready queue
  kTxnTerminal,       // transaction reached a terminal outcome
  kUpdateArrival,     // update arrived from the stream
  kUpdateEnqueued,    // update received into the update queue
  kUpdateInstalled,   // update written to the database
  kUpdateDropped,     // update left the system uninstalled
  kDispatch,          // the scheduler placed work on the CPU
  kSegmentComplete,   // the dispatched segment ran to its end
  kPreempt,           // the running transaction lost the CPU early
  kStaleRead,         // a view read encountered stale data
  kPolicyDecision,    // the scheduler consulted the policy
  kPhase,             // run-phase boundary (warm-up end / run end)
  kFaultBegin,        // an injected fault window opened
  kFaultEnd,          // an injected fault window closed
  kRemoteIssued,      // home shard issued a cross-shard read (sharded)
  kRemoteQueued,      // peer shard queued the read for service
  kRemoteServiced,    // peer shard finished the service segment
  kRemoteResolved,    // home shard resolved the reply
  kRemoteDropped,     // the interconnect lost a request or reply
  kRemoteTimeout,     // a parked remote read's timer fired
  kRemoteDegraded,    // timeout fallback served the stale local value
};

const char* EventKindName(EventKind kind);

struct TraceEvent {
  EventKind kind = EventKind::kPhase;
  sim::Time time = 0;

  // The transaction this event belongs to (kNoId when none). For
  // kUpdateInstalled this is the *demanding* transaction of an
  // on-demand install (kNoId for ordinary update-process installs) —
  // the causal link of the OD policy.
  std::uint64_t txn_id = kNoId;
  // The update this event concerns (kNoId when none).
  std::uint64_t update_id = kNoId;

  // The object read or updated; valid when has_object.
  db::ObjectId object{};
  bool has_object = false;

  // Kind-specific detail (which member is meaningful depends on kind).
  core::SystemObserver::DispatchKind dispatch_kind =
      core::SystemObserver::DispatchKind::kTxnCompute;
  core::SystemObserver::PreemptReason preempt_reason =
      core::SystemObserver::PreemptReason::kUpdateArrival;
  core::SystemObserver::SchedulerChoice choice =
      core::SystemObserver::SchedulerChoice::kIdle;
  core::SystemObserver::DropReason drop_reason =
      core::SystemObserver::DropReason::kOsQueueFull;
  core::SystemObserver::Phase phase = core::SystemObserver::Phase::kRunEnd;
  core::PolicyKind policy = core::PolicyKind::kUpdateFirst;
  txn::TxnOutcome outcome = txn::TxnOutcome::kPending;
  txn::TxnClass txn_cls = txn::TxnClass::kLowValue;

  // Policy-decision rationale; static storage, never owned.
  const char* reason = nullptr;

  // Fault-window identity (kFaultBegin/kFaultEnd): the kind token
  // ("outage", "burst", ...) and the window's spec label. Both point
  // into storage owned by the run's System (alive for the run) — same
  // lifetime contract as `reason`.
  const char* fault_kind = nullptr;
  const char* fault_label = nullptr;

  // Cross-shard read identity (kRemote* kinds; sharded model). The
  // object field holds the read's object in the *peer's* local id
  // space.
  std::uint64_t request_id = kNoId;
  int home_shard = -1;
  int peer_shard = -1;
  // Which attempt timed out (kRemoteTimeout; 1 = the original send).
  int attempt = 0;

  // Instructions of a dispatched segment (kDispatch/kSegmentComplete).
  double instructions = 0;
  // Deadline and value of an admitted transaction (kTxnAdmitted).
  double deadline = 0;
  double value = 0;
  // Whether a terminal transaction had read stale data (kTxnTerminal).
  bool read_stale = false;
};

// The kind-specific detail token of an event: the dispatch-kind name
// for kDispatch/kSegmentComplete, the outcome name for kTxnTerminal,
// the drop reason for kUpdateDropped, the scheduler choice for
// kPolicyDecision, the preempt reason for kPreempt, the phase name for
// kPhase; "" when the kind has no detail. Static storage.
const char* EventDetail(const TraceEvent& event);

}  // namespace strip::obs::trace

#endif  // STRIP_OBS_TRACE_TRACE_EVENT_H_
