#include "obs/trace/collector.h"

namespace strip::obs::trace {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kTxnAdmitted:
      return "txn-admitted";
    case EventKind::kTxnTerminal:
      return "txn-terminal";
    case EventKind::kUpdateArrival:
      return "update-arrival";
    case EventKind::kUpdateEnqueued:
      return "update-enqueued";
    case EventKind::kUpdateInstalled:
      return "update-installed";
    case EventKind::kUpdateDropped:
      return "update-dropped";
    case EventKind::kDispatch:
      return "dispatch";
    case EventKind::kSegmentComplete:
      return "segment-complete";
    case EventKind::kPreempt:
      return "preempt";
    case EventKind::kStaleRead:
      return "stale-read";
    case EventKind::kPolicyDecision:
      return "policy-decision";
    case EventKind::kPhase:
      return "phase";
    case EventKind::kFaultBegin:
      return "fault-begin";
    case EventKind::kFaultEnd:
      return "fault-end";
    case EventKind::kRemoteIssued:
      return "remote-issued";
    case EventKind::kRemoteQueued:
      return "remote-queued";
    case EventKind::kRemoteServiced:
      return "remote-serviced";
    case EventKind::kRemoteResolved:
      return "remote-resolved";
    case EventKind::kRemoteDropped:
      return "remote-dropped";
    case EventKind::kRemoteTimeout:
      return "remote-timeout";
    case EventKind::kRemoteDegraded:
      return "remote-degraded";
  }
  return "?";
}

const char* EventDetail(const TraceEvent& event) {
  switch (event.kind) {
    case EventKind::kDispatch:
    case EventKind::kSegmentComplete:
      return core::DispatchKindName(event.dispatch_kind);
    case EventKind::kPreempt:
      return core::PreemptReasonName(event.preempt_reason);
    case EventKind::kTxnTerminal:
      return txn::TxnOutcomeName(event.outcome);
    case EventKind::kUpdateDropped:
      return core::DropReasonName(event.drop_reason);
    case EventKind::kPolicyDecision:
      return core::SchedulerChoiceName(event.choice);
    case EventKind::kPhase:
      return core::PhaseName(event.phase);
    case EventKind::kFaultBegin:
    case EventKind::kFaultEnd:
      return event.fault_kind != nullptr ? event.fault_kind : "";
    case EventKind::kRemoteResolved:
      // "live" / "orphaned": whether the waiting transaction survived.
      return event.reason != nullptr ? event.reason : "";
    case EventKind::kRemoteServiced:
      return event.read_stale ? "stale" : "fresh";
    case EventKind::kRemoteDropped:
      // "request" / "reply": which leg the interconnect lost.
      return event.reason != nullptr ? event.reason : "";
    case EventKind::kRemoteTimeout:
      // "retry" / "exhausted": whether the read will be re-issued.
      return event.reason != nullptr ? event.reason : "";
    case EventKind::kRemoteDegraded:
      return "stale-local";
    case EventKind::kTxnAdmitted:
    case EventKind::kUpdateArrival:
    case EventKind::kUpdateEnqueued:
    case EventKind::kUpdateInstalled:
    case EventKind::kStaleRead:
    case EventKind::kRemoteIssued:
    case EventKind::kRemoteQueued:
      return "";
  }
  return "";
}

void TraceCollector::OnTransactionTerminal(
    sim::Time now, const txn::Transaction& transaction) {
  TraceEvent event;
  event.kind = EventKind::kTxnTerminal;
  event.time = now;
  event.txn_id = transaction.id().value();
  event.txn_cls = transaction.cls();
  event.outcome = transaction.outcome();
  event.read_stale = transaction.read_stale_data();
  Emit(event);
}

void TraceCollector::OnUpdateInstalled(sim::Time now, const db::Update& update,
                                       const txn::Transaction* on_demand_by) {
  TraceEvent event;
  event.kind = EventKind::kUpdateInstalled;
  event.time = now;
  event.update_id = update.id.value();
  event.object = update.object;
  event.has_object = true;
  if (on_demand_by != nullptr) event.txn_id = on_demand_by->id().value();
  Emit(event);
}

void TraceCollector::OnUpdateDropped(sim::Time now, const db::Update& update,
                                     DropReason reason) {
  TraceEvent event;
  event.kind = EventKind::kUpdateDropped;
  event.time = now;
  event.update_id = update.id.value();
  event.object = update.object;
  event.has_object = true;
  event.drop_reason = reason;
  Emit(event);
}

void TraceCollector::OnStaleRead(sim::Time now,
                                 const txn::Transaction& transaction,
                                 db::ObjectId object) {
  TraceEvent event;
  event.kind = EventKind::kStaleRead;
  event.time = now;
  event.txn_id = transaction.id().value();
  event.txn_cls = transaction.cls();
  event.object = object;
  event.has_object = true;
  Emit(event);
}

void TraceCollector::OnPhase(sim::Time now, Phase phase) {
  TraceEvent event;
  event.kind = EventKind::kPhase;
  event.time = now;
  event.phase = phase;
  Emit(event);
}

void TraceCollector::OnTxnAdmitted(sim::Time now,
                                   const txn::Transaction& transaction) {
  TraceEvent event;
  event.kind = EventKind::kTxnAdmitted;
  event.time = now;
  event.txn_id = transaction.id().value();
  event.txn_cls = transaction.cls();
  event.deadline = transaction.deadline();
  event.value = transaction.value();
  Emit(event);
}

void TraceCollector::OnUpdateArrival(sim::Time now, const db::Update& update) {
  TraceEvent event;
  event.kind = EventKind::kUpdateArrival;
  event.time = now;
  event.update_id = update.id.value();
  event.object = update.object;
  event.has_object = true;
  Emit(event);
}

void TraceCollector::OnUpdateEnqueued(sim::Time now,
                                      const db::Update& update) {
  TraceEvent event;
  event.kind = EventKind::kUpdateEnqueued;
  event.time = now;
  event.update_id = update.id.value();
  event.object = update.object;
  event.has_object = true;
  Emit(event);
}

TraceEvent TraceCollector::FromDispatchInfo(EventKind kind, sim::Time now,
                                            const DispatchInfo& dispatch) {
  TraceEvent event;
  event.kind = kind;
  event.time = now;
  event.dispatch_kind = dispatch.kind;
  event.instructions = dispatch.instructions;
  if (dispatch.transaction != nullptr) {
    event.txn_id = dispatch.transaction->id().value();
    event.txn_cls = dispatch.transaction->cls();
  }
  if (dispatch.update != nullptr) {
    event.update_id = dispatch.update->id.value();
    event.object = dispatch.update->object;
    event.has_object = true;
  }
  return event;
}

void TraceCollector::OnDispatch(sim::Time now, const DispatchInfo& dispatch) {
  Emit(FromDispatchInfo(EventKind::kDispatch, now, dispatch));
}

void TraceCollector::OnSegmentComplete(sim::Time now,
                                       const DispatchInfo& dispatch) {
  Emit(FromDispatchInfo(EventKind::kSegmentComplete, now, dispatch));
}

void TraceCollector::OnPreempt(sim::Time now,
                               const txn::Transaction& transaction,
                               PreemptReason reason) {
  TraceEvent event;
  event.kind = EventKind::kPreempt;
  event.time = now;
  event.txn_id = transaction.id().value();
  event.txn_cls = transaction.cls();
  event.preempt_reason = reason;
  Emit(event);
}

void TraceCollector::OnFaultWindow(sim::Time now,
                                   const FaultWindowInfo& window) {
  TraceEvent event;
  event.kind = window.begin ? EventKind::kFaultBegin : EventKind::kFaultEnd;
  event.time = now;
  event.fault_kind = window.kind;
  event.fault_label = window.label;
  Emit(event);
}

TraceEvent TraceCollector::FromRemoteRead(EventKind kind, sim::Time now,
                                          const core::RemoteRead& read) {
  TraceEvent event;
  event.kind = kind;
  event.time = now;
  event.txn_id = read.txn_id.value();
  event.request_id = read.request_id;
  event.home_shard = read.home_shard.value();
  event.peer_shard = read.peer_shard.value();
  event.object = read.object;
  event.has_object = true;
  return event;
}

void TraceCollector::OnShardRemoteIssued(sim::Time now,
                                         const core::RemoteRead& read) {
  Emit(FromRemoteRead(EventKind::kRemoteIssued, now, read));
}

void TraceCollector::OnShardRemoteQueued(sim::Time now,
                                         const core::RemoteRead& read) {
  Emit(FromRemoteRead(EventKind::kRemoteQueued, now, read));
}

void TraceCollector::OnShardRemoteServiced(sim::Time now,
                                           const core::RemoteRead& read) {
  TraceEvent event = FromRemoteRead(EventKind::kRemoteServiced, now, read);
  event.read_stale = read.stale;
  Emit(event);
}

void TraceCollector::OnShardRemoteResolved(sim::Time now,
                                           const core::RemoteRead& read,
                                           bool txn_live) {
  TraceEvent event = FromRemoteRead(EventKind::kRemoteResolved, now, read);
  event.read_stale = read.stale;
  event.reason = txn_live ? "live" : "orphaned";
  Emit(event);
}

void TraceCollector::OnShardRemoteDropped(sim::Time now,
                                          const core::RemoteRead& read,
                                          bool reply_leg) {
  TraceEvent event = FromRemoteRead(EventKind::kRemoteDropped, now, read);
  event.reason = reply_leg ? "reply" : "request";
  Emit(event);
}

void TraceCollector::OnRemoteTimeout(sim::Time now,
                                     const core::RemoteRead& read,
                                     int attempt, bool will_retry) {
  TraceEvent event = FromRemoteRead(EventKind::kRemoteTimeout, now, read);
  event.attempt = attempt;
  event.reason = will_retry ? "retry" : "exhausted";
  Emit(event);
}

void TraceCollector::OnDegradedRead(sim::Time now,
                                    const core::RemoteRead& read) {
  Emit(FromRemoteRead(EventKind::kRemoteDegraded, now, read));
}

void TraceCollector::OnPolicyDecision(sim::Time now, core::PolicyKind policy,
                                      SchedulerChoice choice,
                                      const char* reason) {
  TraceEvent event;
  event.kind = EventKind::kPolicyDecision;
  event.time = now;
  event.policy = policy;
  event.choice = choice;
  event.reason = reason;
  Emit(event);
}

}  // namespace strip::obs::trace
