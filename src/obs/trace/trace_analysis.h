// Reading traces back: parsers and queries for tools/strip_trace.
//
// Both sink formats are parsed into a common ParsedEvent list:
//
//  - flight-record dumps (FlightRecorder::DumpTo) — the CSV rows;
//  - Chrome trace JSON (ChromeTraceWriter) — each event line's
//    category is its EventKindName token, which is what the reader
//    keys on (a purpose-built reader for this exporter's output, not
//    a general JSON parser).
//
// On top of the event list: filters (by transaction, object, time
// window), per-policy-decision counts, and critical-path extraction —
// the full CPU timeline of one transaction from admission to its
// terminal, with every wait annotated by what held the CPU meanwhile.

#ifndef STRIP_OBS_TRACE_TRACE_ANALYSIS_H_
#define STRIP_OBS_TRACE_TRACE_ANALYSIS_H_

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace/trace_event.h"

namespace strip::obs::trace {

// One parsed event. String fields hold the wire tokens (EventKindName
// kinds, detail/reason tokens, "low:3" objects); numeric identities
// use kNoId when absent.
struct ParsedEvent {
  std::string kind;
  double time = 0;
  std::uint64_t txn = kNoId;
  std::uint64_t update = kNoId;
  std::string object;
  std::string detail;
  std::string reason;
  double instructions = 0;
  // Originating shard. Sharded Chrome traces carry one track group
  // ("shard N" process) per shard; uniprocessor traces and flight
  // dumps are all shard 0.
  int shard = 0;
};

struct ParsedTrace {
  // Flight dumps: the tripped predicate ("none" when untripped) and
  // trip time. Chrome traces: "chrome" / 0.
  std::string trip_predicate;
  double trip_time = 0;
  // The fault window named by an outage-recovery trip (header's
  // `window=` token); "" for other predicates and Chrome traces.
  std::string trip_window;
  // Number of shard track groups in the document (1 for uniprocessor
  // traces and flight dumps).
  int shards = 1;
  std::vector<ParsedEvent> events;
};

// Parses a flight-record dump. Returns nullopt (with *error set) on a
// malformed header or row.
[[nodiscard]] std::optional<ParsedTrace> ParseFlightDump(std::istream& in,
                                           std::string* error);

// Parses a ChromeTraceWriter document back into events. Metadata and
// flow records are skipped; B/E span records come back as "dispatch" /
// "segment-complete" events.
[[nodiscard]] std::optional<ParsedTrace> ParseChromeTrace(std::istream& in,
                                            std::string* error);

// --- queries ---------------------------------------------------------------

std::vector<ParsedEvent> FilterByTxn(const std::vector<ParsedEvent>& events,
                                     std::uint64_t txn);
std::vector<ParsedEvent> FilterByObject(
    const std::vector<ParsedEvent>& events, const std::string& object);
std::vector<ParsedEvent> FilterByWindow(
    const std::vector<ParsedEvent>& events, double from, double to);
std::vector<ParsedEvent> FilterByShard(
    const std::vector<ParsedEvent>& events, int shard);

// Policy-decision tallies: "choice/reason" -> count.
std::map<std::string, std::uint64_t> DecisionCounts(
    const std::vector<ParsedEvent>& events);

// Event-count-by-kind summary.
std::map<std::string, std::uint64_t> KindCounts(
    const std::vector<ParsedEvent>& events);

// One step of a transaction's critical path: either a CPU segment the
// transaction ran ("run") or a wait, annotated with what occupied the
// CPU during it.
struct CriticalPathStep {
  double start = 0;
  double end = 0;
  std::string what;  // "run <dispatch-kind>" / "wait" / "preempted <reason>"
  std::string note;  // wait annotation: "updater install-uq x3, txn 17 ..."
};

struct CriticalPath {
  std::uint64_t txn = kNoId;
  std::string outcome;  // terminal detail token, "" if the trace window
                        // ends before the terminal
  double admitted = 0;
  double terminal = 0;
  double running_seconds = 0;
  double waiting_seconds = 0;
  std::vector<CriticalPathStep> steps;
};

// Reconstructs `txn`'s critical path from the event list. Returns
// nullopt (with *error set) when the transaction never appears.
std::optional<CriticalPath> ExtractCriticalPath(
    const std::vector<ParsedEvent>& events, std::uint64_t txn,
    std::string* error);

// The first transaction in the trace that missed its deadline, if any.
std::optional<std::uint64_t> FirstMissedDeadlineTxn(
    const std::vector<ParsedEvent>& events);

// Human-readable critical-path report.
void PrintCriticalPath(std::ostream& out, const CriticalPath& path);

}  // namespace strip::obs::trace

#endif  // STRIP_OBS_TRACE_TRACE_ANALYSIS_H_
