#include "check/lint/lexer.h"

#include <cctype>

namespace strip::check::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Cursor over the source with line/column bookkeeping.
class Scanner {
 public:
  explicit Scanner(std::string_view source) : source_(source) {}

  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  int line() const { return line_; }
  int col() const { return col_; }

  char Advance() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  bool Match(std::string_view text) const {
    return source_.compare(pos_, text.size(), text) == 0;
  }

  void Skip(std::size_t n) {
    for (std::size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

 private:
  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

// Consumes a normal (non-raw) string or char literal body after the
// opening quote has been consumed. Stops at the closing quote, an
// unescaped newline (ill-formed — close there), or end of input.
void SkipQuoted(Scanner* s, char quote) {
  while (!s->AtEnd()) {
    const char c = s->Peek();
    if (c == '\\' && s->Peek(1) != '\0') {
      s->Skip(2);
      continue;
    }
    if (c == '\n') return;  // unterminated; don't eat the next line
    s->Advance();
    if (c == quote) return;
  }
}

// Consumes a raw string body after the opening `R"`. Raw strings have
// no escapes; the terminator is `)delim"`.
void SkipRawString(Scanner* s) {
  std::string delim;
  while (!s->AtEnd() && s->Peek() != '(' && s->Peek() != '\n' &&
         delim.size() < 16) {
    delim += s->Advance();
  }
  if (s->AtEnd() || s->Peek() != '(') return;  // ill-formed
  s->Advance();  // '('
  const std::string close = ")" + delim + "\"";
  while (!s->AtEnd()) {
    if (s->Match(close)) {
      s->Skip(close.size());
      return;
    }
    s->Advance();
  }
}

// Multi-char operators the rules care about; longest match first.
constexpr std::string_view kOperators[] = {"::", "==", "!=", "->",
                                           "&&", "||"};

}  // namespace

bool IsFloatLiteral(std::string_view number) {
  const bool hex =
      number.size() > 1 && number[0] == '0' &&
      (number[1] == 'x' || number[1] == 'X');
  for (std::size_t i = hex ? 2 : 0; i < number.size(); ++i) {
    const char c = number[i];
    if (c == '.') return true;
    if (!hex && (c == 'e' || c == 'E')) return true;
    if (hex && (c == 'p' || c == 'P')) return true;
  }
  return false;
}

std::vector<Token> Lex(std::string_view source) {
  std::vector<Token> tokens;
  Scanner s(source);
  // True until a non-whitespace token is seen on the current logical
  // line; a '#' here starts a preprocessor directive.
  bool at_line_start = true;
  while (!s.AtEnd()) {
    const char c = s.Peek();
    if (c == '\n') {
      s.Advance();
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      s.Advance();
      continue;
    }
    if (c == '/' && s.Peek(1) == '/') {
      while (!s.AtEnd() && s.Peek() != '\n') s.Advance();
      continue;
    }
    if (c == '/' && s.Peek(1) == '*') {
      s.Skip(2);
      while (!s.AtEnd() && !s.Match("*/")) s.Advance();
      s.Skip(2);
      continue;
    }

    Token token;
    token.line = s.line();
    token.col = s.col();

    if (c == '#' && at_line_start) {
      // Preprocessor directive. Surface `#include <...>` / `#include
      // "..."` paths as kIncludePath; lex other directives normally.
      s.Advance();  // '#'
      while (!s.AtEnd() && (s.Peek() == ' ' || s.Peek() == '\t'))
        s.Advance();
      std::string directive;
      while (!s.AtEnd() && IsIdentCont(s.Peek())) directive += s.Advance();
      if (directive == "include" || directive == "include_next") {
        while (!s.AtEnd() && (s.Peek() == ' ' || s.Peek() == '\t'))
          s.Advance();
        const char open = s.Peek();
        if (open == '<' || open == '"') {
          const char close = open == '<' ? '>' : '"';
          token.kind = TokenKind::kIncludePath;
          token.line = s.line();
          token.col = s.col();
          token.text += s.Advance();
          while (!s.AtEnd() && s.Peek() != '\n') {
            const char h = s.Advance();
            token.text += h;
            if (h == close) break;
          }
          tokens.push_back(std::move(token));
        }
      }
      at_line_start = false;
      continue;
    }
    at_line_start = false;

    // Raw strings and encoding-prefixed literals.
    if (c == 'R' && s.Peek(1) == '"') {
      s.Skip(2);
      SkipRawString(&s);
      token.kind = TokenKind::kString;
      tokens.push_back(std::move(token));
      continue;
    }
    if (IsIdentStart(c)) {
      while (!s.AtEnd() && IsIdentCont(s.Peek())) token.text += s.Advance();
      // u8"..." / L'x' style prefixes: the literal follows directly.
      if ((s.Peek() == '"' || s.Peek() == '\'') &&
          (token.text == "u8" || token.text == "u" || token.text == "U" ||
           token.text == "L")) {
        const char quote = s.Advance();
        SkipQuoted(&s, quote);
        token.kind =
            quote == '"' ? TokenKind::kString : TokenKind::kChar;
        token.text.clear();
        tokens.push_back(std::move(token));
        continue;
      }
      if (s.Peek() == '"' &&
          (token.text == "uR" || token.text == "u8R" ||
           token.text == "UR" || token.text == "LR")) {
        s.Advance();  // '"'
        SkipRawString(&s);
        token.kind = TokenKind::kString;
        token.text.clear();
        tokens.push_back(std::move(token));
        continue;
      }
      token.kind = TokenKind::kIdentifier;
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = s.Advance();
      SkipQuoted(&s, quote);
      token.kind = quote == '"' ? TokenKind::kString : TokenKind::kChar;
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(s.Peek(1))))) {
      // pp-number: digits, identifier chars, '.', and exponent signs.
      token.kind = TokenKind::kNumber;
      token.text += s.Advance();
      while (!s.AtEnd()) {
        const char n = s.Peek();
        if (IsIdentCont(n) || n == '.') {
          token.text += s.Advance();
          continue;
        }
        if ((n == '+' || n == '-') && !token.text.empty()) {
          const char prev = token.text.back();
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            token.text += s.Advance();
            continue;
          }
        }
        break;
      }
      tokens.push_back(std::move(token));
      continue;
    }

    token.kind = TokenKind::kPunct;
    bool matched = false;
    for (const std::string_view op : kOperators) {
      if (s.Match(op)) {
        token.text = std::string(op);
        s.Skip(op.size());
        matched = true;
        break;
      }
    }
    if (!matched) token.text += s.Advance();
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace strip::check::lint
