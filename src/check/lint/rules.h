// Rule engine for the determinism linter (tools/strip_lint).
//
// Rules run over the code-only token stream from check/lint/lexer.h
// and emit structured findings: a stable rule id, a severity, a
// one-line message, and a fix hint. The rule set covers the four
// nondeterminism sources the old grep lint banned, plus AST-lite
// checks a grep can't express:
//
//   det-libc-rand       libc rand()/srand()/random()/drand48() —
//                       unseeded global state
//   det-random-device   std::random_device — hardware entropy
//   det-wallclock       wall-clock reads (system_clock::now,
//                       time(nullptr), gettimeofday, ...)
//   det-unordered-iter  a for-loop walking an unordered_map/_set
//                       declared in this file or its companion header
//                       — iteration order is implementation-defined
//   det-rng-copy        sim::RandomStream taken by value or copied
//                       from another stream — sibling draws repeat
//                       the same sequence instead of Fork()ing
//   float-eq            ==/!= against a floating-point literal in
//                       src/ — exact-bit comparison
//   wallclock-include   <chrono>/<ctime>/<sys/time.h> included from
//                       simulation code under src/
//
// Findings are filtered through an allowlist whose entries *must*
// carry a justification; entries that match nothing are reported as
// dead so the list can only shrink.

#ifndef STRIP_CHECK_LINT_RULES_H_
#define STRIP_CHECK_LINT_RULES_H_

#include <string>
#include <string_view>
#include <vector>

namespace strip::check::lint {

enum class Severity { kWarning, kError };

const char* SeverityName(Severity severity);

// Static description of one rule, for --help and the JSON document.
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;
};

// The full rule table, in stable order.
const std::vector<RuleInfo>& Rules();

struct Finding {
  std::string file;  // path as given to LintSource
  int line = 0;
  int col = 0;
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;
  std::string fix_hint;
};

// One allowlist entry: `<path-substring>:<rule-id> -- <justification>`.
struct AllowEntry {
  std::string path;           // substring match against Finding::file
  std::string rule;           // rule id (legacy tags accepted)
  std::string justification;  // required, non-empty
  int line = 0;               // line in the allowlist file
  bool used = false;          // matched at least one finding this run
};

struct Allowlist {
  std::vector<AllowEntry> entries;
};

// Parses the allowlist format. Lines are `path:rule -- justification`;
// `#` comments and blank lines are skipped. Returns a non-empty error
// string on a malformed line — most importantly an entry with no
// justification. Legacy tags from the grep-based lint (`rand`,
// `random_device`, `wallclock`, `unordered-iter`) are translated to
// their modern rule ids.
[[nodiscard]] std::string ParseAllowlist(std::string_view text,
                                         Allowlist* out);

struct LintOptions {
  // Additional sources (typically the companion .h of a .cc) whose
  // unordered-container declarations seed det-unordered-iter, so
  // loops over members declared in the header are caught in the
  // implementation file.
  std::vector<std::string> companion_sources;
  // Apply src/-only rules (float-eq, wallclock-include). The driver
  // sets this from the file's path.
  bool in_src_tree = false;
};

// Runs every rule over one file's source. `path` is used verbatim in
// findings (and for allowlist matching later).
std::vector<Finding> LintSource(const std::string& path,
                                std::string_view source,
                                const LintOptions& options);

// Drops findings matched by an allowlist entry, marking the entries
// used. Returns the surviving findings.
std::vector<Finding> ApplyAllowlist(std::vector<Finding> findings,
                                    Allowlist* allowlist);

}  // namespace strip::check::lint

#endif  // STRIP_CHECK_LINT_RULES_H_
