// Token lexer for the determinism linter (tools/strip_lint).
//
// The old grep-based lint (scripts/lint_determinism.sh) matched raw
// text, so a banned name inside a comment, a string literal, or a
// doc example tripped it just like real code. This lexer produces a
// code-only token stream: comments are skipped entirely and the
// *contents* of string/char literals (including raw strings) never
// become identifier or punctuation tokens, so rules match only what
// the compiler would actually see.
//
// The lexer is deliberately not a full C++ front end. It recognizes
// exactly what the lint rules need:
//
//   - identifiers and pp-numbers, with source line/column
//   - string / char / raw-string literals as opaque single tokens
//   - `#include` directives, surfacing the header path as its own
//     token kind so include-hygiene rules don't re-parse lines
//   - a small set of multi-char operators (`::`, `==`, `!=`, `->`,
//     `&&`, `||`); everything else is single-char punctuation
//
// Malformed input (unterminated literal or comment) never aborts the
// scan: the lexer closes the construct at end of file, so the linter
// can be pointed at arbitrary trees — and fuzzed — safely.

#ifndef STRIP_CHECK_LINT_LEXER_H_
#define STRIP_CHECK_LINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace strip::check::lint {

enum class TokenKind {
  kIdentifier,   // foo, unordered_map, nullptr
  kNumber,       // pp-number: 42, 0x1f, 1.0e-3f
  kString,       // "..." or R"(...)" — text is "" (contents stripped)
  kChar,         // '...' — text is ''
  kIncludePath,  // <chrono> or "db/object.h", delimiters included
  kPunct,        // operators and punctuation
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 1;  // 1-based
  int col = 1;   // 1-based, byte offset in line
};

// Lexes `source` into a code-only token stream. Never fails: any
// malformed construct is closed at end of input.
std::vector<Token> Lex(std::string_view source);

// True if a kNumber token spells a floating-point literal (decimal
// point, decimal exponent, or hex-float exponent).
bool IsFloatLiteral(std::string_view number);

}  // namespace strip::check::lint

#endif  // STRIP_CHECK_LINT_LEXER_H_
