#include "check/lint/rules.h"

#include <algorithm>
#include <cstddef>
#include <set>
#include <sstream>
#include <string>

#include "check/lint/lexer.h"

namespace strip::check::lint {

namespace {

const Token kNoToken{};  // kPunct with empty text

// Token at `i`, or a harmless empty token when out of range — lets
// pattern code index freely without bounds checks.
const Token& At(const std::vector<Token>& tokens, std::size_t i) {
  return i < tokens.size() ? tokens[i] : kNoToken;
}

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

// True when tokens[i] is reached through a member access (`x.rand(`)
// or a non-std qualifier (`mylib::rand(`) — someone else's symbol,
// not the libc/global one.
bool IsQualifiedAway(const std::vector<Token>& tokens, std::size_t i) {
  if (i == 0) return false;
  const Token& prev = tokens[i - 1];
  if (IsPunct(prev, ".") || IsPunct(prev, "->")) return true;
  if (IsPunct(prev, "::") && i >= 2) {
    const Token& qual = tokens[i - 2];
    return qual.kind == TokenKind::kIdentifier && qual.text != "std";
  }
  return false;
}

void Add(std::vector<Finding>* findings, const std::string& path,
         const Token& at, const char* rule, Severity severity,
         std::string message, std::string fix_hint) {
  Finding f;
  f.file = path;
  f.line = at.line;
  f.col = at.col;
  f.rule = rule;
  f.severity = severity;
  f.message = std::move(message);
  f.fix_hint = std::move(fix_hint);
  findings->push_back(std::move(f));
}

// --- det-libc-rand ---------------------------------------------------------

void CheckLibcRand(const std::vector<Token>& tokens, const std::string& path,
                   std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const bool seeded_family = t.text == "rand" || t.text == "srand" ||
                               t.text == "drand48" || t.text == "lrand48";
    // `random` only as the zero-arg libc call shape — `RandomStream
    // random(7)` is a declaration and stays legal.
    const bool zero_arg_random =
        t.text == "random" && IsPunct(At(tokens, i + 1), "(") &&
        IsPunct(At(tokens, i + 2), ")");
    if (!seeded_family && !zero_arg_random) continue;
    if (!IsPunct(At(tokens, i + 1), "(")) continue;
    if (IsQualifiedAway(tokens, i)) continue;
    Add(findings, path, t, "det-libc-rand", Severity::kError,
        "libc " + t.text + "() draws from unseeded global state",
        "draw from a sim::RandomStream seeded by the run's RngSeed");
  }
}

// --- det-random-device -----------------------------------------------------

void CheckRandomDevice(const std::vector<Token>& tokens,
                       const std::string& path,
                       std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!IsIdent(t, "random_device")) continue;
    if (IsQualifiedAway(tokens, i)) continue;
    Add(findings, path, t, "det-random-device", Severity::kError,
        "std::random_device reads hardware entropy",
        "derive the seed from the run's RngSeed (RandomStream::Fork)");
  }
}

// --- det-wallclock ---------------------------------------------------------

void CheckWallclock(const std::vector<Token>& tokens, const std::string& path,
                    std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const bool clock_type = t.text == "system_clock" ||
                            t.text == "steady_clock" ||
                            t.text == "high_resolution_clock";
    if (clock_type && IsPunct(At(tokens, i + 1), "::") &&
        IsIdent(At(tokens, i + 2), "now")) {
      Add(findings, path, t, "det-wallclock", Severity::kError,
          "wall-clock read via " + t.text + "::now()",
          "simulation state and output must derive from sim::Time only");
      continue;
    }
    if (t.text == "time" && !IsQualifiedAway(tokens, i) &&
        IsPunct(At(tokens, i + 1), "(") &&
        (IsIdent(At(tokens, i + 2), "NULL") ||
         IsIdent(At(tokens, i + 2), "nullptr")) &&
        IsPunct(At(tokens, i + 3), ")")) {
      Add(findings, path, t, "det-wallclock", Severity::kError,
          "wall-clock read via time()",
          "simulation state and output must derive from sim::Time only");
      continue;
    }
    if ((t.text == "gettimeofday" || t.text == "clock_gettime") &&
        !IsQualifiedAway(tokens, i) && IsPunct(At(tokens, i + 1), "(")) {
      Add(findings, path, t, "det-wallclock", Severity::kError,
          "wall-clock read via " + t.text + "()",
          "simulation state and output must derive from sim::Time only");
    }
  }
}

// --- det-unordered-iter ----------------------------------------------------

bool IsUnorderedContainerName(const Token& t) {
  return t.kind == TokenKind::kIdentifier &&
         (t.text == "unordered_map" || t.text == "unordered_set" ||
          t.text == "unordered_multimap" || t.text == "unordered_multiset");
}

// Collects names declared with an unordered container type:
// `std::unordered_map<K, V> name` (members, locals, parameters).
void CollectUnorderedNames(const std::vector<Token>& tokens,
                           std::set<std::string>* names) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!IsUnorderedContainerName(tokens[i])) continue;
    std::size_t j = i + 1;
    if (!IsPunct(At(tokens, j), "<")) continue;
    int depth = 0;
    for (; j < tokens.size(); ++j) {
      if (IsPunct(tokens[j], "<")) ++depth;
      if (IsPunct(tokens[j], ">") && --depth == 0) break;
    }
    const Token& name = At(tokens, j + 1);
    if (name.kind == TokenKind::kIdentifier) names->insert(name.text);
  }
}

// Finds the index of the ')' matching the '(' at `open`.
std::size_t MatchParen(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (IsPunct(tokens[i], "(")) ++depth;
    if (IsPunct(tokens[i], ")") && --depth == 0) return i;
  }
  return tokens.size();
}

void CheckUnorderedIter(const std::vector<Token>& tokens,
                        const std::set<std::string>& unordered_names,
                        const std::string& path,
                        std::vector<Finding>* findings) {
  if (unordered_names.empty()) return;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!IsIdent(tokens[i], "for") || !IsPunct(At(tokens, i + 1), "("))
      continue;
    const std::size_t open = i + 1;
    const std::size_t close = MatchParen(tokens, open);
    // Range-for: a top-level ':' inside the header ('::' lexes as its
    // own token, so a bare ':' is unambiguous).
    std::size_t colon = close;
    int depth = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (IsPunct(tokens[j], "(") || IsPunct(tokens[j], "[")) ++depth;
      if (IsPunct(tokens[j], ")") || IsPunct(tokens[j], "]")) --depth;
      if (depth == 0 && IsPunct(tokens[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon != close) {
      // `for (... : range)` — flag only when the range expression is a
      // plain member/variable chain naming an unordered container. A
      // call in the range (`SortedCopy(map_)`) materializes its own
      // deterministic order and stays legal.
      bool has_call = false;
      const Token* hit = nullptr;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (IsPunct(tokens[j], "(")) has_call = true;
        if (tokens[j].kind == TokenKind::kIdentifier &&
            unordered_names.count(tokens[j].text) > 0) {
          hit = &tokens[j];
        }
      }
      if (hit != nullptr && !has_call) {
        Add(findings, path, *hit, "det-unordered-iter", Severity::kError,
            "range-for over unordered container '" + hit->text +
                "' — iteration order is implementation-defined",
            "copy into a sorted vector (or keep the loop provably "
            "order-insensitive and allowlist it)");
      }
    } else {
      // Classic for: flag `name.begin()` / `name.cbegin()` iterator
      // walks in the header.
      for (std::size_t j = open + 1; j + 2 < close; ++j) {
        if (tokens[j].kind == TokenKind::kIdentifier &&
            unordered_names.count(tokens[j].text) > 0 &&
            (IsPunct(tokens[j + 1], ".") || IsPunct(tokens[j + 1], "->")) &&
            (IsIdent(tokens[j + 2], "begin") ||
             IsIdent(tokens[j + 2], "cbegin"))) {
          Add(findings, path, tokens[j], "det-unordered-iter",
              Severity::kError,
              "iterator walk over unordered container '" + tokens[j].text +
                  "' — iteration order is implementation-defined",
              "copy into a sorted vector (or keep the loop provably "
              "order-insensitive and allowlist it)");
          break;
        }
      }
    }
    i = close;
  }
}

// --- det-rng-copy ----------------------------------------------------------

void CheckRngCopy(const std::vector<Token>& tokens, const std::string& path,
                  std::vector<Finding>* findings) {
  int paren_depth = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (IsPunct(t, "(")) ++paren_depth;
    if (IsPunct(t, ")")) --paren_depth;
    if (!IsIdent(t, "RandomStream")) continue;
    const Token& next = At(tokens, i + 1);
    if (next.kind != TokenKind::kIdentifier) continue;
    const Token& after = At(tokens, i + 2);
    if (paren_depth > 0 &&
        (IsPunct(after, ",") || IsPunct(after, ")") || IsPunct(after, "="))) {
      Add(findings, path, t, "det-rng-copy", Severity::kError,
          "RandomStream parameter '" + next.text +
              "' taken by value — the copy replays the caller's stream",
          "pass RandomStream by reference, or hand the callee a "
          "Fork()ed child");
      continue;
    }
    if (paren_depth == 0 && IsPunct(after, "=") &&
        At(tokens, i + 3).kind == TokenKind::kIdentifier &&
        IsPunct(At(tokens, i + 4), ";")) {
      Add(findings, path, t, "det-rng-copy", Severity::kError,
          "RandomStream '" + next.text + "' copy-initialized from '" +
              At(tokens, i + 3).text +
              "' — both streams replay the same draws",
          "seed the new stream from Fork() instead of copying");
    }
  }
}

// --- float-eq --------------------------------------------------------------

void CheckFloatEq(const std::vector<Token>& tokens, const std::string& path,
                  std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!IsPunct(t, "==") && !IsPunct(t, "!=")) continue;
    const Token& lhs = i > 0 ? tokens[i - 1] : kNoToken;
    const Token& rhs = At(tokens, i + 1);
    const bool lhs_float =
        lhs.kind == TokenKind::kNumber && IsFloatLiteral(lhs.text);
    const bool rhs_float =
        rhs.kind == TokenKind::kNumber && IsFloatLiteral(rhs.text);
    if (!lhs_float && !rhs_float) continue;
    Add(findings, path, t, "float-eq", Severity::kWarning,
        std::string("floating-point ") + t.text +
            " against a literal is an exact-bit comparison",
        "compare with an epsilon, or allowlist if exactness is the "
        "point (e.g. a sentinel/no-op check)");
  }
}

// --- wallclock-include -----------------------------------------------------

void CheckWallclockInclude(const std::vector<Token>& tokens,
                           const std::string& path,
                           std::vector<Finding>* findings) {
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kIncludePath) continue;
    if (t.text == "<chrono>" || t.text == "<ctime>" ||
        t.text == "<time.h>" || t.text == "<sys/time.h>") {
      Add(findings, path, t, "wallclock-include", Severity::kError,
          "wall-clock header " + t.text + " included from simulation code",
          "simulation code tells time with sim::Time; only the "
          "experiment budget layer may read the wall clock");
    }
  }
}

}  // namespace

const char* SeverityName(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"det-libc-rand", Severity::kError,
       "libc rand()/srand()/random()/drand48() — unseeded global state"},
      {"det-random-device", Severity::kError,
       "std::random_device — hardware entropy"},
      {"det-wallclock", Severity::kError,
       "wall-clock reads (system_clock::now, time(nullptr), ...)"},
      {"det-unordered-iter", Severity::kError,
       "for-loop over an unordered container — order is "
       "implementation-defined"},
      {"det-rng-copy", Severity::kError,
       "RandomStream by value or copied — streams replay the same draws"},
      {"float-eq", Severity::kWarning,
       "==/!= against a floating-point literal in src/"},
      {"wallclock-include", Severity::kError,
       "<chrono>/<ctime> included from simulation code under src/"},
  };
  return kRules;
}

std::string ParseAllowlist(std::string_view text, Allowlist* out) {
  out->entries.clear();
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Trim.
    const auto is_space = [](char c) { return c == ' ' || c == '\t'; };
    while (!line.empty() && is_space(line.back())) line.pop_back();
    std::size_t start = 0;
    while (start < line.size() && is_space(line[start])) ++start;
    if (start >= line.size()) continue;
    const std::string_view body(line.data() + start, line.size() - start);

    const std::size_t sep = body.find(" -- ");
    if (sep == std::string_view::npos) {
      return "allowlist line " + std::to_string(lineno) +
             ": missing ' -- <justification>' (every entry must say WHY "
             "the exception is safe)";
    }
    const std::string_view head = body.substr(0, sep);
    std::string_view just = body.substr(sep + 4);
    while (!just.empty() && is_space(just.front())) just.remove_prefix(1);
    if (just.empty()) {
      return "allowlist line " + std::to_string(lineno) +
             ": empty justification";
    }
    const std::size_t colon = head.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 >= head.size()) {
      return "allowlist line " + std::to_string(lineno) +
             ": expected '<path-substring>:<rule-id> -- <justification>'";
    }
    AllowEntry entry;
    entry.path = std::string(head.substr(0, colon));
    entry.rule = std::string(head.substr(colon + 1));
    entry.justification = std::string(just);
    entry.line = lineno;
    // Legacy grep-lint tags.
    if (entry.rule == "rand") entry.rule = "det-libc-rand";
    if (entry.rule == "random_device") entry.rule = "det-random-device";
    if (entry.rule == "wallclock") entry.rule = "det-wallclock";
    if (entry.rule == "unordered-iter") entry.rule = "det-unordered-iter";
    bool known = false;
    for (const RuleInfo& rule : Rules()) {
      if (entry.rule == rule.id) known = true;
    }
    if (!known) {
      return "allowlist line " + std::to_string(lineno) +
             ": unknown rule id '" + entry.rule + "'";
    }
    out->entries.push_back(std::move(entry));
  }
  return "";
}

std::vector<Finding> LintSource(const std::string& path,
                                std::string_view source,
                                const LintOptions& options) {
  const std::vector<Token> tokens = Lex(source);
  std::vector<Finding> findings;
  CheckLibcRand(tokens, path, &findings);
  CheckRandomDevice(tokens, path, &findings);
  CheckWallclock(tokens, path, &findings);

  std::set<std::string> unordered_names;
  CollectUnorderedNames(tokens, &unordered_names);
  for (const std::string& companion : options.companion_sources) {
    CollectUnorderedNames(Lex(companion), &unordered_names);
  }
  CheckUnorderedIter(tokens, unordered_names, path, &findings);

  CheckRngCopy(tokens, path, &findings);
  if (options.in_src_tree) {
    CheckFloatEq(tokens, path, &findings);
    CheckWallclockInclude(tokens, path, &findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> ApplyAllowlist(std::vector<Finding> findings,
                                    Allowlist* allowlist) {
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& finding : findings) {
    bool allowed = false;
    for (AllowEntry& entry : allowlist->entries) {
      if (entry.rule == finding.rule &&
          finding.file.find(entry.path) != std::string::npos) {
        entry.used = true;
        allowed = true;
      }
    }
    if (!allowed) kept.push_back(std::move(finding));
  }
  return kept;
}

}  // namespace strip::check::lint
