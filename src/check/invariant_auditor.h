// Online validation of the simulation model's invariants.
//
// The paper's figures are all derived from a handful of accounting
// identities — staleness integrals, queue conservation, one CPU owner
// at a time — that the simulation core maintains implicitly. The
// InvariantAuditor makes them explicit: it attaches through the
// ObserverBus like any other observer and checks, at every hook, that
// the event stream the System emits is one a correct implementation of
// the Section 3 model could have produced.
//
// Checked invariants (stable tokens used in violation records):
//
//   event-clock        hook timestamps are finite, non-negative, and
//                      non-decreasing; nothing fires after run-end
//   dispatch-span      every OnDispatch is closed by exactly one
//                      matching OnSegmentComplete / OnPreempt before
//                      the next dispatch; DispatchInfo is well-formed
//                      (owner matches kind, instructions finite >= 0)
//   txn-lifecycle      admitted exactly once, referenced only while
//                      live, exactly one terminal with a real outcome
//                      (overload drops are the one terminal allowed
//                      without admission)
//   update-lifecycle   every update follows arrival -> OS queue ->
//                      [update queue ->] install/drop with drop
//                      reasons legal for the state they fire from
//   update-conservation  per importance class, at every scheduler
//                      settle point: arrived == installed + dropped +
//                      in OS queue + in update queue + on the CPU
//   queue-accounting   the auditor's own depth counters match the
//                      System's live OsQueue / UpdateQueue sizes and
//                      bounds (and per-class UpdateQueue splits)
//   txn-census         the auditor's live-transaction set matches
//                      System::live_txn_count()
//   od-causality       every OnUpdateInstalled(on_demand_by=T) follows
//                      an OnStaleRead by T for the same object
//   stale-conformance  an object the tracker reports fresh/stale
//                      satisfies the active criterion, recomputed from
//                      the database and update queue (spot-checked at
//                      every stale read and install, full-database
//                      sweep at phase boundaries)
//   fault-bracketing   fault windows begin/end alternately per label,
//                      at their scheduled boundaries, and never go
//                      negative-depth
//
// A violation records the offending sim time, a one-line message, and
// a flight-recorder-style dump of the most recent hook events for
// context. The auditor is read-only: attaching it never perturbs the
// simulation (verified by a byte-identity test on telemetry output).
//
// Typical use (tools/strip_sim --audit):
//
//   check::InvariantAuditor auditor;
//   auditor.set_system(&system);
//   core::ScopedObserver scoped(&system.observer_bus(), &auditor);
//   system.Run();
//   if (!auditor.ok()) { std::cerr << auditor.Report(); ... }
//
// Tests can also drive the hooks directly (no System) to verify the
// auditor trips on fabricated invalid sequences; deep cross-checks
// against live queues are simply skipped when no system is attached.

#ifndef STRIP_CHECK_INVARIANT_AUDITOR_H_
#define STRIP_CHECK_INVARIANT_AUDITOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/strong_types.h"
#include "core/observer.h"
#include "core/system.h"
#include "db/object.h"

namespace strip::check {

class InvariantAuditor : public core::SystemObserver {
 public:
  struct Options {
    // Violations kept verbatim; further ones only bump the total.
    std::size_t max_violations = 16;
    // Recent hook events retained for the context dump.
    std::size_t context_depth = 32;
    // Fail hard (STRIP_CHECK) on the first violation instead of
    // recording it. For debugging under a debugger / in CI triage.
    bool abort_on_violation = false;
  };

  struct Violation {
    std::string invariant;  // stable token, e.g. "update-conservation"
    double time = 0;        // sim time the violation was detected at
    std::string message;    // one-line description
    std::string context;    // rendered recent-event ring
  };

  InvariantAuditor() : InvariantAuditor(Options{}) {}
  explicit InvariantAuditor(const Options& options);

  // Enables the deep cross-checks (queue-accounting, txn-census,
  // stale-conformance) against the audited System's live state. The
  // system must outlive this auditor's registration. Attach before the
  // run starts — the auditor assumes it sees the hook stream from the
  // beginning.
  void set_system(const core::System* system) { system_ = system; }

  // --- results -------------------------------------------------------------

  bool ok() const { return total_violations_ == 0; }
  // Total violations detected (recorded + dropped past the cap).
  std::uint64_t total_violations() const { return total_violations_; }
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t events_seen() const { return events_seen_; }

  // Multi-line report of every recorded violation with its context
  // dump; "" when ok().
  std::string Report() const;

  // --- audit tallies (tests, telemetry) ------------------------------------

  std::uint64_t updates_arrived(db::ObjectClass cls) const {
    return counts_[Cls(cls)].arrived;
  }
  std::uint64_t updates_installed(db::ObjectClass cls) const {
    return counts_[Cls(cls)].installed;
  }
  std::uint64_t updates_dropped(db::ObjectClass cls) const {
    return counts_[Cls(cls)].dropped;
  }
  std::uint64_t txns_admitted() const { return txns_admitted_; }
  std::uint64_t txns_terminal() const { return txns_terminal_; }

  // --- SystemObserver ------------------------------------------------------

  void OnTransactionTerminal(sim::Time now,
                             const txn::Transaction& transaction) override;
  void OnUpdateInstalled(sim::Time now, const db::Update& update,
                         const txn::Transaction* on_demand_by) override;
  void OnUpdateDropped(sim::Time now, const db::Update& update,
                       DropReason reason) override;
  void OnStaleRead(sim::Time now, const txn::Transaction& transaction,
                   db::ObjectId object) override;
  void OnPhase(sim::Time now, Phase phase) override;
  void OnTxnAdmitted(sim::Time now,
                     const txn::Transaction& transaction) override;
  void OnUpdateArrival(sim::Time now, const db::Update& update) override;
  void OnUpdateEnqueued(sim::Time now, const db::Update& update) override;
  void OnDispatch(sim::Time now, const DispatchInfo& dispatch) override;
  void OnSegmentComplete(sim::Time now, const DispatchInfo& dispatch) override;
  void OnPreempt(sim::Time now, const txn::Transaction& transaction,
                 PreemptReason reason) override;
  void OnPolicyDecision(sim::Time now, core::PolicyKind policy,
                        SchedulerChoice choice, const char* reason) override;
  void OnFaultWindow(sim::Time now, const FaultWindowInfo& window) override;

 private:
  // Where an in-system update currently sits.
  enum class UpdateState {
    kInOsQueue,      // arrived; waiting in the kernel buffer
    kInUpdateQueue,  // received into the controller's update queue
    kInFlight,       // popped by the updater; on the CPU
  };

  struct TrackedUpdate {
    UpdateState state = UpdateState::kInOsQueue;
    db::ObjectId object;
  };

  struct ClassCounts {
    std::uint64_t arrived = 0;
    std::uint64_t installed = 0;
    std::uint64_t dropped = 0;
    // Live occupancy, by state.
    std::uint64_t in_os = 0;
    std::uint64_t in_uq = 0;
    std::uint64_t in_flight = 0;
  };

  // One ring entry; all strings have static storage duration.
  struct ContextEvent {
    double time = 0;
    const char* hook = "";
    std::uint64_t id = kNoContextId;  // txn or update id
    const char* note = "";
    int obj_cls = -1;  // -1 when no object is involved
    int obj_index = -1;
  };
  static constexpr std::uint64_t kNoContextId = ~std::uint64_t{0};

  static int Cls(db::ObjectClass cls) { return static_cast<int>(cls); }
  static std::int64_t PackObject(db::ObjectId id) {
    return (static_cast<std::int64_t>(Cls(id.cls)) << 32) | id.index;
  }

  void Record(const char* invariant, double now, std::string message);
  void Note(double now, const char* hook, std::uint64_t id,
            const char* note, db::ObjectId object);
  void Note(double now, const char* hook, std::uint64_t id = kNoContextId,
            const char* note = "");
  std::string RenderContext() const;

  // Common per-hook prologue: clock + after-run-end checks.
  void CheckClock(double now, const char* hook);
  // Is `object` a legal id for the audited database?
  void CheckObject(double now, const char* where, db::ObjectId object);
  // Legal DispatchInfo shape for its kind.
  void CheckDispatchShape(double now, const char* hook,
                          const DispatchInfo& dispatch);
  // Deep cross-checks, run at scheduler settle points.
  void CrossCheckAtSettlePoint(double now, const char* hook);
  // Recompute one object's staleness from first principles and compare
  // with the tracker's answer.
  void CheckStaleConformance(double now, const char* where,
                             db::ObjectId object);
  // Full-database conformance sweep (phase boundaries).
  void SweepStaleConformance(double now);
  // Moves a tracked update to terminal state and settles tallies.
  void RetireUpdate(
      std::unordered_map<base::UpdateId, TrackedUpdate>::iterator it,
      bool installed);
  std::uint64_t LiveUpdateTotal(UpdateState state) const;

  Options options_;
  const core::System* system_ = nullptr;

  // --- results ---------------------------------------------------------------
  std::vector<Violation> violations_;
  std::uint64_t total_violations_ = 0;
  std::uint64_t events_seen_ = 0;

  // --- context ring ----------------------------------------------------------
  std::vector<ContextEvent> ring_;
  std::size_t ring_next_ = 0;

  // --- clock -----------------------------------------------------------------
  double last_time_ = 0;
  bool run_ended_ = false;
  bool warmup_seen_ = false;

  // --- dispatch span ---------------------------------------------------------
  bool span_open_ = false;
  DispatchKind span_kind_ = DispatchKind::kTxnCompute;
  // Owners of the open span; the kNoContextId sentinel means "none".
  base::TxnId span_txn_{kNoContextId};
  base::UpdateId span_update_{kNoContextId};
  // The last closed span was a remote service: its heal (an update-
  // queue install with no demanding transaction) lands before the next
  // dispatch.
  bool after_remote_segment_ = false;

  // --- transactions ----------------------------------------------------------
  // Live txn id -> packed ObjectIds it read stale (for od-causality).
  std::unordered_map<base::TxnId, std::unordered_set<std::int64_t>>
      live_txns_;
  std::uint64_t txns_admitted_ = 0;
  std::uint64_t txns_terminal_ = 0;

  // --- updates ---------------------------------------------------------------
  std::unordered_map<base::UpdateId, TrackedUpdate> live_updates_;
  ClassCounts counts_[db::kNumObjectClasses];

  // --- staleness (arrival-based MA needs per-object install arrivals) --------
  std::unordered_map<std::int64_t, double> install_arrival_;

  // --- fault windows ---------------------------------------------------------
  std::unordered_map<std::string, bool> fault_open_;  // label -> open?
  int fault_depth_ = 0;
};

}  // namespace strip::check

#endif  // STRIP_CHECK_INVARIANT_AUDITOR_H_
