#include "check/cluster_auditor.h"

#include <sstream>

#include "core/cluster.h"

namespace strip::check {

void ClusterAuditor::Record(const char* invariant, double now,
                            std::string message) {
  Violation violation;
  violation.invariant = invariant;
  violation.time = now;
  violation.message = std::move(message);
  violations_.push_back(std::move(violation));
}

bool ClusterAuditor::CheckShape(double now, const char* hook,
                                const core::RemoteRead& read) {
  const int shards =
      cluster_ != nullptr ? cluster_->shards() : 0;
  std::ostringstream problem;
  if (read.home_shard == read.peer_shard) {
    problem << "home == peer (" << read.home_shard << ")";
  } else if (read.home_shard < 0 || read.peer_shard < 0 ||
             (shards > 0 &&
              (read.home_shard >= shards || read.peer_shard >= shards))) {
    problem << "shard out of range (home=" << read.home_shard
            << " peer=" << read.peer_shard << ")";
  } else {
    return true;
  }
  std::ostringstream out;
  out << hook << " request " << read.request_id << ": " << problem.str();
  Record("remote-lifecycle", now, out.str());
  return false;
}

void ClusterAuditor::OnShardRemoteIssued(sim::Time now,
                                         const core::RemoteRead& read) {
  ++issued_;
  if (!CheckShape(now, "issued", read)) return;
  const auto [it, inserted] = pending_.emplace(
      read.request_id,
      Pending{Stage::kIssued, read.home_shard, read.peer_shard,
              read.txn_id});
  if (!inserted) {
    std::ostringstream out;
    out << "request " << read.request_id << " issued twice";
    Record("remote-lifecycle", now, out.str());
  }
}

void ClusterAuditor::OnShardRemoteQueued(sim::Time now,
                                         const core::RemoteRead& read) {
  ++queued_;
  if (!CheckShape(now, "queued", read)) return;
  const auto it = pending_.find(read.request_id);
  if (it == pending_.end() || it->second.stage != Stage::kIssued) {
    std::ostringstream out;
    out << "request " << read.request_id
        << (it == pending_.end() ? " queued without issue"
                                 : " queued twice");
    Record("remote-lifecycle", now, out.str());
    return;
  }
  if (it->second.peer_shard != read.peer_shard ||
      it->second.home_shard != read.home_shard) {
    std::ostringstream out;
    out << "request " << read.request_id
        << " queued with mismatched shards (issued home="
        << it->second.home_shard << " peer=" << it->second.peer_shard
        << ", queued home=" << read.home_shard
        << " peer=" << read.peer_shard << ")";
    Record("remote-lifecycle", now, out.str());
    return;
  }
  it->second.stage = Stage::kQueued;
}

void ClusterAuditor::OnShardRemoteServiced(sim::Time now,
                                           const core::RemoteRead& read) {
  ++serviced_;
  if (!CheckShape(now, "serviced", read)) return;
  const auto it = pending_.find(read.request_id);
  if (it == pending_.end() || it->second.stage != Stage::kQueued) {
    std::ostringstream out;
    out << "request " << read.request_id
        << (it == pending_.end()
                ? " serviced without issue"
                : (it->second.stage == Stage::kIssued
                       ? " serviced without queueing"
                       : " serviced twice"));
    Record("remote-lifecycle", now, out.str());
    return;
  }
  it->second.stage = Stage::kServiced;
}

void ClusterAuditor::OnShardRemoteResolved(sim::Time now,
                                           const core::RemoteRead& read,
                                           bool txn_live) {
  ++resolved_;
  if (!txn_live) ++orphaned_;
  if (!CheckShape(now, "resolved", read)) return;
  const auto it = pending_.find(read.request_id);
  if (it == pending_.end() || it->second.stage != Stage::kServiced) {
    std::ostringstream out;
    out << "request " << read.request_id
        << (it == pending_.end() ? " resolved without issue"
                                 : " resolved before service");
    Record("remote-lifecycle", now, out.str());
    if (it == pending_.end()) return;
  }
  pending_.erase(it);
}

void ClusterAuditor::FinishRun() {
  if (finished_) return;
  finished_ = true;
  const double end =
      cluster_ != nullptr && cluster_->simulator() != nullptr
          ? cluster_->simulator()->now()
          : 0.0;
  // Run-end truncation may legally cut requests mid-rendezvous; what
  // must hold is exact accounting: each stage counter equals the next
  // stage's counter plus the requests still parked at that stage.
  std::uint64_t parked_issued = 0, parked_queued = 0, parked_serviced = 0;
  for (const auto& [id, pending] : pending_) {
    switch (pending.stage) {
      case Stage::kIssued:
        ++parked_issued;
        break;
      case Stage::kQueued:
        ++parked_queued;
        break;
      case Stage::kServiced:
        ++parked_serviced;
        break;
    }
  }
  if (queued_ + parked_issued != issued_ ||
      serviced_ + parked_queued != queued_ ||
      resolved_ + parked_serviced != serviced_) {
    std::ostringstream out;
    out << "stage counts diverge: issued=" << issued_
        << " queued=" << queued_ << " serviced=" << serviced_
        << " resolved=" << resolved_ << " (outstanding issued="
        << parked_issued << " queued=" << parked_queued
        << " serviced=" << parked_serviced << ")";
    Record("remote-census", end, out.str());
  }
  if (cluster_ != nullptr && cluster_->remote_requests_issued() != issued_) {
    std::ostringstream out;
    out << "cluster issued " << cluster_->remote_requests_issued()
        << " request ids but the buses reported " << issued_;
    Record("remote-census", end, out.str());
  }
}

std::string ClusterAuditor::Report() const {
  if (ok()) return "";
  std::ostringstream out;
  for (const Violation& violation : violations_) {
    out << "[" << violation.invariant << "] t=" << violation.time << "  "
        << violation.message << "\n";
  }
  return out.str();
}

}  // namespace strip::check
