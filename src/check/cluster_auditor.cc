#include "check/cluster_auditor.h"

#include <algorithm>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "core/cluster.h"

namespace strip::check {

void ClusterAuditor::Record(const char* invariant, double now,
                            std::string message) {
  Violation violation;
  violation.invariant = invariant;
  violation.time = now;
  violation.message = std::move(message);
  violations_.push_back(std::move(violation));
}

bool ClusterAuditor::CheckShape(double now, const char* hook,
                                const core::RemoteRead& read) {
  const int shards =
      cluster_ != nullptr ? cluster_->shards() : 0;
  std::ostringstream problem;
  if (read.home_shard == read.peer_shard) {
    problem << "home == peer (" << read.home_shard << ")";
  } else if (read.home_shard.value() < 0 || read.peer_shard.value() < 0 ||
             (shards > 0 && (read.home_shard.value() >= shards ||
                             read.peer_shard.value() >= shards))) {
    problem << "shard out of range (home=" << read.home_shard
            << " peer=" << read.peer_shard << ")";
  } else {
    return true;
  }
  std::ostringstream out;
  out << hook << " request " << read.request_id << ": " << problem.str();
  Record("remote-lifecycle", now, out.str());
  return false;
}

void ClusterAuditor::OnShardRemoteIssued(sim::Time now,
                                         const core::RemoteRead& read) {
  ++issued_;
  if (!CheckShape(now, "issued", read)) return;
  const auto [it, inserted] = pending_.emplace(
      read.request_id,
      Pending{Stage::kIssued, read.home_shard, read.peer_shard,
              read.txn_id});
  if (!inserted) {
    std::ostringstream out;
    out << "request " << read.request_id << " issued twice";
    Record("remote-lifecycle", now, out.str());
  }
}

void ClusterAuditor::OnShardRemoteQueued(sim::Time now,
                                         const core::RemoteRead& read) {
  ++queued_;
  if (!CheckShape(now, "queued", read)) return;
  const auto it = pending_.find(read.request_id);
  if (it == pending_.end() || it->second.stage != Stage::kIssued) {
    std::ostringstream out;
    out << "request " << read.request_id
        << (it == pending_.end() ? " queued without issue"
                                 : " queued twice");
    Record("remote-lifecycle", now, out.str());
    return;
  }
  if (it->second.peer_shard != read.peer_shard ||
      it->second.home_shard != read.home_shard) {
    std::ostringstream out;
    out << "request " << read.request_id
        << " queued with mismatched shards (issued home="
        << it->second.home_shard << " peer=" << it->second.peer_shard
        << ", queued home=" << read.home_shard
        << " peer=" << read.peer_shard << ")";
    Record("remote-lifecycle", now, out.str());
    return;
  }
  it->second.stage = Stage::kQueued;
}

void ClusterAuditor::OnShardRemoteServiced(sim::Time now,
                                           const core::RemoteRead& read) {
  ++serviced_;
  if (!CheckShape(now, "serviced", read)) return;
  const auto it = pending_.find(read.request_id);
  if (it == pending_.end() || it->second.stage != Stage::kQueued) {
    std::ostringstream out;
    out << "request " << read.request_id
        << (it == pending_.end()
                ? " serviced without issue"
                : (it->second.stage == Stage::kIssued
                       ? " serviced without queueing"
                       : " serviced twice"));
    Record("remote-lifecycle", now, out.str());
    return;
  }
  it->second.stage = Stage::kServiced;
}

void ClusterAuditor::OnShardRemoteResolved(sim::Time now,
                                           const core::RemoteRead& read,
                                           bool txn_live) {
  ++resolved_;
  if (!txn_live) ++orphaned_;
  if (!CheckShape(now, "resolved", read)) return;
  const auto it = pending_.find(read.request_id);
  if (it == pending_.end() || it->second.stage != Stage::kServiced) {
    std::ostringstream out;
    out << "request " << read.request_id
        << (it == pending_.end() ? " resolved without issue"
                                 : " resolved before service");
    Record("remote-lifecycle", now, out.str());
    if (it == pending_.end()) return;
  }
  if (it->second.dropped) {
    std::ostringstream out;
    out << "request " << read.request_id
        << " resolved after the fabric dropped its message";
    Record("remote-lifecycle", now, out.str());
  }
  pending_.erase(it);
}

void ClusterAuditor::OnShardRemoteDropped(sim::Time now,
                                          const core::RemoteRead& read,
                                          bool reply_leg) {
  if (reply_leg) {
    ++dropped_replies_;
  } else {
    ++dropped_requests_;
  }
  if (!CheckShape(now, "dropped", read)) return;
  const auto it = pending_.find(read.request_id);
  if (it == pending_.end()) {
    std::ostringstream out;
    out << "request " << read.request_id << " dropped without issue";
    Record("remote-lifecycle", now, out.str());
    return;
  }
  if (it->second.dropped) {
    std::ostringstream out;
    out << "request " << read.request_id << " dropped twice";
    Record("remote-lifecycle", now, out.str());
    return;
  }
  // Each leg has exactly one legal stage to die at: a request leg is
  // lost before the peer queues it, a reply leg only after service.
  const Stage expected = reply_leg ? Stage::kServiced : Stage::kIssued;
  if (it->second.stage != expected) {
    std::ostringstream out;
    out << "request " << read.request_id << ": "
        << (reply_leg ? "reply" : "request")
        << " leg dropped at the wrong stage";
    Record("remote-lifecycle", now, out.str());
    return;
  }
  it->second.dropped = true;
}

void ClusterAuditor::OnRemoteTimeout(sim::Time now,
                                     const core::RemoteRead& read,
                                     int attempt, bool will_retry) {
  ++timeouts_;
  if (!CheckShape(now, "timed-out", read)) return;
  if (pending_.find(read.request_id) == pending_.end()) {
    // The home shard's timer may only fire while its current request
    // is genuinely unresolved; resolution cancels the timer.
    std::ostringstream out;
    out << "request " << read.request_id
        << " timed out but is not outstanding";
    Record("remote-lifecycle", now, out.str());
  }
  if (attempt < 1) {
    std::ostringstream out;
    out << "request " << read.request_id << " timed out at attempt "
        << attempt;
    Record("remote-lifecycle", now, out.str());
  }
  if (!will_retry) last_exhausted_request_ = read.request_id;
}

void ClusterAuditor::OnDegradedRead(sim::Time now,
                                    const core::RemoteRead& read) {
  ++degraded_;
  if (!CheckShape(now, "degraded", read)) return;
  if (read.request_id != last_exhausted_request_) {
    std::ostringstream out;
    out << "request " << read.request_id
        << " served a degraded read without an exhausted timeout";
    Record("remote-lifecycle", now, out.str());
    return;
  }
  last_exhausted_request_ = ~std::uint64_t{0};
}

namespace {

bool IsClusterScopedKind(const char* kind) {
  if (kind == nullptr) return false;
  const std::string_view k = kind;
  return k == "link-latency" || k == "link-loss" || k == "partition" ||
         k == "shard-outage";
}

}  // namespace

void ClusterAuditor::OnFaultWindow(sim::Time now,
                                   const FaultWindowInfo& window) {
  const char* label = window.label != nullptr ? window.label : "";
  std::ostringstream key;
  key << label << "#" << window.shard;
  bool& open = window_open_[key.str()];
  if (window.begin) {
    if (open) {
      std::ostringstream out;
      out << "window " << label << " began twice on shard "
          << window.shard;
      Record("partition-bracket", now, out.str());
    }
    open = true;
  } else {
    if (!open) {
      std::ostringstream out;
      out << "window " << label << " ended without beginning on shard "
          << window.shard;
      Record("partition-bracket", now, out.str());
    }
    open = false;
  }
  if (IsClusterScopedKind(window.kind)) {
    WindowTally& tally = cluster_windows_[label];
    if (window.begin) {
      ++tally.begins;
    } else {
      ++tally.ends;
    }
  }
}

void ClusterAuditor::FinishRun() {
  if (finished_) return;
  finished_ = true;
  const double end =
      cluster_ != nullptr && cluster_->simulator() != nullptr
          ? cluster_->simulator()->now()
          : 0.0;
  // Run-end truncation may legally cut requests mid-rendezvous, and
  // the fabric may legally kill a message at its leg's one valid
  // stage; what must hold is exact accounting: each stage counter
  // equals the next stage's counter, plus the requests still parked at
  // that stage, plus the messages the fabric reported dropped there.
  // Every issued request is thereby resolved exactly once — served,
  // degraded/aborted (a late reply resolves orphaned), dropped, or
  // truncated — with no lost-reply leaks.
  std::uint64_t parked_issued = 0, parked_queued = 0, parked_serviced = 0;
  std::uint64_t dead_requests = 0, dead_replies = 0;
  for (const auto& [id, pending] : pending_) {
    if (pending.dropped) {
      // A dropped entry sits at the stage its leg died at.
      if (pending.stage == Stage::kIssued) {
        ++dead_requests;
      } else {
        ++dead_replies;
      }
      continue;
    }
    switch (pending.stage) {
      case Stage::kIssued:
        ++parked_issued;
        break;
      case Stage::kQueued:
        ++parked_queued;
        break;
      case Stage::kServiced:
        ++parked_serviced;
        break;
    }
  }
  if (dead_requests != dropped_requests_ ||
      dead_replies != dropped_replies_) {
    std::ostringstream out;
    out << "drop ledger diverges: fabric reported "
        << dropped_requests_ << " request / " << dropped_replies_
        << " reply drops but " << dead_requests << " / " << dead_replies
        << " requests died at those stages";
    Record("remote-census", end, out.str());
  }
  if (queued_ + parked_issued + dropped_requests_ != issued_ ||
      serviced_ + parked_queued != queued_ ||
      resolved_ + parked_serviced + dropped_replies_ != serviced_) {
    std::ostringstream out;
    out << "stage counts diverge: issued=" << issued_
        << " queued=" << queued_ << " serviced=" << serviced_
        << " resolved=" << resolved_ << " (outstanding issued="
        << parked_issued << " queued=" << parked_queued
        << " serviced=" << parked_serviced << ", dropped requests="
        << dropped_requests_ << " replies=" << dropped_replies_ << ")";
    Record("remote-census", end, out.str());
  }
  if (cluster_ != nullptr && cluster_->remote_requests_issued() != issued_) {
    std::ostringstream out;
    out << "cluster issued " << cluster_->remote_requests_issued()
        << " request ids but the buses reported " << issued_;
    Record("remote-census", end, out.str());
  }
  // Cluster-scoped windows broadcast each boundary to every shard: the
  // tallies must be exact multiples of the cluster size, with at most
  // one begin round still open (the window outlived the run).
  const std::uint64_t shards =
      cluster_ != nullptr ? static_cast<std::uint64_t>(cluster_->shards())
                          : 0;
  // Sorted copy: hash-map order would let the violation *order* (and
  // with it the report text) vary across library implementations when
  // several windows diverge at once.
  std::vector<std::pair<std::string, WindowTally>> windows(
      cluster_windows_.begin(), cluster_windows_.end());
  std::sort(windows.begin(), windows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [label, tally] : windows) {
    if (shards == 0) break;
    std::ostringstream out;
    if (tally.begins % shards != 0 || tally.ends % shards != 0) {
      out << "window " << label << " reported " << tally.begins
          << " begins / " << tally.ends << " ends across " << shards
          << " shards (not a whole round)";
    } else if (tally.begins != tally.ends &&
               tally.begins != tally.ends + shards) {
      out << "window " << label << " brackets diverge: " << tally.begins
          << " begins vs " << tally.ends << " ends across " << shards
          << " shards";
    } else {
      continue;
    }
    Record("partition-bracket", end, out.str());
  }
}

std::string ClusterAuditor::Report() const {
  if (ok()) return "";
  std::ostringstream out;
  for (const Violation& violation : violations_) {
    out << "[" << violation.invariant << "] t=" << violation.time << "  "
        << violation.message << "\n";
  }
  return out.str();
}

}  // namespace strip::check
