// Cross-shard invariants for sharded (core/cluster.h) runs.
//
// The per-shard InvariantAuditor validates each engine's event stream
// in isolation; what it cannot see is the contract *between* shards.
// ClusterAuditor attaches to every shard bus at once (the simulation
// is single-threaded, so one instance sees the cluster-wide hook
// stream in causal order) and checks the cross-shard read protocol:
//
//   remote-lifecycle   every request id is issued exactly once, on a
//                      home shard distinct from its peer, both in
//                      range; queued on its peer after issue; serviced
//                      after queueing; resolved on its home after
//                      service — no stage skipped, none repeated
//   remote-census      end-of-run accounting is exact: every issued
//                      request is resolved or still parked at a
//                      recorded stage (run-end truncation cuts
//                      rendezvous mid-flight, like txns_inflight_at_
//                      end), the stage counters agree with the parked
//                      set, and issued matches the Cluster's own
//                      request-id counter
//
// Usage (tools/strip_sim --audit at --shards >= 2):
//
//   check::ClusterAuditor auditor;
//   auditor.set_cluster(&cluster);
//   cluster.AddObserverToAllShards(&auditor);
//   cluster.Run();
//   auditor.FinishRun();
//   if (!auditor.ok()) { std::cerr << auditor.Report(); ... }
//
// Read-only, like InvariantAuditor: attaching it never perturbs the
// run.

#ifndef STRIP_CHECK_CLUSTER_AUDITOR_H_
#define STRIP_CHECK_CLUSTER_AUDITOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/observer.h"

namespace strip::core {
class Cluster;
}  // namespace strip::core

namespace strip::check {

class ClusterAuditor : public core::SystemObserver {
 public:
  struct Violation {
    std::string invariant;  // "remote-lifecycle" | "remote-census"
    double time = 0;
    std::string message;
  };

  ClusterAuditor() = default;

  // Enables the end-of-run cross-check against the cluster's request
  // counter. The cluster must outlive this auditor's registration.
  void set_cluster(const core::Cluster* cluster) { cluster_ = cluster; }

  // Runs the end-of-run census. Call after Run()/HaltEarly() returns;
  // idempotent.
  void FinishRun();

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  // Multi-line report of every violation; "" when ok().
  std::string Report() const;

  // --- census tallies (tests, telemetry) -----------------------------------
  std::uint64_t issued() const { return issued_; }
  std::uint64_t queued() const { return queued_; }
  std::uint64_t serviced() const { return serviced_; }
  std::uint64_t resolved() const { return resolved_; }
  std::uint64_t orphaned() const { return orphaned_; }
  // Requests cut mid-rendezvous by the end of the run.
  std::uint64_t outstanding() const { return pending_.size(); }

  // --- SystemObserver ------------------------------------------------------
  void OnShardRemoteIssued(sim::Time now,
                           const core::RemoteRead& read) override;
  void OnShardRemoteQueued(sim::Time now,
                           const core::RemoteRead& read) override;
  void OnShardRemoteServiced(sim::Time now,
                             const core::RemoteRead& read) override;
  void OnShardRemoteResolved(sim::Time now, const core::RemoteRead& read,
                             bool txn_live) override;

 private:
  enum class Stage { kIssued, kQueued, kServiced };

  struct Pending {
    Stage stage = Stage::kIssued;
    int home_shard = -1;
    int peer_shard = -1;
    std::uint64_t txn_id = 0;
  };

  void Record(const char* invariant, double now, std::string message);
  // Shape checks shared by every hook; returns false (and records)
  // when the read's shard fields are malformed.
  bool CheckShape(double now, const char* hook,
                  const core::RemoteRead& read);

  const core::Cluster* cluster_ = nullptr;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::vector<Violation> violations_;
  std::uint64_t issued_ = 0;
  std::uint64_t queued_ = 0;
  std::uint64_t serviced_ = 0;
  std::uint64_t resolved_ = 0;
  std::uint64_t orphaned_ = 0;
  bool finished_ = false;
};

}  // namespace strip::check

#endif  // STRIP_CHECK_CLUSTER_AUDITOR_H_
