// Cross-shard invariants for sharded (core/cluster.h) runs.
//
// The per-shard InvariantAuditor validates each engine's event stream
// in isolation; what it cannot see is the contract *between* shards.
// ClusterAuditor attaches to every shard bus at once (the simulation
// is single-threaded, so one instance sees the cluster-wide hook
// stream in causal order) and checks the cross-shard read protocol:
//
//   remote-lifecycle   every request id is issued exactly once, on a
//                      home shard distinct from its peer, both in
//                      range; queued on its peer after issue; serviced
//                      after queueing; resolved on its home after
//                      service — no stage skipped, none repeated
//   remote-census      end-of-run accounting is exact: every issued
//                      request is resolved, dropped by the fabric at a
//                      legal leg, or still parked at a recorded stage
//                      (run-end truncation cuts rendezvous mid-flight,
//                      like txns_inflight_at_end), the stage counters
//                      agree with the parked set, and issued matches
//                      the Cluster's own request-id counter — no
//                      lost-reply leaks
//   partition-bracket  fault-window boundaries alternate begin/end on
//                      every shard, and cluster-scoped windows
//                      (partition, link-latency, link-loss,
//                      shard-outage) report each boundary on every
//                      shard of the cluster
//
// The interconnect fault domain adds three lifecycle events: a request
// or reply leg may be *dropped* by the fabric (only at the legal stage
// for that leg), a parked read may *time out* (only while the request
// is actually outstanding), and an exhausted timeout may resolve as a
// *degraded* local read (only immediately after its exhausted
// timeout).
//
// Usage (tools/strip_sim --audit at --shards >= 2):
//
//   check::ClusterAuditor auditor;
//   auditor.set_cluster(&cluster);
//   cluster.AddObserverToAllShards(&auditor);
//   cluster.Run();
//   auditor.FinishRun();
//   if (!auditor.ok()) { std::cerr << auditor.Report(); ... }
//
// Read-only, like InvariantAuditor: attaching it never perturbs the
// run.

#ifndef STRIP_CHECK_CLUSTER_AUDITOR_H_
#define STRIP_CHECK_CLUSTER_AUDITOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/strong_types.h"
#include "core/observer.h"

namespace strip::core {
class Cluster;
}  // namespace strip::core

namespace strip::check {

class ClusterAuditor : public core::SystemObserver {
 public:
  struct Violation {
    // "remote-lifecycle" | "remote-census" | "partition-bracket"
    std::string invariant;
    double time = 0;
    std::string message;
  };

  ClusterAuditor() = default;

  // Enables the end-of-run cross-check against the cluster's request
  // counter. The cluster must outlive this auditor's registration.
  void set_cluster(const core::Cluster* cluster) { cluster_ = cluster; }

  // Runs the end-of-run census. Call after Run()/HaltEarly() returns;
  // idempotent.
  void FinishRun();

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  // Multi-line report of every violation; "" when ok().
  std::string Report() const;

  // --- census tallies (tests, telemetry) -----------------------------------
  std::uint64_t issued() const { return issued_; }
  std::uint64_t queued() const { return queued_; }
  std::uint64_t serviced() const { return serviced_; }
  std::uint64_t resolved() const { return resolved_; }
  std::uint64_t orphaned() const { return orphaned_; }
  // Requests cut mid-rendezvous by the end of the run (includes
  // requests whose message the fabric dropped; see dropped_*()).
  std::uint64_t outstanding() const { return pending_.size(); }
  std::uint64_t dropped_requests() const { return dropped_requests_; }
  std::uint64_t dropped_replies() const { return dropped_replies_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t degraded() const { return degraded_; }

  // --- SystemObserver ------------------------------------------------------
  void OnShardRemoteIssued(sim::Time now,
                           const core::RemoteRead& read) override;
  void OnShardRemoteQueued(sim::Time now,
                           const core::RemoteRead& read) override;
  void OnShardRemoteServiced(sim::Time now,
                             const core::RemoteRead& read) override;
  void OnShardRemoteResolved(sim::Time now, const core::RemoteRead& read,
                             bool txn_live) override;
  void OnShardRemoteDropped(sim::Time now, const core::RemoteRead& read,
                            bool reply_leg) override;
  void OnRemoteTimeout(sim::Time now, const core::RemoteRead& read,
                       int attempt, bool will_retry) override;
  void OnDegradedRead(sim::Time now, const core::RemoteRead& read) override;
  void OnFaultWindow(sim::Time now,
                     const FaultWindowInfo& window) override;

 private:
  enum class Stage { kIssued, kQueued, kServiced };

  struct Pending {
    Stage stage = Stage::kIssued;
    base::ShardId home_shard = base::kNoShard;
    base::ShardId peer_shard = base::kNoShard;
    base::TxnId txn_id{};
    // The fabric lost this request's message; it can never resolve.
    bool dropped = false;
  };

  // Cluster-scoped windows report once per shard; both tallies must be
  // exact multiples of the cluster size when the run ends.
  struct WindowTally {
    std::uint64_t begins = 0;
    std::uint64_t ends = 0;
  };

  void Record(const char* invariant, double now, std::string message);
  // Shape checks shared by every hook; returns false (and records)
  // when the read's shard fields are malformed.
  bool CheckShape(double now, const char* hook,
                  const core::RemoteRead& read);

  const core::Cluster* cluster_ = nullptr;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::vector<Violation> violations_;
  std::uint64_t issued_ = 0;
  std::uint64_t queued_ = 0;
  std::uint64_t serviced_ = 0;
  std::uint64_t resolved_ = 0;
  std::uint64_t orphaned_ = 0;
  std::uint64_t dropped_requests_ = 0;
  std::uint64_t dropped_replies_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t degraded_ = 0;
  // The request id of the most recent exhausted (will_retry=false)
  // timeout; a degraded read must match it. ~0 when none pending.
  std::uint64_t last_exhausted_request_ = ~std::uint64_t{0};
  // Per-(label, shard) open flag for begin/end alternation.
  std::unordered_map<std::string, bool> window_open_;
  // Per-label boundary tallies for cluster-scoped window kinds.
  std::unordered_map<std::string, WindowTally> cluster_windows_;
  bool finished_ = false;
};

}  // namespace strip::check

#endif  // STRIP_CHECK_CLUSTER_AUDITOR_H_
