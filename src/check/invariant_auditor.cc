#include "check/invariant_auditor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <utility>

#include "base/check.h"
#include "db/staleness.h"

namespace strip::check {

namespace {

// Formats like printf into a std::string (messages are small).
template <typename... Args>
std::string Format(const char* fmt, Args... args) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), fmt, args...);
  return std::string(buffer);
}

bool TimesClose(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-9 * scale;
}

bool IsTxnKind(core::SystemObserver::DispatchKind kind) {
  switch (kind) {
    case core::SystemObserver::DispatchKind::kTxnCompute:
    case core::SystemObserver::DispatchKind::kTxnViewRead:
    case core::SystemObserver::DispatchKind::kTxnOdScan:
    case core::SystemObserver::DispatchKind::kTxnOdApply:
      return true;
    case core::SystemObserver::DispatchKind::kUpdaterTransfer:
    case core::SystemObserver::DispatchKind::kUpdaterInstallOs:
    case core::SystemObserver::DispatchKind::kUpdaterInstallUq:
    case core::SystemObserver::DispatchKind::kRemoteService:
      return false;
  }
  return false;
}

bool IsRemoteKind(core::SystemObserver::DispatchKind kind) {
  return kind == core::SystemObserver::DispatchKind::kRemoteService;
}

}  // namespace

InvariantAuditor::InvariantAuditor(const Options& options)
    : options_(options) {
  ring_.resize(options_.context_depth == 0 ? 1 : options_.context_depth);
}

// --- recording ---------------------------------------------------------------

void InvariantAuditor::Record(const char* invariant, double now,
                              std::string message) {
  ++total_violations_;
  if (options_.abort_on_violation) {
    std::fprintf(stderr, "invariant violation [%s] t=%.9g: %s\n%s",
                 invariant, now, message.c_str(), RenderContext().c_str());
    STRIP_CHECK_MSG(false, "invariant violation (abort_on_violation)");
  }
  if (violations_.size() >= options_.max_violations) return;
  Violation v;
  v.invariant = invariant;
  v.time = now;
  v.message = std::move(message);
  v.context = RenderContext();
  violations_.push_back(std::move(v));
}

void InvariantAuditor::Note(double now, const char* hook, std::uint64_t id,
                            const char* note, db::ObjectId object) {
  ContextEvent& e = ring_[ring_next_];
  ring_next_ = (ring_next_ + 1) % ring_.size();
  e.time = now;
  e.hook = hook;
  e.id = id;
  e.note = note;
  e.obj_cls = Cls(object.cls);
  e.obj_index = object.index;
  ++events_seen_;
}

void InvariantAuditor::Note(double now, const char* hook, std::uint64_t id,
                            const char* note) {
  Note(now, hook, id, note, db::ObjectId{});
  // The no-object overload leaves the object columns blank.
  std::size_t last = (ring_next_ + ring_.size() - 1) % ring_.size();
  ring_[last].obj_cls = -1;
  ring_[last].obj_index = -1;
}

std::string InvariantAuditor::RenderContext() const {
  std::string out = "  recent events (oldest first):\n";
  const std::size_t n = ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const ContextEvent& e = ring_[(ring_next_ + i) % n];
    if (e.hook[0] == '\0') continue;  // never filled
    out += Format("    t=%-12.9g %-18s", e.time, e.hook);
    if (e.id != kNoContextId) out += Format(" id=%llu",
        static_cast<unsigned long long>(e.id));
    if (e.obj_cls >= 0) {
      out += Format(" obj=%s:%d", e.obj_cls == 0 ? "low" : "high",
                    e.obj_index);
    }
    if (e.note[0] != '\0') {
      out += " ";
      out += e.note;
    }
    out += "\n";
  }
  return out;
}

std::string InvariantAuditor::Report() const {
  if (ok()) return "";
  std::string out = Format(
      "invariant audit: %llu violation(s) in %llu events\n",
      static_cast<unsigned long long>(total_violations_),
      static_cast<unsigned long long>(events_seen_));
  for (const Violation& v : violations_) {
    out += Format("[%s] t=%.9g %s\n", v.invariant.c_str(), v.time,
                  v.message.c_str());
    out += v.context;
  }
  if (total_violations_ > violations_.size()) {
    out += Format("(%llu further violation(s) past the cap not shown)\n",
                  static_cast<unsigned long long>(total_violations_ -
                                                  violations_.size()));
  }
  return out;
}

// --- shared prologues --------------------------------------------------------

void InvariantAuditor::CheckClock(double now, const char* hook) {
  if (!std::isfinite(now) || now < 0) {
    Record("event-clock", now,
           Format("%s fired at non-finite or negative time", hook));
    return;
  }
  if (now < last_time_) {
    Record("event-clock", now,
           Format("%s fired at t=%.9g, before the previous event at "
                  "t=%.9g",
                  hook, now, last_time_));
  }
  last_time_ = std::max(last_time_, now);
  if (run_ended_) {
    Record("event-clock", now,
           Format("%s fired after the run-end phase", hook));
  }
}

void InvariantAuditor::CheckObject(double now, const char* where,
                                   db::ObjectId object) {
  int limit = -1;
  if (system_ != nullptr) {
    limit = system_->database().size(object.cls);
  }
  if (object.index < 0 || (limit >= 0 && object.index >= limit)) {
    Record("update-lifecycle", now,
           Format("%s names object %s:%d outside the database", where,
                  db::ObjectClassName(object.cls), object.index));
  }
}

void InvariantAuditor::CheckDispatchShape(double now, const char* hook,
                                          const DispatchInfo& dispatch) {
  const bool txn_kind = IsTxnKind(dispatch.kind);
  if (txn_kind &&
      (dispatch.transaction == nullptr || dispatch.update != nullptr)) {
    Record("dispatch-span", now,
           Format("%s: %s dispatch must carry a transaction and no "
                  "update",
                  hook, core::DispatchKindName(dispatch.kind)));
  }
  if (IsRemoteKind(dispatch.kind) &&
      (dispatch.remote == nullptr || dispatch.transaction != nullptr ||
       dispatch.update != nullptr)) {
    Record("dispatch-span", now,
           Format("%s: %s dispatch must carry a remote read and nothing "
                  "else",
                  hook, core::DispatchKindName(dispatch.kind)));
  }
  if (!txn_kind && !IsRemoteKind(dispatch.kind) &&
      (dispatch.update == nullptr || dispatch.transaction != nullptr)) {
    Record("dispatch-span", now,
           Format("%s: %s dispatch must carry an update and no "
                  "transaction",
                  hook, core::DispatchKindName(dispatch.kind)));
  }
  if (!std::isfinite(dispatch.instructions) || dispatch.instructions < 0) {
    Record("dispatch-span", now,
           Format("%s: non-finite or negative instruction count %g", hook,
                  dispatch.instructions));
  }
}

std::uint64_t InvariantAuditor::LiveUpdateTotal(UpdateState state) const {
  std::uint64_t total = 0;
  for (const ClassCounts& c : counts_) {
    switch (state) {
      case UpdateState::kInOsQueue:
        total += c.in_os;
        break;
      case UpdateState::kInUpdateQueue:
        total += c.in_uq;
        break;
      case UpdateState::kInFlight:
        total += c.in_flight;
        break;
    }
  }
  return total;
}

void InvariantAuditor::CrossCheckAtSettlePoint(double now,
                                               const char* hook) {
  // The arithmetic identity first: it needs no System and catches
  // auditor-internal drift as well as duplicated/missing hooks.
  for (int c = 0; c < db::kNumObjectClasses; ++c) {
    const ClassCounts& k = counts_[c];
    if (k.arrived !=
        k.installed + k.dropped + k.in_os + k.in_uq + k.in_flight) {
      Record("update-conservation", now,
             Format("%s: class %s: arrived %llu != installed %llu + "
                    "dropped %llu + os %llu + uq %llu + cpu %llu",
                    hook, c == 0 ? "low" : "high",
                    static_cast<unsigned long long>(k.arrived),
                    static_cast<unsigned long long>(k.installed),
                    static_cast<unsigned long long>(k.dropped),
                    static_cast<unsigned long long>(k.in_os),
                    static_cast<unsigned long long>(k.in_uq),
                    static_cast<unsigned long long>(k.in_flight)));
    }
  }
  const std::uint64_t in_flight = LiveUpdateTotal(UpdateState::kInFlight);
  if (in_flight > 1) {
    Record("update-conservation", now,
           Format("%s: %llu updates on the one simulated CPU", hook,
                  static_cast<unsigned long long>(in_flight)));
  }
  if (system_ == nullptr) return;

  const std::uint64_t in_os = LiveUpdateTotal(UpdateState::kInOsQueue);
  const std::uint64_t os_actual = system_->os_queue().size();
  if (in_os != os_actual) {
    Record("queue-accounting", now,
           Format("%s: audited OS-queue depth %llu != actual %llu", hook,
                  static_cast<unsigned long long>(in_os),
                  static_cast<unsigned long long>(os_actual)));
  }
  if (os_actual > system_->os_queue().max_size()) {
    Record("queue-accounting", now,
           Format("%s: OS queue depth %llu exceeds bound %llu", hook,
                  static_cast<unsigned long long>(os_actual),
                  static_cast<unsigned long long>(
                      system_->os_queue().max_size())));
  }
  const db::UpdateQueue& uq = system_->update_queue();
  const std::uint64_t in_uq = LiveUpdateTotal(UpdateState::kInUpdateQueue);
  if (in_uq != uq.size()) {
    Record("queue-accounting", now,
           Format("%s: audited update-queue depth %llu != actual %llu",
                  hook, static_cast<unsigned long long>(in_uq),
                  static_cast<unsigned long long>(uq.size())));
  }
  if (uq.size() > uq.max_size()) {
    Record("queue-accounting", now,
           Format("%s: update-queue depth %llu exceeds bound %llu", hook,
                  static_cast<unsigned long long>(uq.size()),
                  static_cast<unsigned long long>(uq.max_size())));
  }
  for (int c = 0; c < db::kNumObjectClasses; ++c) {
    const auto cls = static_cast<db::ObjectClass>(c);
    if (counts_[c].in_uq != uq.SizeOfClass(cls)) {
      Record("queue-accounting", now,
             Format("%s: audited %s-class update-queue depth %llu != "
                    "actual %llu",
                    hook, c == 0 ? "low" : "high",
                    static_cast<unsigned long long>(counts_[c].in_uq),
                    static_cast<unsigned long long>(uq.SizeOfClass(cls))));
    }
  }
  if (live_txns_.size() != system_->live_txn_count()) {
    Record("txn-census", now,
           Format("%s: audited live-txn count %llu != actual %llu", hook,
                  static_cast<unsigned long long>(live_txns_.size()),
                  static_cast<unsigned long long>(
                      system_->live_txn_count())));
  }
}

// --- staleness conformance ---------------------------------------------------

void InvariantAuditor::CheckStaleConformance(double now, const char* where,
                                             db::ObjectId object) {
  if (system_ == nullptr) return;
  const db::StalenessTracker& tracker = system_->staleness();
  const db::Database& database = system_->database();
  if (object.index < 0 || object.index >= database.size(object.cls)) {
    return;  // CheckObject already recorded the out-of-range id
  }
  const double alpha = tracker.max_age();
  const db::StalenessCriterion criterion = tracker.criterion();

  // Max-Age family: age of the current value (generation-based, or the
  // arrival of the last install under the arrival variant; objects
  // start "fresh as of t=0"). ComputeStale uses >= at the boundary.
  double freshness = database.generation_time(object);
  if (criterion == db::StalenessCriterion::kMaxAgeArrival) {
    const auto it = install_arrival_.find(PackObject(object));
    freshness = it == install_arrival_.end() ? 0.0 : it->second;
  }
  const bool ma_stale = now - freshness >= alpha;

  // Unapplied-Update: a queued update newer than the database value.
  const std::optional<db::Update> newest =
      system_->update_queue().PeekNewestFor(object);
  const bool uu_stale =
      newest.has_value() &&
      newest->generation_time > database.generation_time(object);

  bool expected = false;
  switch (criterion) {
    case db::StalenessCriterion::kMaxAge:
    case db::StalenessCriterion::kMaxAgeArrival:
      expected = ma_stale;
      break;
    case db::StalenessCriterion::kUnappliedUpdate:
      expected = uu_stale;
      break;
    case db::StalenessCriterion::kCombined:
      expected = ma_stale || uu_stale;
      break;
  }
  const bool reported = tracker.IsStale(object);
  if (reported != expected) {
    Record("stale-conformance", now,
           Format("%s: object %s:%d reported %s but the %s criterion "
                  "says %s (value freshness %.9g, alpha %.9g)",
                  where, db::ObjectClassName(object.cls), object.index,
                  reported ? "stale" : "fresh",
                  db::StalenessCriterionName(criterion),
                  expected ? "stale" : "fresh", freshness, alpha));
  }
}

void InvariantAuditor::SweepStaleConformance(double now) {
  if (system_ == nullptr) return;
  const db::Database& database = system_->database();
  for (int c = 0; c < db::kNumObjectClasses; ++c) {
    const auto cls = static_cast<db::ObjectClass>(c);
    const int n = database.size(cls);
    for (int i = 0; i < n; ++i) {
      CheckStaleConformance(now, "phase-sweep", db::ObjectId{cls, i});
    }
  }
}

// --- update lifecycle --------------------------------------------------------

void InvariantAuditor::RetireUpdate(
    std::unordered_map<base::UpdateId, TrackedUpdate>::iterator it,
    bool installed) {
  ClassCounts& k = counts_[Cls(it->second.object.cls)];
  switch (it->second.state) {
    case UpdateState::kInOsQueue:
      --k.in_os;
      break;
    case UpdateState::kInUpdateQueue:
      --k.in_uq;
      break;
    case UpdateState::kInFlight:
      --k.in_flight;
      break;
  }
  if (installed) {
    ++k.installed;
  } else {
    ++k.dropped;
  }
  live_updates_.erase(it);
}

void InvariantAuditor::OnUpdateArrival(sim::Time now,
                                       const db::Update& update) {
  CheckClock(now, "update-arrival");
  Note(now, "update-arrival", update.id.value(), "", update.object);
  CheckObject(now, "update-arrival", update.object);
  if (!std::isfinite(update.generation_time) ||
      update.generation_time < 0 || update.generation_time > now) {
    Record("update-lifecycle", now,
           Format("update %llu arrived with generation time %.9g outside "
                  "[0, now]",
                  static_cast<unsigned long long>(update.id.value()),
                  update.generation_time));
  }
  const auto [it, inserted] = live_updates_.try_emplace(
      update.id,
      TrackedUpdate{UpdateState::kInOsQueue, update.object});
  if (!inserted) {
    Record("update-lifecycle", now,
           Format("update id %llu arrived twice",
                  static_cast<unsigned long long>(update.id.value())));
    return;
  }
  ClassCounts& k = counts_[Cls(update.object.cls)];
  ++k.arrived;
  ++k.in_os;
}

void InvariantAuditor::OnUpdateEnqueued(sim::Time now,
                                        const db::Update& update) {
  CheckClock(now, "update-enqueued");
  Note(now, "update-enqueued", update.id.value(), "", update.object);
  const auto it = live_updates_.find(update.id);
  if (it == live_updates_.end()) {
    Record("update-lifecycle", now,
           Format("unknown update %llu enqueued",
                  static_cast<unsigned long long>(update.id.value())));
    return;
  }
  if (it->second.state != UpdateState::kInFlight) {
    Record("update-lifecycle", now,
           Format("update %llu enqueued from state %d, not from the CPU",
                  static_cast<unsigned long long>(update.id.value()),
                  static_cast<int>(it->second.state)));
    return;
  }
  ClassCounts& k = counts_[Cls(it->second.object.cls)];
  --k.in_flight;
  ++k.in_uq;
  it->second.state = UpdateState::kInUpdateQueue;
}

void InvariantAuditor::OnUpdateInstalled(sim::Time now,
                                         const db::Update& update,
                                         const txn::Transaction* on_demand_by) {
  CheckClock(now, "update-installed");
  Note(now, "update-installed", update.id.value(),
       on_demand_by != nullptr ? "on-demand" : "", update.object);
  const auto it = live_updates_.find(update.id);
  if (it == live_updates_.end()) {
    Record("update-lifecycle", now,
           Format("unknown update %llu installed",
                  static_cast<unsigned long long>(update.id.value())));
  } else {
    // Ordinary installs happen on the CPU (popped from the OS queue or
    // the update queue); on-demand installs lift the update straight
    // out of the update queue inside the transaction's apply segment.
    const UpdateState state = it->second.state;
    const bool legal = state == UpdateState::kInFlight ||
                       state == UpdateState::kInUpdateQueue;
    if (!legal) {
      Record("update-lifecycle", now,
             Format("update %llu installed from the OS queue without "
                    "being received",
                    static_cast<unsigned long long>(update.id.value())));
    }
    // A remote-service segment may lift a queued update straight out of
    // the update queue (the "heal") right after its span closes.
    if (on_demand_by == nullptr && state == UpdateState::kInUpdateQueue &&
        !after_remote_segment_) {
      Record("update-lifecycle", now,
             Format("update %llu installed from the update queue without "
                    "a CPU segment or a demanding transaction",
                    static_cast<unsigned long long>(update.id.value())));
    }
    RetireUpdate(it, /*installed=*/true);
  }
  install_arrival_[PackObject(update.object)] = update.arrival_time;
  if (on_demand_by != nullptr) {
    const auto txn_it = live_txns_.find(on_demand_by->id());
    if (txn_it == live_txns_.end()) {
      Record("od-causality", now,
             Format("on-demand install of update %llu names transaction "
                    "%llu, which is not live",
                    static_cast<unsigned long long>(update.id.value()),
                    static_cast<unsigned long long>(on_demand_by->id().value())));
    } else if (txn_it->second.count(PackObject(update.object)) == 0) {
      Record("od-causality", now,
             Format("on-demand install of update %llu for object %s:%d "
                    "has no preceding stale read by transaction %llu",
                    static_cast<unsigned long long>(update.id.value()),
                    db::ObjectClassName(update.object.cls),
                    update.object.index,
                    static_cast<unsigned long long>(on_demand_by->id().value())));
    }
  }
  CheckStaleConformance(now, "update-installed", update.object);
}

void InvariantAuditor::OnUpdateDropped(sim::Time now,
                                       const db::Update& update,
                                       DropReason reason) {
  CheckClock(now, "update-dropped");
  Note(now, "update-dropped", update.id.value(), core::DropReasonName(reason),
       update.object);
  const auto it = live_updates_.find(update.id);
  if (it == live_updates_.end()) {
    Record("update-lifecycle", now,
           Format("unknown update %llu dropped (%s)",
                  static_cast<unsigned long long>(update.id.value()),
                  core::DropReasonName(reason)));
    return;
  }
  const UpdateState state = it->second.state;
  bool legal = false;
  switch (reason) {
    case DropReason::kOsQueueFull:
      // Rejected at arrival: never left the (full) kernel buffer.
      legal = state == UpdateState::kInOsQueue;
      break;
    case DropReason::kQueueOverflow:
    case DropReason::kExpired:
      // Evicted or purged out of the update queue.
      legal = state == UpdateState::kInUpdateQueue;
      break;
    case DropReason::kUnworthy:
      // Popped for install (OS or update queue) and found older than
      // the database, or lifted by an on-demand apply.
      legal = state == UpdateState::kInFlight ||
              state == UpdateState::kInUpdateQueue;
      break;
    case DropReason::kSuperseded:
    case DropReason::kOverloadShed:
      // Either the queued victim or the incoming update on the CPU.
      legal = state == UpdateState::kInUpdateQueue ||
              state == UpdateState::kInFlight;
      break;
  }
  if (!legal) {
    Record("update-lifecycle", now,
           Format("update %llu dropped (%s) from an illegal state %d",
                  static_cast<unsigned long long>(update.id.value()),
                  core::DropReasonName(reason),
                  static_cast<int>(state)));
  }
  RetireUpdate(it, /*installed=*/false);
}

// --- dispatch spans ----------------------------------------------------------

void InvariantAuditor::OnDispatch(sim::Time now,
                                  const DispatchInfo& dispatch) {
  CheckClock(now, "dispatch");
  const std::uint64_t id =
      dispatch.transaction != nullptr ? dispatch.transaction->id().value()
      : dispatch.update != nullptr   ? dispatch.update->id.value()
                                     : kNoContextId;
  Note(now, "dispatch", id, core::DispatchKindName(dispatch.kind));
  CheckDispatchShape(now, "dispatch", dispatch);
  if (span_open_) {
    Record("dispatch-span", now,
           Format("dispatch (%s) while the %s segment from an earlier "
                  "dispatch still owns the CPU",
                  core::DispatchKindName(dispatch.kind),
                  core::DispatchKindName(span_kind_)));
  }
  span_open_ = true;
  span_kind_ = dispatch.kind;
  span_txn_ = base::TxnId(kNoContextId);
  span_update_ = base::UpdateId(kNoContextId);
  after_remote_segment_ = false;
  if (IsTxnKind(dispatch.kind) && dispatch.transaction != nullptr) {
    span_txn_ = dispatch.transaction->id();
    if (live_txns_.count(span_txn_) == 0) {
      Record("txn-lifecycle", now,
             Format("dispatch of transaction %llu, which is not live",
                    static_cast<unsigned long long>(span_txn_.value())));
    }
  }
  if (!IsTxnKind(dispatch.kind) && !IsRemoteKind(dispatch.kind) &&
      dispatch.update != nullptr) {
    span_update_ = dispatch.update->id;
    const auto it = live_updates_.find(span_update_);
    if (it == live_updates_.end()) {
      Record("update-lifecycle", now,
             Format("dispatch of unknown update %llu",
                    static_cast<unsigned long long>(span_update_.value())));
    } else {
      // Transfers and direct installs pop the OS queue; update-queue
      // installs pop the update queue. Either way the update moves to
      // the CPU for the duration of the segment.
      const UpdateState expected =
          dispatch.kind == DispatchKind::kUpdaterInstallUq
              ? UpdateState::kInUpdateQueue
              : UpdateState::kInOsQueue;
      if (it->second.state != expected) {
        Record("update-lifecycle", now,
               Format("update %llu dispatched (%s) from state %d",
                      static_cast<unsigned long long>(span_update_.value()),
                      core::DispatchKindName(dispatch.kind),
                      static_cast<int>(it->second.state)));
      }
      ClassCounts& k = counts_[Cls(it->second.object.cls)];
      switch (it->second.state) {
        case UpdateState::kInOsQueue:
          --k.in_os;
          break;
        case UpdateState::kInUpdateQueue:
          --k.in_uq;
          break;
        case UpdateState::kInFlight:
          --k.in_flight;
          break;
      }
      ++k.in_flight;
      it->second.state = UpdateState::kInFlight;
    }
  }
  CrossCheckAtSettlePoint(now, "dispatch");
}

void InvariantAuditor::OnSegmentComplete(sim::Time now,
                                         const DispatchInfo& dispatch) {
  CheckClock(now, "segment-complete");
  const std::uint64_t id =
      dispatch.transaction != nullptr ? dispatch.transaction->id().value()
      : dispatch.update != nullptr   ? dispatch.update->id.value()
                                     : kNoContextId;
  Note(now, "segment-complete", id, core::DispatchKindName(dispatch.kind));
  CheckDispatchShape(now, "segment-complete", dispatch);
  if (!span_open_) {
    Record("dispatch-span", now,
           Format("segment-complete (%s) with no open dispatch",
                  core::DispatchKindName(dispatch.kind)));
  } else {
    if (dispatch.kind != span_kind_) {
      Record("dispatch-span", now,
             Format("segment-complete kind %s does not match the open "
                    "dispatch (%s)",
                    core::DispatchKindName(dispatch.kind),
                    core::DispatchKindName(span_kind_)));
    }
    const std::uint64_t owner =
        IsTxnKind(span_kind_) ? span_txn_.value() : span_update_.value();
    if (id != owner) {
      Record("dispatch-span", now,
             Format("segment-complete owner %llu does not match the open "
                    "dispatch owner %llu",
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(owner)));
    }
  }
  span_open_ = false;
  after_remote_segment_ = IsRemoteKind(dispatch.kind);
  CrossCheckAtSettlePoint(now, "segment-complete");
}

void InvariantAuditor::OnPreempt(sim::Time now,
                                 const txn::Transaction& transaction,
                                 PreemptReason reason) {
  CheckClock(now, "preempt");
  Note(now, "preempt", transaction.id().value(), core::PreemptReasonName(reason));
  if (!span_open_) {
    Record("dispatch-span", now,
           Format("transaction %llu preempted with no open dispatch",
                  static_cast<unsigned long long>(transaction.id().value())));
  } else {
    if (!IsTxnKind(span_kind_)) {
      Record("dispatch-span", now,
             Format("preempt (%s) while the CPU runs update work (%s)",
                    core::PreemptReasonName(reason),
                    core::DispatchKindName(span_kind_)));
    } else if (span_txn_ != transaction.id()) {
      Record("dispatch-span", now,
             Format("preempt names transaction %llu but the open "
                    "dispatch belongs to %llu",
                    static_cast<unsigned long long>(transaction.id().value()),
                    static_cast<unsigned long long>(span_txn_.value())));
    }
  }
  span_open_ = false;
  if (live_txns_.count(transaction.id()) == 0) {
    Record("txn-lifecycle", now,
           Format("preempt of transaction %llu, which is not live",
                  static_cast<unsigned long long>(transaction.id().value())));
  }
}

// --- transactions ------------------------------------------------------------

void InvariantAuditor::OnTxnAdmitted(sim::Time now,
                                     const txn::Transaction& transaction) {
  CheckClock(now, "txn-admitted");
  Note(now, "txn-admitted", transaction.id().value(), "");
  const auto [it, inserted] =
      live_txns_.try_emplace(transaction.id());
  (void)it;
  if (!inserted) {
    Record("txn-lifecycle", now,
           Format("transaction %llu admitted twice",
                  static_cast<unsigned long long>(transaction.id().value())));
    return;
  }
  ++txns_admitted_;
}

void InvariantAuditor::OnStaleRead(sim::Time now,
                                   const txn::Transaction& transaction,
                                   db::ObjectId object) {
  CheckClock(now, "stale-read");
  Note(now, "stale-read", transaction.id().value(), "", object);
  CheckObject(now, "stale-read", object);
  const auto it = live_txns_.find(transaction.id());
  if (it == live_txns_.end()) {
    Record("txn-lifecycle", now,
           Format("stale read by transaction %llu, which is not live",
                  static_cast<unsigned long long>(transaction.id().value())));
  } else {
    it->second.insert(PackObject(object));
  }
  if (system_ != nullptr && !system_->staleness().IsStale(object)) {
    Record("stale-conformance", now,
           Format("stale read reported for object %s:%d, which the "
                  "tracker holds fresh",
                  db::ObjectClassName(object.cls), object.index));
  }
  CheckStaleConformance(now, "stale-read", object);
}

void InvariantAuditor::OnTransactionTerminal(
    sim::Time now, const txn::Transaction& transaction) {
  CheckClock(now, "txn-terminal");
  Note(now, "txn-terminal", transaction.id().value(),
       txn::TxnOutcomeName(transaction.outcome()));
  if (transaction.outcome() == txn::TxnOutcome::kPending) {
    Record("txn-lifecycle", now,
           Format("transaction %llu reached terminal with no outcome",
                  static_cast<unsigned long long>(transaction.id().value())));
  }
  if (span_open_ && IsTxnKind(span_kind_) &&
      span_txn_ == transaction.id()) {
    Record("dispatch-span", now,
           Format("transaction %llu terminal while its dispatch span is "
                  "still open",
                  static_cast<unsigned long long>(transaction.id().value())));
  }
  const auto it = live_txns_.find(transaction.id());
  if (it == live_txns_.end()) {
    // Admission control rejects at the door: terminal without admission
    // is legal only for an overload drop.
    if (transaction.outcome() != txn::TxnOutcome::kOverloadDrop) {
      Record("txn-lifecycle", now,
             Format("transaction %llu terminal (%s) without admission",
                    static_cast<unsigned long long>(transaction.id().value()),
                    txn::TxnOutcomeName(transaction.outcome())));
    }
  } else {
    live_txns_.erase(it);
  }
  ++txns_terminal_;
}

// --- scheduler / phases / faults ---------------------------------------------

void InvariantAuditor::OnPolicyDecision(sim::Time now,
                                        core::PolicyKind policy,
                                        SchedulerChoice choice,
                                        const char* reason) {
  (void)policy;
  CheckClock(now, "policy-decision");
  Note(now, "policy-decision", kNoContextId,
       core::SchedulerChoiceName(choice));
  if (reason == nullptr || reason[0] == '\0') {
    Record("dispatch-span", now,
           "policy decision carries no reason token");
  }
  CrossCheckAtSettlePoint(now, "policy-decision");
}

void InvariantAuditor::OnPhase(sim::Time now, Phase phase) {
  CheckClock(now, "phase");
  Note(now, "phase", kNoContextId, core::PhaseName(phase));
  if (phase == Phase::kWarmupEnd) {
    if (warmup_seen_) {
      Record("event-clock", now, "warm-up ended twice");
    }
    warmup_seen_ = true;
  }
  CrossCheckAtSettlePoint(now, "phase");
  SweepStaleConformance(now);
  // A window straddling the end of the run legitimately never sees its
  // end boundary, so run-end leaves fault_open_ unchecked by design.
  if (phase == Phase::kRunEnd) run_ended_ = true;
}

void InvariantAuditor::OnFaultWindow(sim::Time now,
                                     const FaultWindowInfo& window) {
  CheckClock(now, "fault-window");
  const char* label = window.label != nullptr ? window.label : "";
  Note(now, "fault-window", kNoContextId,
       window.begin ? "begin" : "end");
  if (window.kind == nullptr || label[0] == '\0') {
    Record("fault-bracketing", now,
           "fault window with no kind or label");
    return;
  }
  if (!(window.start < window.end)) {
    Record("fault-bracketing", now,
           Format("fault window %s has no extent [%.9g, %.9g)", label,
                  window.start, window.end));
  }
  bool& open = fault_open_[label];
  if (window.begin) {
    if (open) {
      Record("fault-bracketing", now,
             Format("fault window %s began twice", label));
    }
    open = true;
    ++fault_depth_;
    if (!TimesClose(now, window.start)) {
      Record("fault-bracketing", now,
             Format("fault window %s began at t=%.9g, not at its "
                    "scheduled start %.9g",
                    label, now, window.start));
    }
  } else {
    if (!open) {
      Record("fault-bracketing", now,
             Format("fault window %s ended without beginning", label));
    } else {
      --fault_depth_;
    }
    open = false;
    if (!TimesClose(now, window.end)) {
      Record("fault-bracketing", now,
             Format("fault window %s ended at t=%.9g, not at its "
                    "scheduled end %.9g",
                    label, now, window.end));
    }
  }
  if (fault_depth_ < 0) {
    Record("fault-bracketing", now, "fault-window depth went negative");
    fault_depth_ = 0;
  }
}

}  // namespace strip::check
