#include "db/staleness.h"

#include <algorithm>

#include "base/check.h"

namespace strip::db {

const char* StalenessCriterionName(StalenessCriterion criterion) {
  switch (criterion) {
    case StalenessCriterion::kMaxAge:
      return "MA";
    case StalenessCriterion::kUnappliedUpdate:
      return "UU";
    case StalenessCriterion::kCombined:
      return "MA+UU";
    case StalenessCriterion::kMaxAgeArrival:
      return "MA-arrival";
  }
  return "?";
}

bool DetectableByTimestamp(StalenessCriterion criterion) {
  return criterion == StalenessCriterion::kMaxAge ||
         criterion == StalenessCriterion::kMaxAgeArrival;
}

StalenessTracker::StalenessTracker(sim::Simulator* simulator,
                                   StalenessCriterion criterion,
                                   sim::Duration max_age, int n_low,
                                   int n_high)
    : simulator_(simulator),
      criterion_(criterion),
      max_age_(max_age),
      low_(n_low),
      high_(n_high) {
  STRIP_CHECK(simulator != nullptr);
  if (UsesMaxAge()) {
    STRIP_CHECK_MSG(max_age > 0, "max age must be positive under MA");
  }
  for (int c = 0; c < kNumObjectClasses; ++c) {
    stale_fraction_[c].StartAt(simulator_->now(), 0.0);
  }
  if (UsesMaxAge()) {
    // All objects start with generation time 0 and will expire at
    // alpha unless refreshed first.
    for (int i = 0; i < n_low; ++i) {
      ScheduleExpiry({ObjectClass::kLowImportance, i});
    }
    for (int i = 0; i < n_high; ++i) {
      ScheduleExpiry({ObjectClass::kHighImportance, i});
    }
  }
}

StalenessTracker::ObjectState& StalenessTracker::state(ObjectId id) {
  auto& partition = id.cls == ObjectClass::kLowImportance ? low_ : high_;
  STRIP_CHECK_MSG(
      id.index >= 0 && id.index < static_cast<int>(partition.size()),
      "object index out of range");
  return partition[id.index];
}

const StalenessTracker::ObjectState& StalenessTracker::state(
    ObjectId id) const {
  return const_cast<StalenessTracker*>(this)->state(id);
}

bool StalenessTracker::ComputeStale(const ObjectState& s) const {
  // >= so the flag flips exactly when the expiry event fires at
  // freshness + max_age (the boundary itself has measure zero).
  const bool ma_stale = simulator_->now() - s.freshness >= max_age_;
  const bool uu_stale =
      !s.queued.empty() && s.queued.back().first > s.db_generation;
  switch (criterion_) {
    case StalenessCriterion::kMaxAge:
    case StalenessCriterion::kMaxAgeArrival:
      return ma_stale;
    case StalenessCriterion::kUnappliedUpdate:
      return uu_stale;
    case StalenessCriterion::kCombined:
      return ma_stale || uu_stale;
  }
  return false;
}

void StalenessTracker::Refresh(ObjectId id) {
  ObjectState& s = state(id);
  const bool now_stale = ComputeStale(s);
  if (now_stale == s.stale) return;
  s.stale = now_stale;
  sim::TimeWeighted& signal = stale_fraction_[static_cast<int>(id.cls)];
  signal.Set(simulator_->now(), signal.value() + (now_stale ? 1.0 : -1.0));
}

void StalenessTracker::ScheduleExpiry(ObjectId id) {
  ObjectState& s = state(id);
  simulator_->Cancel(s.expiry);
  const sim::Time expiry_time = s.freshness + max_age_;
  if (expiry_time <= simulator_->now()) {
    // Already older than alpha — stale immediately; no event needed.
    Refresh(id);
    return;
  }
  s.expiry =
      simulator_->ScheduleAt(expiry_time, [this, id] { Refresh(id); });
}

void StalenessTracker::ResetObservation() {
  for (int c = 0; c < kNumObjectClasses; ++c) {
    const double current = stale_fraction_[c].value();
    stale_fraction_[c].StartAt(simulator_->now(), current);
  }
}

void StalenessTracker::OnApply(ObjectId id, sim::Time generation_time,
                               sim::Time arrival_time) {
  ObjectState& s = state(id);
  STRIP_CHECK_MSG(generation_time >= s.db_generation,
                  "database generation moved backwards");
  s.db_generation = generation_time;
  s.freshness = criterion_ == StalenessCriterion::kMaxAgeArrival
                    ? arrival_time
                    : generation_time;
  if (UsesMaxAge()) {
    ScheduleExpiry(id);
  }
  Refresh(id);
}

void StalenessTracker::OnEnqueued(const Update& update) {
  ObjectState& s = state(update.object);
  const std::pair<sim::Time, std::uint64_t> key{update.generation_time,
                                                update.id.value()};
  s.queued.insert(std::upper_bound(s.queued.begin(), s.queued.end(), key),
                  key);
  Refresh(update.object);
}

void StalenessTracker::OnRemovedFromQueue(const Update& update) {
  ObjectState& s = state(update.object);
  const std::pair<sim::Time, std::uint64_t> key{update.generation_time,
                                                update.id.value()};
  const auto it = std::lower_bound(s.queued.begin(), s.queued.end(), key);
  STRIP_CHECK_MSG(it != s.queued.end() && *it == key,
                  "removed update was not tracked as queued");
  s.queued.erase(it);
  Refresh(update.object);
}

bool StalenessTracker::IsStale(ObjectId id) const {
  return ComputeStale(state(id));
}

double StalenessTracker::FractionStaleNow(ObjectClass cls) const {
  const auto& partition = cls == ObjectClass::kLowImportance ? low_ : high_;
  if (partition.empty()) return 0.0;
  return stale_fraction_[static_cast<int>(cls)].value() /
         static_cast<double>(partition.size());
}

double StalenessTracker::FractionStaleAverage(ObjectClass cls,
                                              sim::Time end) const {
  const auto& partition = cls == ObjectClass::kLowImportance ? low_ : high_;
  if (partition.empty()) return 0.0;
  return stale_fraction_[static_cast<int>(cls)].Average(end) /
         static_cast<double>(partition.size());
}

}  // namespace strip::db
