// Object identity for the view portion of the database.
//
// The paper's data model (Section 3.2) partitions the database into
// view objects — refreshed only by the external update stream — and
// general objects, which transactions read and write locally. View
// objects are further split into a low-importance and a high-importance
// partition; low-value transactions read low-importance objects and
// high-value transactions read high-importance ones.

#ifndef STRIP_DB_OBJECT_H_
#define STRIP_DB_OBJECT_H_

#include <cstddef>
#include <functional>

#include "base/strong_types.h"

namespace strip::db {

// Which view partition an object (or an update to it) belongs to.
enum class ObjectClass {
  kLowImportance = 0,
  kHighImportance = 1,
};

inline constexpr int kNumObjectClasses = 2;

// Printable name for diagnostics ("low" / "high").
const char* ObjectClassName(ObjectClass cls);

// Identifies one view object: a partition plus an index within it.
struct ObjectId {
  ObjectClass cls = ObjectClass::kLowImportance;
  int index = 0;

  friend bool operator==(const ObjectId&, const ObjectId&) = default;
};

// Hash functor so ObjectId can key unordered containers.
struct ObjectIdHash {
  std::size_t operator()(const ObjectId& id) const {
    return std::hash<int>()(id.index * kNumObjectClasses +
                            static_cast<int>(id.cls));
  }
};

// --- global vs. shard-local object spaces -----------------------------------
//
// A sharded cluster has two object-id spaces with the same shape:
// the *global* space the workload generators draw from, and each
// shard's dense *local* space its Database/StalenessTracker index by.
// A bare ObjectId is whichever space its context implies (a
// uniprocessor run has only one space); the strong wrappers name the
// space explicitly at the db::ObjectPlacement boundary where the two
// meet — passing a global id where a local one is expected (or
// forgetting to translate) is a compile error there.

// An object id in the cluster-wide space the feed and workload draw
// from.
using GlobalObjectId = base::StrongId<struct GlobalObjectIdTag, ObjectId>;

// An object id in one shard's dense owned space ([0, OwnedCount) per
// class).
using LocalObjectId = base::StrongId<struct LocalObjectIdTag, ObjectId>;

// Hash functors mirroring ObjectIdHash (std::hash<ObjectId> does not
// exist, so the generic std::hash forwarding cannot apply here).
struct GlobalObjectIdHash {
  std::size_t operator()(const GlobalObjectId& id) const {
    return ObjectIdHash{}(id.value());
  }
};
struct LocalObjectIdHash {
  std::size_t operator()(const LocalObjectId& id) const {
    return ObjectIdHash{}(id.value());
  }
};

}  // namespace strip::db

#endif  // STRIP_DB_OBJECT_H_
