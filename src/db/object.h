// Object identity for the view portion of the database.
//
// The paper's data model (Section 3.2) partitions the database into
// view objects — refreshed only by the external update stream — and
// general objects, which transactions read and write locally. View
// objects are further split into a low-importance and a high-importance
// partition; low-value transactions read low-importance objects and
// high-value transactions read high-importance ones.

#ifndef STRIP_DB_OBJECT_H_
#define STRIP_DB_OBJECT_H_

#include <cstddef>
#include <functional>

namespace strip::db {

// Which view partition an object (or an update to it) belongs to.
enum class ObjectClass {
  kLowImportance = 0,
  kHighImportance = 1,
};

inline constexpr int kNumObjectClasses = 2;

// Printable name for diagnostics ("low" / "high").
const char* ObjectClassName(ObjectClass cls);

// Identifies one view object: a partition plus an index within it.
struct ObjectId {
  ObjectClass cls = ObjectClass::kLowImportance;
  int index = 0;

  friend bool operator==(const ObjectId&, const ObjectId&) = default;
};

// Hash functor so ObjectId can key unordered containers.
struct ObjectIdHash {
  std::size_t operator()(const ObjectId& id) const {
    return std::hash<int>()(id.index * kNumObjectClasses +
                            static_cast<int>(id.cls));
  }
};

}  // namespace strip::db

#endif  // STRIP_DB_OBJECT_H_
