// Historical views: bounded per-object version history.
//
// The paper studies snapshot views only — installing an update loses
// the previous value forever — and names historical views as future
// work (Sections 2 and 7). This store retains the last `depth`
// installed versions of each view object in a ring buffer, supporting
// as-of reads ("the Dollar-Yen rate as of 10 seconds ago").
//
// The controller records every database write here when
// Config::history_depth > 0; the cost model is unchanged (the paper
// gives no cost for history maintenance; a real system would fold it
// into x_update).

#ifndef STRIP_DB_HISTORY_STORE_H_
#define STRIP_DB_HISTORY_STORE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "db/object.h"
#include "sim/sim_time.h"

namespace strip::db {

class HistoryStore {
 public:
  // One retained version of a view object.
  struct Version {
    sim::Time generation_time = 0;
    double value = 0;

    friend bool operator==(const Version&, const Version&) = default;
  };

  // Retains up to `depth` versions per object (depth >= 1).
  HistoryStore(int n_low, int n_high, int depth);

  // Records a newly installed version. Versions must arrive in
  // non-decreasing generation order per object (the database's
  // worthiness check guarantees strictly increasing ones).
  void Record(ObjectId id, sim::Time generation_time, double value);

  // The newest retained version generated at or before `at`, or
  // nullopt if nothing that old is retained (either never recorded or
  // already evicted from the ring).
  std::optional<Version> AsOf(ObjectId id, sim::Time at) const;

  // Retained versions, oldest first.
  std::vector<Version> History(ObjectId id) const;

  // Number of versions currently retained for `id`.
  int VersionCount(ObjectId id) const;

  int depth() const { return depth_; }
  // Total versions recorded (including since-evicted ones).
  std::uint64_t recorded() const { return recorded_; }

 private:
  struct Ring {
    std::vector<Version> slots;  // capacity `depth_`, filled lazily
    int next = 0;                // slot to overwrite next
    int count = 0;               // live versions
  };

  const Ring& ring(ObjectId id) const;
  Ring& ring(ObjectId id);

  int depth_;
  std::vector<Ring> low_;
  std::vector<Ring> high_;
  std::uint64_t recorded_ = 0;
};

}  // namespace strip::db

#endif  // STRIP_DB_HISTORY_STORE_H_
