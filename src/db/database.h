// The in-memory view database.
//
// Holds the two view partitions (low / high importance). Each object
// stores its current value and the generation timestamp of that value;
// transactions read view objects, the update process writes them.
// Installing an update performs the paper's "worthiness check": if the
// database already holds a value at least as recent as the update's,
// the write is skipped (Section 3.3).
//
// Partial updates (a paper future-work item, Sections 2/7): when the
// database is built with n_attributes > 1, each update may refresh a
// single attribute, and an object's generation timestamp — the basis
// of every staleness decision — is that of its *oldest* attribute: an
// object is only as fresh as the attribute least recently refreshed.
//
// General (non-view) data is modelled separately — see
// db/general_store.h — because its access cost is folded into
// transaction computation time and it never becomes stale.

#ifndef STRIP_DB_DATABASE_H_
#define STRIP_DB_DATABASE_H_

#include <vector>

#include "db/object.h"
#include "db/update.h"
#include "sim/sim_time.h"

namespace strip::db {

class Database {
 public:
  // Creates a database with `n_low` low-importance and `n_high`
  // high-importance view objects of `n_attributes` attributes each.
  // All objects start with generation time 0 and value 0 ("fresh as of
  // the start of the run").
  Database(int n_low, int n_high, int n_attributes = 1);

  // Number of objects in a partition.
  int size(ObjectClass cls) const {
    return static_cast<int>(partition(cls).size());
  }

  // Total number of view objects.
  int total_size() const {
    return size(ObjectClass::kLowImportance) +
           size(ObjectClass::kHighImportance);
  }

  // Would installing `update` write anything? A complete update is
  // worthy if strictly newer than the object's (effective) generation;
  // a partial update if strictly newer than its target attribute's.
  bool IsWorthy(const Update& update) const;

  // Installs `update` if it is worthy. Returns true if the value was
  // written. Either way the caller pays the lookup cost; the write
  // cost applies only on true (cost accounting is the controller's
  // job).
  bool Apply(const Update& update);

  // Effective generation timestamp of an object's current value: with
  // multiple attributes, the generation of the *oldest* attribute.
  sim::Time generation_time(ObjectId id) const {
    return partition(id.cls)[CheckedIndex(id)].generation_time;
  }

  // Generation timestamp of one attribute (attribute databases only).
  sim::Time attribute_generation(ObjectId id, int attribute) const;

  int n_attributes() const { return n_attributes_; }

  // Current value of an object.
  double value(ObjectId id) const {
    return partition(id.cls)[CheckedIndex(id)].value;
  }

  // Age of an object's current value at time `now`.
  sim::Duration AgeAt(ObjectId id, sim::Time now) const {
    return now - generation_time(id);
  }

  // Count of updates actually written (worthy installs).
  std::uint64_t writes() const { return writes_; }
  // Count of installs skipped by the worthiness check.
  std::uint64_t skipped_writes() const { return skipped_writes_; }

 private:
  struct Slot {
    // Effective generation: min over attributes (== the single
    // generation when n_attributes is 1).
    sim::Time generation_time = 0;
    double value = 0;
    // Per-attribute generations; empty when n_attributes is 1.
    std::vector<sim::Time> attribute_generations;
  };

  const std::vector<Slot>& partition(ObjectClass cls) const {
    return cls == ObjectClass::kLowImportance ? low_ : high_;
  }
  std::vector<Slot>& partition(ObjectClass cls) {
    return cls == ObjectClass::kLowImportance ? low_ : high_;
  }

  int CheckedIndex(ObjectId id) const;
  int CheckedAttribute(const Update& update) const;

  int n_attributes_;
  std::vector<Slot> low_;
  std::vector<Slot> high_;
  std::uint64_t writes_ = 0;
  std::uint64_t skipped_writes_ = 0;
};

}  // namespace strip::db

#endif  // STRIP_DB_DATABASE_H_
