#include "db/database.h"

#include <algorithm>

#include "base/check.h"

namespace strip::db {

const char* ObjectClassName(ObjectClass cls) {
  return cls == ObjectClass::kLowImportance ? "low" : "high";
}

Database::Database(int n_low, int n_high, int n_attributes)
    : n_attributes_(n_attributes), low_(n_low), high_(n_high) {
  STRIP_CHECK_MSG(n_low >= 0 && n_high >= 0, "negative partition size");
  STRIP_CHECK_MSG(n_attributes >= 1, "need at least one attribute");
  if (n_attributes_ > 1) {
    for (auto* partition : {&low_, &high_}) {
      for (Slot& slot : *partition) {
        slot.attribute_generations.assign(n_attributes_, 0.0);
      }
    }
  }
}

int Database::CheckedIndex(ObjectId id) const {
  STRIP_CHECK_MSG(id.index >= 0 && id.index < size(id.cls),
                  "object index out of range");
  return id.index;
}

int Database::CheckedAttribute(const Update& update) const {
  STRIP_CHECK_MSG(update.attribute >= 0 && update.attribute < n_attributes_,
                  "attribute index out of range");
  return update.attribute;
}

sim::Time Database::attribute_generation(ObjectId id, int attribute) const {
  const Slot& slot = partition(id.cls)[CheckedIndex(id)];
  if (n_attributes_ == 1) {
    STRIP_CHECK_MSG(attribute == 0, "attribute index out of range");
    return slot.generation_time;
  }
  STRIP_CHECK_MSG(attribute >= 0 && attribute < n_attributes_,
                  "attribute index out of range");
  return slot.attribute_generations[attribute];
}

bool Database::IsWorthy(const Update& update) const {
  const Slot& slot = partition(update.object.cls)[CheckedIndex(update.object)];
  if (n_attributes_ == 1 || update.attribute < 0) {
    // Complete update: worthy if newer than the effective generation.
    return update.generation_time > slot.generation_time;
  }
  return update.generation_time >
         slot.attribute_generations[CheckedAttribute(update)];
}

bool Database::Apply(const Update& update) {
  Slot& slot = partition(update.object.cls)[CheckedIndex(update.object)];
  if (!IsWorthy(update)) {
    ++skipped_writes_;
    return false;
  }
  if (n_attributes_ == 1 || update.attribute < 0) {
    // Complete update: every attribute refreshed at once.
    slot.generation_time = update.generation_time;
    if (n_attributes_ > 1) {
      std::fill(slot.attribute_generations.begin(),
                slot.attribute_generations.end(), update.generation_time);
    }
  } else {
    slot.attribute_generations[CheckedAttribute(update)] =
        update.generation_time;
    // The object is only as fresh as its oldest attribute.
    slot.generation_time =
        *std::min_element(slot.attribute_generations.begin(),
                          slot.attribute_generations.end());
  }
  slot.value = update.value;
  ++writes_;
  return true;
}

}  // namespace strip::db
