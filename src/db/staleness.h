// Staleness criteria and exact stale-set tracking.
//
// The paper defines two criteria (Section 2):
//
//  - Maximum Age (MA): an object is stale when the age of its current
//    value — now minus its generation timestamp — exceeds a maximum
//    age alpha. Even an unchanged object goes stale if not refreshed.
//  - Unapplied Update (UU): an object is fresh unless the update queue
//    holds an update for it that is newer than the database value.
//    (The strict reading — "any unapplied update in the queue" —
//    would count an object as stale even when the database already
//    holds a newer value than everything queued for it, e.g. after a
//    LIFO install; we use the semantic reading, and the worthiness
//    check discards such worthless queued updates when popped.)
//  - Combined (extension, sketched in Section 2): stale under either.
//
// The tracker maintains the stale set *event-wise*: every database
// write, queue insert/remove, and MA expiry updates a per-object flag
// and a time-weighted stale count, so the staleness fraction f_old of
// Section 3.5 is an exact integral rather than a sampled estimate.

#ifndef STRIP_DB_STALENESS_H_
#define STRIP_DB_STALENESS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "db/object.h"
#include "db/update.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace strip::db {

enum class StalenessCriterion {
  kMaxAge = 0,
  kUnappliedUpdate = 1,
  kCombined = 2,
  // Section 2's variation: "in the MA staleness definition we could
  // replace generation time by arrival time" — an object is stale when
  // the *arrival* of its current value is older than alpha, i.e.,
  // every object should receive an update at least every alpha
  // seconds, regardless of network aging.
  kMaxAgeArrival = 3,
};

// Printable name ("MA" / "UU" / "MA+UU" / "MA-arrival").
const char* StalenessCriterionName(StalenessCriterion criterion);

// True if staleness under `criterion` can be checked from the object's
// timestamp alone (no update-queue search needed): the MA family.
bool DetectableByTimestamp(StalenessCriterion criterion);

class StalenessTracker {
 public:
  // `max_age` is alpha; it is ignored under kUnappliedUpdate. All
  // objects start fresh with generation time 0 (matching Database's
  // initial state). The tracker schedules its own MA expiry events on
  // `simulator`, which must outlive it.
  StalenessTracker(sim::Simulator* simulator, StalenessCriterion criterion,
                   sim::Duration max_age, int n_low, int n_high);

  StalenessTracker(const StalenessTracker&) = delete;
  StalenessTracker& operator=(const StalenessTracker&) = delete;

  // Restarts the time-weighted statistics at the current simulation
  // time, carrying the current stale set forward. Used to exclude a
  // warm-up period.
  void ResetObservation();

  // The database wrote `id` with generation time `generation_time`;
  // the installed update arrived at `arrival_time` (used by the
  // arrival-based MA criterion). The two-argument form treats the
  // value as arriving the moment it was generated.
  void OnApply(ObjectId id, sim::Time generation_time,
               sim::Time arrival_time);
  void OnApply(ObjectId id, sim::Time generation_time) {
    OnApply(id, generation_time, generation_time);
  }

  // `update` entered the controller's update queue.
  void OnEnqueued(const Update& update);

  // `update` left the update queue (installed, expired, or evicted).
  void OnRemovedFromQueue(const Update& update);

  // Is the object stale right now, under this tracker's criterion?
  bool IsStale(ObjectId id) const;

  // Number of currently stale objects in a partition.
  int StaleCount(ObjectClass cls) const {
    return static_cast<int>(stale_fraction_[static_cast<int>(cls)].value());
  }

  // Fraction of the partition currently stale.
  double FractionStaleNow(ObjectClass cls) const;

  // Time-averaged stale fraction over [observation start, end] — the
  // paper's f_old_l / f_old_h.
  double FractionStaleAverage(ObjectClass cls, sim::Time end) const;

  StalenessCriterion criterion() const { return criterion_; }
  sim::Duration max_age() const { return max_age_; }

 private:
  struct ObjectState {
    sim::Time db_generation = 0;
    // The timestamp MA-style aging runs on: the generation time, or
    // the arrival time under kMaxAgeArrival.
    sim::Time freshness = 0;
    // Generation times of this object's queued updates, kept sorted
    // ascending (ties broken by update id, so keys are unique). A flat
    // vector beats a node-based set here: the per-object backlog is
    // small — usually zero or one entry, bounded by the queue depth —
    // so ordered insert/erase are a short memmove with no allocation,
    // and the UU check reads the max straight off the back.
    std::vector<std::pair<sim::Time, std::uint64_t>> queued;
    sim::EventQueue::Handle expiry;
    bool stale = false;
  };

  ObjectState& state(ObjectId id);
  const ObjectState& state(ObjectId id) const;

  bool ComputeStale(const ObjectState& s) const;

  // Re-evaluates one object's flag and folds any change into the
  // stale-count signal.
  void Refresh(ObjectId id);

  // (Re)schedules the MA expiry event for one object.
  void ScheduleExpiry(ObjectId id);

  bool UsesMaxAge() const {
    return criterion_ != StalenessCriterion::kUnappliedUpdate;
  }

  sim::Simulator* simulator_;
  StalenessCriterion criterion_;
  sim::Duration max_age_;
  std::vector<ObjectState> low_;
  std::vector<ObjectState> high_;
  // Stale *count* per class, integrated over time.
  sim::TimeWeighted stale_fraction_[kNumObjectClasses];
};

}  // namespace strip::db

#endif  // STRIP_DB_STALENESS_H_
