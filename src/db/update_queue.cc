#include "db/update_queue.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "base/check.h"

namespace strip::db {

// ---------------------------------------------------------------------------
// FlatKeyIndex

std::size_t UpdateQueue::FlatKeyIndex::LowerBound(const Key& key) const {
  std::size_t lo = head_;
  std::size_t hi = keys_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (KeyLess(keys_[mid], key)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool UpdateQueue::FlatKeyIndex::Insert(const Key& key) {
  const std::size_t pos = LowerBound(key);
  if (pos < keys_.size() && KeySame(keys_[pos], key)) return false;
  const std::size_t dist_front = pos - head_;
  const std::size_t dist_back = keys_.size() - pos;
  if (head_ > 0 && dist_front <= dist_back) {
    // Shift the (shorter) prefix one left into the head gap. Key is
    // trivially copyable, so memmove is fine.
    std::memmove(&keys_[head_ - 1], &keys_[head_], dist_front * sizeof(Key));
    --head_;
    keys_[pos - 1] = key;
  } else {
    keys_.insert(keys_.begin() + static_cast<std::ptrdiff_t>(pos), key);
  }
  return true;
}

bool UpdateQueue::FlatKeyIndex::Erase(const Key& key, std::uint32_t* slot) {
  const std::size_t pos = LowerBound(key);
  if (pos == keys_.size() || !KeySame(keys_[pos], key)) return false;
  if (slot != nullptr) *slot = keys_[pos].slot;
  const std::size_t dist_front = pos - head_;
  const std::size_t dist_back = keys_.size() - pos - 1;
  if (dist_front <= dist_back) {
    // Shift the (shorter) prefix one right over the erased key.
    std::memmove(&keys_[head_ + 1], &keys_[head_], dist_front * sizeof(Key));
    ++head_;
    MaybeCompact();
  } else {
    keys_.erase(keys_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  return true;
}

void UpdateQueue::FlatKeyIndex::PopFront() {
  ++head_;
  MaybeCompact();
}

std::size_t UpdateQueue::FlatKeyIndex::CountBefore(sim::Time cutoff) const {
  // First key not less than (cutoff, id 0) == first key with
  // time >= cutoff, since ids only refine equal times.
  return LowerBound(Key{cutoff, 0, 0}) - head_;
}

void UpdateQueue::FlatKeyIndex::DropFront(std::size_t n) {
  head_ += n;
  MaybeCompact();
}

void UpdateQueue::FlatKeyIndex::MaybeCompact() {
  // Reclaim the dead prefix once it dominates the buffer; batching the
  // memmove keeps front pops O(1) amortized.
  if (head_ >= 1024 && head_ * 2 >= keys_.size()) {
    keys_.erase(keys_.begin(), keys_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

// ---------------------------------------------------------------------------
// UpdateQueue

UpdateQueue::UpdateQueue(std::size_t max_size) : max_size_(max_size) {
  STRIP_CHECK_MSG(max_size > 0, "update queue bound must be positive");
}

std::uint32_t UpdateQueue::AcquireSlot(const Update& update) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    pool_[slot] = update;
    return slot;
  }
  pool_.push_back(update);
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

Update UpdateQueue::DetachFromSecondary(const Key& key) {
  Update update = pool_[key.slot];
  auto obj_it = by_object_.find(update.object);
  STRIP_CHECK_MSG(obj_it != by_object_.end(), "object index out of sync");
  std::vector<Key>& keys = obj_it->second;
  const auto pos = std::lower_bound(keys.begin(), keys.end(), key, KeyLess);
  STRIP_CHECK_MSG(pos != keys.end() && KeySame(*pos, key),
                  "object index out of sync");
  keys.erase(pos);
  if (keys.empty()) by_object_.erase(obj_it);
  const bool in_class =
      by_class_[static_cast<int>(update.object.cls)].Erase(key, nullptr);
  STRIP_CHECK_MSG(in_class, "class index out of sync");
  ReleaseSlot(key.slot);
  return update;
}

std::vector<Update> UpdateQueue::Push(const Update& update) {
  const std::uint32_t slot = AcquireSlot(update);
  const Key key{update.generation_time, update.id.value(), slot};
  const bool inserted = by_generation_.Insert(key);
  STRIP_CHECK_MSG(inserted, "duplicate update id pushed");
  std::vector<Key>& obj_keys = by_object_[update.object];
  obj_keys.insert(
      std::lower_bound(obj_keys.begin(), obj_keys.end(), key, KeyLess), key);
  by_class_[static_cast<int>(update.object.cls)].Insert(key);
  std::vector<Update> evicted;
  while (by_generation_.size() > max_size_) {
    const Key oldest = by_generation_.front();
    by_generation_.PopFront();
    evicted.push_back(DetachFromSecondary(oldest));
    ++overflow_drops_;
  }
  return evicted;
}

std::optional<Update> UpdateQueue::PopOldest() {
  if (by_generation_.empty()) return std::nullopt;
  const Key key = by_generation_.front();
  by_generation_.PopFront();
  return DetachFromSecondary(key);
}

std::optional<Update> UpdateQueue::PopNewest() {
  if (by_generation_.empty()) return std::nullopt;
  const Key key = by_generation_.back();
  by_generation_.PopBack();
  return DetachFromSecondary(key);
}

std::optional<Update> UpdateQueue::PopOldestOfClass(ObjectClass cls) {
  FlatKeyIndex& keys = by_class_[static_cast<int>(cls)];
  if (keys.empty()) return std::nullopt;
  // DetachFromSecondary removes the class entry itself (front, so the
  // erase is an O(1) head advance); the primary index is removed here.
  const Key key = keys.front();
  const bool in_primary = by_generation_.Erase(key, nullptr);
  STRIP_CHECK_MSG(in_primary, "generation index out of sync");
  return DetachFromSecondary(key);
}

std::optional<Update> UpdateQueue::PopNewestOfClass(ObjectClass cls) {
  FlatKeyIndex& keys = by_class_[static_cast<int>(cls)];
  if (keys.empty()) return std::nullopt;
  const Key key = keys.back();
  const bool in_primary = by_generation_.Erase(key, nullptr);
  STRIP_CHECK_MSG(in_primary, "generation index out of sync");
  return DetachFromSecondary(key);
}

std::vector<Update> UpdateQueue::PurgeGeneratedBefore(sim::Time cutoff) {
  const std::size_t n = by_generation_.CountBefore(cutoff);
  std::vector<Update> purged;
  purged.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Each purged key is the current front of its class index, so the
    // secondary erases are head advances; the primary index is dropped
    // in one batch below.
    purged.push_back(DetachFromSecondary(by_generation_.at(i)));
  }
  by_generation_.DropFront(n);
  return purged;
}

std::optional<Update> UpdateQueue::PeekNewestFor(ObjectId object) const {
  auto it = by_object_.find(object);
  if (it == by_object_.end()) return std::nullopt;
  STRIP_CHECK(!it->second.empty());
  return pool_[it->second.back().slot];
}

bool UpdateQueue::Remove(const Update& update) {
  std::uint32_t slot = 0;
  if (!by_generation_.Erase(Key{update.generation_time, update.id.value(), 0},
                            &slot)) {
    return false;
  }
  DetachFromSecondary(Key{update.generation_time, update.id.value(), slot});
  return true;
}

bool UpdateQueue::HasUpdateFor(ObjectId object) const {
  return by_object_.find(object) != by_object_.end();
}

sim::Time UpdateQueue::OldestGeneration() const {
  STRIP_CHECK_MSG(!empty(), "OldestGeneration on empty queue");
  return by_generation_.front().time;
}

sim::Time UpdateQueue::NewestGeneration() const {
  STRIP_CHECK_MSG(!empty(), "NewestGeneration on empty queue");
  return by_generation_.back().time;
}

}  // namespace strip::db
