#include "db/update_queue.h"

#include <utility>

#include "base/check.h"

namespace strip::db {

UpdateQueue::UpdateQueue(std::size_t max_size) : max_size_(max_size) {
  STRIP_CHECK_MSG(max_size > 0, "update queue bound must be positive");
}

Update UpdateQueue::Extract(std::map<Key, Update>::iterator it) {
  STRIP_CHECK(it != by_generation_.end());
  Update update = it->second;
  auto obj_it = by_object_.find(update.object);
  STRIP_CHECK_MSG(obj_it != by_object_.end(), "object index out of sync");
  obj_it->second.erase(it->first);
  if (obj_it->second.empty()) by_object_.erase(obj_it);
  by_class_[static_cast<int>(update.object.cls)].erase(it->first);
  by_generation_.erase(it);
  return update;
}

std::vector<Update> UpdateQueue::Push(const Update& update) {
  const auto [it, inserted] = by_generation_.emplace(KeyFor(update), update);
  STRIP_CHECK_MSG(inserted, "duplicate update id pushed");
  by_object_[update.object].insert(it->first);
  by_class_[static_cast<int>(update.object.cls)].insert(it->first);
  std::vector<Update> evicted;
  while (by_generation_.size() > max_size_) {
    evicted.push_back(Extract(by_generation_.begin()));
    ++overflow_drops_;
  }
  return evicted;
}

std::optional<Update> UpdateQueue::PopOldest() {
  if (by_generation_.empty()) return std::nullopt;
  return Extract(by_generation_.begin());
}

std::optional<Update> UpdateQueue::PopNewest() {
  if (by_generation_.empty()) return std::nullopt;
  return Extract(std::prev(by_generation_.end()));
}

std::optional<Update> UpdateQueue::PopOldestOfClass(ObjectClass cls) {
  const std::set<Key>& keys = by_class_[static_cast<int>(cls)];
  if (keys.empty()) return std::nullopt;
  return Extract(by_generation_.find(*keys.begin()));
}

std::optional<Update> UpdateQueue::PopNewestOfClass(ObjectClass cls) {
  const std::set<Key>& keys = by_class_[static_cast<int>(cls)];
  if (keys.empty()) return std::nullopt;
  return Extract(by_generation_.find(*keys.rbegin()));
}

std::vector<Update> UpdateQueue::PurgeGeneratedBefore(sim::Time cutoff) {
  std::vector<Update> purged;
  while (!by_generation_.empty() &&
         by_generation_.begin()->first.first < cutoff) {
    purged.push_back(Extract(by_generation_.begin()));
  }
  return purged;
}

std::optional<Update> UpdateQueue::PeekNewestFor(ObjectId object) const {
  auto it = by_object_.find(object);
  if (it == by_object_.end()) return std::nullopt;
  STRIP_CHECK(!it->second.empty());
  auto found = by_generation_.find(*it->second.rbegin());
  STRIP_CHECK_MSG(found != by_generation_.end(), "object index out of sync");
  return found->second;
}

bool UpdateQueue::Remove(const Update& update) {
  auto it = by_generation_.find(KeyFor(update));
  if (it == by_generation_.end()) return false;
  Extract(it);
  return true;
}

bool UpdateQueue::HasUpdateFor(ObjectId object) const {
  return by_object_.find(object) != by_object_.end();
}

sim::Time UpdateQueue::OldestGeneration() const {
  STRIP_CHECK_MSG(!empty(), "OldestGeneration on empty queue");
  return by_generation_.begin()->first.first;
}

sim::Time UpdateQueue::NewestGeneration() const {
  STRIP_CHECK_MSG(!empty(), "NewestGeneration on empty queue");
  return std::prev(by_generation_.end())->first.first;
}

}  // namespace strip::db
