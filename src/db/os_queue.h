// The kernel-side arrival queue (Figure 2, step 2).
//
// Updates arriving over the network sit in a small, bounded OS queue
// until the controller actively receives them. Unlike the controller's
// update queue, the OS queue offers only FIFO access — an application
// can receive the next message but cannot search or reorder (Section
// 3.3). Arrivals beyond the bound are dropped.

#ifndef STRIP_DB_OS_QUEUE_H_
#define STRIP_DB_OS_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>

#include "db/update.h"

namespace strip::db {

class OsQueue {
 public:
  explicit OsQueue(std::size_t max_size);

  // Enqueues an arriving update. Returns false (and drops it) if the
  // queue is full.
  bool Push(const Update& update);

  // Receives the next update in arrival order, or nullopt if empty.
  std::optional<Update> Pop();

  // Next update in arrival order without removing it.
  std::optional<Update> Peek() const;

  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  std::size_t max_size() const { return max_size_; }

  // Lifetime count of arrivals dropped because the queue was full.
  std::uint64_t overflow_drops() const { return overflow_drops_; }

 private:
  std::size_t max_size_;
  std::deque<Update> queue_;
  std::uint64_t overflow_drops_ = 0;
};

}  // namespace strip::db

#endif  // STRIP_DB_OS_QUEUE_H_
