#include "db/history_store.h"

#include "base/check.h"

namespace strip::db {

HistoryStore::HistoryStore(int n_low, int n_high, int depth)
    : depth_(depth), low_(n_low), high_(n_high) {
  STRIP_CHECK_MSG(depth >= 1, "history depth must be at least 1");
  STRIP_CHECK_MSG(n_low >= 0 && n_high >= 0, "negative partition size");
}

const HistoryStore::Ring& HistoryStore::ring(ObjectId id) const {
  return const_cast<HistoryStore*>(this)->ring(id);
}

HistoryStore::Ring& HistoryStore::ring(ObjectId id) {
  auto& partition = id.cls == ObjectClass::kLowImportance ? low_ : high_;
  STRIP_CHECK_MSG(
      id.index >= 0 && id.index < static_cast<int>(partition.size()),
      "object index out of range");
  return partition[id.index];
}

void HistoryStore::Record(ObjectId id, sim::Time generation_time,
                          double value) {
  Ring& r = ring(id);
  if (r.slots.empty()) r.slots.resize(depth_);
  if (r.count > 0) {
    const int newest = (r.next + depth_ - 1) % depth_;
    STRIP_CHECK_MSG(generation_time >= r.slots[newest].generation_time,
                    "history recorded out of generation order");
  }
  r.slots[r.next] = {generation_time, value};
  r.next = (r.next + 1) % depth_;
  if (r.count < depth_) ++r.count;
  ++recorded_;
}

std::vector<HistoryStore::Version> HistoryStore::History(ObjectId id) const {
  const Ring& r = ring(id);
  std::vector<Version> versions;
  versions.reserve(r.count);
  // Oldest retained version sits `count` steps behind `next`.
  int slot = (r.next + depth_ - r.count) % depth_;
  for (int i = 0; i < r.count; ++i) {
    versions.push_back(r.slots[slot]);
    slot = (slot + 1) % depth_;
  }
  return versions;
}

std::optional<HistoryStore::Version> HistoryStore::AsOf(ObjectId id,
                                                        sim::Time at) const {
  const Ring& r = ring(id);
  std::optional<Version> best;
  int slot = (r.next + depth_ - r.count) % depth_;
  for (int i = 0; i < r.count; ++i) {
    const Version& v = r.slots[slot];
    if (v.generation_time <= at) best = v;  // versions are in order
    slot = (slot + 1) % depth_;
  }
  return best;
}

int HistoryStore::VersionCount(ObjectId id) const { return ring(id).count; }

}  // namespace strip::db
