// General (non-view) data: read and written only by transactions.
//
// The paper's model folds general-data access cost into transaction
// computation time and general data never becomes stale (Section 3.2),
// so the scheduling core does not touch this class. It exists so that
// applications built on the library (see examples/) have a place for
// derived data — composite indices, current holdings, call state — with
// the same in-memory key/value flavour as the view partitions.

#ifndef STRIP_DB_GENERAL_STORE_H_
#define STRIP_DB_GENERAL_STORE_H_

#include <optional>
#include <string>
#include <unordered_map>

namespace strip::db {

class GeneralStore {
 public:
  // Writes (inserts or overwrites) `key`.
  void Put(const std::string& key, double value) { data_[key] = value; }

  // Reads `key`; nullopt if absent.
  std::optional<double> Get(const std::string& key) const {
    auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }

  // Removes `key`. Returns true if it was present.
  bool Erase(const std::string& key) { return data_.erase(key) > 0; }

  std::size_t size() const { return data_.size(); }

 private:
  std::unordered_map<std::string, double> data_;
};

}  // namespace strip::db

#endif  // STRIP_DB_GENERAL_STORE_H_
