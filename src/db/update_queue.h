// The controller's update queue (Figure 2, step 3).
//
// Unapplied updates wait here, ordered by *generation* time — not
// arrival time — so the system can install in generation order despite
// network jitter and can discard expired updates from the front in
// O(1) amortized (Section 3.3). The queue is bounded: pushing beyond
// `max_size` evicts the oldest-generation entries (Section 4.2).
//
// Removal supports both queueing disciplines the paper studies:
// PopOldest (FIFO) and PopNewest (LIFO), plus the per-object access
// needed by the On Demand policy (PeekNewestFor / Remove).
//
// Implementation note: a per-object index is always maintained so that
// PeekNewestFor is cheap in wall-clock time. The *simulated* cost of a
// scan is charged separately by the controller (x_scan · queue size for
// the plain queue of the paper, constant for the hash-indexed extension
// of Sections 4.2/4.4); the data structure itself is cost-model
// agnostic.

#ifndef STRIP_DB_UPDATE_QUEUE_H_
#define STRIP_DB_UPDATE_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "db/object.h"
#include "db/update.h"
#include "sim/sim_time.h"

namespace strip::db {

class UpdateQueue {
 public:
  // A queue holding at most `max_size` updates.
  explicit UpdateQueue(std::size_t max_size);

  // Inserts `update`, evicting oldest-generation entries if the queue
  // would exceed its bound. Returns the evicted updates (usually empty;
  // possibly containing `update` itself if it is older than everything
  // in a full queue).
  std::vector<Update> Push(const Update& update);

  // Removes and returns the oldest-generation update (FIFO service).
  std::optional<Update> PopOldest();

  // Removes and returns the newest-generation update (LIFO service).
  std::optional<Update> PopNewest();

  // Class-filtered variants, for split-importance queue service (the
  // TF enhancement sketched in Section 4.2): oldest / newest update
  // targeting the given partition, or nullopt if none is queued.
  std::optional<Update> PopOldestOfClass(ObjectClass cls);
  std::optional<Update> PopNewestOfClass(ObjectClass cls);

  // Number of queued updates targeting the given partition.
  std::size_t SizeOfClass(ObjectClass cls) const {
    return by_class_[static_cast<int>(cls)].size();
  }

  // Removes and returns every update with generation_time < cutoff
  // (expired under Maximum Age). Ordered oldest first.
  std::vector<Update> PurgeGeneratedBefore(sim::Time cutoff);

  // Newest queued update for `object`, if any. Does not remove it.
  std::optional<Update> PeekNewestFor(ObjectId object) const;

  // Removes the specific update identified by `update.id`. Returns
  // true if it was present.
  bool Remove(const Update& update);

  // True if any update for `object` is queued.
  bool HasUpdateFor(ObjectId object) const;

  std::size_t size() const { return by_generation_.size(); }
  bool empty() const { return by_generation_.empty(); }
  std::size_t max_size() const { return max_size_; }

  // Generation time of the oldest / newest queued update.
  // Precondition: !empty().
  sim::Time OldestGeneration() const;
  sim::Time NewestGeneration() const;

  // Lifetime eviction count (overflow drops).
  std::uint64_t overflow_drops() const { return overflow_drops_; }

 private:
  // Orders by generation time, then by creation id for determinism.
  using Key = std::pair<sim::Time, std::uint64_t>;

  static Key KeyFor(const Update& u) { return {u.generation_time, u.id}; }

  Update Extract(std::map<Key, Update>::iterator it);

  std::size_t max_size_;
  std::map<Key, Update> by_generation_;
  // Per-object secondary index: keys of this object's queued updates,
  // ordered so rbegin() is the newest.
  std::unordered_map<ObjectId, std::set<Key>, ObjectIdHash> by_object_;
  // Per-class secondary index, same ordering.
  std::set<Key> by_class_[kNumObjectClasses];
  std::uint64_t overflow_drops_ = 0;
};

}  // namespace strip::db

#endif  // STRIP_DB_UPDATE_QUEUE_H_
