// The controller's update queue (Figure 2, step 3).
//
// Unapplied updates wait here, ordered by *generation* time — not
// arrival time — so the system can install in generation order despite
// network jitter and can discard expired updates from the front in
// O(1) amortized (Section 3.3). The queue is bounded: pushing beyond
// `max_size` evicts the oldest-generation entries (Section 4.2).
//
// Removal supports both queueing disciplines the paper studies:
// PopOldest (FIFO) and PopNewest (LIFO), plus the per-object access
// needed by the On Demand policy (PeekNewestFor / Remove).
//
// Implementation note: updates live in a pooled slab (slots recycled
// through a free list) and the orderings are flat sorted vectors of
// packed (generation_time, id, slot) keys — one global, one per
// importance class, one small vector per object. The flat indexes keep
// a head offset so FIFO service and Maximum-Age purges are O(1)
// amortized pops with batched compaction, and inserts/erases shift
// whichever side of the vector is shorter, so the paper's near-in-
// generation-order arrival pattern costs a few cache lines per update
// instead of three node-based tree insertions. A per-object index is
// always maintained so that PeekNewestFor is cheap in wall-clock time.
// The *simulated* cost of a scan is charged separately by the
// controller (x_scan · queue size for the plain queue of the paper,
// constant for the hash-indexed extension of Sections 4.2/4.4); the
// data structure itself is cost-model agnostic.

#ifndef STRIP_DB_UPDATE_QUEUE_H_
#define STRIP_DB_UPDATE_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "db/object.h"
#include "db/update.h"
#include "sim/sim_time.h"

namespace strip::db {

class UpdateQueue {
 public:
  // A queue holding at most `max_size` updates.
  explicit UpdateQueue(std::size_t max_size);

  // Inserts `update`, evicting oldest-generation entries if the queue
  // would exceed its bound. Returns the evicted updates (usually empty;
  // possibly containing `update` itself if it is older than everything
  // in a full queue).
  std::vector<Update> Push(const Update& update);

  // Removes and returns the oldest-generation update (FIFO service).
  std::optional<Update> PopOldest();

  // Removes and returns the newest-generation update (LIFO service).
  std::optional<Update> PopNewest();

  // Class-filtered variants, for split-importance queue service (the
  // TF enhancement sketched in Section 4.2): oldest / newest update
  // targeting the given partition, or nullopt if none is queued.
  std::optional<Update> PopOldestOfClass(ObjectClass cls);
  std::optional<Update> PopNewestOfClass(ObjectClass cls);

  // Number of queued updates targeting the given partition.
  std::size_t SizeOfClass(ObjectClass cls) const {
    return by_class_[static_cast<int>(cls)].size();
  }

  // Removes and returns every update with generation_time < cutoff
  // (expired under Maximum Age). Ordered oldest first.
  std::vector<Update> PurgeGeneratedBefore(sim::Time cutoff);

  // Newest queued update for `object`, if any. Does not remove it.
  std::optional<Update> PeekNewestFor(ObjectId object) const;

  // Removes the specific update identified by `update.id`. Returns
  // true if it was present.
  bool Remove(const Update& update);

  // True if any update for `object` is queued.
  bool HasUpdateFor(ObjectId object) const;

  std::size_t size() const { return by_generation_.size(); }
  bool empty() const { return by_generation_.empty(); }
  std::size_t max_size() const { return max_size_; }

  // Generation time of the oldest / newest queued update.
  // Precondition: !empty().
  sim::Time OldestGeneration() const;
  sim::Time NewestGeneration() const;

  // Lifetime eviction count (overflow drops).
  std::uint64_t overflow_drops() const { return overflow_drops_; }

 private:
  // Orders by generation time, then by creation id for determinism.
  // `slot` locates the update in the pool and does not participate in
  // ordering.
  struct Key {
    sim::Time time;
    std::uint64_t id;
    std::uint32_t slot;
  };

  static bool KeyLess(const Key& a, const Key& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.id < b.id;
  }
  static bool KeySame(const Key& a, const Key& b) {
    return a.time == b.time && a.id == b.id;
  }

  // A sorted key sequence backed by a flat vector with a head offset:
  // front pops just advance the head (compacted in batches), and
  // middle insert/erase shifts whichever side is shorter, so both FIFO
  // and LIFO service are O(1) amortized.
  class FlatKeyIndex {
   public:
    std::size_t size() const { return keys_.size() - head_; }
    bool empty() const { return head_ == keys_.size(); }
    const Key& front() const { return keys_[head_]; }
    const Key& back() const { return keys_.back(); }
    // i-th key from the front (0-based).
    const Key& at(std::size_t i) const { return keys_[head_ + i]; }

    // Inserts maintaining order. Returns false (and inserts nothing)
    // if a key with the same (time, id) is already present.
    bool Insert(const Key& key);
    // Removes the key with `key`'s (time, id), if present. When found,
    // `*slot` receives the stored slot index.
    bool Erase(const Key& key, std::uint32_t* slot);

    void PopFront();
    void PopBack() { keys_.pop_back(); }
    // Number of leading keys with time < cutoff.
    std::size_t CountBefore(sim::Time cutoff) const;
    // Drops the first n keys in one batch.
    void DropFront(std::size_t n);

   private:
    // Absolute index of the first key not less than `key`.
    std::size_t LowerBound(const Key& key) const;
    void MaybeCompact();

    std::vector<Key> keys_;
    std::size_t head_ = 0;
  };

  std::uint32_t AcquireSlot(const Update& update);
  void ReleaseSlot(std::uint32_t slot) { free_slots_.push_back(slot); }

  // Removes `key` from the per-object and per-class indexes and frees
  // its pool slot; returns the stored update. Does not touch
  // by_generation_ (callers remove that side themselves).
  Update DetachFromSecondary(const Key& key);

  std::size_t max_size_;
  // Pooled update storage; `free_slots_` holds recyclable entries.
  std::vector<Update> pool_;
  std::vector<std::uint32_t> free_slots_;
  // Primary ordering over all queued updates.
  FlatKeyIndex by_generation_;
  // Per-class secondary index, same ordering.
  FlatKeyIndex by_class_[kNumObjectClasses];
  // Per-object secondary index: this object's keys, sorted so back()
  // is the newest. Object vectors are tiny (load factor ~ queue size /
  // database size), so a plain sorted vector beats a tree.
  std::unordered_map<ObjectId, std::vector<Key>, ObjectIdHash> by_object_;
  std::uint64_t overflow_drops_ = 0;
};

}  // namespace strip::db

#endif  // STRIP_DB_UPDATE_QUEUE_H_
