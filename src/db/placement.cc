#include "db/placement.h"

#include "base/check.h"

namespace strip::db {

const char* PlacementKindName(PlacementKind kind) {
  return kind == PlacementKind::kHash ? "hash" : "range";
}

std::optional<PlacementKind> ParsePlacementKind(std::string_view token) {
  if (token == "hash") return PlacementKind::kHash;
  if (token == "range") return PlacementKind::kRange;
  return std::nullopt;
}

ObjectPlacement::ObjectPlacement(PlacementKind kind, int shards, int n_low,
                                 int n_high)
    : kind_(kind), shards_(shards), n_low_(n_low), n_high_(n_high) {
  STRIP_CHECK_MSG(shards >= 1, "placement needs at least one shard");
  STRIP_CHECK_MSG(n_low > 0 && n_high > 0, "partitions must be non-empty");
}

int ObjectPlacement::ClassCount(ObjectClass cls) const {
  return cls == ObjectClass::kLowImportance ? n_low_ : n_high_;
}

int ObjectPlacement::RangeStart(int shard, int n) const {
  const int base = n / shards_;
  const int rem = n % shards_;
  // The first `rem` shards own one extra object each.
  return shard * base + (shard < rem ? shard : rem);
}

base::ShardId ObjectPlacement::ShardOf(GlobalObjectId object) const {
  const ObjectId id = object.value();
  const int n = ClassCount(id.cls);
  STRIP_CHECK_MSG(id.index >= 0 && id.index < n, "object index out of range");
  if (shards_ == 1) return base::ShardId(0);
  if (kind_ == PlacementKind::kHash) return base::ShardId(id.index % shards_);
  const int base = n / shards_;
  const int rem = n % shards_;
  const int fat = rem * (base + 1);  // objects on the one-extra shards
  if (id.index < fat) return base::ShardId(id.index / (base + 1));
  // base > 0 here: n >= shards would be violated only when base == 0,
  // and then every object sits in the fat region.
  return base::ShardId(rem + (id.index - fat) / base);
}

LocalObjectId ObjectPlacement::ToLocal(GlobalObjectId object) const {
  const ObjectId id = object.value();
  if (shards_ == 1) return LocalObjectId(id);
  if (kind_ == PlacementKind::kHash) {
    return LocalObjectId({id.cls, id.index / shards_});
  }
  const int shard = ShardOf(object).value();
  return LocalObjectId(
      {id.cls, id.index - RangeStart(shard, ClassCount(id.cls))});
}

GlobalObjectId ObjectPlacement::ToGlobal(base::ShardId shard,
                                         LocalObjectId local) const {
  STRIP_CHECK_MSG(shard.value() >= 0 && shard.value() < shards_,
                  "shard out of range");
  const ObjectId id = local.value();
  if (shards_ == 1) return GlobalObjectId(id);
  if (kind_ == PlacementKind::kHash) {
    return GlobalObjectId({id.cls, id.index * shards_ + shard.value()});
  }
  return GlobalObjectId(
      {id.cls, RangeStart(shard.value(), ClassCount(id.cls)) + id.index});
}

int ObjectPlacement::OwnedCount(base::ShardId shard, ObjectClass cls) const {
  STRIP_CHECK_MSG(shard.value() >= 0 && shard.value() < shards_,
                  "shard out of range");
  const int s = shard.value();
  const int n = ClassCount(cls);
  if (kind_ == PlacementKind::kHash) {
    // Count of i in [0, n) with i mod M == shard.
    return (n - s + shards_ - 1) / shards_;
  }
  const int base = n / shards_;
  const int rem = n % shards_;
  return base + (s < rem ? 1 : 0);
}

}  // namespace strip::db
