#include "db/placement.h"

#include "base/check.h"

namespace strip::db {

const char* PlacementKindName(PlacementKind kind) {
  return kind == PlacementKind::kHash ? "hash" : "range";
}

std::optional<PlacementKind> ParsePlacementKind(std::string_view token) {
  if (token == "hash") return PlacementKind::kHash;
  if (token == "range") return PlacementKind::kRange;
  return std::nullopt;
}

ObjectPlacement::ObjectPlacement(PlacementKind kind, int shards, int n_low,
                                 int n_high)
    : kind_(kind), shards_(shards), n_low_(n_low), n_high_(n_high) {
  STRIP_CHECK_MSG(shards >= 1, "placement needs at least one shard");
  STRIP_CHECK_MSG(n_low > 0 && n_high > 0, "partitions must be non-empty");
}

int ObjectPlacement::ClassCount(ObjectClass cls) const {
  return cls == ObjectClass::kLowImportance ? n_low_ : n_high_;
}

int ObjectPlacement::RangeStart(int shard, int n) const {
  const int base = n / shards_;
  const int rem = n % shards_;
  // The first `rem` shards own one extra object each.
  return shard * base + (shard < rem ? shard : rem);
}

int ObjectPlacement::ShardOf(ObjectId object) const {
  const int n = ClassCount(object.cls);
  STRIP_CHECK_MSG(object.index >= 0 && object.index < n,
                  "object index out of range");
  if (shards_ == 1) return 0;
  if (kind_ == PlacementKind::kHash) return object.index % shards_;
  const int base = n / shards_;
  const int rem = n % shards_;
  const int fat = rem * (base + 1);  // objects on the one-extra shards
  if (object.index < fat) return object.index / (base + 1);
  // base > 0 here: n >= shards would be violated only when base == 0,
  // and then every object sits in the fat region.
  return rem + (object.index - fat) / base;
}

ObjectId ObjectPlacement::ToLocal(ObjectId object) const {
  if (shards_ == 1) return object;
  if (kind_ == PlacementKind::kHash) {
    return {object.cls, object.index / shards_};
  }
  const int shard = ShardOf(object);
  return {object.cls, object.index - RangeStart(shard, ClassCount(object.cls))};
}

ObjectId ObjectPlacement::ToGlobal(int shard, ObjectId local) const {
  STRIP_CHECK_MSG(shard >= 0 && shard < shards_, "shard out of range");
  if (shards_ == 1) return local;
  if (kind_ == PlacementKind::kHash) {
    return {local.cls, local.index * shards_ + shard};
  }
  return {local.cls, RangeStart(shard, ClassCount(local.cls)) + local.index};
}

int ObjectPlacement::OwnedCount(int shard, ObjectClass cls) const {
  STRIP_CHECK_MSG(shard >= 0 && shard < shards_, "shard out of range");
  const int n = ClassCount(cls);
  if (kind_ == PlacementKind::kHash) {
    // Count of i in [0, n) with i mod M == shard.
    return (n - shard + shards_ - 1) / shards_;
  }
  const int base = n / shards_;
  const int rem = n % shards_;
  return base + (shard < rem ? 1 : 0);
}

}  // namespace strip::db
