// Object placement for the sharded model: which shard owns which view
// object, and the mapping between the global object space (what the
// workload generators draw from) and each shard's local, dense object
// space (what a shard's Database/StalenessTracker index by).
//
// Two placements:
//
//   hash   — shard = index mod M (round-robin striping). Spreads both
//            importance classes evenly; adjacent objects land on
//            different shards.
//   range  — contiguous balanced blocks per class: shard s owns
//            [start_s, start_s + len_s) of each class, with the first
//            (n mod M) shards owning one extra object. Models
//            key-range partitioning; hot key ranges become hot shards.
//
// Both placements are per-class: the low- and high-importance
// partitions are striped/split independently, so every shard owns a
// non-trivial slice of each class whenever n >= M. Local ids are dense
// ([0, OwnedCount) per class), which keeps per-shard stale-fraction
// denominators exact.

#ifndef STRIP_DB_PLACEMENT_H_
#define STRIP_DB_PLACEMENT_H_

#include <optional>
#include <string_view>

#include "db/object.h"

namespace strip::db {

enum class PlacementKind {
  kHash = 0,
  kRange,
};

// Printable name ("hash" / "range").
const char* PlacementKindName(PlacementKind kind);

// Parses a placement token; nullopt on anything else.
[[nodiscard]] std::optional<PlacementKind> ParsePlacementKind(
    std::string_view token);

class ObjectPlacement {
 public:
  // `shards` >= 1; `n_low`/`n_high` are the global per-class object
  // counts (Config::n_low / n_high).
  ObjectPlacement(PlacementKind kind, int shards, int n_low, int n_high);

  PlacementKind kind() const { return kind_; }
  int shards() const { return shards_; }

  // The shard owning a global object id.
  [[nodiscard]] base::ShardId ShardOf(GlobalObjectId object) const;

  // Global id -> the owner shard's local id (same class, dense index).
  [[nodiscard]] LocalObjectId ToLocal(GlobalObjectId object) const;

  // Local id on `shard` -> global id. Inverse of ToLocal on the owner.
  [[nodiscard]] GlobalObjectId ToGlobal(base::ShardId shard,
                                        LocalObjectId local) const;

  // Objects of `cls` owned by `shard`. Sums to the global count over
  // all shards.
  [[nodiscard]] int OwnedCount(base::ShardId shard, ObjectClass cls) const;

 private:
  int ClassCount(ObjectClass cls) const;
  // Range placement: first global index owned by `shard` within `cls`.
  int RangeStart(int shard, int n) const;

  PlacementKind kind_;
  int shards_;
  int n_low_;
  int n_high_;
};

}  // namespace strip::db

#endif  // STRIP_DB_PLACEMENT_H_
