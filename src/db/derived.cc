#include "db/derived.h"

#include <algorithm>

#include "base/check.h"

namespace strip::db {

int DerivedRegistry::Define(Definition definition) {
  STRIP_CHECK_MSG(!definition.inputs.empty(),
                  "derived object needs at least one input");
  definitions_.push_back(std::move(definition));
  return static_cast<int>(definitions_.size()) - 1;
}

const DerivedRegistry::Definition& DerivedRegistry::Get(int id) const {
  STRIP_CHECK_MSG(id >= 0 && id < size(), "derived id out of range");
  return definitions_[id];
}

bool DerivedRegistry::IsStale(int id,
                              const StalenessTracker& tracker) const {
  for (const ObjectId& input : Get(id).inputs) {
    if (tracker.IsStale(input)) return true;
  }
  return false;
}

std::vector<ObjectId> DerivedRegistry::StaleInputs(
    int id, const StalenessTracker& tracker) const {
  std::vector<ObjectId> stale;
  for (const ObjectId& input : Get(id).inputs) {
    if (tracker.IsStale(input)) stale.push_back(input);
  }
  return stale;
}

sim::Time DerivedRegistry::EffectiveGeneration(
    int id, const Database& database) const {
  const Definition& def = Get(id);
  sim::Time oldest = database.generation_time(def.inputs.front());
  for (const ObjectId& input : def.inputs) {
    oldest = std::min(oldest, database.generation_time(input));
  }
  return oldest;
}

double DerivedRegistry::Value(int id, const Database& database) const {
  const Definition& def = Get(id);
  double sum = 0;
  double min = database.value(def.inputs.front());
  double max = min;
  for (const ObjectId& input : def.inputs) {
    const double v = database.value(input);
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
  }
  switch (def.aggregation) {
    case Aggregation::kAverage:
      return sum / static_cast<double>(def.inputs.size());
    case Aggregation::kSum:
      return sum;
    case Aggregation::kMin:
      return min;
    case Aggregation::kMax:
      return max;
  }
  return sum;
}

std::vector<Update> DerivedRegistry::FresheningUpdates(
    int id, const Database& database, const UpdateQueue& queue) const {
  std::vector<Update> updates;
  for (const ObjectId& input : Get(id).inputs) {
    const std::optional<Update> newest = queue.PeekNewestFor(input);
    if (newest.has_value() && database.IsWorthy(*newest)) {
      updates.push_back(*newest);
    }
  }
  return updates;
}

}  // namespace strip::db
