#include "db/os_queue.h"

#include "base/check.h"

namespace strip::db {

OsQueue::OsQueue(std::size_t max_size) : max_size_(max_size) {
  STRIP_CHECK_MSG(max_size > 0, "OS queue bound must be positive");
}

bool OsQueue::Push(const Update& update) {
  if (queue_.size() >= max_size_) {
    ++overflow_drops_;
    return false;
  }
  queue_.push_back(update);
  return true;
}

std::optional<Update> OsQueue::Pop() {
  if (queue_.empty()) return std::nullopt;
  Update update = queue_.front();
  queue_.pop_front();
  return update;
}

std::optional<Update> OsQueue::Peek() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.front();
}

}  // namespace strip::db
