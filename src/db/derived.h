// Derived view objects: values computed from sets of base objects.
//
// The paper's conclusion (Section 7) discusses why On Demand breaks
// down for derived data: "say a database object X represents the
// average price of stocks in a particular portfolio. If a transaction
// wants to read X, OD would have to figure out what updates in the
// queue refer to stocks in the given portfolio, and then apply those."
//
// This registry provides exactly that mapping: a derived object is a
// named aggregate over a set of base view objects, and the registry
// answers the read-side questions a scheduler or application needs —
// is the aggregate stale (any input stale), how old is it effectively
// (its oldest input), what is its current value, and *which queued
// updates would freshen it* (the OD question).
//
// Scheduling integration is deliberately left to the application (see
// examples/portfolio_monitor.cpp): the paper itself treats derived
// data as the boundary of OD's applicability.

#ifndef STRIP_DB_DERIVED_H_
#define STRIP_DB_DERIVED_H_

#include <string>
#include <vector>

#include "db/database.h"
#include "db/object.h"
#include "db/staleness.h"
#include "db/update.h"
#include "db/update_queue.h"

namespace strip::db {

class DerivedRegistry {
 public:
  // How a derived object's value combines its inputs.
  enum class Aggregation {
    kAverage = 0,
    kSum,
    kMin,
    kMax,
  };

  struct Definition {
    std::string name;
    Aggregation aggregation = Aggregation::kAverage;
    std::vector<ObjectId> inputs;
  };

  // Registers a derived object; returns its id (dense, from 0).
  // `inputs` must be non-empty.
  int Define(Definition definition);

  int size() const { return static_cast<int>(definitions_.size()); }
  const Definition& Get(int id) const;

  // A derived object is stale iff any input is stale under `tracker`.
  bool IsStale(int id, const StalenessTracker& tracker) const;

  // The inputs that are currently stale.
  std::vector<ObjectId> StaleInputs(int id,
                                    const StalenessTracker& tracker) const;

  // Effective generation: the oldest input generation — the derived
  // value is only as current as its least-recently-refreshed input.
  sim::Time EffectiveGeneration(int id, const Database& database) const;

  // Current aggregate value over the inputs' database values.
  double Value(int id, const Database& database) const;

  // The OD question: the queued updates that would freshen this
  // derived object — for each input, the newest queued update that is
  // worthier than the database's value. Ordered by input.
  std::vector<Update> FresheningUpdates(int id, const Database& database,
                                        const UpdateQueue& queue) const;

 private:
  std::vector<Definition> definitions_;
};

}  // namespace strip::db

#endif  // STRIP_DB_DERIVED_H_
