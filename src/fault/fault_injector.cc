#include "fault/fault_injector.h"

#include <utility>

#include "base/check.h"

namespace strip::fault {

FaultInjector::FaultInjector(sim::Simulator* simulator,
                             const FaultSchedule& schedule,
                             base::RngSeed seed, double nominal_rate,
                             Hooks hooks)
    : simulator_(simulator),
      schedule_(schedule),
      random_(seed),
      nominal_rate_(nominal_rate),
      hooks_(std::move(hooks)) {
  STRIP_CHECK(simulator_ != nullptr);
  STRIP_CHECK(hooks_.deliver != nullptr);
  STRIP_CHECK(nominal_rate_ > 0);
  for (const FaultWindow& window : schedule_.windows()) {
    simulator_->ScheduleAt(window.start,
                           [this, &window] { BeginWindow(window); });
    simulator_->ScheduleAt(window.end(),
                           [this, &window] { EndWindow(window); });
  }
}

void FaultInjector::Offer(const db::Update& update) {
  const sim::Time now = simulator_->now();

  if (in_outage_) {
    backlog_.push_back(update);
    ++counts_.outage_deferred;
    return;
  }

  if (const FaultWindow* loss = schedule_.ActiveAt(FaultKind::kLoss, now);
      loss != nullptr && random_.WithProbability(loss->probability)) {
    ++counts_.lost;
    return;
  }

  // Draw the duplicate decision before any reorder rescheduling so the
  // random sequence is a pure function of the offer order.
  const FaultWindow* dup = schedule_.ActiveAt(FaultKind::kDuplicate, now);
  const bool duplicate =
      dup != nullptr && random_.WithProbability(dup->probability);
  double dup_delay = 0;
  if (duplicate) dup_delay = random_.Exponential(dup->delay);

  const FaultWindow* reorder =
      schedule_.ActiveAt(FaultKind::kReorder, now);
  if (reorder != nullptr && random_.WithProbability(reorder->probability)) {
    const double extra = random_.Exponential(reorder->delay);
    ++counts_.reordered;
    db::Update delayed = update;
    simulator_->ScheduleAfter(
        extra, [this, delayed] { Deliver(delayed); });
  } else {
    Deliver(update);
  }

  if (duplicate) {
    db::Update copy = update;
    copy.id = base::UpdateId(next_dup_id_++);
    ++counts_.duplicated;
    simulator_->ScheduleAfter(dup_delay,
                              [this, copy] { Deliver(copy); });
  }
}

void FaultInjector::BeginWindow(const FaultWindow& window) {
  switch (window.kind) {
    case FaultKind::kOutage:
      in_outage_ = true;
      break;
    case FaultKind::kBurst:
      if (hooks_.set_rate_factor) hooks_.set_rate_factor(window.factor);
      break;
    case FaultKind::kCpu:
      if (hooks_.set_cpu_factor) hooks_.set_cpu_factor(window.factor);
      break;
    case FaultKind::kLoss:
    case FaultKind::kDuplicate:
    case FaultKind::kReorder:
      break;  // Per-arrival; handled in Offer().
    case FaultKind::kLinkLatency:
    case FaultKind::kLinkLoss:
    case FaultKind::kPartition:
    case FaultKind::kShardOutage:
      // Cluster-scoped kinds never reach a per-shard injector
      // (rejected by Config::Validate; modeled by core::Interconnect).
      break;
  }
  if (hooks_.on_window) hooks_.on_window(window, /*begin=*/true);
}

void FaultInjector::EndWindow(const FaultWindow& window) {
  switch (window.kind) {
    case FaultKind::kOutage:
      in_outage_ = false;
      ReplayBacklog(window);
      break;
    case FaultKind::kBurst:
      if (hooks_.set_rate_factor) hooks_.set_rate_factor(1.0);
      break;
    case FaultKind::kCpu:
      if (hooks_.set_cpu_factor) hooks_.set_cpu_factor(1.0);
      break;
    case FaultKind::kLoss:
    case FaultKind::kDuplicate:
    case FaultKind::kReorder:
      break;
    case FaultKind::kLinkLatency:
    case FaultKind::kLinkLoss:
    case FaultKind::kPartition:
    case FaultKind::kShardOutage:
      break;  // Cluster-scoped; see BeginWindow.
  }
  if (hooks_.on_window) hooks_.on_window(window, /*begin=*/false);
}

void FaultInjector::ReplayBacklog(const FaultWindow& window) {
  // Evenly paced catch-up burst: the upstream buffer drains at
  // speedup × the nominal feed rate, preserving arrival order.
  const double gap = 1.0 / (window.speedup * nominal_rate_);
  double offset = gap;
  while (!backlog_.empty()) {
    db::Update update = backlog_.front();
    backlog_.pop_front();
    simulator_->ScheduleAfter(offset,
                              [this, update] { Deliver(update); });
    offset += gap;
  }
}

void FaultInjector::Deliver(db::Update update) {
  // The true delivery instant: replayed and reordered updates age by
  // the delay they actually suffered.
  update.arrival_time = simulator_->now();
  hooks_.deliver(update);
}

}  // namespace strip::fault
