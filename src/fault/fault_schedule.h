// A piecewise timeline of fault windows, parsed from a --faults spec.
//
// The spec is a semicolon-separated list of windows:
//
//   kind@start+duration[:key=value[,key=value...]]
//
// e.g. "outage@100+15:speedup=4;loss@200+50:p=0.1;cpu@300+30:factor=0.5"
//
// Kinds and their parameters (all times in simulated seconds):
//
//   outage   feed connection down: arrivals are buffered upstream for
//            the window, then replayed as a catch-up burst at
//            speedup × the nominal rate (speedup >= 1, default 4).
//   burst    Markov-style rate modulation: the stream's arrival rate
//            is multiplied by factor (> 0) for the window.
//   loss     each arrival in the window is dropped with probability p.
//   dup      each arrival in the window is delivered twice with
//            probability p; the copy lags by an exponential delay
//            with mean `delay` seconds (default 0.01).
//   reorder  each arrival in the window is delayed by an exponential
//            extra network delay with mean `delay` seconds (default
//            0.05) with probability p, letting later ticks overtake it.
//   cpu      CPU degradation: the simulated CPU runs at factor × ips
//            (0 < factor <= 1) for the window.
//
// Cluster-scoped kinds (only valid in --cluster_faults; they describe
// the interconnect between shards, not one shard's feed):
//
//   link-latency  every cross-shard message in the window takes an
//                 extra `latency` seconds (required, > 0), plus an
//                 exponential jitter with mean `jitter` (default 0).
//   link-loss     each cross-shard message in the window is dropped
//                 with probability p.
//   partition     the shards listed in `shards` (a '/'-separated id
//                 list, e.g. shards=0/1) are cut off from the rest:
//                 messages crossing the cut are dropped.
//   shard-outage  shard `shard` is unreachable: every message to or
//                 from it is dropped for the window.
//
// Parsing validates everything up front — negative or non-finite
// numbers, probabilities outside [0, 1], overlapping windows of the
// same kind — and reports a one-line actionable error naming the bad
// window, so a malformed spec never reaches a running simulation.
// Window tokens must not contain spaces (labels are embedded in
// space-separated trace headers).

#ifndef STRIP_FAULT_FAULT_SCHEDULE_H_
#define STRIP_FAULT_FAULT_SCHEDULE_H_

#include <optional>
#include <string>
#include <vector>

namespace strip::fault {

enum class FaultKind {
  kOutage = 0,
  kBurst,
  kLoss,
  kDuplicate,
  kReorder,
  kCpu,
  kLinkLatency,
  kLinkLoss,
  kPartition,
  kShardOutage,
};

// The spec token for a kind ("outage", "burst", "loss", "dup",
// "reorder", "cpu", "link-latency", "link-loss", "partition",
// "shard-outage").
const char* FaultKindName(FaultKind kind);

// True for the interconnect kinds (link-latency, link-loss,
// partition, shard-outage), which only make sense against the
// cluster's shard links and are rejected in per-shard --faults specs.
bool IsClusterScoped(FaultKind kind);

struct FaultWindow {
  FaultKind kind = FaultKind::kOutage;
  double start = 0;
  double duration = 0;
  // Per-arrival probability (loss / dup / reorder).
  double probability = 1.0;
  // Rate multiplier (burst) or CPU-speed multiplier (cpu).
  double factor = 1.0;
  // Catch-up replay speed multiplier over the nominal rate (outage).
  double speedup = 4.0;
  // Mean extra delay in seconds (reorder / dup copies).
  double delay = 0.05;
  // Extra per-message delivery delay in seconds (link-latency).
  double latency = 0;
  // Mean exponential jitter added on top of `latency` (link-latency).
  double jitter = 0;
  // One side of the cut: shard ids isolated for the window (partition).
  std::vector<int> shard_set;
  // The unreachable shard (shard-outage).
  int shard = -1;
  // The window's own spec token, e.g. "outage@100+15:speedup=4" —
  // the stable name used in traces and error messages.
  std::string label;

  double end() const { return start + duration; }
  // Half-open containment: [start, end).
  bool Contains(double t) const { return t >= start && t < end(); }
};

class FaultSchedule {
 public:
  // An empty schedule (no windows). Parse("") also yields this.
  FaultSchedule() = default;

  // Parses and validates `spec`. On failure returns nullopt and sets
  // *error (if non-null) to a one-line message naming the bad window.
  static std::optional<FaultSchedule> Parse(const std::string& spec,
                                            std::string* error);

  bool empty() const { return windows_.empty(); }
  const std::vector<FaultWindow>& windows() const { return windows_; }

  // The window of `kind` active at time `t` ([start, end)), or nullptr.
  // Windows of one kind never overlap (enforced by Parse).
  const FaultWindow* ActiveAt(FaultKind kind, double t) const;

  // Canonical round-trip of the spec (windows in input order).
  std::string ToString() const;

 private:
  std::vector<FaultWindow> windows_;
};

}  // namespace strip::fault

#endif  // STRIP_FAULT_FAULT_SCHEDULE_H_
