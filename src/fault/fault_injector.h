// Applies a FaultSchedule to an update feed, between the stream
// generator and the System's arrival handler.
//
// The injector sits on the delivery path: the stream hands each
// generated update to Offer(), and the injector decides whether it
// reaches the system now, later, twice, or never.  All randomness
// comes from one forked sim::RandomStream, so a given (seed, spec)
// pair replays bit-identically.
//
// Window semantics:
//
//   outage   Offers during the window are buffered in arrival order.
//            When the window ends the backlog is replayed as a
//            catch-up burst at speedup × the nominal arrival rate.
//            Replayed updates keep their original generation_time and
//            get their true delivery time as arrival_time, so network
//            ages reflect the real outage delay.  Replayed updates
//            bypass loss/dup/reorder windows (the backlog is what the
//            upstream buffer actually held).
//   burst    Multiplies the stream's arrival rate by `factor` for the
//            window (via Hooks::set_rate_factor).
//   loss     Drops each offered update with probability p.
//   dup      With probability p, also delivers a copy (fresh id, same
//            payload/generation_time) after an exponential delay.
//   reorder  With probability p, delays delivery by an exponential
//            extra network delay, letting later updates overtake.
//   cpu      Scales the simulated CPU speed by `factor` for the
//            window (via Hooks::set_cpu_factor).
//
// Window begin/end boundaries are simulator events; Hooks::on_window
// fires at each so the System can track recovery metrics and notify
// observers.

#ifndef STRIP_FAULT_FAULT_INJECTOR_H_
#define STRIP_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "base/strong_types.h"
#include "db/update.h"
#include "fault/fault_schedule.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace strip::fault {

// Whole-run injector activity counts (not reset at warmup; see
// RunMetrics for the reporting convention).
struct FaultCounts {
  std::uint64_t lost = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t outage_deferred = 0;
};

class FaultInjector {
 public:
  struct Hooks {
    // Required: delivers an update to the system (already stamped
    // with its true arrival_time).
    std::function<void(const db::Update&)> deliver;
    // Optional: burst windows scale the stream arrival rate.
    std::function<void(double)> set_rate_factor;
    // Optional: cpu windows scale the simulated CPU speed.
    std::function<void(double)> set_cpu_factor;
    // Optional: fired at each window boundary (begin = true/false).
    std::function<void(const FaultWindow&, bool)> on_window;
  };

  // `nominal_rate` is the feed's normal-phase arrival rate, used to
  // pace catch-up bursts.  `schedule` must outlive the injector.
  FaultInjector(sim::Simulator* simulator, const FaultSchedule& schedule,
                base::RngSeed seed, double nominal_rate, Hooks hooks);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Entry point for freshly generated updates (in place of delivering
  // them straight to the system).
  void Offer(const db::Update& update);

  const FaultCounts& counts() const { return counts_; }
  bool in_outage() const { return in_outage_; }
  // Updates buffered during an ongoing outage (drains to zero when the
  // catch-up replay is scheduled at window end).
  std::size_t backlog_size() const { return backlog_.size(); }

 private:
  void BeginWindow(const FaultWindow& window);
  void EndWindow(const FaultWindow& window);
  void ReplayBacklog(const FaultWindow& window);
  void Deliver(db::Update update);

  sim::Simulator* simulator_;
  const FaultSchedule& schedule_;
  sim::RandomStream random_;
  const double nominal_rate_;
  Hooks hooks_;

  FaultCounts counts_;
  bool in_outage_ = false;
  std::deque<db::Update> backlog_;
  // Duplicate copies need ids that can never collide with stream ids.
  std::uint64_t next_dup_id_ = (std::uint64_t{1} << 62) + 1;
};

}  // namespace strip::fault

#endif  // STRIP_FAULT_FAULT_INJECTOR_H_
