#include "fault/fault_schedule.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace strip::fault {
namespace {

// Splits `s` on `sep`, dropping empty pieces (so trailing ';' is fine).
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= s.size()) {
    size_t end = s.find(sep, begin);
    if (end == std::string::npos) end = s.size();
    if (end > begin) out.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

bool ParseFinite(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

void SetError(std::string* error, const std::string& token,
              const std::string& why) {
  if (error == nullptr) return;
  *error = "faults: bad window \"" + token + "\": " + why;
}

bool KindFromName(const std::string& name, FaultKind* kind) {
  if (name == "outage") *kind = FaultKind::kOutage;
  else if (name == "burst") *kind = FaultKind::kBurst;
  else if (name == "loss") *kind = FaultKind::kLoss;
  else if (name == "dup") *kind = FaultKind::kDuplicate;
  else if (name == "reorder") *kind = FaultKind::kReorder;
  else if (name == "cpu") *kind = FaultKind::kCpu;
  else if (name == "link-latency") *kind = FaultKind::kLinkLatency;
  else if (name == "link-loss") *kind = FaultKind::kLinkLoss;
  else if (name == "partition") *kind = FaultKind::kPartition;
  else if (name == "shard-outage") *kind = FaultKind::kShardOutage;
  else return false;
  return true;
}

// Parses a '/'-separated list of shard ids ("0/2/3") into *out.
bool ParseShardSet(const std::string& text, std::vector<int>* out) {
  if (text.empty()) return false;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find('/', begin);
    if (end == std::string::npos) end = text.size();
    if (end == begin) return false;
    const std::string piece = text.substr(begin, end - begin);
    if (piece.size() > 6) return false;
    for (char c : piece) {
      if (c < '0' || c > '9') return false;
    }
    out->push_back(std::atoi(piece.c_str()));
    if (end == text.size()) break;
    begin = end + 1;
  }
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutage: return "outage";
    case FaultKind::kBurst: return "burst";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kCpu: return "cpu";
    case FaultKind::kLinkLatency: return "link-latency";
    case FaultKind::kLinkLoss: return "link-loss";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kShardOutage: return "shard-outage";
  }
  return "unknown";
}

bool IsClusterScoped(FaultKind kind) {
  return kind == FaultKind::kLinkLatency || kind == FaultKind::kLinkLoss ||
         kind == FaultKind::kPartition || kind == FaultKind::kShardOutage;
}

std::optional<FaultSchedule> FaultSchedule::Parse(const std::string& spec,
                                                 std::string* error) {
  FaultSchedule schedule;
  for (const std::string& token : Split(spec, ';')) {
    if (token.find(' ') != std::string::npos ||
        token.find('\t') != std::string::npos) {
      SetError(error, token, "spaces are not allowed in a window token");
      return std::nullopt;
    }

    // kind@start+duration[:params]
    const size_t at = token.find('@');
    if (at == std::string::npos) {
      SetError(error, token,
               "expected kind@start+duration (e.g. outage@100+15)");
      return std::nullopt;
    }
    FaultWindow w;
    w.label = token;
    if (!KindFromName(token.substr(0, at), &w.kind)) {
      SetError(error, token,
               "unknown kind \"" + token.substr(0, at) +
                   "\" (use outage, burst, loss, dup, reorder, cpu, "
                   "link-latency, link-loss, partition, or shard-outage)");
      return std::nullopt;
    }
    const size_t colon = token.find(':', at);
    const std::string timing =
        token.substr(at + 1, (colon == std::string::npos ? token.size()
                                                         : colon) -
                                 (at + 1));
    const size_t plus = timing.find('+');
    if (plus == std::string::npos) {
      SetError(error, token,
               "expected start+duration after '@' (e.g. outage@100+15)");
      return std::nullopt;
    }
    if (!ParseFinite(timing.substr(0, plus), &w.start) || w.start < 0) {
      SetError(error, token, "start must be a finite number >= 0");
      return std::nullopt;
    }
    if (!ParseFinite(timing.substr(plus + 1), &w.duration) ||
        w.duration <= 0) {
      SetError(error, token, "duration must be a finite number > 0");
      return std::nullopt;
    }

    // Defaults that differ by kind.
    if (w.kind == FaultKind::kDuplicate) w.delay = 0.01;

    bool saw_probability = false;
    if (colon != std::string::npos) {
      for (const std::string& kv :
           Split(token.substr(colon + 1), ',')) {
        const size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          SetError(error, token,
                   "parameter \"" + kv + "\" is not key=value");
          return std::nullopt;
        }
        const std::string key = kv.substr(0, eq);
        if (key == "shards") {
          // Not a number: a '/'-separated shard-id list.
          if (w.kind != FaultKind::kPartition) {
            SetError(error, token,
                     "\"shards\" only applies to partition");
            return std::nullopt;
          }
          if (!ParseShardSet(kv.substr(eq + 1), &w.shard_set)) {
            SetError(error, token,
                     "shards must be a '/'-separated list of shard ids "
                     ">= 0 (e.g. shards=0/1)");
            return std::nullopt;
          }
          continue;
        }
        double value = 0;
        if (!ParseFinite(kv.substr(eq + 1), &value)) {
          SetError(error, token,
                   "parameter \"" + key + "\" must be a finite number");
          return std::nullopt;
        }
        if (key == "p") {
          if (w.kind != FaultKind::kLoss &&
              w.kind != FaultKind::kDuplicate &&
              w.kind != FaultKind::kReorder &&
              w.kind != FaultKind::kLinkLoss) {
            SetError(error, token,
                     "\"p\" only applies to loss, dup, reorder, and "
                     "link-loss");
            return std::nullopt;
          }
          if (value < 0 || value > 1) {
            SetError(error, token, "p must be in [0, 1]");
            return std::nullopt;
          }
          w.probability = value;
          saw_probability = true;
        } else if (key == "factor") {
          if (w.kind != FaultKind::kBurst && w.kind != FaultKind::kCpu) {
            SetError(error, token,
                     "\"factor\" only applies to burst and cpu");
            return std::nullopt;
          }
          if (value <= 0) {
            SetError(error, token, "factor must be > 0");
            return std::nullopt;
          }
          if (w.kind == FaultKind::kCpu && value > 1) {
            SetError(error, token,
                     "cpu factor must be in (0, 1] (it slows the CPU)");
            return std::nullopt;
          }
          w.factor = value;
        } else if (key == "speedup") {
          if (w.kind != FaultKind::kOutage) {
            SetError(error, token, "\"speedup\" only applies to outage");
            return std::nullopt;
          }
          if (value < 1) {
            SetError(error, token, "speedup must be >= 1");
            return std::nullopt;
          }
          w.speedup = value;
        } else if (key == "delay") {
          if (w.kind != FaultKind::kDuplicate &&
              w.kind != FaultKind::kReorder) {
            SetError(error, token,
                     "\"delay\" only applies to dup and reorder");
            return std::nullopt;
          }
          if (value <= 0) {
            SetError(error, token, "delay must be > 0");
            return std::nullopt;
          }
          w.delay = value;
        } else if (key == "latency") {
          if (w.kind != FaultKind::kLinkLatency) {
            SetError(error, token,
                     "\"latency\" only applies to link-latency");
            return std::nullopt;
          }
          if (value <= 0) {
            SetError(error, token, "latency must be > 0");
            return std::nullopt;
          }
          w.latency = value;
        } else if (key == "jitter") {
          if (w.kind != FaultKind::kLinkLatency) {
            SetError(error, token,
                     "\"jitter\" only applies to link-latency");
            return std::nullopt;
          }
          if (value < 0) {
            SetError(error, token, "jitter must be >= 0");
            return std::nullopt;
          }
          w.jitter = value;
        } else if (key == "shard") {
          if (w.kind != FaultKind::kShardOutage) {
            SetError(error, token,
                     "\"shard\" only applies to shard-outage");
            return std::nullopt;
          }
          if (value < 0 || value > 1e6 || std::floor(value) != value) {
            SetError(error, token, "shard must be an integer >= 0");
            return std::nullopt;
          }
          w.shard = static_cast<int>(value);
        } else {
          SetError(error, token,
                   "unknown parameter \"" + key +
                       "\" (use p, factor, speedup, delay, latency, "
                       "jitter, shards, or shard)");
          return std::nullopt;
        }
      }
    }
    if ((w.kind == FaultKind::kLoss || w.kind == FaultKind::kDuplicate ||
         w.kind == FaultKind::kReorder ||
         w.kind == FaultKind::kLinkLoss) &&
        !saw_probability) {
      SetError(error, token,
               std::string("\"") + FaultKindName(w.kind) +
                   "\" requires p=... (per-arrival probability)");
      return std::nullopt;
    }
    if (w.kind == FaultKind::kLinkLatency && w.latency <= 0) {
      SetError(error, token,
               "\"link-latency\" requires latency=... (extra seconds "
               "per delivery)");
      return std::nullopt;
    }
    if (w.kind == FaultKind::kPartition && w.shard_set.empty()) {
      SetError(error, token,
               "\"partition\" requires shards=... (one side of the "
               "cut, e.g. shards=0/1)");
      return std::nullopt;
    }
    if (w.kind == FaultKind::kShardOutage && w.shard < 0) {
      SetError(error, token,
               "\"shard-outage\" requires shard=N (the unreachable "
               "shard)");
      return std::nullopt;
    }

    for (const FaultWindow& other : schedule.windows_) {
      if (other.kind != w.kind) continue;
      if (w.start < other.end() && other.start < w.end()) {
        SetError(error, token,
                 "overlaps earlier window \"" + other.label + "\"");
        return std::nullopt;
      }
    }
    schedule.windows_.push_back(std::move(w));
  }
  return schedule;
}

const FaultWindow* FaultSchedule::ActiveAt(FaultKind kind, double t) const {
  for (const FaultWindow& w : windows_) {
    if (w.kind == kind && w.Contains(t)) return &w;
  }
  return nullptr;
}

std::string FaultSchedule::ToString() const {
  std::string out;
  for (const FaultWindow& w : windows_) {
    if (!out.empty()) out += ';';
    out += w.label;
  }
  return out;
}

}  // namespace strip::fault
