// A cancellable future-event list for discrete-event simulation.
//
// Events are (time, callback) pairs ordered by time, with FIFO ordering
// among events scheduled for the same instant (stable tie-breaking by
// insertion sequence). Cancellation is O(1): the record is flagged and
// lazily skipped when it reaches the top of the heap.
//
// Example:
//   EventQueue q;
//   auto h = q.Schedule(3.0, [] { ... });
//   q.Cancel(h);                 // nothing fires
//   while (auto ev = q.PopNext()) { now = ev->time; ev->callback(); }

#ifndef STRIP_SIM_EVENT_QUEUE_H_
#define STRIP_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/sim_time.h"

namespace strip::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // A fired event, as returned by PopNext().
  struct Fired {
    Time time = 0;
    Callback callback;
  };

  // Refers to a scheduled event so it can be cancelled. Handles are
  // cheap to copy and remain safe to use after the event has fired or
  // been cancelled (Cancel simply returns false then). A
  // default-constructed handle refers to nothing.
  class Handle {
   public:
    Handle() = default;

    // True if the event has neither fired nor been cancelled.
    bool pending() const;

   private:
    friend class EventQueue;
    struct Record;
    explicit Handle(std::shared_ptr<Record> record)
        : record_(std::move(record)) {}
    std::shared_ptr<Record> record_;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `callback` to fire at time `at`. Times must be
  // non-negative; ordering with respect to the caller's clock is the
  // Simulator's responsibility.
  Handle Schedule(Time at, Callback callback);

  // Cancels a scheduled event. Returns true if the event was still
  // pending (and is now guaranteed not to fire), false if it had
  // already fired or been cancelled.
  bool Cancel(const Handle& handle);

  // Removes and returns the earliest pending event, or nullopt if none
  // remain. Cancelled records encountered on the way are discarded.
  std::optional<Fired> PopNext();

  // Time of the earliest pending event, or nullopt if none.
  std::optional<Time> PeekNextTime();

  // Number of pending (non-cancelled) events.
  std::size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

 private:
  struct Handle::Record {
    Time time = 0;
    std::uint64_t sequence = 0;
    Callback callback;
    bool cancelled = false;
  };
  using Record = Handle::Record;

  // Min-heap ordering: earliest time first, then lowest sequence.
  struct Later {
    bool operator()(const std::shared_ptr<Record>& a,
                    const std::shared_ptr<Record>& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->sequence > b->sequence;
    }
  };

  // Pops cancelled records off the heap top.
  void SkipCancelled();

  std::vector<std::shared_ptr<Record>> heap_;
  std::uint64_t next_sequence_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace strip::sim

#endif  // STRIP_SIM_EVENT_QUEUE_H_
