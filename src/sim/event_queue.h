// A cancellable future-event list for discrete-event simulation.
//
// Events are (time, callback) pairs ordered by time, with FIFO ordering
// among events scheduled for the same instant (stable tie-breaking by
// insertion sequence). Cancellation is O(1): the slot is reclaimed
// immediately and the heap key is lazily skipped when it reaches the
// top.
//
// Implementation: event records live in a slab (a vector of pooled
// slots recycled through an intrusive free list), so steady-state
// scheduling performs zero allocations — the callback's captures are
// stored inline in the slot (see sim/inline_callback.h) and the
// ordering structure is a flat 4-ary min-heap of packed
// (time, sequence, slot) keys, which keeps comparisons inside one or
// two cache lines instead of chasing per-event heap allocations.
// Handles carry the slot's generation stamp (the event's globally
// unique sequence number), so Cancel and pending() are O(1) array
// probes with no reference counting.
//
// Example:
//   EventQueue q;
//   auto h = q.Schedule(3.0, [] { ... });
//   q.Cancel(h);                 // nothing fires
//   while (auto ev = q.PopNext()) { now = ev->time; ev->callback(); }

#ifndef STRIP_SIM_EVENT_QUEUE_H_
#define STRIP_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/sim_time.h"

namespace strip::sim {

class EventQueue {
 public:
  using Callback = InlineCallback;

  // A fired event, as returned by PopNext().
  struct Fired {
    Time time = 0;
    Callback callback;
  };

  // Refers to a scheduled event so it can be cancelled. Handles are
  // cheap to copy and remain safe to use after the event has fired or
  // been cancelled (Cancel simply returns false then), as long as the
  // queue itself is still alive. A default-constructed handle refers
  // to nothing.
  class Handle {
   public:
    Handle() = default;

    // True if the event has neither fired nor been cancelled.
    bool pending() const;

   private:
    friend class EventQueue;
    Handle(const EventQueue* queue, std::uint32_t slot, std::uint64_t sequence)
        : queue_(queue), slot_(slot), sequence_(sequence) {}
    const EventQueue* queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint64_t sequence_ = 0;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `callback` to fire at time `at`. Times must be
  // non-negative; ordering with respect to the caller's clock is the
  // Simulator's responsibility.
  Handle Schedule(Time at, Callback callback);

  // Cancels a scheduled event. Returns true if the event was still
  // pending (and is now guaranteed not to fire), false if it had
  // already fired or been cancelled.
  bool Cancel(const Handle& handle);

  // Removes and returns the earliest pending event, or nullopt if none
  // remain. Cancelled keys encountered on the way are discarded.
  std::optional<Fired> PopNext();

  // Bounded pop, fusing the dispatch loop's peek + pop into one queue
  // operation: removes and returns the earliest pending event if its
  // time is <= `limit`, or returns nullopt (leaving the queue
  // untouched) when the earliest event lies beyond `limit` or none
  // remain. One stale sweep and one root probe per dispatched event,
  // where peek-then-pop pays both twice.
  std::optional<Fired> PopNextBefore(Time limit);

  // Time of the earliest pending event, or nullopt if none.
  std::optional<Time> PeekNextTime();

  // Number of pending (non-cancelled) events.
  std::size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

 private:
  // The heap key packs (sequence, slot) into one word: 24 bits of slot
  // index (16M concurrent events) under 40 bits of sequence (1T events
  // per queue lifetime). That makes the key 16 bytes — four children
  // per cache line or two — and turns the FIFO tie-break into a single
  // integer compare, since sequences are unique and occupy the high
  // bits.
  static constexpr int kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint32_t kNoSlot = kSlotMask;
  static constexpr std::uint64_t kMaxSequence = std::uint64_t{1}
                                                << (64 - kSlotBits);
  // Generation stamp of a free slot; real sequences never reach this.
  static constexpr std::uint64_t kFreeSlot = ~std::uint64_t{0};

  // One pooled event record. `sequence` doubles as the generation
  // stamp handles and heap keys are validated against.
  struct Slot {
    Time time = 0;
    std::uint64_t sequence = kFreeSlot;
    Callback callback;
    std::uint32_t next_free = kNoSlot;
  };

  struct HeapKey {
    Time time;
    std::uint64_t packed;  // sequence << kSlotBits | slot

    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(packed) & kSlotMask;
    }
    std::uint64_t sequence() const { return packed >> kSlotBits; }
  };

  static bool KeyBefore(const HeapKey& a, const HeapKey& b) {
    // Short-circuit on time: ties are rare, so the branch predicts
    // well and the packed tie-break is almost never evaluated.
    if (a.time != b.time) return a.time < b.time;
    return a.packed < b.packed;
  }

  // True if `handle`'s event is still scheduled in this queue.
  bool IsLive(std::uint32_t slot, std::uint64_t sequence) const {
    return slot < slots_.size() && slots_[slot].sequence == sequence;
  }

  // True if the heap key refers to a cancelled (or already freed and
  // recycled) slot.
  bool IsStale(const HeapKey& key) const {
    return slots_[key.slot()].sequence != key.sequence();
  }

  std::uint32_t AcquireSlot();
  void ReleaseSlot(std::uint32_t slot);

  // 4-ary heap primitives over heap_.
  void HeapPush(HeapKey key);
  void HeapPopRoot();
  // Shared tail of the pop paths: moves the root's slot out into
  // `fired`, frees it, and re-heapifies.
  void PopRootInto(std::optional<Fired>& fired);
  // Drops stale keys off the heap top; rebuilds the heap wholesale
  // when stale keys dominate it.
  void DropStaleRoot();
  // Rebuild guard, inlined so the Cancel fast path pays two loads and
  // a branch, not a call: compaction only runs when stale keys
  // dominate a non-trivial heap, amortizing the O(n) sweep against
  // the cancels that created them.
  void MaybeCompact() {
    if (heap_.size() >= 64 && heap_stale_ * 2 >= heap_.size()) CompactNow();
  }
  void CompactNow();

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::vector<HeapKey> heap_;
  // Number of heap keys whose event was cancelled (lazily deleted).
  std::size_t heap_stale_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace strip::sim

#endif  // STRIP_SIM_EVENT_QUEUE_H_
