// Simulation-time primitives.
//
// Simulated time is a double measured in seconds from the start of the
// run. The paper's model expresses all costs in CPU instructions and
// converts to time by dividing by the processor speed (`ips`,
// instructions per second); `InstructionsToSeconds` is that conversion.

#ifndef STRIP_SIM_SIM_TIME_H_
#define STRIP_SIM_SIM_TIME_H_

namespace strip::sim {

// Simulated time in seconds since the start of the run.
using Time = double;

// A duration in simulated seconds.
using Duration = double;

// Sentinel meaning "never" / "no deadline".
inline constexpr Time kTimeInfinity = 1e300;

// Converts an instruction count to simulated seconds on a CPU that
// executes `ips` instructions per second.
inline constexpr Duration InstructionsToSeconds(double instructions,
                                                double ips) {
  return instructions / ips;
}

}  // namespace strip::sim

#endif  // STRIP_SIM_SIM_TIME_H_
