#include "sim/random.h"

#include <algorithm>

#include "base/check.h"

namespace strip::sim {

RandomStream::RandomStream(base::RngSeed seed) : engine_(seed.value()) {}

double RandomStream::Exponential(double mean) {
  STRIP_CHECK_MSG(mean > 0, "exponential mean must be positive");
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double RandomStream::Normal(double mean, double stddev) {
  STRIP_CHECK_MSG(stddev >= 0, "normal stddev must be non-negative");
  if (stddev == 0) return mean;
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double RandomStream::NormalAtLeast(double mean, double stddev, double floor) {
  return std::max(floor, Normal(mean, stddev));
}

double RandomStream::Uniform(double lo, double hi) {
  STRIP_CHECK_MSG(lo <= hi, "uniform bounds out of order");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int RandomStream::UniformInt(int lo, int hi) {
  STRIP_CHECK_MSG(lo <= hi, "uniform-int bounds out of order");
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

bool RandomStream::WithProbability(double p) {
  STRIP_CHECK_MSG(p >= 0 && p <= 1, "probability outside [0, 1]");
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_) < p;
}

base::RngSeed RandomStream::Fork() {
  // splitmix64 finalizer over the next engine output, so sibling
  // streams are decorrelated even for adjacent seeds.
  std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return base::RngSeed(z ^ (z >> 31));
}

}  // namespace strip::sim
