// Statistics primitives for simulation output analysis.
//
// - Counter:        monotone event counts.
// - Accumulator:    sample mean / variance via Welford's algorithm.
// - TimeWeighted:   exact integral of a piecewise-constant signal, used
//                   for the paper's staleness metric f_old (Section 3.5)
//                   and for CPU-utilization fractions rho_t / rho_u.
// - Summary:        mean and 95% confidence half-width over independent
//                   replications (one sample per seed).

#ifndef STRIP_SIM_STATS_H_
#define STRIP_SIM_STATS_H_

#include <cstdint>
#include <vector>

#include "sim/sim_time.h"

namespace strip::sim {

// A monotone event counter.
class Counter {
 public:
  void Increment(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Streaming sample statistics (Welford).
class Accumulator {
 public:
  void Add(double sample);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  // Mean of the samples; 0 if empty.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
};

// Integrates a piecewise-constant signal over simulated time. Call
// Set(t, v) whenever the signal changes; Average(end) closes the
// integral at `end` and divides by the observation window.
//
// StartAt(t0) discards history and restarts observation at t0 — used to
// exclude a warm-up period from the statistics.
class TimeWeighted {
 public:
  // Begins observation at `start` with initial signal value `value`.
  void StartAt(Time start, double value);

  // Records that the signal changed to `value` at time `t`
  // (t must be >= the previous change time).
  void Set(Time t, double value);

  // Current signal value.
  double value() const { return value_; }

  // Time-average of the signal over [start, end]; 0 if the window is
  // empty.
  double Average(Time end) const;

  // Raw integral of the signal over [start, end].
  double Integral(Time end) const;

 private:
  Time start_ = 0;
  Time last_change_ = 0;
  double value_ = 0;
  double integral_ = 0;
};

// A fixed-range linear histogram with open-ended overflow, for
// latency-style distributions. Quantiles interpolate within buckets;
// samples beyond `max` are clamped to the top bucket boundary.
class Histogram {
 public:
  // Buckets of equal width spanning [min, max); `buckets` >= 1.
  Histogram(double min, double max, int buckets);

  void Add(double sample);

  // Bucket-wise merge of `other` into this histogram, as if both
  // sample streams had been recorded here. Requires an identical
  // bucket layout (min, max, bucket count); returns false and leaves
  // this histogram unchanged on a layout mismatch.
  bool Merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double mean() const;

  // The q-quantile (q in [0, 1]) estimated by linear interpolation
  // within the containing bucket; 0 if empty.
  double Quantile(double q) const;

  // Samples that fell below min / at or above max.
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

 private:
  double min_;
  double max_;
  double bucket_width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  double sum_ = 0;
};

// Mean and 95% confidence half-width over independent replications.
struct Summary {
  double mean = 0;
  double ci95 = 0;  // half-width; 0 with fewer than two samples
  int samples = 0;

  static Summary FromSamples(const std::vector<double>& samples);
};

}  // namespace strip::sim

#endif  // STRIP_SIM_STATS_H_
