#include "sim/simulator.h"

#include <utility>

#include "base/check.h"

namespace strip::sim {

EventQueue::Handle Simulator::ScheduleAt(Time at,
                                         EventQueue::Callback callback) {
  STRIP_CHECK_MSG(at >= now_, "event scheduled in the past");
  return queue_.Schedule(at, std::move(callback));
}

EventQueue::Handle Simulator::ScheduleAfter(Duration delay,
                                            EventQueue::Callback callback) {
  STRIP_CHECK_MSG(delay >= 0, "event scheduled with negative delay");
  return queue_.Schedule(now_ + delay, std::move(callback));
}

void Simulator::RunUntil(Time end) {
  STRIP_CHECK_MSG(end >= now_, "RunUntil target is in the past");
  stop_requested_ = false;
  // The bounded pop dispatches each event with a single queue
  // operation; the historical peek-then-pop pair swept the stale root
  // and probed the heap top twice per event.
  while (!stop_requested_) {
    std::optional<EventQueue::Fired> event = queue_.PopNextBefore(end);
    if (!event.has_value()) break;
    now_ = event->time;
    ++events_dispatched_;
    event->callback();
  }
  if (!stop_requested_) now_ = end;
}

void Simulator::Run() {
  stop_requested_ = false;
  while (!stop_requested_) {
    std::optional<EventQueue::Fired> event = queue_.PopNext();
    if (!event.has_value()) break;
    now_ = event->time;
    ++events_dispatched_;
    event->callback();
  }
}

}  // namespace strip::sim
