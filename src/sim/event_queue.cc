#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace strip::sim {

bool EventQueue::Handle::pending() const {
  return queue_ != nullptr && queue_->IsLive(slot_, sequence_);
}

std::uint32_t EventQueue::AcquireSlot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  STRIP_CHECK_MSG(slots_.size() < kNoSlot, "event slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::ReleaseSlot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.sequence = kFreeSlot;
  s.callback = nullptr;
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::HeapPush(HeapKey key) {
  // Hole-based sift-up: shift ancestors down into the hole and write
  // the new key exactly once.
  std::size_t i = heap_.size();
  heap_.push_back(key);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!KeyBefore(key, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = key;
}

void EventQueue::HeapPopRoot() {
  const HeapKey last = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  // Bottom-up (Wegener) sift-down: drive the root hole straight to a
  // leaf, always promoting the smallest child, then sift `last` up
  // from that leaf. The replacement key comes from the bottom of the
  // heap — in a DES it is typically a recently scheduled far-future
  // event — so it nearly always belongs back near a leaf: the
  // top-down variant's extra compare-against-last at every level (to
  // early-exit) is almost always wasted, while the sift-up here is
  // usually zero or one step. Net: ~3 comparisons per level instead
  // of 4. The key order is a strict total order (sequences are
  // unique), so pop order — and with it every simulation result — is
  // unchanged.
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (KeyBefore(heap_[c], heap_[best])) best = c;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!KeyBefore(last, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = last;
}

void EventQueue::CompactNow() {
  std::size_t out = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (!IsStale(heap_[i])) heap_[out++] = heap_[i];
  }
  heap_.resize(out);
  heap_stale_ = 0;
  if (heap_.size() < 2) return;
  // Floyd heapify: sift down every internal node, deepest first.
  for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
    const std::size_t n = heap_.size();
    std::size_t j = i;
    for (;;) {
      const std::size_t first_child = 4 * j + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + 4, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (KeyBefore(heap_[c], heap_[best])) best = c;
      }
      if (!KeyBefore(heap_[best], heap_[j])) break;
      std::swap(heap_[j], heap_[best]);
      j = best;
    }
  }
}

void EventQueue::DropStaleRoot() {
  while (!heap_.empty() && IsStale(heap_.front())) {
    HeapPopRoot();
    STRIP_CHECK(heap_stale_ > 0);
    --heap_stale_;
  }
}

EventQueue::Handle EventQueue::Schedule(Time at, Callback callback) {
  STRIP_CHECK_MSG(at >= 0, "event scheduled at negative time");
  STRIP_CHECK_MSG(callback != nullptr, "event scheduled with null callback");
  const std::uint32_t slot = AcquireSlot();
  STRIP_CHECK_MSG(next_sequence_ < kMaxSequence, "event sequence exhausted");
  const std::uint64_t sequence = next_sequence_++;
  Slot& s = slots_[slot];
  s.time = at;
  s.sequence = sequence;
  s.callback = std::move(callback);
  HeapPush({at, sequence << kSlotBits | slot});
  ++live_count_;
  return Handle(this, slot, sequence);
}

bool EventQueue::Cancel(const Handle& handle) {
  if (handle.queue_ != this || !IsLive(handle.slot_, handle.sequence_)) {
    return false;
  }
  // The slot is reclaimed now (releasing the callback's captures
  // eagerly); the heap key goes stale and is skipped lazily.
  ReleaseSlot(handle.slot_);
  ++heap_stale_;
  STRIP_CHECK(live_count_ > 0);
  --live_count_;
  MaybeCompact();
  return true;
}

void EventQueue::PopRootInto(std::optional<Fired>& fired) {
  const HeapKey key = heap_.front();
  Slot& s = slots_[key.slot()];
  fired.emplace();
  fired->time = s.time;
  fired->callback = std::move(s.callback);
  // Freeing the slot invalidates outstanding handles (pending() goes
  // false and Cancel() after the fact is a no-op).
  ReleaseSlot(key.slot());
  HeapPopRoot();
  STRIP_CHECK(live_count_ > 0);
  --live_count_;
}

std::optional<EventQueue::Fired> EventQueue::PopNext() {
  // NRVO: build the optional in the caller's storage so the callback
  // is moved exactly once (slot -> result).
  std::optional<Fired> fired;
  DropStaleRoot();
  if (heap_.empty()) return fired;
  PopRootInto(fired);
  return fired;
}

std::optional<EventQueue::Fired> EventQueue::PopNextBefore(Time limit) {
  std::optional<Fired> fired;
  DropStaleRoot();
  if (heap_.empty() || heap_.front().time > limit) return fired;
  PopRootInto(fired);
  return fired;
}

std::optional<Time> EventQueue::PeekNextTime() {
  DropStaleRoot();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().time;
}

}  // namespace strip::sim
