#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace strip::sim {

bool EventQueue::Handle::pending() const {
  return record_ != nullptr && !record_->cancelled &&
         record_->callback != nullptr;
}

EventQueue::Handle EventQueue::Schedule(Time at, Callback callback) {
  STRIP_CHECK_MSG(at >= 0, "event scheduled at negative time");
  STRIP_CHECK_MSG(callback != nullptr, "event scheduled with null callback");
  auto record = std::make_shared<Record>();
  record->time = at;
  record->sequence = next_sequence_++;
  record->callback = std::move(callback);
  heap_.push_back(record);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  return Handle(std::move(record));
}

bool EventQueue::Cancel(const Handle& handle) {
  if (!handle.pending()) return false;
  handle.record_->cancelled = true;
  // Release the callback eagerly: it may own captures that should not
  // outlive cancellation, and the heap slot is dropped lazily.
  handle.record_->callback = nullptr;
  STRIP_CHECK(live_count_ > 0);
  --live_count_;
  return true;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && heap_.front()->cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

std::optional<EventQueue::Fired> EventQueue::PopNext() {
  SkipCancelled();
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  std::shared_ptr<Record> record = std::move(heap_.back());
  heap_.pop_back();
  STRIP_CHECK(live_count_ > 0);
  --live_count_;
  Fired fired;
  fired.time = record->time;
  fired.callback = std::move(record->callback);
  // Mark fired so outstanding handles report !pending() and Cancel()
  // after the fact is a no-op.
  record->cancelled = true;
  return fired;
}

std::optional<Time> EventQueue::PeekNextTime() {
  SkipCancelled();
  if (heap_.empty()) return std::nullopt;
  return heap_.front()->time;
}

}  // namespace strip::sim
