// The discrete-event simulation driver: a clock plus an event queue.
//
// This replaces the DeNet simulation language used by the paper
// [Liv90]. Components schedule callbacks at future simulated times;
// RunUntil() dispatches them in time order, advancing the clock to each
// event's timestamp. Events scheduled for the same instant fire in the
// order they were scheduled.
//
// Example:
//   Simulator sim;
//   sim.ScheduleAfter(1.5, [&] { std::puts("fires at t=1.5"); });
//   sim.RunUntil(10.0);   // clock ends at exactly 10.0

#ifndef STRIP_SIM_SIMULATOR_H_
#define STRIP_SIM_SIMULATOR_H_

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/sim_time.h"

namespace strip::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time.
  Time now() const { return now_; }

  // Schedules `callback` at absolute time `at` (must be >= now()).
  EventQueue::Handle ScheduleAt(Time at, EventQueue::Callback callback);

  // Schedules `callback` `delay` seconds from now (delay must be >= 0).
  EventQueue::Handle ScheduleAfter(Duration delay,
                                   EventQueue::Callback callback);

  // Cancels a previously scheduled event. Returns true if it was still
  // pending.
  bool Cancel(const EventQueue::Handle& handle) {
    return queue_.Cancel(handle);
  }

  // Dispatches events in time order until the queue is empty, Stop()
  // is called, or the next event lies strictly beyond `end`. On
  // return the clock reads exactly `end` unless Stop() cut the run
  // short (then it reads the time of the last dispatched event).
  // Events at exactly `end` are dispatched.
  void RunUntil(Time end);

  // Dispatches events until the queue is empty or Stop() is called.
  void Run();

  // Requests that the run loop return after the current event. Callable
  // from inside event callbacks only.
  void Stop() { stop_requested_ = true; }

  // Number of events dispatched so far (cancelled events excluded).
  std::uint64_t events_dispatched() const { return events_dispatched_; }

  // Number of events still pending.
  std::size_t events_pending() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_ = 0;
  bool stop_requested_ = false;
  std::uint64_t events_dispatched_ = 0;
};

}  // namespace strip::sim

#endif  // STRIP_SIM_SIMULATOR_H_
