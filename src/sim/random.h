// Seeded random-variate streams for the simulation model.
//
// Every stochastic component of the model (update arrivals, transaction
// arrivals, values, computation times, read sets, slacks, network ages)
// draws from its own RandomStream so that runs are reproducible and
// component streams are independent. Fork() derives an independent
// child seed, so one master seed determinately seeds the whole model.

#ifndef STRIP_SIM_RANDOM_H_
#define STRIP_SIM_RANDOM_H_

#include <cstdint>
#include <random>

#include "base/strong_types.h"

namespace strip::sim {

class RandomStream {
 public:
  explicit RandomStream(base::RngSeed seed);

  // Exponential variate with the given mean (mean > 0).
  double Exponential(double mean);

  // Interarrival gap of a Poisson process with the given rate
  // (events per second, rate > 0).
  double PoissonInterarrival(double rate) { return Exponential(1.0 / rate); }

  // Normal variate.
  double Normal(double mean, double stddev);

  // Normal variate clamped below at `floor`. The paper draws
  // computation times, values, and read-set sizes from normal
  // distributions whose tails are physically meaningless (negative
  // time, negative reads); clamping is the conventional fix and the
  // baseline parameters put negligible mass below zero.
  double NormalAtLeast(double mean, double stddev, double floor);

  // Uniform variate on [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer on [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  // Bernoulli trial: true with probability p.
  bool WithProbability(double p);

  // Derives a new seed, deterministically, for seeding a child stream.
  base::RngSeed Fork();

 private:
  std::mt19937_64 engine_;
};

}  // namespace strip::sim

#endif  // STRIP_SIM_RANDOM_H_
