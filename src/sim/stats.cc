#include "sim/stats.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace strip::sim {

void Accumulator::Add(double sample) {
  ++count_;
  sum_ += sample;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void TimeWeighted::StartAt(Time start, double value) {
  start_ = start;
  last_change_ = start;
  value_ = value;
  integral_ = 0;
}

void TimeWeighted::Set(Time t, double value) {
  STRIP_CHECK_MSG(t >= last_change_, "time-weighted signal moved backwards");
  integral_ += value_ * (t - last_change_);
  last_change_ = t;
  value_ = value;
}

double TimeWeighted::Integral(Time end) const {
  STRIP_CHECK_MSG(end >= last_change_, "integral closed before last change");
  return integral_ + value_ * (end - last_change_);
}

double TimeWeighted::Average(Time end) const {
  const double window = end - start_;
  if (window <= 0) return 0.0;
  return Integral(end) / window;
}

Histogram::Histogram(double min, double max, int buckets)
    : min_(min),
      max_(max),
      bucket_width_((max - min) / buckets),
      buckets_(buckets, 0) {
  STRIP_CHECK_MSG(max > min, "histogram range is empty");
  STRIP_CHECK_MSG(buckets >= 1, "histogram needs at least one bucket");
}

void Histogram::Add(double sample) {
  ++count_;
  sum_ += sample;
  if (sample < min_) {
    ++underflow_;
    ++buckets_.front();
    return;
  }
  if (sample >= max_) {
    ++overflow_;
    ++buckets_.back();
    return;
  }
  const auto index =
      static_cast<std::size_t>((sample - min_) / bucket_width_);
  ++buckets_[std::min(index, buckets_.size() - 1)];
}

bool Histogram::Merge(const Histogram& other) {
  if (min_ != other.min_ || max_ != other.max_ ||
      buckets_.size() != other.buckets_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
  return true;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  STRIP_CHECK_MSG(q >= 0 && q <= 1, "quantile outside [0, 1]");
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // Interpolate within this bucket.
      const double fraction =
          buckets_[i] == 0
              ? 0.0
              : (target - before) / static_cast<double>(buckets_[i]);
      return min_ + (static_cast<double>(i) +
                     std::min(1.0, std::max(0.0, fraction))) *
                        bucket_width_;
    }
  }
  return max_;
}

Summary Summary::FromSamples(const std::vector<double>& samples) {
  Summary summary;
  summary.samples = static_cast<int>(samples.size());
  if (samples.empty()) return summary;
  Accumulator acc;
  for (double s : samples) acc.Add(s);
  summary.mean = acc.mean();
  if (samples.size() >= 2) {
    // Normal approximation; replication counts here are small, so this
    // understates the interval slightly versus Student's t, but it is
    // used only for reporting, never for pass/fail decisions.
    summary.ci95 =
        1.96 * acc.stddev() / std::sqrt(static_cast<double>(samples.size()));
  }
  return summary;
}

}  // namespace strip::sim
