// A small-buffer-optimized, move-only `void()` callable.
//
// The event queue schedules millions of tiny lambdas per run;
// std::function would heap-allocate any capture bigger than its ~16
// byte internal buffer and drags in RTTI machinery. InlineCallback
// stores captures up to kInlineSize bytes (48 — enough for every
// callback the system schedules: a `this` pointer plus a few ids)
// directly inside the object, so constructing, moving, and destroying
// a callback touches no allocator. Oversized or alignment-exotic or
// throwing-move captures transparently fall back to a single heap
// allocation.
//
// Differences from std::function, on purpose:
//   - move-only (callbacks own their captures exactly once),
//   - no target_type()/target() introspection, no RTTI,
//   - invoking an empty callback is undefined (callers null-check).

#ifndef STRIP_SIM_INLINE_CALLBACK_H_
#define STRIP_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace strip::sim {

class InlineCallback {
 public:
  // Inline capture budget. 48 bytes keeps the whole callback (storage
  // + ops pointer) within one 64-byte cache line.
  static constexpr std::size_t kInlineSize = 48;

  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}  // NOLINT: implicit like std::function

  // Wraps any callable invocable as `void()`.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineCallback> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {  // NOLINT: implicit like std::function
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  // Hot-path note: the usual capture (a `this` pointer plus a few ids)
  // is trivially copyable and trivially destructible, so its Ops has
  // null relocate/destroy and moving or dropping the callback compiles
  // to a fixed-size inline copy with no indirect calls. Only invoke is
  // always an indirect call.

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineCallback& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  // Invokes the wrapped callable. Precondition: *this != nullptr.
  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  friend bool operator==(const InlineCallback& c, std::nullptr_t) {
    return c.ops_ == nullptr;
  }
  friend bool operator!=(const InlineCallback& c, std::nullptr_t) {
    return c.ops_ != nullptr;
  }

 private:
  // Relocate must be noexcept (moves run inside vector growth and the
  // queue's slab), so throwing-move types take the heap path where
  // relocation is a pointer copy.
  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineSize &&
      alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst's payload from src's and destroys src's.
    // Null means the payload is trivially relocatable: moving is a raw
    // copy of the storage bytes (this includes the heap variant, whose
    // payload in storage is just a pointer).
    void (*relocate)(void* dst_storage, void* src_storage);
    // Null means dropping the payload needs no work.
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* dst, void* src) {
              D* from = std::launder(reinterpret_cast<D*>(src));
              ::new (dst) D(std::move(*from));
              from->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      nullptr,
      [](void* s) { delete *std::launder(reinterpret_cast<D**>(s)); },
  };

  void MoveFrom(InlineCallback& other) {
    if (other.ops_ != nullptr) {
      if (other.ops_->relocate != nullptr) {
        other.ops_->relocate(storage_, other.storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineSize);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace strip::sim

#endif  // STRIP_SIM_INLINE_CALLBACK_H_
