// Lightweight invariant-checking macros.
//
// The simulator is exception-free (per project style); internal invariant
// violations are programming errors and terminate the process with a
// source location and message. These checks are active in all build
// types: the cost is negligible compared to event dispatch, and a
// silently corrupted simulation is worse than a crash.

#ifndef STRIP_BASE_CHECK_H_
#define STRIP_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace strip::base {

// Prints a fatal-check failure and aborts. Used by the macros below;
// not intended to be called directly.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const char* message) {
  std::fprintf(stderr, "STRIP_CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message[0] != '\0' ? " — " : "", message);
  std::abort();
}

}  // namespace strip::base

// Aborts with a diagnostic if `cond` is false.
#define STRIP_CHECK(cond)                                           \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::strip::base::CheckFailed(__FILE__, __LINE__, #cond, "");    \
    }                                                               \
  } while (false)

// Aborts with a diagnostic and an extra message if `cond` is false.
#define STRIP_CHECK_MSG(cond, msg)                                  \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::strip::base::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                               \
  } while (false)

#endif  // STRIP_BASE_CHECK_H_
