// Zero-cost strong types for the identifiers and scalar quantities the
// model threads through many layers.
//
// The sharded model routes raw-looking quantities — shard numbers,
// global vs. shard-local object ids, transaction and update ids, RNG
// seeds — through dozens of call sites. As plain `int`/`uint64_t` a
// swapped argument compiles silently and corrupts exactly the
// bookkeeping the paper's comparisons depend on. A strong type makes
// the mistake a compile error instead:
//
//   base::ShardId home = placement.ShardOf(object);   // ok
//   placement.ToGlobal(local, home);                  // error: swapped
//
// Two templates:
//
//   StrongId<Tag, T>      — identity-like: equality (+ ordering when T
//                           orders), hashing, streaming. No arithmetic:
//                           adding two transaction ids is meaningless.
//   StrongScalar<Tag, T>  — quantity-like: same, plus closed addition/
//                           subtraction and scaling by the raw
//                           arithmetic type (for time-like or
//                           count-like quantities migrated gradually).
//
// Both are standard-layout wrappers exactly the size of T, trivially
// copyable, with every operation constexpr and inline — the compiled
// code is bit-for-bit what the raw type produced (the A/B byte-identity
// baselines pin this). std::hash forwards to std::hash<T>, so keying an
// unordered container by a strong id preserves the container's bucket
// layout and iteration order against the raw-keyed original.
//
// Domain aliases for ids shared across layers live at the bottom;
// object-space ids (global vs. local) live with db::ObjectId in
// db/object.h.

#ifndef STRIP_BASE_STRONG_TYPES_H_
#define STRIP_BASE_STRONG_TYPES_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <type_traits>

namespace strip::base {

// Identity-like strong wrapper. `Tag` is any (possibly incomplete)
// type that makes the alias unique; `T` is the underlying
// representation.
template <typename Tag, typename T>
class StrongId {
 public:
  using underlying_type = T;

  constexpr StrongId() = default;
  explicit constexpr StrongId(T value) : value_(value) {}

  constexpr T value() const { return value_; }

  friend constexpr bool operator==(const StrongId&,
                                   const StrongId&) = default;
  // Deleted (not an error) when T does not order.
  friend constexpr auto operator<=>(const StrongId&,
                                    const StrongId&) = default;

  // Streams exactly what the raw value streamed (byte-identical
  // formatting at print sites).
  friend std::ostream& operator<<(std::ostream& os, const StrongId& id)
    requires requires(std::ostream& o, const T& v) { o << v; }
  {
    return os << id.value_;
  }

 private:
  T value_{};
};

// Quantity-like strong wrapper: a StrongId that additionally supports
// closed addition/subtraction and scaling by the raw type.
template <typename Tag, typename T>
class StrongScalar {
  static_assert(std::is_arithmetic_v<T>,
                "StrongScalar wraps arithmetic types");

 public:
  using underlying_type = T;

  constexpr StrongScalar() = default;
  explicit constexpr StrongScalar(T value) : value_(value) {}

  constexpr T value() const { return value_; }

  friend constexpr bool operator==(const StrongScalar&,
                                   const StrongScalar&) = default;
  friend constexpr auto operator<=>(const StrongScalar&,
                                    const StrongScalar&) = default;

  constexpr StrongScalar operator+(StrongScalar other) const {
    return StrongScalar(static_cast<T>(value_ + other.value_));
  }
  constexpr StrongScalar operator-(StrongScalar other) const {
    return StrongScalar(static_cast<T>(value_ - other.value_));
  }
  constexpr StrongScalar operator*(T scale) const {
    return StrongScalar(static_cast<T>(value_ * scale));
  }
  constexpr StrongScalar& operator+=(StrongScalar other) {
    value_ = static_cast<T>(value_ + other.value_);
    return *this;
  }
  constexpr StrongScalar& operator-=(StrongScalar other) {
    value_ = static_cast<T>(value_ - other.value_);
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, const StrongScalar& s) {
    return os << s.value_;
  }

 private:
  T value_{};
};

// Transparent hash functor for either wrapper (for containers that
// take an explicit hash type; std::hash also works, see below).
struct StrongTypeHash {
  template <typename Tag, typename T>
  std::size_t operator()(const StrongId<Tag, T>& id) const {
    return std::hash<T>{}(id.value());
  }
  template <typename Tag, typename T>
  std::size_t operator()(const StrongScalar<Tag, T>& s) const {
    return std::hash<T>{}(s.value());
  }
};

// --- domain vocabulary ------------------------------------------------------
// Ids shared across subsystem layers (sim and up). Tags are
// intentionally incomplete types.

// One shard engine of a core::Cluster; 0-based. kNoShard marks "no
// owner / every read local" (the uniprocessor model).
using ShardId = StrongId<struct ShardIdTag, int>;
inline constexpr ShardId kNoShard{-1};

// A transaction's run-unique identity (workload::TxnSource allocation
// order).
using TxnId = StrongId<struct TxnIdTag, std::uint64_t>;

// An update's run-unique identity (stream arrival order; disambiguates
// identical generation timestamps).
using UpdateId = StrongId<struct UpdateIdTag, std::uint64_t>;

// A seed for sim::RandomStream. Distinct from every id type: seeding a
// stream from a transaction id (or vice versa) is a reproducibility
// bug, not a unit mismatch the math would surface.
using RngSeed = StrongId<struct RngSeedTag, std::uint64_t>;

// The wrappers must compile away: same size and triviality as the raw
// representation. (tests/base/strong_types_test.cc pins behaviour; the
// A/B byte-identity baselines pin codegen.)
static_assert(sizeof(ShardId) == sizeof(int));
static_assert(sizeof(TxnId) == sizeof(std::uint64_t));
static_assert(std::is_trivially_copyable_v<ShardId>);
static_assert(std::is_trivially_copyable_v<TxnId>);
static_assert(std::is_standard_layout_v<ShardId>);

}  // namespace strip::base

// std::hash forwards to the underlying hash so strong-id-keyed
// unordered containers keep the exact bucket layout (and therefore
// iteration order) of their raw-keyed predecessors.
template <typename Tag, typename T>
struct std::hash<strip::base::StrongId<Tag, T>> {
  std::size_t operator()(const strip::base::StrongId<Tag, T>& id) const {
    return std::hash<T>{}(id.value());
  }
};

template <typename Tag, typename T>
struct std::hash<strip::base::StrongScalar<Tag, T>> {
  std::size_t operator()(const strip::base::StrongScalar<Tag, T>& s) const {
    return std::hash<T>{}(s.value());
  }
};

#endif  // STRIP_BASE_STRONG_TYPES_H_
