#include "base/atomic_io.h"

#include <dirent.h>
#include <sys/stat.h>

#include <cstdio>
#include <fstream>

namespace strip::base {

std::optional<std::string> WriteFileAtomic(const std::string& path,
                                           const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return "cannot open " + tmp + " for writing";
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return "short write to " + tmp;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return "cannot rename " + tmp + " to " + path;
  }
  return std::nullopt;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::vector<std::string> RemoveStaleTmpFiles(const std::string& dir) {
  std::vector<std::string> removed;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return removed;
  while (dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.size() < 4 || name.compare(name.size() - 4, 4, ".tmp") != 0) {
      continue;
    }
    if (std::remove((dir + "/" + name).c_str()) == 0) {
      removed.push_back(name);
    }
  }
  ::closedir(handle);
  return removed;
}

}  // namespace strip::base
