// Crash-safe result-file writes for sweep runners, exporters, and the
// lint driver.
//
// A plain ofstream left half-written by a crash or a kill produces a
// truncated CSV/JSON that can later parse as a valid-but-wrong result.
// WriteFileAtomic writes the whole contents to `<path>.tmp` and then
// renames it over `path`: rename(2) is atomic on POSIX, so readers
// (and --resume scans) only ever see either the old complete file or
// the new complete file — never a torn one.

#ifndef STRIP_BASE_ATOMIC_IO_H_
#define STRIP_BASE_ATOMIC_IO_H_

#include <optional>
#include <string>
#include <vector>

namespace strip::base {

// Writes `contents` to `path` via tmp-file + rename. Returns an error
// message on failure (the tmp file is cleaned up), nullopt on success.
std::optional<std::string> WriteFileAtomic(const std::string& path,
                                           const std::string& contents);

// True if `path` exists (any file type).
bool FileExists(const std::string& path);

// Removes "*.tmp" files left in `dir` by an interrupted writer and
// returns their names (for logging). A missing directory is fine.
std::vector<std::string> RemoveStaleTmpFiles(const std::string& dir);

}  // namespace strip::base

#endif  // STRIP_BASE_ATOMIC_IO_H_
