#include "exp/sweep_cell.h"

#include <cstdio>
#include <sstream>

#include "core/metrics_json.h"

namespace strip::exp {

std::string SweepCellName(core::PolicyKind policy, std::size_t x_index) {
  char cell[64];
  std::snprintf(cell, sizeof(cell), "%s_%02zu",
                core::PolicyKindName(policy), x_index);
  return cell;
}

std::string SweepCellJson(const SweepSpec& spec, std::size_t policy_index,
                          std::size_t x_index,
                          const std::vector<core::RunMetrics>& runs,
                          bool timed_out) {
  std::ostringstream out;
  char x_value[64];
  std::snprintf(x_value, sizeof(x_value), "%.17g", spec.x_values[x_index]);
  out << "{\n"
      << "  \"schema\": \"strip.sweep-cell/v1\",\n"
      << "  \"policy\": \""
      << core::PolicyKindName(spec.policies[policy_index]) << "\",\n"
      << "  \"x_name\": \"" << spec.x_name << "\",\n"
      << "  \"x_value\": " << x_value << ",\n"
      << "  \"x_index\": " << x_index << ",\n"
      << "  \"replications\": " << spec.replications << ",\n"
      << "  \"base_seed\": " << spec.base_seed << ",\n"
      << "  \"timed_out\": " << (timed_out ? "true" : "false") << ",\n"
      << "  \"runs\": [";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    out << (r == 0 ? "\n    " : ",\n    ");
    core::WriteRunMetricsJson(out, runs[r], "      ", "    ");
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace strip::exp
