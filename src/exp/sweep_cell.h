// Serialization of one finished sweep cell as a self-describing
// strip.sweep-cell/v1 JSON document, shared by strip_sweep (writer)
// and obs/report (reader). Deterministic: no timestamps, fixed field
// order, %.17g numbers — a resumed sweep reproduces byte-identical
// files, and strip_report diff on two runs of the same grid shows
// zero deltas.

#ifndef STRIP_EXP_SWEEP_CELL_H_
#define STRIP_EXP_SWEEP_CELL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "exp/experiment.h"

namespace strip::exp {

// "UF_03" — the cell token shared by telemetry, flight, and cell
// files (cell_<token>.json, flight_<token>.txt, <token>.json).
std::string SweepCellName(core::PolicyKind policy, std::size_t x_index);

// The full document for one cell: sweep coordinates plus every
// replication's metrics (each run is a WriteRunMetricsJson object).
std::string SweepCellJson(const SweepSpec& spec, std::size_t policy_index,
                          std::size_t x_index,
                          const std::vector<core::RunMetrics>& runs,
                          bool timed_out);

}  // namespace strip::exp

#endif  // STRIP_EXP_SWEEP_CELL_H_
