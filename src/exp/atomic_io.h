// Forwarding header: the atomic-write helpers moved to base/atomic_io.h
// so layers below exp (check/lint, tools) can use them. Existing
// strip::exp call sites keep working through these aliases.

#ifndef STRIP_EXP_ATOMIC_IO_H_
#define STRIP_EXP_ATOMIC_IO_H_

#include "base/atomic_io.h"

namespace strip::exp {

using base::FileExists;
using base::RemoveStaleTmpFiles;
using base::WriteFileAtomic;

}  // namespace strip::exp

#endif  // STRIP_EXP_ATOMIC_IO_H_
