#include "exp/report.h"

#include <cstdio>
#include <iomanip>

#include "base/check.h"

namespace strip::exp {

namespace {

std::string FormatCell(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%10.4f", value);
  return buffer;
}

std::string FormatCellCi(double mean, double ci) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%10.4f ±%-7.4f", mean, ci);
  return buffer;
}

void PrintHeader(std::ostream& out, const SweepSpec& spec,
                 const std::string& metric_name, bool with_ci) {
  out << "# " << metric_name << " vs " << spec.x_name << "\n";
  out << std::setw(10) << spec.x_name;
  for (core::PolicyKind policy : spec.policies) {
    out << "  " << std::setw(with_ci ? 19 : 10)
        << core::PolicyKindName(policy);
  }
  out << "\n";
}

}  // namespace

void PrintSeries(std::ostream& out, const SweepSpec& spec,
                 const SweepResult& result, const std::string& metric_name,
                 const MetricFn& metric, bool with_ci) {
  PrintHeader(out, spec, metric_name, with_ci);
  for (std::size_t x = 0; x < spec.x_values.size(); ++x) {
    out << std::setw(10) << spec.x_values[x];
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      const sim::Summary summary = result.Aggregate(p, x, metric);
      out << "  "
          << (with_ci ? FormatCellCi(summary.mean, summary.ci95)
                      : FormatCell(summary.mean));
    }
    out << "\n";
  }
  out << "\n";
}

void PrintSeriesCsv(std::ostream& out, const SweepSpec& spec,
                    const SweepResult& result,
                    const std::string& metric_name, const MetricFn& metric) {
  out << spec.x_name << ",policy," << metric_name << ",ci95\n";
  for (std::size_t x = 0; x < spec.x_values.size(); ++x) {
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      const sim::Summary summary = result.Aggregate(p, x, metric);
      out << spec.x_values[x] << ","
          << core::PolicyKindName(spec.policies[p]) << "," << summary.mean
          << "," << summary.ci95 << "\n";
    }
  }
  out << "\n";
}

void PrintSeriesRatio(std::ostream& out, const SweepSpec& spec,
                      const SweepResult& result, const SweepResult& baseline,
                      const std::string& metric_name, const MetricFn& metric) {
  STRIP_CHECK(result.n_policies() == baseline.n_policies());
  STRIP_CHECK(result.n_x() == baseline.n_x());
  PrintHeader(out, spec, metric_name, /*with_ci=*/false);
  for (std::size_t x = 0; x < spec.x_values.size(); ++x) {
    out << std::setw(10) << spec.x_values[x];
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      const double numerator = result.Mean(p, x, metric);
      const double denominator = baseline.Mean(p, x, metric);
      const double ratio = denominator == 0 ? 0 : numerator / denominator;
      out << "  " << FormatCell(ratio);
    }
    out << "\n";
  }
  out << "\n";
}

void PrintSeriesJson(std::ostream& out, const SweepSpec& spec,
                     const SweepResult& result,
                     const std::string& metric_name, const MetricFn& metric) {
  const auto number = [](double v) {
    // JSON has no inf/nan; clamp to null.
    char buffer[32];
    if (v != v || v > 1e308 || v < -1e308) return std::string("null");
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    return std::string(buffer);
  };
  out << "{\"metric\": \"" << metric_name << "\", \"x_name\": \""
      << spec.x_name << "\", \"x\": [";
  for (std::size_t x = 0; x < spec.x_values.size(); ++x) {
    out << (x ? ", " : "") << number(spec.x_values[x]);
  }
  out << "], \"policies\": [";
  for (std::size_t p = 0; p < spec.policies.size(); ++p) {
    out << (p ? ", " : "") << '"' << core::PolicyKindName(spec.policies[p])
        << '"';
  }
  out << "], \"replications\": " << spec.replications << ", \"mean\": [";
  for (std::size_t p = 0; p < spec.policies.size(); ++p) {
    out << (p ? ", [" : "[");
    for (std::size_t x = 0; x < spec.x_values.size(); ++x) {
      out << (x ? ", " : "") << number(result.Mean(p, x, metric));
    }
    out << "]";
  }
  out << "], \"ci95\": [";
  for (std::size_t p = 0; p < spec.policies.size(); ++p) {
    out << (p ? ", [" : "[");
    for (std::size_t x = 0; x < spec.x_values.size(); ++x) {
      out << (x ? ", " : "")
          << number(result.Aggregate(p, x, metric).ci95);
    }
    out << "]";
  }
  out << "]}";
}

}  // namespace strip::exp
