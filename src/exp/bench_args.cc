#include "exp/bench_args.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace strip::exp {

namespace {

bool ConsumePrefix(const char* arg, const char* prefix,
                   const char** rest) {
  const std::size_t len = std::strlen(prefix);
  if (std::strncmp(arg, prefix, len) != 0) return false;
  *rest = arg + len;
  return true;
}

[[noreturn]] void Usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s [--seconds=S] [--reps=N] [--seed=S] "
               "[--jobs=N] [--pin-cores] [--csv] [--json=PATH] "
               "[--full]\n",
               program);
  std::exit(2);
}

}  // namespace

BenchArgs BenchArgs::Parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* rest = nullptr;
    if (ConsumePrefix(arg, "--seconds=", &rest)) {
      args.seconds = std::atof(rest);
    } else if (ConsumePrefix(arg, "--reps=", &rest)) {
      args.replications = std::atoi(rest);
    } else if (ConsumePrefix(arg, "--seed=", &rest)) {
      args.seed = std::strtoull(rest, nullptr, 10);
    } else if (ConsumePrefix(arg, "--jobs=", &rest)) {
      args.parallel.jobs = std::atoi(rest);
    } else if (ConsumePrefix(arg, "--threads=", &rest)) {
      std::fprintf(stderr,
                   "%s: --threads= was removed; use --jobs=%s\n", argv[0],
                   rest);
      std::exit(2);
    } else if (std::strcmp(arg, "--pin-cores") == 0) {
      args.parallel.pin_cores = true;
    } else if (std::strcmp(arg, "--csv") == 0) {
      args.csv = true;
    } else if (ConsumePrefix(arg, "--json=", &rest)) {
      args.json = rest;
    } else if (std::strcmp(arg, "--full") == 0) {
      args.seconds = 1000.0;
      args.replications = 3;
    } else {
      Usage(argv[0]);
    }
  }
  if (args.seconds <= 0 || args.replications <= 0) Usage(argv[0]);
  return args;
}

}  // namespace strip::exp
