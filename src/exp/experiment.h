// Experiment driving: single runs, replication, and parameter sweeps.
//
// A sweep is the unit the paper's figures are made of: one x-axis
// parameter swept over a set of values, crossed with a set of
// scheduling policies, each cell replicated over several seeds. Cells
// are independent, so the sweep runs them on a thread pool; results are
// deterministic for a given spec (seeds are fixed per replication
// index, giving common random numbers across cells for variance
// reduction).

#ifndef STRIP_EXP_EXPERIMENT_H_
#define STRIP_EXP_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "core/sharded_config.h"
#include "exp/parallel_runner.h"
#include "sim/stats.h"

namespace strip::core {
class Cluster;
class System;
}  // namespace strip::core

namespace strip::exp {

// Extracts one scalar metric from a run.
using MetricFn = std::function<double(const core::RunMetrics&)>;

// Adapts a RunMetrics member directly to a MetricFn, so call sites can
// write Metric(&RunMetrics::av) or Metric(&RunMetrics::f_old_low)
// instead of a lambda.
inline MetricFn Metric(double (core::RunMetrics::*fn)() const) {
  return [fn](const core::RunMetrics& m) { return (m.*fn)(); };
}
template <typename T>
MetricFn Metric(T core::RunMetrics::*field) {
  return [field](const core::RunMetrics& m) {
    return static_cast<double>(m.*field);
  };
}

// Which run of an experiment a hook fires for. For bare RunOnce /
// Replicate calls the sweep indexes stay 0.
struct RunContext {
  std::size_t policy_index = 0;
  std::size_t x_index = 0;
  int replication = 0;
  std::uint64_t seed = 0;
  // Cluster shape of the run: 1 for classic single-System runs. Hooks
  // that attach per-shard sinks read this to size their fan-out.
  int shards = 1;
};

// Called with the run's metrics after Run() completes, while the
// System is still alive.
using RunFinisher = std::function<void(const core::RunMetrics&)>;

// Observation hook: called with the freshly wired System before Run()
// — attach observers (telemetry, trace writers) here; they must stay
// alive for the run, e.g. owned by the returned finisher. The returned
// finisher (may be null) runs after Run() with the run's metrics.
// Sweeps call hooks concurrently from worker threads; hooks must not
// share mutable state across runs without synchronization.
using RunHook =
    std::function<RunFinisher(core::System&, const RunContext&)>;

// Sharded variant: receives the freshly wired Cluster before Run() —
// attach observers per shard (cluster.shard(s).AddObserver) or on all
// shards. The returned finisher (may be null) runs after Run() with
// the *aggregate* metrics; per-shard metrics stay readable through the
// Cluster reference for the finisher's lifetime.
using ClusterRunHook =
    std::function<RunFinisher(core::Cluster&, const RunContext&)>;

// Wall-clock budget for one run (or one sweep cell across its
// replications). wall_seconds <= 0 means unbudgeted: the run executes
// exactly like the historical single-call path, with identical
// results. With a budget, the simulation advances in slices of
// slice_sim_seconds simulated seconds, checking the wall clock
// between slices; on overrun the run is finalized early at the point
// reached (slicing itself never changes results — the event sequence
// is identical to an unsliced run).
struct RunBudget {
  double wall_seconds = 0;
  double slice_sim_seconds = 5.0;
};

// Runs one configuration to completion with one seed. The optional
// hook observes the run (see RunHook).
core::RunMetrics RunOnce(const core::Config& config, std::uint64_t seed);
core::RunMetrics RunOnce(const core::Config& config, std::uint64_t seed,
                         const RunHook& hook, const RunContext& context);
// Budgeted variant: on wall-clock overrun the run is cut short
// (metrics cover the simulated time actually reached) and *timed_out
// (optional) is set.
core::RunMetrics RunOnce(const core::Config& config, std::uint64_t seed,
                         const RunHook& hook, const RunContext& context,
                         const RunBudget& budget, bool* timed_out);

// Sharded equivalents: one Cluster run per call, returning the
// aggregate metrics. With config.shards == 1 the run is seed- and
// metric-identical to the core::Config overloads on config.base.
core::RunMetrics RunOnce(const core::ShardedConfig& config,
                         std::uint64_t seed);
core::RunMetrics RunOnce(const core::ShardedConfig& config,
                         std::uint64_t seed, const ClusterRunHook& hook,
                         const RunContext& context);
core::RunMetrics RunOnce(const core::ShardedConfig& config,
                         std::uint64_t seed, const ClusterRunHook& hook,
                         const RunContext& context, const RunBudget& budget,
                         bool* timed_out);

// Runs one configuration over several seeds; returns all runs. The
// optional hook observes every replication.
std::vector<core::RunMetrics> Replicate(const core::Config& config,
                                        int replications,
                                        std::uint64_t base_seed);
std::vector<core::RunMetrics> Replicate(const core::Config& config,
                                        int replications,
                                        std::uint64_t base_seed,
                                        const RunHook& hook);
std::vector<core::RunMetrics> Replicate(const core::ShardedConfig& config,
                                        int replications,
                                        std::uint64_t base_seed);
std::vector<core::RunMetrics> Replicate(const core::ShardedConfig& config,
                                        int replications,
                                        std::uint64_t base_seed,
                                        const ClusterRunHook& hook);

struct SweepSpec {
  // Base configuration; policy and the x parameter are overwritten per
  // cell.
  core::Config base;
  // Policies to compare (columns).
  std::vector<core::PolicyKind> policies = {
      core::PolicyKind::kUpdateFirst, core::PolicyKind::kTransactionFirst,
      core::PolicyKind::kSplitUpdates, core::PolicyKind::kOnDemand};
  // Name of the swept parameter, for table headers (e.g., "lambda_t").
  std::string x_name;
  // X-axis values (rows).
  std::vector<double> x_values;
  // Applies one x value to a config. May be null when apply_x_cluster
  // is set.
  std::function<void(core::Config&, double)> apply_x;
  // Cluster-scoped x application: when set, the x value is applied to
  // the cell's cluster shape (after `cluster.base` has been filled in
  // with the cell's base + policy config) — this is how `shards` or
  // `link_latency_us` become sweep axes. Setting it routes EVERY cell
  // through the Cluster path, shards == 1 values included (a
  // one-shard Cluster is seed- and metric-identical to a bare
  // System), so attach observers via on_cluster_run.
  std::function<void(core::ShardedConfig&, double)> apply_x_cluster;
  // Independent replications per cell.
  int replications = 3;
  std::uint64_t base_seed = 42;
  // Worker-pool shape: jobs (0 = one per hardware core) and optional
  // worker-to-core pinning. Results are byte-identical for any job
  // count (see exp/parallel_runner.h's determinism contract).
  ParallelOptions parallel;
  // Observation hook, called (from worker threads) for every run with
  // its cell coordinates; may be null. See RunHook. Ignored when the
  // sweep is sharded (cluster.shards > 1) — use on_cluster_run there.
  RunHook on_run;
  // Cluster shape for sharded sweeps. The default (shards == 1) keeps
  // the historical single-System cell path, byte-identical to before
  // the field existed. With shards > 1, every cell run constructs a
  // Cluster from this shape with the cell's config (base + policy +
  // x value) as its base; `cluster.base` itself is ignored.
  core::ShardedConfig cluster;
  // Observation hook for sharded cells (cluster.shards > 1); may be
  // null. See ClusterRunHook.
  ClusterRunHook on_cluster_run;
  // Per-cell wall-clock budget, shared across a cell's replications
  // (crash-safe sweeps). On overrun the in-flight replication is cut
  // short and the cell's remaining replications are skipped (their
  // metrics stay default-constructed); the cell is reported timed-out.
  RunBudget budget;
  // Optional cell filter (--resume): return true to skip a cell
  // entirely — its runs stay default-constructed and on_cell_done is
  // NOT called for it.
  std::function<bool(std::size_t policy_index, std::size_t x_index)>
      skip_cell;
  // Optional per-cell completion callback: write the cell's results to
  // durable storage here so an interrupted sweep keeps everything
  // finished so far. Called as each cell finishes (in no particular
  // cell order), serialized across workers together with on_progress —
  // cell writes and progress reporting never interleave.
  std::function<void(std::size_t policy_index, std::size_t x_index,
                     const std::vector<core::RunMetrics>& runs,
                     bool timed_out)>
      on_cell_done;
  // Optional progress callback, fired after each cell (after its
  // on_cell_done) with the number of cells finished so far and the
  // total scheduled (skipped cells excluded). Serialized with
  // on_cell_done under one mutex.
  std::function<void(std::size_t done, std::size_t total)> on_progress;
};

class SweepResult {
 public:
  SweepResult(std::size_t n_policies, std::size_t n_x, int replications);

  // All runs of one cell.
  const std::vector<core::RunMetrics>& cell(std::size_t policy_index,
                                            std::size_t x_index) const;
  std::vector<core::RunMetrics>& mutable_cell(std::size_t policy_index,
                                              std::size_t x_index);

  // Mean of `metric` over a cell's replications.
  double Mean(std::size_t policy_index, std::size_t x_index,
              const MetricFn& metric) const;

  // Mean and 95% CI of `metric` over a cell's replications.
  sim::Summary Aggregate(std::size_t policy_index, std::size_t x_index,
                         const MetricFn& metric) const;

  std::size_t n_policies() const { return n_policies_; }
  std::size_t n_x() const { return n_x_; }

 private:
  std::size_t n_policies_;
  std::size_t n_x_;
  std::vector<std::vector<core::RunMetrics>> cells_;
};

// Runs every (policy, x, replication) of the spec.
SweepResult RunSweep(const SweepSpec& spec);

}  // namespace strip::exp

#endif  // STRIP_EXP_EXPERIMENT_H_
