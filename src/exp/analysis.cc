#include "exp/analysis.h"

#include <cmath>

#include "base/check.h"

namespace strip::exp {

double PredictedUpdateDemand(const core::Config& config) {
  return config.lambda_u * (config.x_lookup + config.x_update) /
         config.ips;
}

double PredictedTransactionDemand(const core::Config& config) {
  const double per_txn_seconds =
      config.comp_mean +
      config.reads_mean * config.x_lookup / config.ips;
  return config.lambda_t * per_txn_seconds;
}

double PredictedSaturationLambdaT(const core::Config& config) {
  const double headroom = 1.0 - PredictedUpdateDemand(config);
  const double per_txn_seconds =
      config.comp_mean +
      config.reads_mean * config.x_lookup / config.ips;
  STRIP_CHECK_MSG(per_txn_seconds > 0, "degenerate transaction length");
  return headroom / per_txn_seconds;
}

double PredictedStalenessFloor(const core::Config& config,
                               db::ObjectClass cls) {
  const bool low = cls == db::ObjectClass::kLowImportance;
  const double p_class = low ? config.p_ul : 1.0 - config.p_ul;
  const int n = low ? config.n_low : config.n_high;
  if (p_class <= 0) return 1.0;  // never refreshed: always stale
  const double lambda_object =
      config.lambda_u * p_class / static_cast<double>(n);
  return std::exp(-lambda_object * config.alpha);
}

double PredictedFreshTxnProbability(const core::Config& config) {
  // The read count is Normal(reads_mean, reads_sd), rounded, clamped
  // at 0. Take the expectation of the all-fresh probability over
  // r = 0..r_max, weighting by the rounded-normal pmf; each read is
  // fresh with probability (1 - floor) of its class's partition, and
  // the class split is p_tl / 1-p_tl.
  const double floor_low =
      PredictedStalenessFloor(config, db::ObjectClass::kLowImportance);
  const double floor_high =
      PredictedStalenessFloor(config, db::ObjectClass::kHighImportance);

  auto normal_cdf = [&](double x) {
    if (config.reads_sd == 0) return x >= config.reads_mean ? 1.0 : 0.0;
    return 0.5 * std::erfc(-(x - config.reads_mean) /
                           (config.reads_sd * std::sqrt(2.0)));
  };
  const int r_max =
      static_cast<int>(config.reads_mean + 8 * config.reads_sd) + 1;

  double expectation = 0;
  double total_mass = 0;
  for (int r = 0; r <= r_max; ++r) {
    // Mass of the rounded normal at r (r = 0 absorbs the clamp).
    const double lo = r == 0 ? -1e30 : r - 0.5;
    const double mass = normal_cdf(r + 0.5) - normal_cdf(lo);
    const double fresh_given_low = std::pow(1.0 - floor_low, r);
    const double fresh_given_high = std::pow(1.0 - floor_high, r);
    expectation += mass * (config.p_tl * fresh_given_low +
                           (1.0 - config.p_tl) * fresh_given_high);
    total_mass += mass;
  }
  if (total_mass <= 0) return 1.0;
  return expectation / total_mass;
}

}  // namespace strip::exp
