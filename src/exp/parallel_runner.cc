#include "exp/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <thread>
#include <vector>

#include "base/check.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace strip::exp {

ParallelRunner::ParallelRunner(const ParallelOptions& options)
    : options_(options),
      jobs_(options.jobs > 0 ? options.jobs : HardwareJobs()) {}

int ParallelRunner::HardwareJobs() {
  const unsigned cores = std::thread::hardware_concurrency();
  return cores > 0 ? static_cast<int>(cores) : 4;
}

bool ParallelRunner::PinCurrentThreadToCore(int core) {
#if defined(__linux__)
  const int cores = HardwareJobs();
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<std::size_t>(core % cores), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

void ParallelRunner::Run(std::size_t count, const Task& task) {
  STRIP_CHECK_MSG(task != nullptr, "parallel runner needs a task");
  if (count == 0) return;
  const int n_workers =
      std::min<int>(jobs_, static_cast<int>(std::min<std::size_t>(
                               count, static_cast<std::size_t>(
                                          std::numeric_limits<int>::max()))));

  std::atomic<std::size_t> next{0};
  const bool pin = options_.pin_cores;
  auto worker = [&task, &next, count, pin](int worker_index) {
    if (pin && !PinCurrentThreadToCore(worker_index)) {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        std::fprintf(stderr,
                     "parallel runner: core pinning unavailable, "
                     "workers run unpinned\n");
      }
    }
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      task(i);
    }
  };

  if (n_workers == 1 && !pin) {
    // Sequential baseline: same code path, caller's thread, index
    // order — no pool to set up or tear down. (With pinning on even a
    // single worker gets its own thread, so the caller's affinity is
    // never disturbed.)
    worker(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(n_workers));
  for (int w = 0; w < n_workers; ++w) pool.emplace_back(worker, w);
  for (std::thread& t : pool) t.join();
}

void ParallelRunner::Serialized(const std::function<void()>& fn) {
  const std::lock_guard<std::mutex> lock(serial_mutex_);
  fn();
}

}  // namespace strip::exp
