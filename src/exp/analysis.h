// First-order analytical predictions for the model.
//
// Several of the paper's observations have closed forms under the
// baseline assumptions (Poisson arrivals, exponential network ages):
// the update stream's CPU demand, the offered transaction load, and
// the staleness floor that even Update First cannot beat. These are
// used to cross-validate the simulator (tests/exp/analysis_test.cc
// checks simulation against prediction) and to size experiments
// without running them.

#ifndef STRIP_EXP_ANALYSIS_H_
#define STRIP_EXP_ANALYSIS_H_

#include "core/config.h"
#include "db/object.h"

namespace strip::exp {

// CPU fraction demanded by installing the entire update stream
// (lambda_u installs of x_lookup + x_update): the rho_u of a policy
// that installs everything, e.g. UF at any load (Figure 3b's flat
// line, ~0.192 at the baseline).
double PredictedUpdateDemand(const core::Config& config);

// CPU fraction demanded by the offered transaction load (computation
// plus view-read lookups), ignoring losses: where this exceeds
// 1 - PredictedUpdateDemand, the system is overloaded (the paper's
// saturation at lambda_t ~ 10).
double PredictedTransactionDemand(const core::Config& config);

// The lambda_t at which total demand reaches 1 (the saturation knee).
double PredictedSaturationLambdaT(const core::Config& config);

// The Maximum Age staleness floor for a partition: with per-object
// Poisson refreshes at rate lambda_obj = lambda_u · p_class / N_class,
// the stationary probability that an object's current value is older
// than alpha is exp(-lambda_obj · alpha) — the staleness UF converges
// to no matter how fast it installs (Figure 5's UF line, ~0.061 at
// the baseline).
double PredictedStalenessFloor(const core::Config& config,
                               db::ObjectClass cls);

// Probability that a transaction's whole read set is fresh when the
// per-object stale fraction sits at the floor: the expectation of
// (1 - floor)^R over the read-count distribution (Normal, rounded,
// clamped at 0). This bounds p_success at light load (~0.89 at the
// baseline — the reason Figure 6a starts below 1).
double PredictedFreshTxnProbability(const core::Config& config);

}  // namespace strip::exp

#endif  // STRIP_EXP_ANALYSIS_H_
