// Table and CSV emitters for sweep results.
//
// PrintSeries prints the same rows/series a paper figure plots: one row
// per x value, one column per policy, for one metric. The bench
// binaries under bench/ compose these into per-figure reports.

#ifndef STRIP_EXP_REPORT_H_
#define STRIP_EXP_REPORT_H_

#include <ostream>
#include <string>

#include "exp/experiment.h"

namespace strip::exp {

// Prints an aligned table of `metric` (one column per policy of the
// spec, one row per x value). `metric_name` heads the block. When
// `with_ci` is set each cell shows "mean ±ci95".
void PrintSeries(std::ostream& out, const SweepSpec& spec,
                 const SweepResult& result, const std::string& metric_name,
                 const MetricFn& metric, bool with_ci = false);

// Prints the same data as CSV: x_name,policy,metric columns — one long
// row per (x, policy) pair — convenient for replotting.
void PrintSeriesCsv(std::ostream& out, const SweepSpec& spec,
                    const SweepResult& result,
                    const std::string& metric_name, const MetricFn& metric);

// Prints a "ratio" table: metric under `result` divided by metric
// under `baseline` (used by the paper's FIFO/LIFO and abort/no-abort
// comparison figures). Both results must come from the same spec shape.
void PrintSeriesRatio(std::ostream& out, const SweepSpec& spec,
                      const SweepResult& result, const SweepResult& baseline,
                      const std::string& metric_name, const MetricFn& metric);

// Prints one series as a self-contained JSON object:
//   {"metric": ..., "x_name": ..., "x": [...], "policies": [...],
//    "mean": [[per-policy rows]], "ci95": [[per-policy rows]]}
// Callers compose these into a document (see bench_util's --json and
// strip_sweep --json=PATH).
void PrintSeriesJson(std::ostream& out, const SweepSpec& spec,
                     const SweepResult& result,
                     const std::string& metric_name, const MetricFn& metric);

}  // namespace strip::exp

#endif  // STRIP_EXP_REPORT_H_
