// Shared command-line handling for the per-figure bench binaries.
//
// Every figure binary accepts:
//   --seconds=<double>   simulated seconds per run (default 200)
//   --reps=<int>         replications (seeds) per cell (default 2)
//   --seed=<uint64>      base seed (default 42)
//   --jobs=<int>         worker threads (default: one per core; the
//                        removed --threads= spelling fails loudly)
//   --pin-cores          pin worker i to core i (Linux)
//   --csv                also emit CSV blocks after each table
//   --json=<path>        also write every emitted series to a JSON file
//   --full               paper scale: 1000 simulated seconds, 3 reps
//
// The defaults trade a little precision for wall time so the whole
// bench suite finishes in minutes; --full reproduces the paper's
// 1000-second runs exactly.

#ifndef STRIP_EXP_BENCH_ARGS_H_
#define STRIP_EXP_BENCH_ARGS_H_

#include <cstdint>
#include <string>

#include "core/config.h"
#include "exp/parallel_runner.h"

namespace strip::exp {

struct BenchArgs {
  double seconds = 200.0;
  int replications = 2;
  std::uint64_t seed = 42;
  // Worker-pool shape for the sweep (jobs + optional pinning).
  ParallelOptions parallel;
  bool csv = false;
  // Non-empty: machine-readable results are (re)written here after
  // each emitted series.
  std::string json;

  // Parses argv; exits with a usage message on unknown flags.
  static BenchArgs Parse(int argc, char** argv);

  // Applies run length to a config.
  void ApplyTo(core::Config& config) const { config.sim_seconds = seconds; }
};

}  // namespace strip::exp

#endif  // STRIP_EXP_BENCH_ARGS_H_
