// String-keyed access to every Config parameter.
//
// Maps "--name=value" flags onto core::Config fields so that tools
// (tools/strip_sim) and scripts can define a run without recompiling.
// Names follow the paper's notation where it has one (lambda_t, p_ul,
// alpha, x_update, ...), otherwise the Config field name.

#ifndef STRIP_EXP_CONFIG_FLAGS_H_
#define STRIP_EXP_CONFIG_FLAGS_H_

#include <optional>
#include <string>
#include <vector>

#include "core/config.h"

namespace strip::exp {

// Applies one "name=value" assignment (no leading dashes) to `config`.
// Returns an error message on unknown names or unparsable values.
std::optional<std::string> ApplyConfigFlag(const std::string& assignment,
                                           core::Config& config);

// Applies every argv entry of the form "--name=value" to `config`.
// Entries that do not start with "--", or whose name is unknown, are
// appended to `unconsumed` (so callers can layer their own flags).
// Returns the first value-parse error, or nullopt on success.
std::optional<std::string> ApplyConfigFlags(
    int argc, char** argv, core::Config& config,
    std::vector<std::string>* unconsumed);

// All accepted flag names (for --help output).
std::vector<std::string> ConfigFlagNames();

// Renders the full configuration, one "name=value" per line.
std::string ConfigToString(const core::Config& config);

}  // namespace strip::exp

#endif  // STRIP_EXP_CONFIG_FLAGS_H_
