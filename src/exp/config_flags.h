// String-keyed access to every Config / ShardedConfig parameter.
//
// Maps "--name=value" flags onto core::Config fields so that tools
// (tools/strip_sim) and scripts can define a run without recompiling.
// Names follow the paper's notation where it has one (lambda_t, p_ul,
// alpha, x_update, ...), otherwise the Config field name.
//
// Every flag is one row of a declarative table — name, help line,
// parser, renderer, and an optional eager validator — so adding a
// parameter means adding a row: help output, --print-config, eager
// range errors, and the config-file reader all pick it up from the
// table. The ShardedConfig overloads accept the cluster-level flags
// (shards, placement, per-shard overrides, feed skew) on top of every
// base flag.

#ifndef STRIP_EXP_CONFIG_FLAGS_H_
#define STRIP_EXP_CONFIG_FLAGS_H_

#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/sharded_config.h"

namespace strip::exp {

// Applies one "name=value" assignment (no leading dashes) to `config`.
// Returns an error message on unknown names, unparsable values, or an
// eager range-check failure.
[[nodiscard]] std::optional<std::string> ApplyConfigFlag(
    const std::string& assignment, core::Config& config);
// Sharded variant: cluster-level names resolve first, everything else
// lands on config.base.
[[nodiscard]] std::optional<std::string> ApplyConfigFlag(
    const std::string& assignment, core::ShardedConfig& config);

// Applies every argv entry of the form "--name=value" to `config`.
// Entries that do not start with "--", or whose name is unknown, are
// appended to `unconsumed` (so callers can layer their own flags).
// Returns the first value-parse error, or nullopt on success.
[[nodiscard]] std::optional<std::string> ApplyConfigFlags(
    int argc, char** argv, core::Config& config,
    std::vector<std::string>* unconsumed);
[[nodiscard]] std::optional<std::string> ApplyConfigFlags(
    int argc, char** argv, core::ShardedConfig& config,
    std::vector<std::string>* unconsumed);

// All accepted base-config flag names (for --help output).
std::vector<std::string> ConfigFlagNames();
// The cluster-level flag names accepted on top by the ShardedConfig
// overloads (shards, placement, shard_ips, ...).
std::vector<std::string> ShardedConfigFlagNames();

// One "--name=VALUE  help" line per flag, cluster-level flags last.
std::string ConfigFlagsHelp();

// Renders the full configuration, one "name=value" per line. The
// sharded form appends the cluster-level parameters after the base.
std::string ConfigToString(const core::Config& config);
std::string ConfigToString(const core::ShardedConfig& config);

}  // namespace strip::exp

#endif  // STRIP_EXP_CONFIG_FLAGS_H_
