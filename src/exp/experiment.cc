#include "exp/experiment.h"

#include <chrono>

#include "base/check.h"
#include "core/cluster.h"
#include "core/system.h"
#include "sim/simulator.h"

namespace strip::exp {

namespace {

using Clock = std::chrono::steady_clock;

// Budgeted run against an absolute deadline, so a sweep cell can
// share one deadline across its replications. Slicing replays the
// exact event sequence of an unsliced run (Simulator::RunUntil
// dispatches each event once across successive calls), so results are
// identical to RunOnce unless the deadline actually fires.
core::RunMetrics RunOnceUntil(const core::Config& config,
                              std::uint64_t seed, const RunHook& hook,
                              const RunContext& context,
                              Clock::time_point deadline,
                              double slice_sim_seconds, bool* timed_out) {
  if (slice_sim_seconds <= 0) slice_sim_seconds = 5.0;
  sim::Simulator simulator;
  core::System system(&simulator, config, base::RngSeed(seed));
  RunFinisher finish;
  if (hook) finish = hook(system, context);
  core::RunMetrics metrics;
  while (true) {
    if (system.RunSlice(slice_sim_seconds)) {
      metrics = system.metrics();
      break;
    }
    if (Clock::now() >= deadline) {
      metrics = system.HaltEarly();
      if (timed_out != nullptr) *timed_out = true;
      break;
    }
  }
  if (finish) finish(metrics);
  return metrics;
}

// Sharded twin of RunOnceUntil: same deadline/slice contract, driving
// a Cluster instead of a bare System.
core::RunMetrics ClusterRunOnceUntil(const core::ShardedConfig& config,
                                     std::uint64_t seed,
                                     const ClusterRunHook& hook,
                                     const RunContext& context,
                                     Clock::time_point deadline,
                                     double slice_sim_seconds,
                                     bool* timed_out) {
  if (slice_sim_seconds <= 0) slice_sim_seconds = 5.0;
  sim::Simulator simulator;
  core::Cluster cluster(&simulator, config, base::RngSeed(seed));
  RunFinisher finish;
  if (hook) finish = hook(cluster, context);
  core::RunMetrics metrics;
  while (true) {
    if (cluster.RunSlice(slice_sim_seconds)) {
      metrics = cluster.metrics();
      break;
    }
    if (Clock::now() >= deadline) {
      metrics = cluster.HaltEarly();
      if (timed_out != nullptr) *timed_out = true;
      break;
    }
  }
  if (finish) finish(metrics);
  return metrics;
}

}  // namespace

core::RunMetrics RunOnce(const core::Config& config, std::uint64_t seed) {
  return RunOnce(config, seed, nullptr, RunContext{});
}

core::RunMetrics RunOnce(const core::Config& config, std::uint64_t seed,
                         const RunHook& hook, const RunContext& context) {
  sim::Simulator simulator;
  core::System system(&simulator, config, base::RngSeed(seed));
  // The finisher is declared after the System so its destruction (and
  // with it any observers it owns) happens first, while the bus the
  // observers detach from is still alive.
  RunFinisher finish;
  if (hook) finish = hook(system, context);
  const core::RunMetrics metrics = system.Run();
  if (finish) finish(metrics);
  return metrics;
}

core::RunMetrics RunOnce(const core::Config& config, std::uint64_t seed,
                         const RunHook& hook, const RunContext& context,
                         const RunBudget& budget, bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  if (budget.wall_seconds <= 0) {
    return RunOnce(config, seed, hook, context);
  }
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(budget.wall_seconds));
  return RunOnceUntil(config, seed, hook, context, deadline,
                      budget.slice_sim_seconds, timed_out);
}

core::RunMetrics RunOnce(const core::ShardedConfig& config,
                         std::uint64_t seed) {
  return RunOnce(config, seed, nullptr, RunContext{});
}

core::RunMetrics RunOnce(const core::ShardedConfig& config,
                         std::uint64_t seed, const ClusterRunHook& hook,
                         const RunContext& context) {
  sim::Simulator simulator;
  core::Cluster cluster(&simulator, config, base::RngSeed(seed));
  // Finisher after the Cluster for the same destruction-order reason
  // as the System overload: hook-owned observers detach before the
  // shard engines (and their buses) go away.
  RunFinisher finish;
  if (hook) finish = hook(cluster, context);
  const core::RunMetrics metrics = cluster.Run();
  if (finish) finish(metrics);
  return metrics;
}

core::RunMetrics RunOnce(const core::ShardedConfig& config,
                         std::uint64_t seed, const ClusterRunHook& hook,
                         const RunContext& context, const RunBudget& budget,
                         bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  if (budget.wall_seconds <= 0) {
    return RunOnce(config, seed, hook, context);
  }
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(budget.wall_seconds));
  return ClusterRunOnceUntil(config, seed, hook, context, deadline,
                             budget.slice_sim_seconds, timed_out);
}

std::vector<core::RunMetrics> Replicate(const core::Config& config,
                                        int replications,
                                        std::uint64_t base_seed) {
  return Replicate(config, replications, base_seed, nullptr);
}

std::vector<core::RunMetrics> Replicate(const core::Config& config,
                                        int replications,
                                        std::uint64_t base_seed,
                                        const RunHook& hook) {
  STRIP_CHECK_MSG(replications > 0, "need at least one replication");
  std::vector<core::RunMetrics> runs;
  runs.reserve(replications);
  for (int r = 0; r < replications; ++r) {
    RunContext context;
    context.replication = r;
    context.seed = base_seed + static_cast<std::uint64_t>(r);
    runs.push_back(RunOnce(config, context.seed, hook, context));
  }
  return runs;
}

std::vector<core::RunMetrics> Replicate(const core::ShardedConfig& config,
                                        int replications,
                                        std::uint64_t base_seed) {
  return Replicate(config, replications, base_seed, nullptr);
}

std::vector<core::RunMetrics> Replicate(const core::ShardedConfig& config,
                                        int replications,
                                        std::uint64_t base_seed,
                                        const ClusterRunHook& hook) {
  STRIP_CHECK_MSG(replications > 0, "need at least one replication");
  std::vector<core::RunMetrics> runs;
  runs.reserve(replications);
  for (int r = 0; r < replications; ++r) {
    RunContext context;
    context.replication = r;
    context.seed = base_seed + static_cast<std::uint64_t>(r);
    context.shards = config.shards;
    runs.push_back(RunOnce(config, context.seed, hook, context));
  }
  return runs;
}

SweepResult::SweepResult(std::size_t n_policies, std::size_t n_x,
                         int replications)
    : n_policies_(n_policies), n_x_(n_x), cells_(n_policies * n_x) {
  for (auto& cell : cells_) {
    cell.resize(static_cast<std::size_t>(replications));
  }
}

const std::vector<core::RunMetrics>& SweepResult::cell(
    std::size_t policy_index, std::size_t x_index) const {
  STRIP_CHECK(policy_index < n_policies_ && x_index < n_x_);
  return cells_[policy_index * n_x_ + x_index];
}

std::vector<core::RunMetrics>& SweepResult::mutable_cell(
    std::size_t policy_index, std::size_t x_index) {
  STRIP_CHECK(policy_index < n_policies_ && x_index < n_x_);
  return cells_[policy_index * n_x_ + x_index];
}

double SweepResult::Mean(std::size_t policy_index, std::size_t x_index,
                         const MetricFn& metric) const {
  return Aggregate(policy_index, x_index, metric).mean;
}

sim::Summary SweepResult::Aggregate(std::size_t policy_index,
                                    std::size_t x_index,
                                    const MetricFn& metric) const {
  std::vector<double> samples;
  for (const core::RunMetrics& run : cell(policy_index, x_index)) {
    samples.push_back(metric(run));
  }
  return sim::Summary::FromSamples(samples);
}

SweepResult RunSweep(const SweepSpec& spec) {
  STRIP_CHECK_MSG(!spec.policies.empty(), "sweep needs at least one policy");
  STRIP_CHECK_MSG(!spec.x_values.empty(), "sweep needs at least one x value");
  STRIP_CHECK_MSG(spec.apply_x != nullptr || spec.apply_x_cluster != nullptr,
                  "sweep needs an apply_x or apply_x_cluster");
  STRIP_CHECK_MSG(spec.replications > 0, "sweep needs replications");

  SweepResult result(spec.policies.size(), spec.x_values.size(),
                     spec.replications);

  // Tasks are whole cells (policy, x): a cell's replications run
  // sequentially on one worker so the cell shares one wall-clock
  // budget and finishes as a unit — on_cell_done sees all of its runs
  // together, which is what lets a runner persist cell files
  // atomically for --resume. Every worker runs fully isolated
  // Simulation/RNG state (a fresh Simulator + System per run, seeded
  // from the spec), and results land in index-addressed SweepResult
  // cells, so the merged result is byte-identical for any job count.
  struct Task {
    std::size_t policy_index;
    std::size_t x_index;
  };
  std::vector<Task> tasks;
  for (std::size_t p = 0; p < spec.policies.size(); ++p) {
    for (std::size_t x = 0; x < spec.x_values.size(); ++x) {
      if (spec.skip_cell && spec.skip_cell(p, x)) continue;
      tasks.push_back({p, x});
    }
  }

  ParallelRunner runner(spec.parallel);
  std::size_t cells_done = 0;
  runner.Run(tasks.size(), [&](std::size_t i) {
    const Task& task = tasks[i];
    core::Config config = spec.base;
    config.policy = spec.policies[task.policy_index];
    if (spec.apply_x) spec.apply_x(config, spec.x_values[task.x_index]);
    // Sharded sweeps wrap the finished cell config in the spec's
    // cluster shape; at the default shards == 1 (and no cluster x
    // axis) the historical single-System path below runs untouched.
    // A cluster-scoped x axis forces the Cluster path for every cell
    // so the shape it sets (shard count, link latency) takes effect.
    core::ShardedConfig cell_cluster = spec.cluster;
    cell_cluster.base = config;
    if (spec.apply_x_cluster) {
      spec.apply_x_cluster(cell_cluster, spec.x_values[task.x_index]);
    }
    const bool sharded =
        spec.apply_x_cluster != nullptr || spec.cluster.shards > 1;
    std::vector<core::RunMetrics>& runs =
        result.mutable_cell(task.policy_index, task.x_index);
    // The cell's wall-clock budget is per-worker: it starts when a
    // worker picks the cell up, not when the sweep was launched, so
    // queueing behind other cells never eats a cell's allowance.
    const bool budgeted = spec.budget.wall_seconds > 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                budgeted ? spec.budget.wall_seconds : 0.0));
    bool cell_timed_out = false;
    for (int r = 0; r < spec.replications; ++r) {
      // Once the cell's budget fires, later replications are not
      // started — their metrics stay default-constructed.
      if (cell_timed_out) break;
      RunContext context;
      context.policy_index = task.policy_index;
      context.x_index = task.x_index;
      context.replication = r;
      context.seed = spec.base_seed + static_cast<std::uint64_t>(r);
      if (sharded) {
        context.shards = cell_cluster.shards;
        runs[static_cast<std::size_t>(r)] =
            budgeted ? ClusterRunOnceUntil(cell_cluster, context.seed,
                                           spec.on_cluster_run, context,
                                           deadline,
                                           spec.budget.slice_sim_seconds,
                                           &cell_timed_out)
                     : RunOnce(cell_cluster, context.seed,
                               spec.on_cluster_run, context);
      } else {
        runs[static_cast<std::size_t>(r)] =
            budgeted ? RunOnceUntil(config, context.seed, spec.on_run,
                                    context, deadline,
                                    spec.budget.slice_sim_seconds,
                                    &cell_timed_out)
                     : RunOnce(config, context.seed, spec.on_run, context);
      }
    }
    if (spec.on_cell_done || spec.on_progress) {
      // Durable cell writes and progress share one serialized
      // section, so a progress line can never interleave with a cell
      // file hitting disk.
      runner.Serialized([&] {
        if (spec.on_cell_done) {
          spec.on_cell_done(task.policy_index, task.x_index, runs,
                            cell_timed_out);
        }
        ++cells_done;
        if (spec.on_progress) spec.on_progress(cells_done, tasks.size());
      });
    }
  });
  return result;
}

}  // namespace strip::exp
