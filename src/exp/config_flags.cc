#include "exp/config_flags.h"

#include <cmath>
#include <cstdlib>
#include <functional>
#include <sstream>

#include "fault/fault_schedule.h"

namespace strip::exp {

namespace {

using core::Config;
using core::PolicyKind;
using core::QueueDiscipline;
using core::ShardedConfig;

// One row of the flag table. Everything a parameter needs — help
// output, parsing, rendering, and the eager range check — lives in
// its row, so a new parameter is exactly one new row.
template <typename C>
struct FlagRow {
  const char* name;
  const char* help;
  // Parses `value` into the config; returns false on a bad value.
  std::function<bool(const std::string&, C&)> parse;
  // Renders the current value.
  std::function<std::string(const C&)> render;
  // Optional constraint check run right after a successful parse.
  // Returns the violated constraint ("must be positive", ...). The
  // checks mirror Config::Validate so the error surfaces at the flag
  // that caused it instead of at run construction.
  std::function<std::optional<std::string>(const C&)> validate;
};

using FlagDef = FlagRow<Config>;
using ShardedFlagDef = FlagRow<ShardedConfig>;

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  // "nan"/"inf" parse fine but every range check downstream is an
  // ordered comparison that NaN slips through; reject them here with a
  // clear message instead of producing NaN results.
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseInt(const std::string& s, int* out) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseBool(const std::string& s, bool* out) {
  if (s == "true" || s == "1" || s == "TRUE" || s == "on") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "0" || s == "FALSE" || s == "off") {
    *out = false;
    return true;
  }
  return false;
}

// Splits on `sep`, keeping empty tokens (an empty per-shard fault
// spec means "no faults on that shard").
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      tokens.push_back(s.substr(start));
      return tokens;
    }
    tokens.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Render(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}
std::string Render(int v) { return std::to_string(v); }
std::string Render(bool v) { return v ? "true" : "false"; }

// Eager numeric constraints, attached per row.
enum class Check {
  kNone,
  kPositive,     // > 0
  kNonNegative,  // >= 0
  kUnit,         // in [0, 1]
};

std::optional<std::string> CheckValue(double v, Check check) {
  switch (check) {
    case Check::kNone:
      return std::nullopt;
    case Check::kPositive:
      if (v <= 0) return "must be positive";
      return std::nullopt;
    case Check::kNonNegative:
      if (v < 0) return "must be non-negative";
      return std::nullopt;
    case Check::kUnit:
      if (v < 0 || v > 1) return "must be in [0, 1]";
      return std::nullopt;
  }
  return std::nullopt;
}

FlagDef DoubleFlag(const char* name, double Config::* field,
                   const char* help, Check check = Check::kNone) {
  return {name, help,
          [field](const std::string& s, Config& c) {
            return ParseDouble(s, &(c.*field));
          },
          [field](const Config& c) { return Render(c.*field); },
          [field, check](const Config& c) {
            return CheckValue(c.*field, check);
          }};
}

FlagDef IntFlag(const char* name, int Config::* field, const char* help,
                Check check = Check::kNone) {
  return {name, help,
          [field](const std::string& s, Config& c) {
            return ParseInt(s, &(c.*field));
          },
          [field](const Config& c) { return Render(c.*field); },
          [field, check](const Config& c) {
            return CheckValue(c.*field, check);
          }};
}

FlagDef BoolFlag(const char* name, bool Config::* field,
                 const char* help) {
  return {name, help,
          [field](const std::string& s, Config& c) {
            return ParseBool(s, &(c.*field));
          },
          [field](const Config& c) { return Render(c.*field); },
          nullptr};
}

const std::vector<FlagDef>& Flags() {
  static const std::vector<FlagDef>& flags = *new std::vector<FlagDef>{
      // Table 1
      DoubleFlag("lambda_u", &Config::lambda_u,
                 "update arrival rate, 1/s", Check::kPositive),
      DoubleFlag("p_ul", &Config::p_ul,
                 "P(update targets low-importance data)", Check::kUnit),
      DoubleFlag("a_update", &Config::a_update,
                 "mean pre-arrival age of updates, s", Check::kPositive),
      IntFlag("n_low", &Config::n_low, "low-importance view objects",
              Check::kPositive),
      IntFlag("n_high", &Config::n_high, "high-importance view objects",
              Check::kPositive),
      // Table 2
      DoubleFlag("lambda_t", &Config::lambda_t,
                 "transaction arrival rate, 1/s", Check::kPositive),
      DoubleFlag("p_tl", &Config::p_tl, "P(transaction is low-value)",
                 Check::kUnit),
      DoubleFlag("s_min", &Config::s_min, "minimum slack, s",
                 Check::kNonNegative),
      DoubleFlag("s_max", &Config::s_max, "maximum slack, s",
                 Check::kNonNegative),
      DoubleFlag("v_low_mean", &Config::v_low_mean,
                 "mean value, low-value class"),
      DoubleFlag("v_high_mean", &Config::v_high_mean,
                 "mean value, high-value class"),
      DoubleFlag("v_low_sd", &Config::v_low_sd,
                 "value sd, low-value class"),
      DoubleFlag("v_high_sd", &Config::v_high_sd,
                 "value sd, high-value class"),
      DoubleFlag("reads_mean", &Config::reads_mean,
                 "mean # of view objects read", Check::kNonNegative),
      DoubleFlag("reads_sd", &Config::reads_sd,
                 "sd of # of view objects read"),
      DoubleFlag("alpha", &Config::alpha, "maximum age of fresh data, s"),
      DoubleFlag("comp_mean", &Config::comp_mean,
                 "mean computation time, s", Check::kNonNegative),
      DoubleFlag("comp_sd", &Config::comp_sd, "sd of computation time, s"),
      DoubleFlag("p_view", &Config::p_view,
                 "fraction of computation before view reads", Check::kUnit),
      // Table 3
      DoubleFlag("ips", &Config::ips, "CPU speed, instructions/s",
                 Check::kPositive),
      DoubleFlag("x_lookup", &Config::x_lookup,
                 "instructions to find an object", Check::kNonNegative),
      DoubleFlag("x_update", &Config::x_update,
                 "instructions to write an object", Check::kNonNegative),
      DoubleFlag("x_switch", &Config::x_switch,
                 "instructions per context switch", Check::kNonNegative),
      DoubleFlag("x_queue", &Config::x_queue,
                 "queue add/remove cost factor (x ln n)",
                 Check::kNonNegative),
      DoubleFlag("x_scan", &Config::x_scan,
                 "cost to examine one queued update", Check::kNonNegative),
      IntFlag("os_max", &Config::os_max, "OS queue bound, updates",
              Check::kPositive),
      IntFlag("uq_max", &Config::uq_max, "update queue bound, updates",
              Check::kPositive),
      BoolFlag("feasible_deadline", &Config::feasible_deadline,
               "screen out hopeless transactions"),
      BoolFlag("txn_preemption", &Config::txn_preemption,
               "may transactions preempt each other"),
      {"queue_discipline", "update-queue service order (FIFO | LIFO)",
       [](const std::string& s, Config& c) {
         if (s == "FIFO") {
           c.queue_discipline = QueueDiscipline::kFifo;
         } else if (s == "LIFO") {
           c.queue_discipline = QueueDiscipline::kLifo;
         } else {
           return false;
         }
         return true;
       },
       [](const Config& c) {
         return std::string(QueueDisciplineName(c.queue_discipline));
       },
       nullptr},
      // Scenario
      {"policy", "scheduling policy (UF | TF | SU | OD | FCF)",
       [](const std::string& s, Config& c) {
         for (PolicyKind kind :
              {PolicyKind::kUpdateFirst, PolicyKind::kTransactionFirst,
               PolicyKind::kSplitUpdates, PolicyKind::kOnDemand,
               PolicyKind::kFixedFraction}) {
           if (s == PolicyKindName(kind)) {
             c.policy = kind;
             return true;
           }
         }
         return false;
       },
       [](const Config& c) {
         return std::string(PolicyKindName(c.policy));
       },
       nullptr},
      {"staleness",
       "staleness criterion (MA | UU | MA+UU | MA-arrival)",
       [](const std::string& s, Config& c) {
         if (s == "MA") {
           c.staleness = db::StalenessCriterion::kMaxAge;
         } else if (s == "UU") {
           c.staleness = db::StalenessCriterion::kUnappliedUpdate;
         } else if (s == "MA+UU") {
           c.staleness = db::StalenessCriterion::kCombined;
         } else if (s == "MA-arrival") {
           c.staleness = db::StalenessCriterion::kMaxAgeArrival;
         } else {
           return false;
         }
         return true;
       },
       [](const Config& c) {
         return std::string(db::StalenessCriterionName(c.staleness));
       },
       nullptr},
      BoolFlag("abort_on_stale", &Config::abort_on_stale,
               "abort transactions on reading stale data"),
      DoubleFlag("sim_seconds", &Config::sim_seconds,
                 "simulated run length, s", Check::kPositive),
      DoubleFlag("warmup_seconds", &Config::warmup_seconds,
                 "warm-up excluded from statistics, s",
                 Check::kNonNegative),
      // Extensions
      BoolFlag("indexed_update_queue", &Config::indexed_update_queue,
               "constant-cost OD queue searches (hash index)"),
      BoolFlag("dedup_update_queue", &Config::dedup_update_queue,
               "discard superseded queued updates on receive"),
      BoolFlag("split_importance_queues", &Config::split_importance_queues,
               "service queued high-importance updates first"),
      DoubleFlag("update_cpu_fraction", &Config::update_cpu_fraction,
                 "CPU share reserved for the updater under FCF",
                 Check::kUnit),
      BoolFlag("periodic_updates", &Config::periodic_updates,
               "periodic (round-robin) updates instead of Poisson"),
      {"txn_sched",
       "transaction selection rule (value-density | edf | fcfs)",
       [](const std::string& s, Config& c) {
         for (txn::TxnSchedPolicy policy :
              {txn::TxnSchedPolicy::kValueDensity,
               txn::TxnSchedPolicy::kEarliestDeadline,
               txn::TxnSchedPolicy::kFcfs}) {
           if (s == txn::TxnSchedPolicyName(policy)) {
             c.txn_sched = policy;
             return true;
           }
         }
         return false;
       },
       [](const Config& c) {
         return std::string(txn::TxnSchedPolicyName(c.txn_sched));
       },
       nullptr},
      DoubleFlag("trigger_probability", &Config::trigger_probability,
                 "P(an install fires a derived-data rule)", Check::kUnit),
      DoubleFlag("x_trigger", &Config::x_trigger,
                 "rule recomputation cost, instructions",
                 Check::kNonNegative),
      DoubleFlag("buffer_hit_ratio", &Config::buffer_hit_ratio,
                 "P(object lookup hits the buffer pool)", Check::kUnit),
      DoubleFlag("io_seconds", &Config::io_seconds,
                 "CPU stall per buffer miss, s", Check::kNonNegative),
      IntFlag("history_depth", &Config::history_depth,
              "retained versions per view object (0 = off)",
              Check::kNonNegative),
      IntFlag("n_attributes", &Config::n_attributes,
              "attributes per view object (partial updates)",
              Check::kPositive),
      BoolFlag("bursty_updates", &Config::bursty_updates,
               "alternate the feed between lambda_u and lambda_u_peak"),
      DoubleFlag("lambda_u_peak", &Config::lambda_u_peak,
                 "burst-phase update rate, 1/s", Check::kPositive),
      DoubleFlag("normal_dwell_seconds", &Config::normal_dwell_seconds,
                 "mean normal-phase dwell, s", Check::kPositive),
      DoubleFlag("burst_dwell_seconds", &Config::burst_dwell_seconds,
                 "mean burst-phase dwell, s", Check::kPositive),
      IntFlag("admission_limit", &Config::admission_limit,
              "waiting-transaction cap (0 = off)", Check::kNonNegative),
      // Robustness (fault injection & graceful degradation)
      {"faults",
       "fault windows, \"kind@start+dur[:k=v,...];...\" (see DESIGN.md)",
       [](const std::string& s, Config& c) {
         // Validate eagerly so a malformed spec fails at the flag with
         // a one-line error naming the bad token, not later at
         // Config::Validate.
         std::string fault_error;
         if (!fault::FaultSchedule::Parse(s, &fault_error).has_value()) {
           return false;
         }
         c.faults = s;
         return true;
       },
       [](const Config& c) { return c.faults; },
       nullptr},
      BoolFlag("shed_by_importance", &Config::shed_by_importance,
               "evict queued low-importance updates when full"),
      BoolFlag("overload_governor", &Config::overload_governor,
               "freshest-first triage past the high watermark"),
      DoubleFlag("governor_high_watermark",
                 &Config::governor_high_watermark,
                 "governor engage depth fraction", Check::kUnit),
      DoubleFlag("governor_low_watermark", &Config::governor_low_watermark,
                 "governor disengage depth fraction", Check::kUnit),
      DoubleFlag("governor_stale_threshold",
                 &Config::governor_stale_threshold,
                 "stale-fraction engage trigger (0 = off)", Check::kUnit),
      DoubleFlag("remote_timeout_s", &Config::remote_timeout_s,
                 "remote-read timeout before retry, s (0 = wait forever)",
                 Check::kNonNegative),
      {"remote_retry_backoff", "timeout multiplier per retry (>= 1)",
       [](const std::string& s, Config& c) {
         return ParseDouble(s, &c.remote_retry_backoff);
       },
       [](const Config& c) { return Render(c.remote_retry_backoff); },
       [](const Config& c) -> std::optional<std::string> {
         if (c.remote_retry_backoff < 1) return "must be >= 1";
         return std::nullopt;
       }},
      IntFlag("remote_retry_max", &Config::remote_retry_max,
              "remote-read retries before the fallback",
              Check::kNonNegative),
      {"remote_fallback",
       "after retries: stale local read or abort (stale | abort)",
       [](const std::string& s, Config& c) {
         if (s == "stale") {
           c.remote_fallback = core::RemoteFallback::kStale;
         } else if (s == "abort") {
           c.remote_fallback = core::RemoteFallback::kAbort;
         } else {
           return false;
         }
         return true;
       },
       [](const Config& c) {
         return std::string(RemoteFallbackName(c.remote_fallback));
       },
       nullptr},
  };
  return flags;
}

// Cluster-level parameters accepted by the ShardedConfig overloads on
// top of every base flag.
const std::vector<ShardedFlagDef>& ShardedFlags() {
  static const std::vector<ShardedFlagDef>& flags =
      *new std::vector<ShardedFlagDef>{
          {"shards", "shard engines (simulated CPUs); 1 = the paper",
           [](const std::string& s, ShardedConfig& c) {
             return ParseInt(s, &c.shards);
           },
           [](const ShardedConfig& c) { return Render(c.shards); },
           [](const ShardedConfig& c) -> std::optional<std::string> {
             if (c.shards < 1) return "must be >= 1";
             return std::nullopt;
           }},
          {"placement", "object placement across shards (hash | range)",
           [](const std::string& s, ShardedConfig& c) {
             const std::optional<db::PlacementKind> kind =
                 db::ParsePlacementKind(s);
             if (!kind.has_value()) return false;
             c.placement = *kind;
             return true;
           },
           [](const ShardedConfig& c) {
             return std::string(db::PlacementKindName(c.placement));
           },
           nullptr},
          {"shard_ips",
           "per-shard CPU speeds, comma-separated (empty = base ips)",
           [](const std::string& s, ShardedConfig& c) {
             std::vector<double> values;
             if (!s.empty()) {
               for (const std::string& token : Split(s, ',')) {
                 double v = 0;
                 if (!ParseDouble(token, &v)) return false;
                 values.push_back(v);
               }
             }
             c.shard_ips = std::move(values);
             return true;
           },
           [](const ShardedConfig& c) {
             std::string out;
             for (double v : c.shard_ips) {
               if (!out.empty()) out += ",";
               out += Render(v);
             }
             return out;
           },
           [](const ShardedConfig& c) -> std::optional<std::string> {
             for (double v : c.shard_ips) {
               if (v <= 0) return "entries must be positive";
             }
             return std::nullopt;
           }},
          {"shard_x_switch",
           "per-shard context-switch costs, comma-separated",
           [](const std::string& s, ShardedConfig& c) {
             std::vector<double> values;
             if (!s.empty()) {
               for (const std::string& token : Split(s, ',')) {
                 double v = 0;
                 if (!ParseDouble(token, &v)) return false;
                 values.push_back(v);
               }
             }
             c.shard_x_switch = std::move(values);
             return true;
           },
           [](const ShardedConfig& c) {
             std::string out;
             for (double v : c.shard_x_switch) {
               if (!out.empty()) out += ",";
               out += Render(v);
             }
             return out;
           },
           [](const ShardedConfig& c) -> std::optional<std::string> {
             for (double v : c.shard_x_switch) {
               if (v < 0) return "entries must be non-negative";
             }
             return std::nullopt;
           }},
          {"shard_faults",
           "per-shard fault schedules, '|'-separated ('' = none)",
           [](const std::string& s, ShardedConfig& c) {
             std::vector<std::string> specs;
             if (!s.empty()) specs = Split(s, '|');
             for (const std::string& spec : specs) {
               if (spec.empty()) continue;
               std::string fault_error;
               if (!fault::FaultSchedule::Parse(spec, &fault_error)
                        .has_value()) {
                 return false;
               }
             }
             c.shard_faults = std::move(specs);
             return true;
           },
           [](const ShardedConfig& c) {
             std::string out;
             for (std::size_t i = 0; i < c.shard_faults.size(); ++i) {
               if (i > 0) out += "|";
               out += c.shard_faults[i];
             }
             return out;
           },
           nullptr},
          {"feed_hot_shard",
           "shard absorbing the skewed feed fraction (-1 = off)",
           [](const std::string& s, ShardedConfig& c) {
             return ParseInt(s, &c.feed_hot_shard);
           },
           [](const ShardedConfig& c) { return Render(c.feed_hot_shard); },
           [](const ShardedConfig& c) -> std::optional<std::string> {
             if (c.feed_hot_shard < -1) return "must be >= -1";
             return std::nullopt;
           }},
          {"feed_hot_fraction",
           "fraction of the feed redirected to the hot shard",
           [](const std::string& s, ShardedConfig& c) {
             return ParseDouble(s, &c.feed_hot_fraction);
           },
           [](const ShardedConfig& c) {
             return Render(c.feed_hot_fraction);
           },
           [](const ShardedConfig& c) -> std::optional<std::string> {
             if (c.feed_hot_fraction < 0 || c.feed_hot_fraction > 1) {
               return "must be in [0, 1]";
             }
             return std::nullopt;
           }},
          {"link_latency_us",
           "fixed cross-shard message delay, microseconds",
           [](const std::string& s, ShardedConfig& c) {
             return ParseDouble(s, &c.link_latency_us);
           },
           [](const ShardedConfig& c) {
             return Render(c.link_latency_us);
           },
           [](const ShardedConfig& c) -> std::optional<std::string> {
             if (c.link_latency_us < 0) return "must be non-negative";
             return std::nullopt;
           }},
          {"link_jitter_us",
           "mean exponential extra message delay, microseconds",
           [](const std::string& s, ShardedConfig& c) {
             return ParseDouble(s, &c.link_jitter_us);
           },
           [](const ShardedConfig& c) {
             return Render(c.link_jitter_us);
           },
           [](const ShardedConfig& c) -> std::optional<std::string> {
             if (c.link_jitter_us < 0) return "must be non-negative";
             return std::nullopt;
           }},
          {"link_loss_p",
           "P(a cross-shard message is lost)",
           [](const std::string& s, ShardedConfig& c) {
             return ParseDouble(s, &c.link_loss_p);
           },
           [](const ShardedConfig& c) { return Render(c.link_loss_p); },
           [](const ShardedConfig& c) -> std::optional<std::string> {
             if (c.link_loss_p < 0 || c.link_loss_p > 1) {
               return "must be in [0, 1]";
             }
             return std::nullopt;
           }},
          {"cluster_faults",
           "interconnect fault windows (link-latency | link-loss | "
           "partition | shard-outage)",
           [](const std::string& s, ShardedConfig& c) {
             // Eager parse, same contract as --faults: a malformed
             // spec fails at the flag naming the bad token.
             if (!s.empty()) {
               std::string fault_error;
               if (!fault::FaultSchedule::Parse(s, &fault_error)
                        .has_value()) {
                 return false;
               }
             }
             c.cluster_faults = s;
             return true;
           },
           [](const ShardedConfig& c) { return c.cluster_faults; },
           nullptr},
      };
  return flags;
}

// Shared application logic: find the row, parse, run its eager check.
template <typename C>
std::optional<std::string> ApplyRow(const std::vector<FlagRow<C>>& rows,
                                    const std::string& name,
                                    const std::string& value, C& config,
                                    bool* found) {
  *found = false;
  for (const FlagRow<C>& row : rows) {
    if (name != row.name) continue;
    *found = true;
    // Transactional: a rejected assignment — bad parse OR eager range
    // violation — leaves the config exactly as it was.
    const C snapshot = config;
    if (!row.parse(value, config)) {
      config = snapshot;
      return "bad value for " + name + ": " + value;
    }
    if (row.validate) {
      if (const std::optional<std::string> violation =
              row.validate(config)) {
        config = snapshot;
        return "bad value for " + name + ": " + value + " (" + *violation +
               ")";
      }
    }
    return std::nullopt;
  }
  return std::nullopt;
}

std::optional<std::string> SplitAssignment(const std::string& assignment,
                                           std::string* name,
                                           std::string* value) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string::npos) {
    return "expected name=value, got: " + assignment;
  }
  *name = assignment.substr(0, eq);
  *value = assignment.substr(eq + 1);
  return std::nullopt;
}

// Shared argv walk for both config types.
template <typename C>
std::optional<std::string> ApplyArgv(int argc, char** argv, C& config,
                                     std::vector<std::string>* unconsumed) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (unconsumed != nullptr) unconsumed->push_back(arg);
      continue;
    }
    const std::optional<std::string> error =
        ApplyConfigFlag(arg.substr(2), config);
    if (!error.has_value()) continue;
    if (error->rfind("unknown parameter", 0) == 0 ||
        error->rfind("expected name=value", 0) == 0) {
      if (unconsumed != nullptr) unconsumed->push_back(arg);
      continue;
    }
    return error;  // known parameter, bad value
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> ApplyConfigFlag(const std::string& assignment,
                                           core::Config& config) {
  std::string name, value;
  if (const auto error = SplitAssignment(assignment, &name, &value)) {
    return error;
  }
  bool found = false;
  const std::optional<std::string> error =
      ApplyRow(Flags(), name, value, config, &found);
  if (found) return error;
  return "unknown parameter: " + name;
}

std::optional<std::string> ApplyConfigFlag(const std::string& assignment,
                                           core::ShardedConfig& config) {
  std::string name, value;
  if (const auto error = SplitAssignment(assignment, &name, &value)) {
    return error;
  }
  bool found = false;
  std::optional<std::string> error =
      ApplyRow(ShardedFlags(), name, value, config, &found);
  if (found) return error;
  error = ApplyRow(Flags(), name, value, config.base, &found);
  if (found) return error;
  return "unknown parameter: " + name;
}

std::optional<std::string> ApplyConfigFlags(
    int argc, char** argv, core::Config& config,
    std::vector<std::string>* unconsumed) {
  return ApplyArgv(argc, argv, config, unconsumed);
}

std::optional<std::string> ApplyConfigFlags(
    int argc, char** argv, core::ShardedConfig& config,
    std::vector<std::string>* unconsumed) {
  return ApplyArgv(argc, argv, config, unconsumed);
}

std::vector<std::string> ConfigFlagNames() {
  std::vector<std::string> names;
  names.reserve(Flags().size());
  for (const FlagDef& flag : Flags()) names.emplace_back(flag.name);
  return names;
}

std::vector<std::string> ShardedConfigFlagNames() {
  std::vector<std::string> names;
  names.reserve(ShardedFlags().size());
  for (const ShardedFlagDef& flag : ShardedFlags()) {
    names.emplace_back(flag.name);
  }
  return names;
}

std::string ConfigFlagsHelp() {
  std::ostringstream out;
  const auto emit = [&out](const char* name, const char* help) {
    out << "  --" << name << "=";
    const int pad = 28 - static_cast<int>(std::string(name).size());
    for (int i = 0; i < pad; ++i) out << ' ';
    out << help << "\n";
  };
  for (const FlagDef& flag : Flags()) emit(flag.name, flag.help);
  out << " cluster (sharded runs):\n";
  for (const ShardedFlagDef& flag : ShardedFlags()) {
    emit(flag.name, flag.help);
  }
  return out.str();
}

std::string ConfigToString(const core::Config& config) {
  std::ostringstream out;
  for (const FlagDef& flag : Flags()) {
    out << flag.name << "=" << flag.render(config) << "\n";
  }
  return out.str();
}

std::string ConfigToString(const core::ShardedConfig& config) {
  std::ostringstream out;
  out << ConfigToString(config.base);
  for (const ShardedFlagDef& flag : ShardedFlags()) {
    out << flag.name << "=" << flag.render(config) << "\n";
  }
  return out.str();
}

}  // namespace strip::exp
