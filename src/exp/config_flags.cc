#include "exp/config_flags.h"

#include <cmath>
#include <cstdlib>
#include <functional>
#include <sstream>

#include "fault/fault_schedule.h"

namespace strip::exp {

namespace {

using core::Config;
using core::PolicyKind;
using core::QueueDiscipline;

struct FlagDef {
  const char* name;
  // Parses `value` into the config; returns false on a bad value.
  std::function<bool(const std::string&, Config&)> parse;
  // Renders the current value.
  std::function<std::string(const Config&)> render;
};

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  // "nan"/"inf" parse fine but every range check downstream is an
  // ordered comparison that NaN slips through; reject them here with a
  // clear message instead of producing NaN results.
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseInt(const std::string& s, int* out) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseBool(const std::string& s, bool* out) {
  if (s == "true" || s == "1" || s == "TRUE" || s == "on") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "0" || s == "FALSE" || s == "off") {
    *out = false;
    return true;
  }
  return false;
}

std::string Render(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}
std::string Render(int v) { return std::to_string(v); }
std::string Render(bool v) { return v ? "true" : "false"; }

FlagDef DoubleFlag(const char* name, double Config::* field) {
  return {name,
          [field](const std::string& s, Config& c) {
            return ParseDouble(s, &(c.*field));
          },
          [field](const Config& c) { return Render(c.*field); }};
}

FlagDef IntFlag(const char* name, int Config::* field) {
  return {name,
          [field](const std::string& s, Config& c) {
            return ParseInt(s, &(c.*field));
          },
          [field](const Config& c) { return Render(c.*field); }};
}

FlagDef BoolFlag(const char* name, bool Config::* field) {
  return {name,
          [field](const std::string& s, Config& c) {
            return ParseBool(s, &(c.*field));
          },
          [field](const Config& c) { return Render(c.*field); }};
}

const std::vector<FlagDef>& Flags() {
  static const std::vector<FlagDef>& flags = *new std::vector<FlagDef>{
      // Table 1
      DoubleFlag("lambda_u", &Config::lambda_u),
      DoubleFlag("p_ul", &Config::p_ul),
      DoubleFlag("a_update", &Config::a_update),
      IntFlag("n_low", &Config::n_low),
      IntFlag("n_high", &Config::n_high),
      // Table 2
      DoubleFlag("lambda_t", &Config::lambda_t),
      DoubleFlag("p_tl", &Config::p_tl),
      DoubleFlag("s_min", &Config::s_min),
      DoubleFlag("s_max", &Config::s_max),
      DoubleFlag("v_low_mean", &Config::v_low_mean),
      DoubleFlag("v_high_mean", &Config::v_high_mean),
      DoubleFlag("v_low_sd", &Config::v_low_sd),
      DoubleFlag("v_high_sd", &Config::v_high_sd),
      DoubleFlag("reads_mean", &Config::reads_mean),
      DoubleFlag("reads_sd", &Config::reads_sd),
      DoubleFlag("alpha", &Config::alpha),
      DoubleFlag("comp_mean", &Config::comp_mean),
      DoubleFlag("comp_sd", &Config::comp_sd),
      DoubleFlag("p_view", &Config::p_view),
      // Table 3
      DoubleFlag("ips", &Config::ips),
      DoubleFlag("x_lookup", &Config::x_lookup),
      DoubleFlag("x_update", &Config::x_update),
      DoubleFlag("x_switch", &Config::x_switch),
      DoubleFlag("x_queue", &Config::x_queue),
      DoubleFlag("x_scan", &Config::x_scan),
      IntFlag("os_max", &Config::os_max),
      IntFlag("uq_max", &Config::uq_max),
      BoolFlag("feasible_deadline", &Config::feasible_deadline),
      BoolFlag("txn_preemption", &Config::txn_preemption),
      {"queue_discipline",
       [](const std::string& s, Config& c) {
         if (s == "FIFO") {
           c.queue_discipline = QueueDiscipline::kFifo;
         } else if (s == "LIFO") {
           c.queue_discipline = QueueDiscipline::kLifo;
         } else {
           return false;
         }
         return true;
       },
       [](const Config& c) {
         return std::string(QueueDisciplineName(c.queue_discipline));
       }},
      // Scenario
      {"policy",
       [](const std::string& s, Config& c) {
         for (PolicyKind kind :
              {PolicyKind::kUpdateFirst, PolicyKind::kTransactionFirst,
               PolicyKind::kSplitUpdates, PolicyKind::kOnDemand,
               PolicyKind::kFixedFraction}) {
           if (s == PolicyKindName(kind)) {
             c.policy = kind;
             return true;
           }
         }
         return false;
       },
       [](const Config& c) {
         return std::string(PolicyKindName(c.policy));
       }},
      {"staleness",
       [](const std::string& s, Config& c) {
         if (s == "MA") {
           c.staleness = db::StalenessCriterion::kMaxAge;
         } else if (s == "UU") {
           c.staleness = db::StalenessCriterion::kUnappliedUpdate;
         } else if (s == "MA+UU") {
           c.staleness = db::StalenessCriterion::kCombined;
         } else if (s == "MA-arrival") {
           c.staleness = db::StalenessCriterion::kMaxAgeArrival;
         } else {
           return false;
         }
         return true;
       },
       [](const Config& c) {
         return std::string(db::StalenessCriterionName(c.staleness));
       }},
      BoolFlag("abort_on_stale", &Config::abort_on_stale),
      DoubleFlag("sim_seconds", &Config::sim_seconds),
      DoubleFlag("warmup_seconds", &Config::warmup_seconds),
      // Extensions
      BoolFlag("indexed_update_queue", &Config::indexed_update_queue),
      BoolFlag("dedup_update_queue", &Config::dedup_update_queue),
      BoolFlag("split_importance_queues",
               &Config::split_importance_queues),
      DoubleFlag("update_cpu_fraction", &Config::update_cpu_fraction),
      BoolFlag("periodic_updates", &Config::periodic_updates),
      {"txn_sched",
       [](const std::string& s, Config& c) {
         for (txn::TxnSchedPolicy policy :
              {txn::TxnSchedPolicy::kValueDensity,
               txn::TxnSchedPolicy::kEarliestDeadline,
               txn::TxnSchedPolicy::kFcfs}) {
           if (s == txn::TxnSchedPolicyName(policy)) {
             c.txn_sched = policy;
             return true;
           }
         }
         return false;
       },
       [](const Config& c) {
         return std::string(txn::TxnSchedPolicyName(c.txn_sched));
       }},
      DoubleFlag("trigger_probability", &Config::trigger_probability),
      DoubleFlag("x_trigger", &Config::x_trigger),
      DoubleFlag("buffer_hit_ratio", &Config::buffer_hit_ratio),
      DoubleFlag("io_seconds", &Config::io_seconds),
      IntFlag("history_depth", &Config::history_depth),
      IntFlag("n_attributes", &Config::n_attributes),
      BoolFlag("bursty_updates", &Config::bursty_updates),
      DoubleFlag("lambda_u_peak", &Config::lambda_u_peak),
      DoubleFlag("normal_dwell_seconds", &Config::normal_dwell_seconds),
      DoubleFlag("burst_dwell_seconds", &Config::burst_dwell_seconds),
      IntFlag("admission_limit", &Config::admission_limit),
      // Robustness (fault injection & graceful degradation)
      {"faults",
       [](const std::string& s, Config& c) {
         // Validate eagerly so a malformed spec fails at the flag with
         // a one-line error naming the bad token, not later at
         // Config::Validate.
         std::string fault_error;
         if (!fault::FaultSchedule::Parse(s, &fault_error).has_value()) {
           return false;
         }
         c.faults = s;
         return true;
       },
       [](const Config& c) { return c.faults; }},
      BoolFlag("shed_by_importance", &Config::shed_by_importance),
      BoolFlag("overload_governor", &Config::overload_governor),
      DoubleFlag("governor_high_watermark",
                 &Config::governor_high_watermark),
      DoubleFlag("governor_low_watermark",
                 &Config::governor_low_watermark),
      DoubleFlag("governor_stale_threshold",
                 &Config::governor_stale_threshold),
  };
  return flags;
}

}  // namespace

std::optional<std::string> ApplyConfigFlag(const std::string& assignment,
                                           core::Config& config) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string::npos) {
    return "expected name=value, got: " + assignment;
  }
  const std::string name = assignment.substr(0, eq);
  const std::string value = assignment.substr(eq + 1);
  for (const FlagDef& flag : Flags()) {
    if (name == flag.name) {
      if (!flag.parse(value, config)) {
        return "bad value for " + name + ": " + value;
      }
      return std::nullopt;
    }
  }
  return "unknown parameter: " + name;
}

std::optional<std::string> ApplyConfigFlags(
    int argc, char** argv, core::Config& config,
    std::vector<std::string>* unconsumed) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (unconsumed != nullptr) unconsumed->push_back(arg);
      continue;
    }
    const std::string assignment = arg.substr(2);
    const std::optional<std::string> error =
        ApplyConfigFlag(assignment, config);
    if (!error.has_value()) continue;
    if (error->rfind("unknown parameter", 0) == 0 ||
        error->rfind("expected name=value", 0) == 0) {
      if (unconsumed != nullptr) unconsumed->push_back(arg);
      continue;
    }
    return error;  // known parameter, bad value
  }
  return std::nullopt;
}

std::vector<std::string> ConfigFlagNames() {
  std::vector<std::string> names;
  names.reserve(Flags().size());
  for (const FlagDef& flag : Flags()) names.emplace_back(flag.name);
  return names;
}

std::string ConfigToString(const core::Config& config) {
  std::ostringstream out;
  for (const FlagDef& flag : Flags()) {
    out << flag.name << "=" << flag.render(config) << "\n";
  }
  return out.str();
}

}  // namespace strip::exp
