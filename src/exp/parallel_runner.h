// A worker-pool runner for embarrassingly-parallel experiment grids.
//
// The sweep machinery (exp/experiment.h) runs one single-threaded
// Simulation per grid cell; cells are independent, so a sweep is a
// textbook worker-pool problem. ParallelRunner owns that shape: a
// fixed pool of worker threads (one per hardware core by default,
// optionally pinned worker-to-core — the mx::system::cpu idiom) pulls
// task indexes off a shared atomic counter until the grid is drained.
//
// Determinism contract: the runner never reorders *results*. Tasks
// receive their grid index and write into pre-sized, index-addressed
// storage, so the merged result — and any file a task writes under
// Serialized() — is byte-identical regardless of the job count or the
// order in which workers happen to finish. Anything that must not
// interleave across workers (cell-file writes, the progress line)
// goes through Serialized(), a single mutex shared by all workers of
// one runner.
//
// Example:
//   ParallelRunner runner({.jobs = 8, .pin_cores = true});
//   std::vector<Result> results(grid.size());       // index-addressed
//   runner.Run(grid.size(), [&](std::size_t i) {
//     results[i] = RunCell(grid[i]);
//     runner.Serialized([&] { PersistCell(i, results[i]); });
//   });

#ifndef STRIP_EXP_PARALLEL_RUNNER_H_
#define STRIP_EXP_PARALLEL_RUNNER_H_

#include <cstddef>
#include <functional>
#include <mutex>

namespace strip::exp {

// How a runner spreads work across the machine.
struct ParallelOptions {
  // Worker threads; 0 means one per hardware core.
  int jobs = 0;
  // Pin worker i to core i (mod core count). Linux-only; silently a
  // no-op on other platforms and a one-line warning when the kernel
  // rejects the affinity call.
  bool pin_cores = false;
};

class ParallelRunner {
 public:
  // A unit of work; receives its grid index. Tasks run concurrently on
  // worker threads and must not share mutable state except through
  // Serialized() or their own index-addressed slots.
  using Task = std::function<void(std::size_t index)>;

  explicit ParallelRunner(const ParallelOptions& options);

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  // Executes task(0) .. task(count - 1) across the pool and blocks
  // until every task has returned. The pool size is
  // min(jobs(), count); count == 0 returns immediately. With
  // jobs() == 1 the tasks run in index order on one worker — the
  // sequential baseline parallel runs must byte-match.
  void Run(std::size_t count, const Task& task);

  // Runs fn under the runner's serialization mutex. Use for any side
  // effect that must not interleave across workers: durable cell
  // writes, progress reporting. Callable from inside tasks only.
  void Serialized(const std::function<void()>& fn);

  // The resolved worker count (options.jobs, or the hardware core
  // count when that was 0).
  int jobs() const { return jobs_; }
  bool pin_cores() const { return options_.pin_cores; }

  // One worker per hardware core; falls back to 4 when the hardware
  // concurrency is unknown.
  static int HardwareJobs();

  // Pins the calling thread to `core` (mod the core count). Returns
  // false when pinning is unsupported or rejected; the caller keeps
  // running unpinned.
  static bool PinCurrentThreadToCore(int core);

 private:
  ParallelOptions options_;
  int jobs_;
  std::mutex serial_mutex_;
};

}  // namespace strip::exp

#endif  // STRIP_EXP_PARALLEL_RUNNER_H_
