#include "txn/transaction.h"

#include <limits>

#include "base/check.h"

namespace strip::txn {

const char* TxnClassName(TxnClass cls) {
  return cls == TxnClass::kLowValue ? "low" : "high";
}

const char* TxnOutcomeName(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kPending:
      return "pending";
    case TxnOutcome::kCommitted:
      return "committed";
    case TxnOutcome::kMissedDeadline:
      return "missed-deadline";
    case TxnOutcome::kInfeasible:
      return "infeasible";
    case TxnOutcome::kStaleAbort:
      return "stale-abort";
    case TxnOutcome::kOverloadDrop:
      return "overload-drop";
    case TxnOutcome::kRemoteUnavailable:
      return "remote-unavailable";
  }
  return "?";
}

Transaction::Transaction(const Params& params)
    : id_(params.id),
      cls_(params.cls),
      value_(params.value),
      arrival_time_(params.arrival_time),
      deadline_(params.deadline),
      lookup_instructions_(params.lookup_instructions),
      read_set_(params.read_set),
      read_owners_(params.read_owners) {
  STRIP_CHECK_MSG(
      read_owners_.empty() || read_owners_.size() == read_set_.size(),
      "read_owners must be empty or parallel to read_set");
  STRIP_CHECK_MSG(params.computation_instructions >= 0,
                  "negative computation");
  STRIP_CHECK_MSG(params.p_view >= 0 && params.p_view <= 1,
                  "p_view outside [0, 1]");
  STRIP_CHECK_MSG(params.lookup_instructions >= 0, "negative lookup cost");
  work1_remaining_ = params.p_view * params.computation_instructions;
  work2_remaining_ = params.computation_instructions - work1_remaining_;
  total_base_instructions_ =
      params.computation_instructions +
      lookup_instructions_ * static_cast<double>(read_set_.size());
  if (!read_set_.empty()) read_remaining_ = lookup_instructions_;
  SkipEmptyPhases();
}

void Transaction::SkipEmptyPhases() {
  if (phase_ == Phase::kWork1 && work1_remaining_ <= 0) {
    phase_ = read_set_.empty() ? Phase::kWork2 : Phase::kReads;
  }
  if (phase_ == Phase::kReads && next_read_ >= static_cast<int>(read_set_.size())) {
    phase_ = Phase::kWork2;
  }
  if (phase_ == Phase::kWork2 && work2_remaining_ <= 0) {
    phase_ = Phase::kDone;
  }
}

Transaction::NextStep Transaction::next_step() const {
  if (!extra_steps_.empty()) return extra_steps_.front();
  NextStep step;
  switch (phase_) {
    case Phase::kWork1:
      step.kind = NextStep::Kind::kCompute;
      step.instructions = work1_remaining_;
      break;
    case Phase::kReads:
      step.kind = NextStep::Kind::kViewRead;
      step.instructions = read_remaining_;
      step.object = read_set_[next_read_];
      if (!read_owners_.empty()) step.owner_shard = read_owners_[next_read_];
      break;
    case Phase::kWork2:
      step.kind = NextStep::Kind::kCompute;
      step.instructions = work2_remaining_;
      break;
    case Phase::kDone:
      step.kind = NextStep::Kind::kDone;
      step.instructions = 0;
      break;
  }
  return step;
}

void Transaction::ChargePartial(double instructions) {
  STRIP_CHECK_MSG(instructions >= 0, "negative partial charge");
  if (!extra_steps_.empty()) {
    extra_steps_.front().instructions -= instructions;
    STRIP_CHECK_MSG(extra_steps_.front().instructions >= -1e-6,
                    "extra step overdrawn");
    if (extra_steps_.front().instructions < 0) {
      extra_steps_.front().instructions = 0;
    }
    return;
  }
  switch (phase_) {
    case Phase::kWork1:
      work1_remaining_ -= instructions;
      STRIP_CHECK_MSG(work1_remaining_ >= -1e-6, "work1 overdrawn");
      if (work1_remaining_ < 0) work1_remaining_ = 0;
      break;
    case Phase::kReads:
      read_remaining_ -= instructions;
      STRIP_CHECK_MSG(read_remaining_ >= -1e-6, "read overdrawn");
      if (read_remaining_ < 0) read_remaining_ = 0;
      break;
    case Phase::kWork2:
      work2_remaining_ -= instructions;
      STRIP_CHECK_MSG(work2_remaining_ >= -1e-6, "work2 overdrawn");
      if (work2_remaining_ < 0) work2_remaining_ = 0;
      break;
    case Phase::kDone:
      STRIP_CHECK_MSG(instructions <= 1e-6, "charging a finished txn");
      break;
  }
}

void Transaction::CompleteStep() {
  if (!extra_steps_.empty()) {
    extra_steps_.pop_front();
    return;
  }
  switch (phase_) {
    case Phase::kWork1:
      work1_remaining_ = 0;
      phase_ = read_set_.empty() ? Phase::kWork2 : Phase::kReads;
      break;
    case Phase::kReads:
      ++next_read_;
      if (next_read_ < static_cast<int>(read_set_.size())) {
        read_remaining_ = lookup_instructions_;
      } else {
        phase_ = Phase::kWork2;
      }
      break;
    case Phase::kWork2:
      work2_remaining_ = 0;
      phase_ = Phase::kDone;
      break;
    case Phase::kDone:
      STRIP_CHECK_MSG(false, "CompleteStep on a finished transaction");
      break;
  }
  SkipEmptyPhases();
}

void Transaction::PushExtraStep(NextStep step) {
  STRIP_CHECK_MSG(step.kind == NextStep::Kind::kOdScan ||
                      step.kind == NextStep::Kind::kOdApply,
                  "only OD steps may be injected");
  STRIP_CHECK_MSG(step.instructions >= 0, "negative extra step");
  extra_steps_.push_back(step);
}

double Transaction::remaining_base_instructions() const {
  double remaining = work1_remaining_ + work2_remaining_;
  if (phase_ == Phase::kReads) {
    remaining += read_remaining_;
    const int reads_left =
        static_cast<int>(read_set_.size()) - next_read_ - 1;
    remaining += lookup_instructions_ * static_cast<double>(reads_left);
  } else if (phase_ == Phase::kWork1) {
    remaining +=
        lookup_instructions_ * static_cast<double>(read_set_.size());
  }
  return remaining;
}

double Transaction::ValueDensity(double ips) const {
  const double remaining = RemainingSeconds(ips);
  if (remaining <= 0) return std::numeric_limits<double>::infinity();
  return value_ / remaining;
}

bool Transaction::finished() const {
  return phase_ == Phase::kDone && extra_steps_.empty();
}

}  // namespace strip::txn
