// The set of transactions waiting for the CPU.
//
// The paper schedules transactions by *value density* — value divided
// by remaining processing time (Section 3.4) — and, under the feasible-
// deadline policy, screens out transactions that can no longer meet
// their deadline so no further CPU is wasted on them.
//
// A waiting transaction's value density is constant (its remaining
// work does not shrink while it waits), so an ordered structure buys
// little; the queue is a small vector with linear selection, which is
// simple, allows O(1) removal by identity, and is exact.

#ifndef STRIP_TXN_READY_QUEUE_H_
#define STRIP_TXN_READY_QUEUE_H_

#include <cstddef>
#include <vector>

#include "sim/sim_time.h"
#include "txn/transaction.h"

namespace strip::txn {

// How the next transaction is chosen from the ready queue. The paper
// fixes value density (Section 3.4); earliest-deadline-first and
// first-come-first-served are the classic alternatives, provided for
// comparison (see bench/abl_txn_sched).
enum class TxnSchedPolicy {
  kValueDensity = 0,   // max value / remaining processing time
  kEarliestDeadline,   // min deadline
  kFcfs,               // min arrival time
};

// Printable name ("VD" / "EDF" / "FCFS").
const char* TxnSchedPolicyName(TxnSchedPolicy policy);

// True if `a` should run before `b` under `policy` (strictly higher
// priority; ties are NOT higher).
bool HigherPriority(const Transaction& a, const Transaction& b,
                    TxnSchedPolicy policy, double ips);

class ReadyQueue {
 public:
  // Adds a transaction. The queue does not own it.
  void Add(Transaction* transaction);

  // Removes a specific transaction (e.g., its deadline fired while it
  // waited). Returns true if it was present.
  bool Remove(const Transaction* transaction);

  // Removes and returns every waiting transaction that cannot meet its
  // deadline even if run immediately and uninterrupted from `now`.
  // Callers abort these (the feasible-deadline policy).
  std::vector<Transaction*> ExtractInfeasible(sim::Time now, double ips);

  // Highest-priority waiting transaction under `policy`, or nullptr if
  // empty. Ties break toward the lowest id for determinism.
  Transaction* PeekBest(double ips, TxnSchedPolicy policy =
                                        TxnSchedPolicy::kValueDensity) const;

  // Removes and returns the best transaction (nullptr if empty).
  Transaction* PopBest(double ips, TxnSchedPolicy policy =
                                       TxnSchedPolicy::kValueDensity);

  std::size_t size() const { return waiting_.size(); }
  bool empty() const { return waiting_.empty(); }

  // The raw waiting set (unspecified order); for metrics/inspection.
  const std::vector<Transaction*>& waiting() const { return waiting_; }

 private:
  std::vector<Transaction*> waiting_;
};

}  // namespace strip::txn

#endif  // STRIP_TXN_READY_QUEUE_H_
