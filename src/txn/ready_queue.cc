#include "txn/ready_queue.h"

#include <algorithm>

#include "base/check.h"

namespace strip::txn {

const char* TxnSchedPolicyName(TxnSchedPolicy policy) {
  switch (policy) {
    case TxnSchedPolicy::kValueDensity:
      return "VD";
    case TxnSchedPolicy::kEarliestDeadline:
      return "EDF";
    case TxnSchedPolicy::kFcfs:
      return "FCFS";
  }
  return "?";
}

bool HigherPriority(const Transaction& a, const Transaction& b,
                    TxnSchedPolicy policy, double ips) {
  switch (policy) {
    case TxnSchedPolicy::kValueDensity:
      return a.ValueDensity(ips) > b.ValueDensity(ips);
    case TxnSchedPolicy::kEarliestDeadline:
      return a.deadline() < b.deadline();
    case TxnSchedPolicy::kFcfs:
      return a.arrival_time() < b.arrival_time();
  }
  return false;
}

void ReadyQueue::Add(Transaction* transaction) {
  STRIP_CHECK(transaction != nullptr);
  waiting_.push_back(transaction);
}

bool ReadyQueue::Remove(const Transaction* transaction) {
  auto it = std::find(waiting_.begin(), waiting_.end(), transaction);
  if (it == waiting_.end()) return false;
  waiting_.erase(it);
  return true;
}

std::vector<Transaction*> ReadyQueue::ExtractInfeasible(sim::Time now,
                                                        double ips) {
  std::vector<Transaction*> infeasible;
  auto split =
      std::stable_partition(waiting_.begin(), waiting_.end(),
                            [now, ips](const Transaction* t) {
                              return t->FeasibleAt(now, ips);
                            });
  infeasible.assign(split, waiting_.end());
  waiting_.erase(split, waiting_.end());
  return infeasible;
}

Transaction* ReadyQueue::PeekBest(double ips, TxnSchedPolicy policy) const {
  Transaction* best = nullptr;
  for (Transaction* t : waiting_) {
    if (best == nullptr || HigherPriority(*t, *best, policy, ips) ||
        (!HigherPriority(*best, *t, policy, ips) && t->id() < best->id())) {
      best = t;
    }
  }
  return best;
}

Transaction* ReadyQueue::PopBest(double ips, TxnSchedPolicy policy) {
  Transaction* best = PeekBest(ips, policy);
  if (best != nullptr) {
    const bool removed = Remove(best);
    STRIP_CHECK(removed);
  }
  return best;
}

}  // namespace strip::txn
