// A firm-deadline, valued transaction and its execution state machine.
//
// The paper's transaction model (Section 3.4): a transaction arrives,
// does a fraction p_view of its computation, reads its view objects
// (checking staleness at each read), does the rest of its computation,
// and commits — all before a firm deadline, after which it is worthless
// and is aborted. Each view read costs x_lookup instructions; general
// data access is folded into the computation time.
//
// The transaction exposes its execution as a sequence of CPU steps
// (NextStep). The controller runs the current step on the simulated
// CPU, possibly preempting it (ChargePartial), and advances the machine
// at step boundaries (CompleteStep). The On Demand policy injects extra
// steps — update-queue scans and on-demand installs — via PushExtraStep;
// those are *not* part of the base plan, so value-density and
// feasibility estimates (which the paper assumes are perfect for the
// base plan but cannot foresee OD work) ignore them.

#ifndef STRIP_TXN_TRANSACTION_H_
#define STRIP_TXN_TRANSACTION_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "base/strong_types.h"
#include "db/object.h"
#include "sim/sim_time.h"

namespace strip::txn {

// Value class of a transaction (Section 3.4). Low-value transactions
// read the low-importance view partition; high-value transactions read
// the high-importance partition.
enum class TxnClass {
  kLowValue = 0,
  kHighValue = 1,
};

// Printable name ("low" / "high").
const char* TxnClassName(TxnClass cls);

// Terminal state of a transaction.
enum class TxnOutcome {
  kPending = 0,      // still in the system
  kCommitted,        // completed before its deadline
  kMissedDeadline,   // firm deadline fired mid-flight
  kInfeasible,       // screened out: could not possibly meet deadline
  kStaleAbort,       // aborted on reading stale data (abort-on-stale)
  kOverloadDrop,     // never admitted (reserved for extensions)
  kRemoteUnavailable,  // cross-shard read timed out through its whole
                       // retry budget under --remote_fallback=abort
};

const char* TxnOutcomeName(TxnOutcome outcome);

class Transaction {
 public:
  // One unit of CPU work the transaction wants to run next.
  struct NextStep {
    enum class Kind {
      kCompute,   // part of work1 / work2
      kViewRead,  // one view-object read (staleness checked on finish)
      kOdScan,    // On Demand: scan of the update queue (extra step)
      kOdApply,   // On Demand: install of a found update (extra step)
      kDone,      // nothing left: ready to commit
    };
    Kind kind = Kind::kDone;
    double instructions = 0;
    // The object being read / freshened (kViewRead, kOdScan, kOdApply).
    db::ObjectId object;
    // Shard owning the object of a kViewRead (sharded model), or
    // base::kNoShard when every read is local (the uniprocessor model).
    base::ShardId owner_shard = base::kNoShard;
  };

  struct Params {
    base::TxnId id{};
    TxnClass cls = TxnClass::kLowValue;
    double value = 0;
    sim::Time arrival_time = 0;
    sim::Time deadline = 0;
    // Total computation instructions (work1 + work2).
    double computation_instructions = 0;
    // Fraction of computation done before the view reads (p_view).
    double p_view = 0;
    // Instructions per view read (x_lookup).
    double lookup_instructions = 0;
    // View objects to read, in order. In a sharded cluster these are
    // *owner-local* ids (core/placement routing happens before the
    // transaction is built).
    std::vector<db::ObjectId> read_set;
    // Owner shard per read (parallel to read_set). Empty means every
    // read is local to the executing shard — the uniprocessor model
    // and the common case.
    std::vector<base::ShardId> read_owners;
  };

  explicit Transaction(const Params& params);

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  // --- identity & shape -------------------------------------------------

  base::TxnId id() const { return id_; }
  TxnClass cls() const { return cls_; }
  double value() const { return value_; }
  sim::Time arrival_time() const { return arrival_time_; }
  sim::Time deadline() const { return deadline_; }
  const std::vector<db::ObjectId>& read_set() const { return read_set_; }

  // Base-plan execution time in seconds on a CPU of speed `ips`
  // (perfect estimate, excluding any On Demand extras).
  sim::Duration TotalSeconds(double ips) const {
    return sim::InstructionsToSeconds(total_base_instructions_, ips);
  }

  // --- execution --------------------------------------------------------

  // The step that should run next. kind == kDone when nothing remains.
  NextStep next_step() const;

  // Deducts `instructions` from the current step (preemption support).
  void ChargePartial(double instructions);

  // Marks the current step finished and advances the machine.
  void CompleteStep();

  // Injects an extra step (OD scan / OD install) to run *before* the
  // base plan resumes. kViewRead and kCompute are not allowed here.
  void PushExtraStep(NextStep step);

  // Remaining base-plan instructions (extras excluded).
  double remaining_base_instructions() const;

  // Remaining base-plan time in seconds.
  sim::Duration RemainingSeconds(double ips) const {
    return sim::InstructionsToSeconds(remaining_base_instructions(), ips);
  }

  // The paper's scheduling priority: value / remaining processing time.
  // A finished transaction has infinite density (it should commit at
  // once).
  double ValueDensity(double ips) const;

  // Could the transaction still commit by its deadline if it ran
  // uninterrupted from `now`?
  bool FeasibleAt(sim::Time now, double ips) const {
    return now + RemainingSeconds(ips) <= deadline_;
  }

  bool finished() const;

  // --- staleness bookkeeping ---------------------------------------------

  // Records that a view read returned stale data.
  void MarkStaleRead() { stale_reads_ += 1; }
  std::uint64_t stale_reads() const { return stale_reads_; }
  bool read_stale_data() const { return stale_reads_ > 0; }

  // --- outcome ------------------------------------------------------------

  TxnOutcome outcome() const { return outcome_; }
  void set_outcome(TxnOutcome outcome) { outcome_ = outcome; }
  sim::Time completion_time() const { return completion_time_; }
  void set_completion_time(sim::Time t) { completion_time_ = t; }

 private:
  enum class Phase { kWork1, kReads, kWork2, kDone };

  // Moves past phases that have no work left.
  void SkipEmptyPhases();

  base::TxnId id_;
  TxnClass cls_;
  double value_;
  sim::Time arrival_time_;
  sim::Time deadline_;
  double lookup_instructions_;
  std::vector<db::ObjectId> read_set_;
  std::vector<base::ShardId> read_owners_;

  double total_base_instructions_;
  Phase phase_ = Phase::kWork1;
  double work1_remaining_;
  double work2_remaining_;
  int next_read_ = 0;
  double read_remaining_ = 0;

  std::deque<NextStep> extra_steps_;

  std::uint64_t stale_reads_ = 0;
  TxnOutcome outcome_ = TxnOutcome::kPending;
  sim::Time completion_time_ = 0;
};

}  // namespace strip::txn

#endif  // STRIP_TXN_TRANSACTION_H_
