// The inbound update stream (Section 5.1).
//
// Updates arrive as a Poisson process with rate lambda_u. Each update
// targets the low-importance partition with probability p_ul (else the
// high-importance one), picks its object uniformly within the
// partition, and arrives pre-aged: its generation timestamp lags its
// arrival by an exponential network delay with mean a_update.
//
// As an extension, the stream also supports the *periodic* update
// pattern from Section 2 (every object refreshed on a fixed period,
// with phases spread uniformly), which the paper lists as future work.

#ifndef STRIP_WORKLOAD_UPDATE_STREAM_H_
#define STRIP_WORKLOAD_UPDATE_STREAM_H_

#include <cstdint>
#include <functional>

#include "base/strong_types.h"
#include "db/update.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace strip::workload {

class UpdateStream {
 public:
  struct Params {
    // Poisson arrival rate, updates/second (lambda_u).
    double arrival_rate = 400.0;
    // Probability an update targets the low-importance partition (p_ul).
    double p_low = 0.5;
    // Mean pre-arrival (network) age in seconds (a_update).
    double mean_age = 0.1;
    // Partition sizes (N_l, N_h).
    int n_low = 500;
    int n_high = 500;
    // Extension: if true, arrivals are periodic instead of Poisson —
    // every object is refreshed once per (n_low + n_high) /
    // arrival_rate seconds, round-robin, phases offset by one
    // interarrival gap.
    bool periodic = false;
    // Extension: with more than one attribute per object, each update
    // is *partial* — it refreshes one attribute, chosen uniformly.
    int n_attributes = 1;
    // Extension: bursty feed. The paper motivates with a market feed
    // that peaks at 500 updates/second; with `bursty` set the stream
    // alternates between `arrival_rate` (normal) and `burst_rate`
    // (peak), dwelling in each phase for an exponentially distributed
    // time (means `normal_dwell` / `burst_dwell` seconds).
    bool bursty = false;
    double burst_rate = 500.0;
    double normal_dwell = 20.0;
    double burst_dwell = 5.0;
  };

  // The sink receives each update at its arrival time.
  using Sink = std::function<void(const db::Update&)>;

  // Begins generating arrivals on `simulator` immediately. Both
  // `simulator` and the sink must outlive the stream.
  UpdateStream(sim::Simulator* simulator, const Params& params,
               base::RngSeed seed, Sink sink);

  UpdateStream(const UpdateStream&) = delete;
  UpdateStream& operator=(const UpdateStream&) = delete;

  // Stops generating further arrivals.
  void Stop();

  // Multiplies the arrival rate by `factor` from now on (fault
  // injection: burst windows). The pending interarrival gap is
  // redrawn at the new rate — exact for Poisson arrivals by the
  // memoryless property; for periodic streams the next gap simply
  // shrinks or stretches. factor = 1 restores the configured rate.
  void SetRateFactor(double factor);

  // Number of updates generated so far.
  std::uint64_t generated() const { return generated_; }

  // Whether the stream is currently in its burst phase.
  bool in_burst() const { return in_burst_; }

  double rate_factor() const { return rate_factor_; }

 private:
  void ScheduleNext();
  void EmitOne();
  void SchedulePhaseToggle();
  double CurrentRate() const {
    return rate_factor_ *
           (in_burst_ ? params_.burst_rate : params_.arrival_rate);
  }

  sim::Simulator* simulator_;
  Params params_;
  sim::RandomStream random_;
  Sink sink_;
  std::uint64_t generated_ = 0;
  int next_periodic_object_ = 0;
  bool stopped_ = false;
  bool in_burst_ = false;
  double rate_factor_ = 1.0;
  sim::EventQueue::Handle next_arrival_;
  sim::EventQueue::Handle next_phase_toggle_;
};

}  // namespace strip::workload

#endif  // STRIP_WORKLOAD_UPDATE_STREAM_H_
