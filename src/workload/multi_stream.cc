#include "workload/multi_stream.h"

#include <utility>

#include "base/check.h"
#include "sim/random.h"

namespace strip::workload {

MultiUpdateStream::MultiUpdateStream(sim::Simulator* simulator,
                                     std::vector<Feed> feeds,
                                     base::RngSeed seed,
                                     UpdateStream::Sink sink) {
  STRIP_CHECK(simulator != nullptr);
  STRIP_CHECK(sink != nullptr);
  STRIP_CHECK_MSG(!feeds.empty(), "need at least one feed");
  sim::RandomStream master(seed);
  streams_.reserve(feeds.size());
  for (const Feed& feed : feeds) {
    STRIP_CHECK_MSG(feed.low_offset >= 0 && feed.high_offset >= 0,
                    "feed offsets must be non-negative");
    const int low_offset = feed.low_offset;
    const int high_offset = feed.high_offset;
    streams_.push_back(std::make_unique<UpdateStream>(
        simulator, feed.params, master.Fork(),
        [this, sink, low_offset, high_offset](const db::Update& update) {
          db::Update remapped = update;
          remapped.id = base::UpdateId(++next_id_);  // unique across feeds
          remapped.object.index +=
              update.object.cls == db::ObjectClass::kLowImportance
                  ? low_offset
                  : high_offset;
          ++generated_;
          sink(remapped);
        }));
  }
}

void MultiUpdateStream::Stop() {
  for (auto& stream : streams_) stream->Stop();
}

}  // namespace strip::workload
