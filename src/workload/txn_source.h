// The transaction workload generator (Section 5.2).
//
// Transactions arrive as a Poisson process with rate lambda_t. Each is
// low-value with probability p_tl (else high-value); its value is
// normal with class-specific mean/sd; its computation time is normal
// (mean x_bar, sd sigma_x); it reads a normally distributed number of
// view objects drawn uniformly (with replacement) from its class's
// partition; and its firm deadline is arrival + perfect execution
// estimate + a slack uniform on [s_min, s_max].

#ifndef STRIP_WORKLOAD_TXN_SOURCE_H_
#define STRIP_WORKLOAD_TXN_SOURCE_H_

#include <cstdint>
#include <functional>

#include "base/strong_types.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "txn/transaction.h"

namespace strip::workload {

class TxnSource {
 public:
  struct Params {
    // Poisson arrival rate, transactions/second (lambda_t).
    double arrival_rate = 10.0;
    // Probability a transaction is low-value (p_tl).
    double p_low = 0.5;
    // Slack range in seconds (S_min, S_max).
    double slack_min = 0.1;
    double slack_max = 1.0;
    // Value distributions per class.
    double value_mean_low = 1.0;
    double value_mean_high = 2.0;
    double value_sd_low = 0.5;
    double value_sd_high = 0.5;
    // View reads per transaction: Normal(reads_mean, reads_sd),
    // rounded, clamped at 0.
    double reads_mean = 2.0;
    double reads_sd = 1.0;
    // Computation time in seconds: Normal(comp_mean, comp_sd),
    // clamped at 0.
    double comp_mean = 0.12;
    double comp_sd = 0.01;
    // Fraction of computation done before the view reads (p_view).
    double p_view = 0.0;
    // Per-read lookup cost in instructions (x_lookup) and CPU speed
    // (ips), needed to build the transaction's plan and its perfect
    // execution estimate.
    double lookup_instructions = 4000;
    double ips = 50e6;
    // Partition sizes, for choosing read sets.
    int n_low = 500;
    int n_high = 500;
  };

  // The sink receives the parameters of each arriving transaction at
  // its arrival time (the sink constructs/owns the Transaction).
  using Sink = std::function<void(const txn::Transaction::Params&)>;

  TxnSource(sim::Simulator* simulator, const Params& params,
            base::RngSeed seed, Sink sink);

  TxnSource(const TxnSource&) = delete;
  TxnSource& operator=(const TxnSource&) = delete;

  // Stops generating further arrivals.
  void Stop();

  // Number of transactions generated so far.
  std::uint64_t generated() const { return generated_; }

 private:
  void ScheduleNext();
  void EmitOne();

  sim::Simulator* simulator_;
  Params params_;
  sim::RandomStream random_;
  Sink sink_;
  std::uint64_t generated_ = 0;
  bool stopped_ = false;
  sim::EventQueue::Handle next_arrival_;
};

}  // namespace strip::workload

#endif  // STRIP_WORKLOAD_TXN_SOURCE_H_
