// Replay of recorded workloads.
//
// The stochastic sources (update_stream.h, txn_source.h) generate the
// paper's synthetic loads; TraceReplay instead drives the system from
// an explicit record of arrivals — a captured feed, a regression
// fixture, or a hand-written corner case. Records are CSV lines:
//
//   update,<arrival>,<low|high>,<index>,<generation>,<value>
//   txn,<arrival>,<low|high>,<value>,<deadline>,<comp_instructions>,
//       <p_view>,<reads>
//
// where <reads> is a ';'-separated list of low:IDX / high:IDX entries
// (possibly empty). Lines starting with '#' and blank lines are
// ignored. Arrival times need not be sorted; replay orders them.

#ifndef STRIP_WORKLOAD_TRACE_REPLAY_H_
#define STRIP_WORKLOAD_TRACE_REPLAY_H_

#include <cstdint>
#include <functional>
#include <istream>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "db/update.h"
#include "sim/simulator.h"
#include "txn/transaction.h"

namespace strip::workload {

class TraceReplay {
 public:
  using Record = std::variant<db::Update, txn::Transaction::Params>;

  using UpdateSink = std::function<void(const db::Update&)>;
  using TxnSink = std::function<void(const txn::Transaction::Params&)>;

  // Parses a trace; on success fills `records` (ids assigned
  // sequentially per kind, in file order). Returns an error message —
  // with a line number — on malformed input.
  [[nodiscard]] static std::optional<std::string> Parse(
      std::istream& in, std::vector<Record>* records);

  // Parses one record line (no comment/blank handling).
  [[nodiscard]] static std::optional<std::string> ParseLine(
      const std::string& line, std::uint64_t next_update_id,
      std::uint64_t next_txn_id, Record* record);

  // Schedules every record on `simulator` at its arrival time,
  // dispatching to the sinks. Sinks and simulator must outlive replay
  // (i.e., the simulation run).
  TraceReplay(sim::Simulator* simulator, std::vector<Record> records,
              UpdateSink update_sink, TxnSink txn_sink);

  // Records scheduled.
  std::size_t size() const { return scheduled_; }

 private:
  std::size_t scheduled_ = 0;
};

// Renders a record as a trace line (the inverse of ParseLine), for
// writing fixtures.
std::string FormatTraceRecord(const TraceReplay::Record& record);

}  // namespace strip::workload

#endif  // STRIP_WORKLOAD_TRACE_REPLAY_H_
