// Several concurrent update feeds.
//
// The paper notes that "the update streams are provided by several
// commercial companies such as Reuters" (Section 1): real systems
// merge feeds with different rates, delivery delays, and coverage.
// MultiUpdateStream runs any number of UpdateStream sources into one
// sink, remapping each feed's object ids into a disjoint (or
// deliberately overlapping) window of the partitions so feeds can
// cover different slices of the database.
//
// Use with Config::external_workload: construct the System, then a
// MultiUpdateStream whose sink is System::InjectUpdate.

#ifndef STRIP_WORKLOAD_MULTI_STREAM_H_
#define STRIP_WORKLOAD_MULTI_STREAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "workload/update_stream.h"

namespace strip::workload {

class MultiUpdateStream {
 public:
  struct Feed {
    UpdateStream::Params params;
    // Offsets added to the feed's object indices, mapping the feed's
    // [0, n_low) x [0, n_high) coverage into the database's
    // partitions. The caller ensures offset + n stays within the
    // database's partition sizes.
    int low_offset = 0;
    int high_offset = 0;
  };

  // Starts every feed on `simulator`; update ids are made globally
  // unique across feeds. Seeds are forked per feed from `seed`.
  MultiUpdateStream(sim::Simulator* simulator, std::vector<Feed> feeds,
                    base::RngSeed seed, UpdateStream::Sink sink);

  MultiUpdateStream(const MultiUpdateStream&) = delete;
  MultiUpdateStream& operator=(const MultiUpdateStream&) = delete;

  // Stops every feed.
  void Stop();

  std::size_t feed_count() const { return streams_.size(); }

  // Updates emitted so far, across all feeds.
  std::uint64_t generated() const { return generated_; }

 private:
  std::vector<std::unique_ptr<UpdateStream>> streams_;
  std::uint64_t generated_ = 0;
  std::uint64_t next_id_ = 0;
};

}  // namespace strip::workload

#endif  // STRIP_WORKLOAD_MULTI_STREAM_H_
