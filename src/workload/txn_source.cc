#include "workload/txn_source.h"

#include <cmath>
#include <utility>

#include "base/check.h"

namespace strip::workload {

TxnSource::TxnSource(sim::Simulator* simulator, const Params& params,
                     base::RngSeed seed, Sink sink)
    : simulator_(simulator),
      params_(params),
      random_(seed),
      sink_(std::move(sink)) {
  STRIP_CHECK(simulator != nullptr);
  STRIP_CHECK(sink_ != nullptr);
  STRIP_CHECK_MSG(params_.arrival_rate > 0, "txn rate must be positive");
  STRIP_CHECK_MSG(params_.p_low >= 0 && params_.p_low <= 1,
                  "p_low outside [0, 1]");
  STRIP_CHECK_MSG(params_.slack_min <= params_.slack_max,
                  "slack bounds out of order");
  STRIP_CHECK_MSG(params_.ips > 0, "ips must be positive");
  STRIP_CHECK_MSG(params_.n_low > 0 && params_.n_high > 0,
                  "partitions must be non-empty");
  ScheduleNext();
}

void TxnSource::Stop() {
  stopped_ = true;
  simulator_->Cancel(next_arrival_);
}

void TxnSource::ScheduleNext() {
  if (stopped_) return;
  next_arrival_ = simulator_->ScheduleAfter(
      random_.PoissonInterarrival(params_.arrival_rate), [this] {
        EmitOne();
        ScheduleNext();
      });
}

void TxnSource::EmitOne() {
  txn::Transaction::Params t;
  t.id = base::TxnId(++generated_);
  t.arrival_time = simulator_->now();
  const bool low = random_.WithProbability(params_.p_low);
  t.cls = low ? txn::TxnClass::kLowValue : txn::TxnClass::kHighValue;
  t.value = random_.NormalAtLeast(
      low ? params_.value_mean_low : params_.value_mean_high,
      low ? params_.value_sd_low : params_.value_sd_high, 0.0);
  const double comp_seconds =
      random_.NormalAtLeast(params_.comp_mean, params_.comp_sd, 0.0);
  t.computation_instructions = comp_seconds * params_.ips;
  t.p_view = params_.p_view;
  t.lookup_instructions = params_.lookup_instructions;

  const int reads = static_cast<int>(std::lround(std::max(
      0.0, random_.Normal(params_.reads_mean, params_.reads_sd))));
  const int n = low ? params_.n_low : params_.n_high;
  const db::ObjectClass cls = low ? db::ObjectClass::kLowImportance
                                  : db::ObjectClass::kHighImportance;
  t.read_set.reserve(reads);
  for (int i = 0; i < reads; ++i) {
    t.read_set.push_back({cls, random_.UniformInt(0, n - 1)});
  }

  // Firm deadline: arrival + perfect execution estimate + slack.
  const double estimate_seconds =
      (t.computation_instructions +
       t.lookup_instructions * static_cast<double>(reads)) /
      params_.ips;
  const double slack =
      random_.Uniform(params_.slack_min, params_.slack_max);
  t.deadline = t.arrival_time + estimate_seconds + slack;

  sink_(t);
}

}  // namespace strip::workload
