#include "workload/update_stream.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace strip::workload {

UpdateStream::UpdateStream(sim::Simulator* simulator, const Params& params,
                           base::RngSeed seed, Sink sink)
    : simulator_(simulator),
      params_(params),
      random_(seed),
      sink_(std::move(sink)) {
  STRIP_CHECK(simulator != nullptr);
  STRIP_CHECK(sink_ != nullptr);
  STRIP_CHECK_MSG(params_.arrival_rate > 0, "update rate must be positive");
  STRIP_CHECK_MSG(params_.p_low >= 0 && params_.p_low <= 1,
                  "p_low outside [0, 1]");
  STRIP_CHECK_MSG(params_.n_low > 0 && params_.n_high > 0,
                  "partitions must be non-empty");
  if (params_.bursty) {
    STRIP_CHECK_MSG(params_.burst_rate > 0 && params_.normal_dwell > 0 &&
                        params_.burst_dwell > 0,
                    "burst parameters must be positive");
    STRIP_CHECK_MSG(!params_.periodic,
                    "bursty and periodic modes are exclusive");
    SchedulePhaseToggle();
  }
  ScheduleNext();
}

void UpdateStream::Stop() {
  stopped_ = true;
  simulator_->Cancel(next_arrival_);
  simulator_->Cancel(next_phase_toggle_);
}

void UpdateStream::SetRateFactor(double factor) {
  STRIP_CHECK_MSG(factor > 0, "rate factor must be positive");
  if (factor == rate_factor_) return;
  rate_factor_ = factor;
  if (stopped_) return;
  // Re-draw the pending gap at the new rate, as SchedulePhaseToggle
  // does — exact for Poisson arrivals by the memoryless property.
  simulator_->Cancel(next_arrival_);
  ScheduleNext();
}

void UpdateStream::ScheduleNext() {
  if (stopped_) return;
  const sim::Duration gap =
      params_.periodic ? 1.0 / (rate_factor_ * params_.arrival_rate)
                       : random_.PoissonInterarrival(CurrentRate());
  next_arrival_ = simulator_->ScheduleAfter(gap, [this] {
    EmitOne();
    ScheduleNext();
  });
}

void UpdateStream::SchedulePhaseToggle() {
  if (stopped_) return;
  const sim::Duration dwell = random_.Exponential(
      in_burst_ ? params_.burst_dwell : params_.normal_dwell);
  next_phase_toggle_ = simulator_->ScheduleAfter(dwell, [this] {
    in_burst_ = !in_burst_;
    // Re-draw the pending interarrival gap at the new rate. (The
    // memoryless property makes restarting from 'now' exact.)
    simulator_->Cancel(next_arrival_);
    ScheduleNext();
    SchedulePhaseToggle();
  });
}

void UpdateStream::EmitOne() {
  db::Update update;
  update.id = base::UpdateId(++generated_);
  update.arrival_time = simulator_->now();
  if (params_.periodic) {
    // Round-robin over the union of both partitions so each object is
    // refreshed once per full cycle.
    const int total = params_.n_low + params_.n_high;
    const int slot = next_periodic_object_;
    next_periodic_object_ = (next_periodic_object_ + 1) % total;
    if (slot < params_.n_low) {
      update.object = {db::ObjectClass::kLowImportance, slot};
    } else {
      update.object = {db::ObjectClass::kHighImportance,
                       slot - params_.n_low};
    }
  } else if (random_.WithProbability(params_.p_low)) {
    update.object = {db::ObjectClass::kLowImportance,
                     random_.UniformInt(0, params_.n_low - 1)};
  } else {
    update.object = {db::ObjectClass::kHighImportance,
                     random_.UniformInt(0, params_.n_high - 1)};
  }
  // The update aged in the network before reaching us. Ages are
  // exponential with mean a_update; the generation timestamp is
  // clamped at 0 (the start of simulated time) so the first instants
  // of a run cannot produce values "generated before the world began".
  if (params_.n_attributes > 1) {
    update.attribute = random_.UniformInt(0, params_.n_attributes - 1);
  }
  const sim::Duration age = random_.Exponential(params_.mean_age);
  update.generation_time = std::max(0.0, update.arrival_time - age);
  update.value = random_.Uniform(0.0, 1.0);
  sink_(update);
}

}  // namespace strip::workload
