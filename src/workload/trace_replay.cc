#include "workload/trace_replay.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "base/check.h"

namespace strip::workload {

namespace {

std::vector<std::string> SplitCommas(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

bool ParseClass(const std::string& s, db::ObjectClass* cls) {
  if (s == "low") {
    *cls = db::ObjectClass::kLowImportance;
    return true;
  }
  if (s == "high") {
    *cls = db::ObjectClass::kHighImportance;
    return true;
  }
  return false;
}

bool ParseNumber(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

bool ParseReads(const std::string& s, std::vector<db::ObjectId>* reads) {
  if (s.empty()) return true;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t semi = s.find(';', start);
    if (semi == std::string::npos) semi = s.size();
    const std::string entry = s.substr(start, semi - start);
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) return false;
    db::ObjectClass cls;
    if (!ParseClass(entry.substr(0, colon), &cls)) return false;
    double index;
    if (!ParseNumber(entry.substr(colon + 1), &index)) return false;
    reads->push_back({cls, static_cast<int>(index)});
    start = semi + 1;
  }
  return true;
}

}  // namespace

std::optional<std::string> TraceReplay::ParseLine(
    const std::string& line, std::uint64_t next_update_id,
    std::uint64_t next_txn_id, Record* record) {
  const std::vector<std::string> fields = SplitCommas(line);
  if (fields.empty()) return "empty record";
  if (fields[0] == "update") {
    if (fields.size() != 6) return "update record needs 6 fields";
    db::Update update;
    update.id = base::UpdateId(next_update_id);
    double arrival, index, generation, value;
    if (!ParseNumber(fields[1], &arrival) ||
        !ParseClass(fields[2], &update.object.cls) ||
        !ParseNumber(fields[3], &index) ||
        !ParseNumber(fields[4], &generation) ||
        !ParseNumber(fields[5], &value)) {
      return "bad update field";
    }
    update.arrival_time = arrival;
    update.object.index = static_cast<int>(index);
    update.generation_time = generation;
    update.value = value;
    *record = update;
    return std::nullopt;
  }
  if (fields[0] == "txn") {
    if (fields.size() != 8) return "txn record needs 8 fields";
    txn::Transaction::Params params;
    params.id = base::TxnId(next_txn_id);
    double arrival, value, deadline, comp, p_view;
    db::ObjectClass cls;
    if (!ParseNumber(fields[1], &arrival) || !ParseClass(fields[2], &cls) ||
        !ParseNumber(fields[3], &value) ||
        !ParseNumber(fields[4], &deadline) ||
        !ParseNumber(fields[5], &comp) ||
        !ParseNumber(fields[6], &p_view) ||
        !ParseReads(fields[7], &params.read_set)) {
      return "bad txn field";
    }
    params.arrival_time = arrival;
    params.cls = cls == db::ObjectClass::kLowImportance
                     ? txn::TxnClass::kLowValue
                     : txn::TxnClass::kHighValue;
    params.value = value;
    params.deadline = deadline;
    params.computation_instructions = comp;
    params.p_view = p_view;
    *record = params;
    return std::nullopt;
  }
  return "unknown record kind: " + fields[0];
}

std::optional<std::string> TraceReplay::Parse(std::istream& in,
                                              std::vector<Record>* records) {
  STRIP_CHECK(records != nullptr);
  std::string line;
  int line_number = 0;
  std::uint64_t next_update_id = 1;
  std::uint64_t next_txn_id = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    Record record;
    const std::optional<std::string> error =
        ParseLine(line, next_update_id, next_txn_id, &record);
    if (error.has_value()) {
      return "line " + std::to_string(line_number) + ": " + *error;
    }
    if (std::holds_alternative<db::Update>(record)) {
      ++next_update_id;
    } else {
      ++next_txn_id;
    }
    records->push_back(std::move(record));
  }
  return std::nullopt;
}

TraceReplay::TraceReplay(sim::Simulator* simulator,
                         std::vector<Record> records,
                         UpdateSink update_sink, TxnSink txn_sink) {
  STRIP_CHECK(simulator != nullptr);
  STRIP_CHECK(update_sink != nullptr);
  STRIP_CHECK(txn_sink != nullptr);
  for (Record& record : records) {
    if (const auto* update = std::get_if<db::Update>(&record)) {
      simulator->ScheduleAt(update->arrival_time,
                            [update_sink, u = *update] { update_sink(u); });
    } else {
      const auto& params = std::get<txn::Transaction::Params>(record);
      simulator->ScheduleAt(params.arrival_time,
                            [txn_sink, params] { txn_sink(params); });
    }
    ++scheduled_;
  }
}

std::string FormatTraceRecord(const TraceReplay::Record& record) {
  std::ostringstream out;
  if (const auto* update = std::get_if<db::Update>(&record)) {
    out << "update," << update->arrival_time << ","
        << db::ObjectClassName(update->object.cls) << ","
        << update->object.index << "," << update->generation_time << ","
        << update->value;
    return out.str();
  }
  const auto& params = std::get<txn::Transaction::Params>(record);
  out << "txn," << params.arrival_time << ","
      << (params.cls == txn::TxnClass::kLowValue ? "low" : "high") << ","
      << params.value << "," << params.deadline << ","
      << params.computation_instructions << "," << params.p_view << ",";
  for (std::size_t i = 0; i < params.read_set.size(); ++i) {
    if (i > 0) out << ";";
    out << db::ObjectClassName(params.read_set[i].cls) << ":"
        << params.read_set[i].index;
  }
  return out.str();
}

}  // namespace strip::workload
