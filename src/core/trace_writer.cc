#include "core/trace_writer.h"

#include "base/check.h"

namespace strip::core {

const char* DropReasonName(SystemObserver::DropReason reason) {
  switch (reason) {
    case SystemObserver::DropReason::kOsQueueFull:
      return "os-full";
    case SystemObserver::DropReason::kQueueOverflow:
      return "queue-overflow";
    case SystemObserver::DropReason::kExpired:
      return "expired";
    case SystemObserver::DropReason::kUnworthy:
      return "unworthy";
    case SystemObserver::DropReason::kSuperseded:
      return "superseded";
  }
  return "?";
}

const char* PhaseName(SystemObserver::Phase phase) {
  switch (phase) {
    case SystemObserver::Phase::kWarmupEnd:
      return "warmup_end";
    case SystemObserver::Phase::kRunEnd:
      return "run_end";
  }
  return "?";
}

TraceWriter::TraceWriter(std::ostream* out, Options options)
    : out_(out), options_(options) {
  STRIP_CHECK(out != nullptr);
  *out_ << "record,time,id,class,a,b,c,d,e\n";
}

void TraceWriter::OnTransactionTerminal(
    sim::Time now, const txn::Transaction& transaction) {
  if (!options_.transactions) return;
  *out_ << "txn," << now << "," << transaction.id() << ","
        << txn::TxnClassName(transaction.cls()) << ","
        << transaction.value() << "," << transaction.arrival_time() << ","
        << transaction.deadline() << ","
        << txn::TxnOutcomeName(transaction.outcome()) << ","
        << transaction.stale_reads() << "\n";
  ++records_written_;
}

void TraceWriter::WriteUpdateRecord(sim::Time now, const db::Update& update,
                                    const char* event) {
  if (!options_.updates) return;
  *out_ << "update," << now << "," << update.id << ","
        << db::ObjectClassName(update.object.cls) << ","
        << update.object.index << "," << update.generation_time << ","
        << event << ",,\n";
  ++records_written_;
}

void TraceWriter::OnUpdateInstalled(sim::Time now, const db::Update& update,
                                    bool on_demand) {
  WriteUpdateRecord(now, update, on_demand ? "installed-od" : "installed");
}

void TraceWriter::OnUpdateDropped(sim::Time now, const db::Update& update,
                                  DropReason reason) {
  WriteUpdateRecord(now, update, DropReasonName(reason));
}

}  // namespace strip::core
