#include "core/trace_writer.h"

#include "base/check.h"

namespace strip::core {

const char* DropReasonName(SystemObserver::DropReason reason) {
  switch (reason) {
    case SystemObserver::DropReason::kOsQueueFull:
      return "os-full";
    case SystemObserver::DropReason::kQueueOverflow:
      return "queue-overflow";
    case SystemObserver::DropReason::kExpired:
      return "expired";
    case SystemObserver::DropReason::kUnworthy:
      return "unworthy";
    case SystemObserver::DropReason::kSuperseded:
      return "superseded";
    case SystemObserver::DropReason::kOverloadShed:
      return "overload-shed";
  }
  return "?";
}

const char* PhaseName(SystemObserver::Phase phase) {
  switch (phase) {
    case SystemObserver::Phase::kWarmupEnd:
      return "warmup_end";
    case SystemObserver::Phase::kRunEnd:
      return "run_end";
  }
  return "?";
}

const char* DispatchKindName(SystemObserver::DispatchKind kind) {
  switch (kind) {
    case SystemObserver::DispatchKind::kTxnCompute:
      return "compute";
    case SystemObserver::DispatchKind::kTxnViewRead:
      return "view-read";
    case SystemObserver::DispatchKind::kTxnOdScan:
      return "od-scan";
    case SystemObserver::DispatchKind::kTxnOdApply:
      return "od-apply";
    case SystemObserver::DispatchKind::kUpdaterTransfer:
      return "transfer";
    case SystemObserver::DispatchKind::kUpdaterInstallOs:
      return "install-os";
    case SystemObserver::DispatchKind::kUpdaterInstallUq:
      return "install-uq";
    case SystemObserver::DispatchKind::kRemoteService:
      return "remote-service";
  }
  return "?";
}

const char* PreemptReasonName(SystemObserver::PreemptReason reason) {
  switch (reason) {
    case SystemObserver::PreemptReason::kUpdateArrival:
      return "update-arrival";
    case SystemObserver::PreemptReason::kHigherPriorityTxn:
      return "higher-priority-txn";
    case SystemObserver::PreemptReason::kDeadline:
      return "deadline";
  }
  return "?";
}

const char* SchedulerChoiceName(SystemObserver::SchedulerChoice choice) {
  switch (choice) {
    case SystemObserver::SchedulerChoice::kReceive:
      return "receive";
    case SystemObserver::SchedulerChoice::kInstall:
      return "install";
    case SystemObserver::SchedulerChoice::kRunTransaction:
      return "run-txn";
    case SystemObserver::SchedulerChoice::kIdle:
      return "idle";
    case SystemObserver::SchedulerChoice::kInstallOnArrival:
      return "install-on-arrival";
    case SystemObserver::SchedulerChoice::kGovernorEngage:
      return "governor-engage";
    case SystemObserver::SchedulerChoice::kGovernorDisengage:
      return "governor-disengage";
    case SystemObserver::SchedulerChoice::kServeRemote:
      return "serve-remote";
    case SystemObserver::SchedulerChoice::kRemoteRetry:
      return "remote-retry";
    case SystemObserver::SchedulerChoice::kRemoteDegrade:
      return "remote-degrade";
    case SystemObserver::SchedulerChoice::kRemoteAbort:
      return "remote-abort";
  }
  return "?";
}

TraceWriter::TraceWriter(std::ostream* out, Options options)
    : out_(out), options_(options) {
  STRIP_CHECK(out != nullptr);
  *out_ << "record,time,id,class,a,b,c,d,e\n";
}

void TraceWriter::OnTransactionTerminal(
    sim::Time now, const txn::Transaction& transaction) {
  if (!options_.transactions) return;
  *out_ << "txn," << now << "," << transaction.id() << ","
        << txn::TxnClassName(transaction.cls()) << ","
        << transaction.value() << "," << transaction.arrival_time() << ","
        << transaction.deadline() << ","
        << txn::TxnOutcomeName(transaction.outcome()) << ","
        << transaction.stale_reads() << "\n";
  ++records_written_;
}

void TraceWriter::WriteUpdateRecord(sim::Time now, const db::Update& update,
                                    const char* event) {
  if (!options_.updates) return;
  *out_ << "update," << now << "," << update.id << ","
        << db::ObjectClassName(update.object.cls) << ","
        << update.object.index << "," << update.generation_time << ","
        << event << ",,\n";
  ++records_written_;
}

void TraceWriter::OnUpdateInstalled(sim::Time now, const db::Update& update,
                                    const txn::Transaction* on_demand_by) {
  WriteUpdateRecord(now, update,
                    on_demand_by != nullptr ? "installed-od" : "installed");
}

void TraceWriter::OnUpdateDropped(sim::Time now, const db::Update& update,
                                  DropReason reason) {
  WriteUpdateRecord(now, update, DropReasonName(reason));
}

void TraceWriter::OnStaleRead(sim::Time now,
                              const txn::Transaction& transaction,
                              db::ObjectId object) {
  if (!options_.stale_reads) return;
  *out_ << "stale," << now << "," << transaction.id() << ","
        << txn::TxnClassName(transaction.cls()) << ","
        << db::ObjectClassName(object.cls) << "," << object.index
        << ",,,\n";
  ++records_written_;
}

void TraceWriter::OnPhase(sim::Time now, Phase phase) {
  if (!options_.phases) return;
  *out_ << "phase," << now << ",,," << PhaseName(phase) << ",,,,\n";
  ++records_written_;
}

}  // namespace strip::core
