// Update First (UF), Section 4.1.
//
// Every update is applied the moment it arrives, preempting any running
// transaction. Updates never wait in the controller's update queue; a
// burst that arrives while an install is in progress sits briefly in
// the OS queue and is drained immediately afterwards.

#ifndef STRIP_CORE_POLICY_UF_H_
#define STRIP_CORE_POLICY_UF_H_

#include "core/policy.h"

namespace strip::core {

class UpdateFirstPolicy final : public Policy {
 public:
  PolicyKind kind() const override { return PolicyKind::kUpdateFirst; }

  bool InstallOnArrival(const db::Update&) const override { return true; }

  bool UpdaterHasPriority(const UpdaterContext& context) const override {
    return context.os_pending > 0;
  }

  bool AppliesOnDemand() const override { return false; }

  bool UsesUpdateQueue() const override { return false; }

  // UF installs unconditionally on arrival; its updater outranks
  // transactions exactly while arrivals sit in the OS buffer.
  const char* ArrivalReason(const db::Update&) const override {
    return "uf-install-on-arrival";
  }

  const char* PriorityReason(const UpdaterContext& context) const override {
    return context.os_pending > 0 ? "uf-os-pending" : "uf-os-empty";
  }
};

}  // namespace strip::core

#endif  // STRIP_CORE_POLICY_UF_H_
