// Apply Updates On Demand (OD), Section 4.4.
//
// An extension of TF: transactions still always take precedence, but
// when one encounters a stale object it first searches the update
// queue. If an applicable update is found it is installed on the spot
// (costing a queue scan plus the install) and the transaction proceeds
// with fresh data. Under the UU criterion the queue must be scanned on
// *every* view read, since that is the only way to detect staleness.

#ifndef STRIP_CORE_POLICY_OD_H_
#define STRIP_CORE_POLICY_OD_H_

#include "core/policy.h"

namespace strip::core {

class OnDemandPolicy final : public Policy {
 public:
  PolicyKind kind() const override { return PolicyKind::kOnDemand; }

  bool InstallOnArrival(const db::Update&) const override { return false; }

  bool UpdaterHasPriority(const UpdaterContext&) const override {
    return false;
  }

  bool AppliesOnDemand() const override { return true; }

  bool UsesUpdateQueue() const override { return true; }

  // OD behaves like TF at the scheduler; its distinguishing installs
  // happen inside transaction slices (kTxnOdScan/kTxnOdApply spans).
  const char* ArrivalReason(const db::Update&) const override {
    return "od-queue-on-arrival";
  }

  const char* PriorityReason(const UpdaterContext&) const override {
    return "od-txns-first";
  }
};

}  // namespace strip::core

#endif  // STRIP_CORE_POLICY_OD_H_
