// All model parameters (Tables 1–3 of the paper) plus scenario knobs.
//
// Defaults are the paper's baseline settings: Table 1 (updates/data),
// Table 2 (transactions), Table 3 (system). A Config fully describes
// one simulation run except for the random seed, which is passed
// separately so the same configuration can be replicated.

#ifndef STRIP_CORE_CONFIG_H_
#define STRIP_CORE_CONFIG_H_

#include <optional>
#include <string>

#include "db/staleness.h"
#include "txn/ready_queue.h"
#include "workload/txn_source.h"
#include "workload/update_stream.h"

namespace strip::core {

// The four scheduling algorithms of Section 4, plus the fixed-CPU-
// fraction policy the paper lists as future work (Section 7).
enum class PolicyKind {
  kUpdateFirst = 0,   // UF: apply every update on arrival
  kTransactionFirst,  // TF: updates run only when no transaction waits
  kSplitUpdates,      // SU: high-importance on arrival, low like TF
  kOnDemand,          // OD: TF + fetch from the queue on stale reads
  kFixedFraction,     // FCF (extension): updater owns a CPU share
};

// Short display name ("UF", "TF", "SU", "OD", "FCF").
const char* PolicyKindName(PolicyKind kind);

// Order in which the update process services its queue (Section 4.2):
// FIFO installs the oldest-generation update first, LIFO the newest.
enum class QueueDiscipline {
  kFifo = 0,
  kLifo,
};

const char* QueueDisciplineName(QueueDiscipline discipline);

// What a parked cross-shard read does when its retry budget is
// exhausted (the peer is slow, partitioned, or down): fall back to the
// locally cached last-installed value (marked stale, feeding the
// normal staleness accounting) or abort the transaction with the
// kRemoteUnavailable miss class.
enum class RemoteFallback {
  kStale = 0,
  kAbort,
};

// Flag token ("stale", "abort").
const char* RemoteFallbackName(RemoteFallback fallback);

struct Config {
  // --- Table 1: data and updates -----------------------------------------
  double lambda_u = 400.0;  // update arrival rate (1/s)
  double p_ul = 0.5;        // P(update targets low-importance data)
  double a_update = 0.1;    // mean pre-arrival age of updates (s)
  int n_low = 500;          // low-importance view objects
  int n_high = 500;         // high-importance view objects

  // --- Table 2: transactions ----------------------------------------------
  double lambda_t = 10.0;   // transaction arrival rate (1/s)
  double p_tl = 0.5;        // P(transaction is low-value)
  double s_min = 0.1;       // minimum slack (s)
  double s_max = 1.0;       // maximum slack (s)
  double v_low_mean = 1.0;  // mean value, low-value class
  double v_high_mean = 2.0; // mean value, high-value class
  double v_low_sd = 0.5;    // value sd, low-value class
  double v_high_sd = 0.5;   // value sd, high-value class
  double reads_mean = 2.0;  // mean # of view objects read
  double reads_sd = 1.0;    // sd of # of view objects read
  double alpha = 7.0;       // maximum age of fresh data (s)
  double comp_mean = 0.12;  // mean computation time (s)
  double comp_sd = 0.01;    // sd of computation time (s)
  double p_view = 0.0;      // fraction of computation before view reads

  // --- Table 3: system ------------------------------------------------------
  double ips = 50e6;        // CPU speed, instructions/second
  double x_lookup = 4000;   // instructions to find an object
  double x_update = 20000;  // instructions to write an object
  double x_switch = 0;      // instructions per context switch
  double x_queue = 0;       // queue add/remove cost factor (· ln n)
  double x_scan = 0;        // cost to examine one queued update
  int os_max = 4000;        // OS queue bound (updates)
  int uq_max = 5600;        // update queue bound (updates)
  bool feasible_deadline = true;  // screen out hopeless transactions
  bool txn_preemption = false;    // may transactions preempt each other
  QueueDiscipline queue_discipline = QueueDiscipline::kFifo;

  // --- scenario -------------------------------------------------------------
  PolicyKind policy = PolicyKind::kOnDemand;
  db::StalenessCriterion staleness = db::StalenessCriterion::kMaxAge;
  bool abort_on_stale = false;  // Section 6.2: abort on reading stale data
  double sim_seconds = 1000.0;  // simulated run length
  double warmup_seconds = 0.0;  // excluded from all statistics

  // --- extensions -----------------------------------------------------------
  // Charge On Demand queue searches a constant cost instead of
  // x_scan · queue-size, modelling the hash index on the update queue
  // suggested in Sections 4.2/4.4.
  bool indexed_update_queue = false;
  // Deduplicate the update queue with a hash table (Section 4.2's
  // "interesting direction for future work"): with complete updates to
  // snapshot views, only the newest update per object matters, so on
  // receive any superseded queued update is discarded — bounding the
  // queue at one entry per view object.
  bool dedup_update_queue = false;
  // Service the update queue as two importance classes, installing
  // queued high-importance updates before low-importance ones (the TF
  // enhancement sketched in Section 4.2).
  bool split_importance_queues = false;
  // CPU share reserved for the updater under kFixedFraction.
  double update_cpu_fraction = 0.2;
  // Periodic (round-robin) updates instead of Poisson (Section 2).
  bool periodic_updates = false;
  // Transaction selection rule; the paper fixes value density.
  txn::TxnSchedPolicy txn_sched = txn::TxnSchedPolicy::kValueDensity;
  // Derived-data triggers (Section 7 future work): each update that
  // writes the database fires a rule recomputation with probability
  // trigger_probability, costing x_trigger extra instructions charged
  // to the install.
  double trigger_probability = 0.0;
  double x_trigger = 0.0;
  // Disk-resident data (Section 7 future work): each object lookup
  // misses the buffer pool with probability (1 - buffer_hit_ratio) and
  // stalls the CPU for io_seconds. The paper's main-memory baseline is
  // buffer_hit_ratio = 1.
  double buffer_hit_ratio = 1.0;
  double io_seconds = 0.0;
  // Historical views (Sections 2/7 future work): retain the last
  // history_depth installed versions of every view object for as-of
  // reads. 0 disables history (the paper's snapshot-view baseline).
  int history_depth = 0;
  // Partial updates (Sections 2/7 future work): view objects have
  // n_attributes attributes; each update refreshes one attribute, and
  // an object is only as fresh as its oldest attribute. 1 restores the
  // paper's complete-update baseline.
  int n_attributes = 1;
  // Do not create the built-in stochastic workload sources; arrivals
  // come from System::InjectUpdate / System::InjectTransaction instead
  // (trace replay, hand-crafted scenarios, tests).
  bool external_workload = false;
  // Bursty feed (Section 1 motivates "up to 500 updates/second during
  // peak"): the stream alternates between lambda_u and lambda_u_peak
  // with exponential dwell times.
  bool bursty_updates = false;
  double lambda_u_peak = 500.0;
  double normal_dwell_seconds = 20.0;
  double burst_dwell_seconds = 5.0;
  // Admission control (extension): when more than admission_limit
  // transactions are already waiting, new arrivals are dropped at the
  // door instead of competing for the CPU. 0 disables.
  int admission_limit = 0;

  // --- robustness (fault injection & graceful degradation) -----------------
  // Fault-window spec driving src/fault (see FaultSchedule grammar):
  // semicolon-separated "kind@start+duration[:key=value,...]" windows,
  // e.g. "outage@100+15:speedup=4;loss@200+50:p=0.1". Empty disables
  // fault injection entirely (the feed path is byte-identical to a
  // build without the fault layer).
  std::string faults;
  // Importance-aware overload shedding: when the update queue is full,
  // evict the oldest queued *low-importance* update to make room (a
  // high-importance arrival may displace low; a low-importance arrival
  // is itself dropped before it would displace high). Off restores the
  // plain ring-overflow behaviour.
  bool shed_by_importance = false;
  // Overload governor: while queue depth or staleness is past the high
  // watermark, the updater services its queue LIFO and split by
  // importance (freshest-first triage), reverting with hysteresis at
  // the low watermark.
  bool overload_governor = false;
  double governor_high_watermark = 0.9;  // engage at depth >= hi · uq_max
  double governor_low_watermark = 0.5;   // disengage at depth <= lo · uq_max
  // Also engage when the max importance-class stale fraction reaches
  // this threshold; 0 disables the staleness trigger.
  double governor_stale_threshold = 0.0;
  // Cross-shard read robustness (sharded runs only; inert at one
  // shard). A parked remote read arms a timer for remote_timeout_s
  // simulated seconds; on expiry it is re-issued with the timeout
  // scaled by remote_retry_backoff each attempt, up to
  // remote_retry_max retries — but never past the transaction's
  // deadline. When the budget is exhausted, remote_fallback decides
  // between a degraded local read and an abort. 0 disables the timer
  // entirely (a parked read waits for its reply or its deadline,
  // byte-identical to the pre-timeout model).
  double remote_timeout_s = 0.0;
  double remote_retry_backoff = 2.0;
  int remote_retry_max = 3;
  RemoteFallback remote_fallback = RemoteFallback::kStale;

  // Derives the workload-generator parameter blocks from this config.
  workload::UpdateStream::Params UpdateStreamParams() const;
  workload::TxnSource::Params TxnSourceParams() const;

  // Returns an error message if any parameter is out of range, or
  // nullopt if the configuration is valid.
  [[nodiscard]] std::optional<std::string> Validate() const;
};

}  // namespace strip::core

#endif  // STRIP_CORE_CONFIG_H_
