// The interconnect between shard engines: a deterministic model of
// the links cross-shard read requests and replies travel over.
//
// The pre-interconnect Cluster delivered remote messages by direct
// call at the same simulated instant — a perfect fabric. This class
// puts a configurable link in the middle:
//
//   * fixed per-message latency plus exponential jitter, drawn from a
//     dedicated forked RNG stream, turning deliveries into simulator
//     events;
//   * steady-state message loss (per-message Bernoulli);
//   * scheduled interconnect faults from the cluster-scoped grammar
//     kinds (link-latency@, link-loss@, partition@, shard-outage@):
//     extra windowed latency/loss, and hard cuts where every message
//     crossing a partition (or touching a downed shard) is dropped.
//
// With every knob at zero and no fault windows the interconnect is
// *inert*: SendRequest/SendReply forward synchronously, no events are
// scheduled and no random numbers are drawn, so a zero-latency
// cluster run is byte-identical to the pre-interconnect model.
//
// Dropped messages are counted and reported through the drop hook so
// the home shard's observers (flight recorder, cluster auditor) see
// every loss; the timeout/retry machinery in core::System is what
// turns a lost message into a retry, a degraded read, or an abort.

#ifndef STRIP_CORE_INTERCONNECT_H_
#define STRIP_CORE_INTERCONNECT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/remote.h"
#include "fault/fault_schedule.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace strip::core {

class Interconnect {
 public:
  struct Params {
    int shards = 1;
    double latency_s = 0;  // fixed per-message delivery delay
    double jitter_s = 0;   // mean exponential extra delay
    double loss_p = 0;     // steady-state per-message loss probability
    // Scheduled interconnect faults; cluster-scoped kinds only
    // (enforced by ShardedConfig::Validate).
    fault::FaultSchedule schedule;
  };

  using Deliver = std::function<void(const RemoteRead&)>;
  // (message, reply_leg): the message was dropped on the request leg
  // (false) or the reply leg (true).
  using DropHook = std::function<void(const RemoteRead&, bool)>;
  // (window, begin): a cluster fault window opened or closed.
  using WindowHook = std::function<void(const fault::FaultWindow&, bool)>;

  // The simulator must outlive the Interconnect. `seed` feeds the
  // dedicated jitter/loss stream; it is never drawn when the
  // interconnect is inert.
  Interconnect(sim::Simulator* simulator, const Params& params,
               base::RngSeed seed, Deliver deliver_request,
               Deliver deliver_reply);

  Interconnect(const Interconnect&) = delete;
  Interconnect& operator=(const Interconnect&) = delete;

  // Observer of dropped messages (optional; set before the first send).
  void set_on_drop(DropHook hook) { on_drop_ = std::move(hook); }

  // Schedules one simulator event per fault-window boundary, calling
  // `hook` at each open/close. Call at most once, before the first
  // event runs. No-op for an empty schedule.
  void ScheduleWindowEvents(WindowHook hook);

  // True when every knob is zero and no windows are scheduled: sends
  // forward synchronously and the model is byte-identical to the
  // direct-call cluster.
  bool inert() const { return inert_; }

  void SendRequest(const RemoteRead& read) { Send(read, false); }
  void SendReply(const RemoteRead& read) { Send(read, true); }

  // --- robustness accounting ------------------------------------------------

  // Messages dropped (loss, partition, shard-outage), both legs.
  std::uint64_t messages_lost() const { return messages_lost_; }
  // Partition + shard-outage windows that opened before `end`, and
  // their total seconds clipped to [0, end].
  std::uint64_t PartitionWindows(sim::Time end) const;
  double PartitionSeconds(sim::Time end) const;
  // Longest observed gap between a partition/shard-outage window
  // closing and the next successful delivery — how long the cluster
  // took to actually reconnect after a heal. -1 when no window closed
  // or nothing was delivered afterwards.
  double time_to_reconnect() const { return time_to_reconnect_; }

 private:
  void Send(const RemoteRead& read, bool reply_leg);
  // Deterministic cut (partition / shard-outage) or random loss?
  bool Dropped(const RemoteRead& read, sim::Time now);
  void NoteDelivered(sim::Time at);

  sim::Simulator* simulator_;
  Params params_;
  bool inert_;
  sim::RandomStream random_;
  Deliver deliver_request_;
  Deliver deliver_reply_;
  DropHook on_drop_;

  std::uint64_t messages_lost_ = 0;
  // Sorted close times of partition/shard-outage windows, consumed by
  // the reconnect clock as deliveries pass them.
  std::vector<double> heal_times_;
  std::size_t next_heal_ = 0;
  double time_to_reconnect_ = -1;
};

}  // namespace strip::core

#endif  // STRIP_CORE_INTERCONNECT_H_
