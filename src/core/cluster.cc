#include "core/cluster.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "base/check.h"

namespace strip::core {

Cluster::Cluster(sim::Simulator* simulator, const ShardedConfig& config,
                 base::RngSeed seed)
    : simulator_(simulator),
      config_(config),
      placement_(config.placement, std::max(config.shards, 1),
                 config.base.n_low, config.base.n_high),
      // Re-seeded below for multi-shard runs; never drawn at shards==1.
      skew_random_(seed) {
  STRIP_CHECK(simulator != nullptr);
  const std::optional<std::string> error = config_.Validate();
  STRIP_CHECK_MSG(!error.has_value(),
                  error.has_value() ? error->c_str() : "");

  if (config_.single_shard()) {
    // The uniprocessor model: one System from base, the cluster's seed
    // verbatim — byte-identical to constructing the System directly.
    systems_.push_back(
        std::make_unique<System>(simulator_, config_.base, seed));
    return;
  }

  // Seed derivation mirrors System's own (stream seeds first), then
  // one independent seed per shard engine.
  sim::RandomStream master(seed);
  const base::RngSeed update_seed = master.Fork();
  const base::RngSeed txn_seed = master.Fork();
  skew_random_ = sim::RandomStream(master.Fork());

  systems_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    systems_.push_back(std::make_unique<System>(
        simulator_, config_.ShardConfig(s), master.Fork()));
    System::ShardLink link;
    link.shard_id = base::ShardId(s);
    link.shards = config_.shards;
    // Requests/replies travel over the interconnect: with every link
    // knob at zero they are delivered at the same simulated instant
    // (the service itself takes simulated CPU time on the receiver);
    // otherwise delivery is a delayed — possibly dropped — event.
    link.send_request = [this](const RemoteRead& read) {
      interconnect_->SendRequest(read);
    };
    link.send_reply = [this](const RemoteRead& read) {
      interconnect_->SendReply(read);
    };
    link.next_request_id = [this] { return ++last_request_id_; };
    systems_.back()->set_shard_link(std::move(link));
  }

  // The interconnect's RNG stream forks after every shard engine's, so
  // perfect-fabric runs keep the historical per-shard seeds.
  Interconnect::Params net;
  net.shards = config_.shards;
  net.latency_s = config_.link_latency_us * 1e-6;
  net.jitter_s = config_.link_jitter_us * 1e-6;
  net.loss_p = config_.link_loss_p;
  if (!config_.cluster_faults.empty()) {
    std::string fault_error;
    std::optional<fault::FaultSchedule> schedule =
        fault::FaultSchedule::Parse(config_.cluster_faults, &fault_error);
    STRIP_CHECK_MSG(schedule.has_value(), fault_error.c_str());
    net.schedule = *std::move(schedule);
  }
  interconnect_ = std::make_unique<Interconnect>(
      simulator_, net, master.Fork(),
      [this](const RemoteRead& read) {
        systems_[static_cast<std::size_t>(read.peer_shard.value())]
            ->ReceiveRemoteRequest(read);
      },
      [this](const RemoteRead& read) {
        systems_[static_cast<std::size_t>(read.home_shard.value())]
            ->ReceiveRemoteReply(read);
      });
  interconnect_->set_on_drop([this](const RemoteRead& read, bool reply_leg) {
    // Losses surface on the home shard's bus: that is where the
    // timeout that eventually notices them is armed.
    systems_[static_cast<std::size_t>(read.home_shard.value())]
        ->observer_bus()
        .NotifyShardRemoteDropped(simulator_->now(), read, reply_leg);
  });
  if (!net.schedule.empty()) {
    interconnect_->ScheduleWindowEvents(
        [this](const fault::FaultWindow& window, bool begin) {
          for (const std::unique_ptr<System>& system : systems_) {
            system->OnClusterFaultBoundary(window, begin);
          }
        });
  }

  if (!config_.base.external_workload) {
    // One global feed and one global transaction source, drawing in
    // the global object space and routed by placement. Constructed
    // after the shard engines so their first arrivals land behind the
    // engines' own setup events at t = 0.
    workload::UpdateStream::Params update_params =
        config_.base.UpdateStreamParams();
    update_stream_ = std::make_unique<workload::UpdateStream>(
        simulator_, update_params, update_seed,
        [this](const db::Update& u) { RouteUpdate(u); });
    workload::TxnSource::Params txn_params = config_.base.TxnSourceParams();
    txn_source_ = std::make_unique<workload::TxnSource>(
        simulator_, txn_params, txn_seed,
        [this](const txn::Transaction::Params& p) { RouteTransaction(p); });
  }
}

void Cluster::RouteUpdate(const db::Update& update) {
  db::Update routed = update;
  if (config_.feed_hot_fraction > 0 &&
      skew_random_.WithProbability(config_.feed_hot_fraction)) {
    // Hot feed: redirect to a uniformly drawn object of the same
    // importance class owned by the hot shard.
    const base::ShardId hot(config_.feed_hot_shard);
    const int owned = placement_.OwnedCount(hot, routed.object.cls);
    const db::ObjectId local{routed.object.cls,
                             skew_random_.UniformInt(0, owned - 1)};
    routed.object =
        placement_.ToGlobal(hot, db::LocalObjectId(local)).value();
  }
  const base::ShardId shard =
      placement_.ShardOf(db::GlobalObjectId(routed.object));
  routed.object = placement_.ToLocal(db::GlobalObjectId(routed.object)).value();
  systems_[static_cast<std::size_t>(shard.value())]->InjectUpdate(routed);
}

void Cluster::RouteTransaction(const txn::Transaction::Params& params) {
  txn::Transaction::Params routed = params;
  const int home =
      routed.read_set.empty()
          ? static_cast<int>(txn_round_robin_++ %
                             static_cast<std::uint64_t>(shards()))
          : placement_.ShardOf(db::GlobalObjectId(routed.read_set.front()))
                .value();
  routed.read_owners.resize(routed.read_set.size());
  for (std::size_t i = 0; i < routed.read_set.size(); ++i) {
    const db::GlobalObjectId global(routed.read_set[i]);
    routed.read_owners[i] = placement_.ShardOf(global);
    routed.read_set[i] = placement_.ToLocal(global).value();
  }
  systems_[static_cast<std::size_t>(home)]->InjectTransaction(routed);
}

RunMetrics Cluster::Run() {
  STRIP_CHECK_MSG(!finalized_, "Cluster::Run called twice");
  if (config_.single_shard()) {
    systems_[0]->Run();
  } else {
    simulator_->RunUntil(config_.base.sim_seconds);
  }
  FinalizeAll(config_.base.sim_seconds);
  return aggregate_;
}

bool Cluster::RunSlice(sim::Duration max_slice) {
  STRIP_CHECK_MSG(!finalized_, "Cluster::RunSlice after finalization");
  STRIP_CHECK_MSG(max_slice > 0, "slice must be positive");
  if (config_.single_shard()) {
    if (!systems_[0]->RunSlice(max_slice)) return false;
    FinalizeAll(config_.base.sim_seconds);
    return true;
  }
  const sim::Time target =
      std::min(simulator_->now() + max_slice, config_.base.sim_seconds);
  // Repeated RunUntil calls dispatch each event exactly once, so a
  // sliced cluster run replays the identical event sequence as Run().
  simulator_->RunUntil(target);
  if (target >= config_.base.sim_seconds) {
    FinalizeAll(config_.base.sim_seconds);
    return true;
  }
  return false;
}

RunMetrics Cluster::HaltEarly() {
  STRIP_CHECK_MSG(!finalized_, "Cluster::HaltEarly after finalization");
  FinalizeAll(simulator_->now());
  return aggregate_;
}

const RunMetrics& Cluster::shard_metrics(int shard) const {
  STRIP_CHECK_MSG(finalized_, "shard_metrics before finalization");
  return shard_metrics_[static_cast<std::size_t>(shard)];
}

void Cluster::AddObserverToAllShards(SystemObserver* observer) {
  for (const std::unique_ptr<System>& system : systems_) {
    system->AddObserver(observer);
  }
}

void Cluster::FinalizeAll(sim::Time end) {
  finalized_ = true;
  if (update_stream_ != nullptr) update_stream_->Stop();
  if (txn_source_ != nullptr) txn_source_->Stop();
  shard_metrics_.clear();
  shard_metrics_.reserve(systems_.size());
  for (const std::unique_ptr<System>& system : systems_) {
    // The single-shard forwarders finalize through System::Run /
    // RunSlice / HaltEarly; multi-shard engines are finalized here.
    if (!system->finalized_) system->Finalize(end);
    shard_metrics_.push_back(system->metrics());
  }
  Aggregate();
  if (interconnect_ != nullptr) {
    // Cluster-level robustness accounting: the interconnect is shared,
    // so these live only on the aggregate (never on a shard).
    aggregate_.link_messages_lost = interconnect_->messages_lost();
    aggregate_.partition_windows = interconnect_->PartitionWindows(end);
    aggregate_.partition_seconds = interconnect_->PartitionSeconds(end);
    aggregate_.time_to_reconnect = interconnect_->time_to_reconnect();
  }
}

void Cluster::Aggregate() {
  if (shard_metrics_.size() == 1) {
    // The uniprocessor model: the aggregate IS the shard's metrics.
    aggregate_ = shard_metrics_[0];
    return;
  }
  RunMetrics total;
  std::uint64_t commits = 0;
  for (std::size_t s = 0; s < shard_metrics_.size(); ++s) {
    const RunMetrics& m = shard_metrics_[s];
    total.observed_seconds = std::max(total.observed_seconds,
                                      m.observed_seconds);
    total.txns_arrived += m.txns_arrived;
    total.txns_committed += m.txns_committed;
    total.txns_committed_fresh += m.txns_committed_fresh;
    total.txns_missed_deadline += m.txns_missed_deadline;
    total.txns_infeasible += m.txns_infeasible;
    total.txns_stale_aborted += m.txns_stale_aborted;
    total.txns_overload_dropped += m.txns_overload_dropped;
    total.txns_inflight_at_end += m.txns_inflight_at_end;
    total.txns_committed_stale += m.txns_committed_stale;
    total.value_committed += m.value_committed;
    for (int c = 0; c < 2; ++c) {
      total.txns_arrived_by_class[c] += m.txns_arrived_by_class[c];
      total.txns_committed_by_class[c] += m.txns_committed_by_class[c];
      total.value_committed_by_class[c] += m.value_committed_by_class[c];
      total.updates_shed_by_class[c] += m.updates_shed_by_class[c];
    }
    total.updates_arrived += m.updates_arrived;
    total.updates_dropped_os_full += m.updates_dropped_os_full;
    total.updates_dropped_uq_overflow += m.updates_dropped_uq_overflow;
    total.updates_dropped_expired += m.updates_dropped_expired;
    total.updates_installed += m.updates_installed;
    total.updates_unworthy += m.updates_unworthy;
    total.updates_dropped_superseded += m.updates_dropped_superseded;
    total.updates_applied_on_demand += m.updates_applied_on_demand;
    total.triggers_fired += m.triggers_fired;
    total.io_stalls += m.io_stalls;
    total.cpu_txn_seconds += m.cpu_txn_seconds;
    total.cpu_update_seconds += m.cpu_update_seconds;
    // Cluster stale fractions weight each shard by its owned slice of
    // the class, so the aggregate matches a global object census.
    total.f_old_low +=
        m.f_old_low *
        placement_.OwnedCount(base::ShardId(static_cast<int>(s)),
                              db::ObjectClass::kLowImportance) /
        config_.base.n_low;
    total.f_old_high +=
        m.f_old_high *
        placement_.OwnedCount(base::ShardId(static_cast<int>(s)),
                              db::ObjectClass::kHighImportance) /
        config_.base.n_high;
    // Commit-weighted mean; percentiles are the worst shard's (an
    // upper bound — exact values would need the merged samples).
    total.response_mean +=
        m.response_mean * static_cast<double>(m.txns_committed);
    commits += m.txns_committed;
    if (m.txns_committed > 0) {
      total.response_p50 = std::max(total.response_p50, m.response_p50);
      total.response_p95 = std::max(total.response_p95, m.response_p95);
      total.response_p99 = std::max(total.response_p99, m.response_p99);
    }
    total.uq_length_avg += m.uq_length_avg;
    total.uq_length_max = std::max(total.uq_length_max, m.uq_length_max);
    total.os_length_avg += m.os_length_avg;
    total.fault_windows += m.fault_windows;
    total.updates_lost_fault += m.updates_lost_fault;
    total.updates_duplicated_fault += m.updates_duplicated_fault;
    total.updates_reordered_fault += m.updates_reordered_fault;
    total.updates_outage_deferred += m.updates_outage_deferred;
    total.governor_engagements += m.governor_engagements;
    total.governor_engaged_seconds += m.governor_engaged_seconds;
    total.outage_recovery_seconds = std::max(total.outage_recovery_seconds,
                                             m.outage_recovery_seconds);
    total.max_stale_excursion =
        std::max(total.max_stale_excursion, m.max_stale_excursion);
    total.txns_missed_in_fault += m.txns_missed_in_fault;
    total.txns_cross_shard += m.txns_cross_shard;
    total.remote_reads_issued += m.remote_reads_issued;
    total.remote_reads_served += m.remote_reads_served;
    total.remote_replies_orphaned += m.remote_replies_orphaned;
    total.remote_heals += m.remote_heals;
    total.remote_stale_replies += m.remote_stale_replies;
    total.remote_wait_seconds += m.remote_wait_seconds;
    total.cpu_remote_seconds += m.cpu_remote_seconds;
    total.remote_retries += m.remote_retries;
    total.remote_timeouts += m.remote_timeouts;
    total.remote_degraded_reads += m.remote_degraded_reads;
    total.txns_remote_unavailable += m.txns_remote_unavailable;
  }
  total.response_mean =
      commits > 0 ? total.response_mean / static_cast<double>(commits) : 0;
  const double n_shards = static_cast<double>(shard_metrics_.size());
  total.uq_length_avg /= n_shards;
  total.os_length_avg /= n_shards;

  // True cluster percentiles: bucket-merge the per-shard response
  // histograms (same layout on every shard — one shared base config).
  // The worst-shard response_p50/p95/p99 above remain as the upper
  // bound; these are the honest cluster-level order statistics. Left
  // at the -1 sentinel if a layout mismatch ever makes a merge fail.
  if (!systems_.empty()) {
    sim::Histogram merged = systems_[0]->response_times();
    bool merge_ok = true;
    for (std::size_t s = 1; s < systems_.size(); ++s) {
      if (!merged.Merge(systems_[s]->response_times())) {
        merge_ok = false;
        break;
      }
    }
    if (merge_ok && merged.count() > 0) {
      total.response_p50_cluster = merged.Quantile(0.50);
      total.response_p95_cluster = merged.Quantile(0.95);
      total.response_p99_cluster = merged.Quantile(0.99);
    }
  }
  aggregate_ = total;
}

}  // namespace strip::core
