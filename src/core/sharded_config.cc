#include "core/sharded_config.h"

#include "fault/fault_schedule.h"

namespace strip::core {

Config ShardedConfig::ShardConfig(int shard) const {
  const db::ObjectPlacement map(placement, shards, base.n_low, base.n_high);
  Config config = base;
  // Arrivals come from the cluster's global generators, routed by
  // placement — a shard engine never runs its own streams.
  config.external_workload = true;
  config.n_low =
      map.OwnedCount(base::ShardId(shard), db::ObjectClass::kLowImportance);
  config.n_high =
      map.OwnedCount(base::ShardId(shard), db::ObjectClass::kHighImportance);
  if (!shard_ips.empty()) config.ips = shard_ips[shard];
  if (!shard_x_switch.empty()) config.x_switch = shard_x_switch[shard];
  if (!shard_faults.empty()) config.faults = shard_faults[shard];
  return config;
}

std::optional<std::string> ShardedConfig::Validate() const {
  if (const std::optional<std::string> error = base.Validate()) return error;
  if (shards < 1) return "shards must be >= 1";
  if (shards > 1 && (base.n_low < shards || base.n_high < shards)) {
    return "each importance class needs at least one object per shard";
  }
  const auto check_size = [&](std::size_t size, const char* name)
      -> std::optional<std::string> {
    if (size != 0 && size != static_cast<std::size_t>(shards)) {
      return std::string(name) + " must be empty or have one entry per shard";
    }
    return std::nullopt;
  };
  if (auto error = check_size(shard_ips.size(), "shard_ips")) return error;
  if (auto error = check_size(shard_x_switch.size(), "shard_x_switch")) {
    return error;
  }
  if (auto error = check_size(shard_faults.size(), "shard_faults")) {
    return error;
  }
  for (double ips : shard_ips) {
    if (ips <= 0) return "shard_ips entries must be positive";
  }
  for (double x : shard_x_switch) {
    if (x < 0) return "shard_x_switch entries must be non-negative";
  }
  for (const std::string& faults : shard_faults) {
    if (faults.empty()) continue;
    std::string fault_error;
    const std::optional<fault::FaultSchedule> schedule =
        fault::FaultSchedule::Parse(faults, &fault_error);
    if (!schedule.has_value()) return "shard_faults: " + fault_error;
    for (const fault::FaultWindow& w : schedule->windows()) {
      if (fault::IsClusterScoped(w.kind)) {
        return std::string("shard_faults: \"") +
               fault::FaultKindName(w.kind) +
               "\" is cluster-scoped (use cluster_faults)";
      }
    }
  }
  if (link_latency_us < 0) return "link_latency_us must be non-negative";
  if (link_jitter_us < 0) return "link_jitter_us must be non-negative";
  if (link_loss_p < 0 || link_loss_p > 1) {
    return "link_loss_p must be in [0, 1]";
  }
  if (!cluster_faults.empty()) {
    if (shards < 2) return "cluster_faults requires shards > 1";
    std::string fault_error;
    const std::optional<fault::FaultSchedule> schedule =
        fault::FaultSchedule::Parse(cluster_faults, &fault_error);
    if (!schedule.has_value()) return "cluster_faults: " + fault_error;
    for (const fault::FaultWindow& w : schedule->windows()) {
      if (!fault::IsClusterScoped(w.kind)) {
        return std::string("cluster_faults: \"") +
               fault::FaultKindName(w.kind) +
               "\" is shard-scoped (use faults or shard_faults)";
      }
      for (int s : w.shard_set) {
        if (s >= shards) {
          return "cluster_faults: window \"" + w.label +
                 "\" names shard " + std::to_string(s) +
                 " but the cluster has " + std::to_string(shards);
        }
      }
      if (w.kind == fault::FaultKind::kShardOutage && w.shard >= shards) {
        return "cluster_faults: window \"" + w.label +
               "\" names shard " + std::to_string(w.shard) +
               " but the cluster has " + std::to_string(shards);
      }
    }
  }
  // Link latency/jitter/loss are legal (and inert) at shards == 1 —
  // a one-shard cluster sends no cross-shard messages — so a sweep
  // over the shard count can carry one interconnect shape through
  // every cell, the single-shard baseline included.
  if (feed_hot_fraction < 0 || feed_hot_fraction > 1) {
    return "feed_hot_fraction outside [0, 1]";
  }
  if (feed_hot_shard < -1 || feed_hot_shard >= shards) {
    return "feed_hot_shard out of range";
  }
  if (feed_hot_fraction > 0 && feed_hot_shard < 0) {
    return "feed_hot_fraction needs feed_hot_shard";
  }
  return std::nullopt;
}

}  // namespace strip::core
