// A sharded (multiprocessor) STRIP run: M shard engines on one clock.
//
// The paper models a single CPU multiplexed between the update process
// and transactions (Section 3.1). Cluster generalizes that model to M
// such controllers — each shard a full System with its own CPU, queues,
// staleness tracker, policy instance, and governor state — sharing one
// deterministic sim::Simulator, one global update feed, and one global
// transaction workload:
//
//   * the object space is split across shards by a db::ObjectPlacement
//     (hash striping or range blocks); the cluster's feed draws global
//     object ids and routes each update to its owner shard;
//   * each transaction is admitted on its *home* shard (the owner of
//     its first view read); reads of objects owned elsewhere become
//     cross-shard reads, executed by a two-phase hold rendezvous: the
//     transaction keeps its claim on the home CPU while the request is
//     serviced as a priority segment on the peer's CPU (see
//     DESIGN.md, "Sharded model");
//   * per-shard heterogeneity (CPU speed, switch cost, fault schedule)
//     and feed skew (a hot shard absorbing a configurable fraction of
//     the feed) come from the ShardedConfig.
//
// shards == 1 constructs exactly one System from config.base verbatim
// with the cluster's seed, and Run()/RunSlice()/HaltEarly() forward to
// it — byte-identical, metric-identical output to using System
// directly (pinned by tests/core/cluster_identity_test.cc).
//
// Typical use:
//   sim::Simulator simulator;
//   core::ShardedConfig config;
//   config.shards = 4;
//   core::Cluster cluster(&simulator, config, base::RngSeed(1));
//   core::RunMetrics aggregate = cluster.Run();
//   const core::RunMetrics& shard0 = cluster.shard_metrics(0);

#ifndef STRIP_CORE_CLUSTER_H_
#define STRIP_CORE_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/interconnect.h"
#include "core/metrics.h"
#include "core/sharded_config.h"
#include "core/system.h"
#include "db/placement.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "workload/txn_source.h"
#include "workload/update_stream.h"

namespace strip::core {

class Cluster {
 public:
  // Wires M shard engines onto `simulator`. `config` must validate;
  // `seed` determines every random draw (for shards == 1 the run is
  // seed-compatible with System(simulator, config.base, seed)). The
  // simulator must outlive the Cluster.
  Cluster(sim::Simulator* simulator, const ShardedConfig& config,
          base::RngSeed seed);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Runs to config.base.sim_seconds and returns the aggregate metrics.
  // Callable once.
  RunMetrics Run();

  // Incremental alternative to Run() (crash-safe sweeps): advances the
  // whole cluster by at most `max_slice` simulated seconds. Returns
  // true when the run completed (metrics finalized).
  bool RunSlice(sim::Duration max_slice);

  // Abandons an unfinished sliced run: finalizes every shard at the
  // current simulated time and returns the aggregate. The Cluster is
  // spent afterwards.
  RunMetrics HaltEarly();

  // Aggregate metrics across shards; valid after finalization. Event
  // counters, value, and CPU seconds are summed; stale fractions are
  // weighted by each shard's owned object counts; response percentiles
  // are the worst (max) across shards with commits — an upper bound,
  // since exact cluster percentiles would need the merged samples;
  // queue-length averages are means across shards. Note rho_* divide
  // the summed CPU seconds by the single observation window, so the
  // cluster-wide rho_total can approach M (M busy CPUs).
  const RunMetrics& metrics() const { return aggregate_; }

  // One shard's finalized metrics; valid after finalization.
  const RunMetrics& shard_metrics(int shard) const;

  // The shard engines, for attaching observers and probing state.
  int shards() const { return static_cast<int>(systems_.size()); }
  System& shard(int shard) { return *systems_[shard]; }
  const System& shard(int shard) const { return *systems_[shard]; }

  // Registers an observer on every shard engine (per-shard sinks
  // attach via shard(s).AddObserver instead).
  void AddObserverToAllShards(SystemObserver* observer);

  const ShardedConfig& config() const { return config_; }
  const db::ObjectPlacement& placement() const { return placement_; }
  sim::Simulator* simulator() const { return simulator_; }

  // Cross-shard read requests issued so far (the auditors' census
  // denominator).
  std::uint64_t remote_requests_issued() const { return last_request_id_; }

  // External-workload injection (config.base.external_workload):
  // arrivals in *global* object-id space, routed by placement to the
  // owning shard — same contract as System::InjectUpdate /
  // InjectTransaction otherwise.
  void InjectUpdate(const db::Update& update) { RouteUpdate(update); }
  void InjectTransaction(const txn::Transaction::Params& params) {
    RouteTransaction(params);
  }

 private:
  // Routes one update (global id) to its owner shard, applying feed
  // skew first.
  void RouteUpdate(const db::Update& update);
  // Rewrites a transaction's read set into owner-local ids, computes
  // read owners and the home shard, and injects it there.
  void RouteTransaction(const txn::Transaction::Params& params);
  void FinalizeAll(sim::Time end);
  void Aggregate();

  sim::Simulator* simulator_;
  ShardedConfig config_;
  db::ObjectPlacement placement_;
  std::vector<std::unique_ptr<System>> systems_;

  // The link model every cross-shard request/reply travels over (null
  // at shards == 1). Inert — synchronous pass-through, no events, no
  // RNG draws — unless a link knob or cluster_faults is set.
  std::unique_ptr<Interconnect> interconnect_;

  // Global workload generators (null under base.external_workload or
  // at shards == 1, where the single System runs its own).
  std::unique_ptr<workload::UpdateStream> update_stream_;
  std::unique_ptr<workload::TxnSource> txn_source_;
  // Draws for the feed-skew redirect.
  sim::RandomStream skew_random_;

  // Cluster-unique request ids, handed to shard engines via ShardLink.
  std::uint64_t last_request_id_ = 0;
  // Home shard for transactions with an empty read set.
  std::uint64_t txn_round_robin_ = 0;

  std::vector<RunMetrics> shard_metrics_;
  RunMetrics aggregate_;
  bool finalized_ = false;
};

}  // namespace strip::core

#endif  // STRIP_CORE_CLUSTER_H_
