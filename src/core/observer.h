// Observation hooks into a running System.
//
// An observer receives the System's discrete outcomes as they happen —
// transaction completions/aborts, update installs/drops, stale reads,
// and run-phase boundaries — without perturbing the model. Any number
// of observers can be attached through the System's ObserverBus
// (core/observer_bus.h); used by the CSV trace writer
// (core/trace_writer.h), the observability layer (src/obs), and
// available to applications for custom monitoring (e.g., alerting on
// stale reads in the control-room example).
//
// Two tiers of hooks:
//
//  - *Outcome* hooks (OnTransactionTerminal, OnUpdateInstalled,
//    OnUpdateDropped, OnStaleRead, OnPhase) fire at the model's
//    discrete results — enough for metrics, telemetry, and alerting.
//  - *Lifecycle* hooks (OnTxnAdmitted, OnUpdateArrival,
//    OnUpdateEnqueued, OnDispatch, OnSegmentComplete, OnPreempt,
//    OnPolicyDecision) fire at every scheduler decision point, so a
//    causal tracer (src/obs/trace) can reconstruct the full history
//    of each transaction and update: arrive → dispatch → segments →
//    preemptions → stale reads → commit/abort, and arrive → enqueue →
//    dedup/drop → install.
//
// Every OnDispatch is closed by exactly one OnSegmentComplete (the
// segment ran to its scheduled end) or OnPreempt (it was cut short),
// so dispatch/complete pairs nest into clean spans. With no observers
// attached none of the hooks cost anything (a single emptiness test
// in the bus).

#ifndef STRIP_CORE_OBSERVER_H_
#define STRIP_CORE_OBSERVER_H_

#include "core/config.h"
#include "core/remote.h"
#include "db/update.h"
#include "sim/sim_time.h"
#include "txn/transaction.h"

namespace strip::core {

class SystemObserver {
 public:
  virtual ~SystemObserver() = default;

  // A run-phase boundary the System crossed.
  enum class Phase {
    kWarmupEnd = 0,  // warm-up elapsed; statistics were just reset
    kRunEnd,         // simulation reached sim_seconds; metrics final
  };

  // Why an update left the system without being installed.
  enum class DropReason {
    kOsQueueFull = 0,   // kernel buffer overflow on arrival
    kQueueOverflow,     // update-queue bound exceeded
    kExpired,           // older than alpha (MA expiry purge)
    kUnworthy,          // database already held a newer value
    kSuperseded,        // a newer update for the same object exists
                        // (dedup_update_queue extension)
    kOverloadShed,      // importance-aware shedding evicted it to
                        // admit newer work (shed_by_importance)
  };

  // What the scheduler placed on the simulated CPU.
  enum class DispatchKind {
    kTxnCompute = 0,     // a transaction's computation step
    kTxnViewRead,        // a transaction's view-object read
    kTxnOdScan,          // On Demand: update-queue search (txn slice)
    kTxnOdApply,         // On Demand: install found update (txn slice)
    kUpdaterTransfer,    // receive: OS queue head -> update queue
    kUpdaterInstallOs,   // install straight from the OS queue (UF, SU)
    kUpdaterInstallUq,   // install from the update queue
    kRemoteService,      // peer shard serving a remote read (sharded
                         // model; lookup + optional on-demand heal)
  };

  // Why a running transaction lost the CPU before its segment ended.
  enum class PreemptReason {
    kUpdateArrival = 0,  // UF/SU receive-on-arrival took the CPU
    kHigherPriorityTxn,  // txn_preemption and a better arrival
    kDeadline,           // the firm deadline cut the segment down
  };

  // The scheduler's choice at a decision point.
  enum class SchedulerChoice {
    kReceive = 0,       // drain the OS buffer (transfer or install)
    kInstall,           // install from the update queue
    kRunTransaction,    // run the best ready transaction
    kIdle,              // no work: wait for the next arrival
    kInstallOnArrival,  // policy decision 1: preempting receive at
                        // update arrival (UF all, SU high-importance)
    kGovernorEngage,    // overload governor switched to triage mode
    kGovernorDisengage, // overload drained; normal service restored
    kServeRemote,       // serve a peer shard's read request (sharded
                        // model; outranks all local work)
    kRemoteRetry,       // remote read timed out; re-issued with backoff
    kRemoteDegrade,     // retries exhausted; degraded local read
    kRemoteAbort,       // retries exhausted; transaction aborted
  };

  // A fault window boundary (fault injection; src/fault). Both string
  // pointers have the lifetime of the run (they point into the
  // System's FaultSchedule).
  struct FaultWindowInfo {
    const char* kind = nullptr;   // "outage", "burst", "loss", ...
    const char* label = nullptr;  // the window's spec token
    bool begin = false;           // true at window start, false at end
    double start = 0;             // window [start, end) in sim seconds
    double end = 0;
    // Shard whose bus is reporting the boundary (cluster-scoped
    // windows are reported once per shard). -1 at shards=1.
    int shard = -1;
  };

  // One unit of dispatched CPU work, as seen at OnDispatch and at the
  // matching OnSegmentComplete. Exactly one of `transaction` / `update`
  // / `remote` is non-null (`transaction` for kTxn* kinds, `update` for
  // kUpdater* kinds, `remote` for kRemoteService); the pointers are
  // valid only for the duration of the callback.
  struct DispatchInfo {
    DispatchKind kind = DispatchKind::kTxnCompute;
    // The transaction owning the segment (kTxn* kinds), else nullptr.
    const txn::Transaction* transaction = nullptr;
    // The update being moved or installed (kUpdater* kinds), else
    // nullptr.
    const db::Update* update = nullptr;
    // The remote read being serviced (kRemoteService), else nullptr.
    // The serviced transaction lives on another shard, so only its id
    // (remote->txn_id) is available here.
    const RemoteRead* remote = nullptr;
    // Instructions scheduled on the CPU, including embedded context-
    // switch / purge-debt charges.
    double instructions = 0;
  };

  // --- outcome hooks -------------------------------------------------------

  // A transaction reached a terminal state (outcome() is set; the
  // object is destroyed after this call returns).
  virtual void OnTransactionTerminal(sim::Time now,
                                     const txn::Transaction& transaction) {
    (void)now;
    (void)transaction;
  }

  // An update was written to the database. `on_demand_by` is the
  // transaction whose stale read demanded the install (OD policy), or
  // nullptr for an ordinary update-process install; the pointer is
  // valid only for the duration of the callback.
  virtual void OnUpdateInstalled(sim::Time now, const db::Update& update,
                                 const txn::Transaction* on_demand_by) {
    (void)now;
    (void)update;
    (void)on_demand_by;
  }

  // An update left the system without being installed.
  virtual void OnUpdateDropped(sim::Time now, const db::Update& update,
                               DropReason reason) {
    (void)now;
    (void)update;
    (void)reason;
  }

  // A view read encountered stale data (under any criterion; fires
  // whether or not the system itself could detect the staleness).
  // Under OD the on-demand machinery may install a fresh value before
  // the transaction proceeds — the hook still fires at detection, and
  // the causally linked OnUpdateInstalled(on_demand_by=&transaction)
  // follows if the install succeeds. The transaction's own stale-read
  // counter (and the run metrics) only count reads that *stayed*
  // stale. The transaction is still live — under abort-on-stale the
  // abort happens *after* this call.
  virtual void OnStaleRead(sim::Time now, const txn::Transaction& transaction,
                           db::ObjectId object) {
    (void)now;
    (void)transaction;
    (void)object;
  }

  // The run crossed a phase boundary: warm-up ended (statistics reset)
  // or the simulation ended (metrics finalized). Lets samplers and
  // exporters align to the observation window without polling hacks.
  virtual void OnPhase(sim::Time now, Phase phase) {
    (void)now;
    (void)phase;
  }

  // --- lifecycle hooks (scheduler decision points) -------------------------

  // A transaction was admitted into the system (overload-dropped
  // arrivals fire OnTransactionTerminal with kOverloadDrop instead).
  virtual void OnTxnAdmitted(sim::Time now,
                             const txn::Transaction& transaction) {
    (void)now;
    (void)transaction;
  }

  // An update arrived from the stream (before the OS-queue bound is
  // checked; a full buffer fires OnUpdateDropped(kOsQueueFull) next).
  virtual void OnUpdateArrival(sim::Time now, const db::Update& update) {
    (void)now;
    (void)update;
  }

  // An update was received into the controller's update queue.
  virtual void OnUpdateEnqueued(sim::Time now, const db::Update& update) {
    (void)now;
    (void)update;
  }

  // The scheduler placed `dispatch` on the CPU. Closed by exactly one
  // OnSegmentComplete or OnPreempt.
  virtual void OnDispatch(sim::Time now, const DispatchInfo& dispatch) {
    (void)now;
    (void)dispatch;
  }

  // The dispatched segment ran to its scheduled end. Fires before the
  // segment's outcome is handled (so e.g. a stale-abort's
  // OnTransactionTerminal follows it).
  virtual void OnSegmentComplete(sim::Time now,
                                 const DispatchInfo& dispatch) {
    (void)now;
    (void)dispatch;
  }

  // The running transaction's segment was cut short.
  virtual void OnPreempt(sim::Time now, const txn::Transaction& transaction,
                         PreemptReason reason) {
    (void)now;
    (void)transaction;
    (void)reason;
  }

  // The scheduler consulted the policy and chose. `reason` is a short
  // stable token naming why (policy-specific; see Policy::
  // ArrivalReason / PriorityReason) with static storage duration.
  virtual void OnPolicyDecision(sim::Time now, PolicyKind policy,
                                SchedulerChoice choice, const char* reason) {
    (void)now;
    (void)policy;
    (void)choice;
    (void)reason;
  }

  // A fault window began or ended (fault injection; only fires when
  // the run has a non-empty --faults schedule).
  virtual void OnFaultWindow(sim::Time now, const FaultWindowInfo& window) {
    (void)now;
    (void)window;
  }

  // --- sharded-model hooks (core/cluster.h; never fire at shards=1) --------
  //
  // A cross-shard view read's life, as four instants: the home shard
  // issues the request and holds its CPU (OnShardRemoteIssued, home
  // bus), the peer receives it into its remote queue
  // (OnShardRemoteQueued, peer bus), the peer finishes the service
  // segment and sends the reply (OnShardRemoteServiced, peer bus; the
  // reply fields of `read` are filled in), and the home shard resolves
  // it (OnShardRemoteResolved, home bus; `txn_live` is false when the
  // transaction's firm deadline fired during the wait). The peer's
  // service CPU segment additionally appears as a normal
  // OnDispatch/OnSegmentComplete span of kind kRemoteService.

  virtual void OnShardRemoteIssued(sim::Time now, const RemoteRead& read) {
    (void)now;
    (void)read;
  }

  virtual void OnShardRemoteQueued(sim::Time now, const RemoteRead& read) {
    (void)now;
    (void)read;
  }

  virtual void OnShardRemoteServiced(sim::Time now, const RemoteRead& read) {
    (void)now;
    (void)read;
  }

  virtual void OnShardRemoteResolved(sim::Time now, const RemoteRead& read,
                                     bool txn_live) {
    (void)now;
    (void)read;
    (void)txn_live;
  }

  // With a non-perfect interconnect (core/interconnect.h) three more
  // hooks cover the robustness paths, all on the home shard's bus:
  //
  //  - OnShardRemoteDropped: the interconnect lost the message on the
  //    request leg (reply_leg=false) or the reply leg (true). The home
  //    shard keeps waiting until its timeout fires.
  //  - OnRemoteTimeout: a parked remote read's timer expired after
  //    `attempt` issues. `will_retry` is true when the read is being
  //    re-issued (with a fresh request id and a backed-off timer),
  //    false when the retry budget is exhausted and the fallback
  //    (degraded read or abort) happens next.
  //  - OnDegradedRead: retries exhausted under --remote_fallback=stale;
  //    the transaction proceeds on the locally cached value, counted
  //    as a stale read.

  virtual void OnShardRemoteDropped(sim::Time now, const RemoteRead& read,
                                    bool reply_leg) {
    (void)now;
    (void)read;
    (void)reply_leg;
  }

  virtual void OnRemoteTimeout(sim::Time now, const RemoteRead& read,
                               int attempt, bool will_retry) {
    (void)now;
    (void)read;
    (void)attempt;
    (void)will_retry;
  }

  virtual void OnDegradedRead(sim::Time now, const RemoteRead& read) {
    (void)now;
    (void)read;
  }
};

// Printable name for a drop reason.
const char* DropReasonName(SystemObserver::DropReason reason);

// Printable name for a phase ("warmup_end" / "run_end").
const char* PhaseName(SystemObserver::Phase phase);

// Printable name for a dispatch kind ("compute", "view-read",
// "od-scan", "od-apply", "transfer", "install-os", "install-uq",
// "remote-service").
const char* DispatchKindName(SystemObserver::DispatchKind kind);

// Printable name for a preempt reason ("update-arrival",
// "higher-priority-txn", "deadline").
const char* PreemptReasonName(SystemObserver::PreemptReason reason);

// Printable name for a scheduler choice ("receive", "install",
// "run-txn", "idle", "install-on-arrival", "governor-engage",
// "governor-disengage", "serve-remote", "remote-retry",
// "remote-degrade", "remote-abort").
const char* SchedulerChoiceName(SystemObserver::SchedulerChoice choice);

}  // namespace strip::core

#endif  // STRIP_CORE_OBSERVER_H_
