// Observation hooks into a running System.
//
// An observer receives the System's discrete outcomes as they happen —
// transaction completions/aborts, update installs/drops, stale reads,
// and run-phase boundaries — without perturbing the model. Any number
// of observers can be attached through the System's ObserverBus
// (core/observer_bus.h); used by the CSV trace writer
// (core/trace_writer.h), the observability layer (src/obs), and
// available to applications for custom monitoring (e.g., alerting on
// stale reads in the control-room example).

#ifndef STRIP_CORE_OBSERVER_H_
#define STRIP_CORE_OBSERVER_H_

#include "db/update.h"
#include "sim/sim_time.h"
#include "txn/transaction.h"

namespace strip::core {

class SystemObserver {
 public:
  virtual ~SystemObserver() = default;

  // A run-phase boundary the System crossed.
  enum class Phase {
    kWarmupEnd = 0,  // warm-up elapsed; statistics were just reset
    kRunEnd,         // simulation reached sim_seconds; metrics final
  };

  // Why an update left the system without being installed.
  enum class DropReason {
    kOsQueueFull = 0,   // kernel buffer overflow on arrival
    kQueueOverflow,     // update-queue bound exceeded
    kExpired,           // older than alpha (MA expiry purge)
    kUnworthy,          // database already held a newer value
    kSuperseded,        // a newer update for the same object exists
                        // (dedup_update_queue extension)
  };

  // A transaction reached a terminal state (outcome() is set; the
  // object is destroyed after this call returns).
  virtual void OnTransactionTerminal(sim::Time now,
                                     const txn::Transaction& transaction) {
    (void)now;
    (void)transaction;
  }

  // An update was written to the database. `on_demand` marks OD
  // installs triggered by a transaction's stale read.
  virtual void OnUpdateInstalled(sim::Time now, const db::Update& update,
                                 bool on_demand) {
    (void)now;
    (void)update;
    (void)on_demand;
  }

  // An update left the system without being installed.
  virtual void OnUpdateDropped(sim::Time now, const db::Update& update,
                               DropReason reason) {
    (void)now;
    (void)update;
    (void)reason;
  }

  // A view read returned stale data (under any criterion; fires whether
  // or not the system itself could detect the staleness). The
  // transaction is still live — under abort-on-stale the abort happens
  // *after* this call.
  virtual void OnStaleRead(sim::Time now, const txn::Transaction& transaction,
                           db::ObjectId object) {
    (void)now;
    (void)transaction;
    (void)object;
  }

  // The run crossed a phase boundary: warm-up ended (statistics reset)
  // or the simulation ended (metrics finalized). Lets samplers and
  // exporters align to the observation window without polling hacks.
  virtual void OnPhase(sim::Time now, Phase phase) {
    (void)now;
    (void)phase;
  }
};

// Printable name for a drop reason.
const char* DropReasonName(SystemObserver::DropReason reason);

// Printable name for a phase ("warmup_end" / "run_end").
const char* PhaseName(SystemObserver::Phase phase);

}  // namespace strip::core

#endif  // STRIP_CORE_OBSERVER_H_
