#include "core/policy.h"

#include "base/check.h"
#include "core/policy_fcf.h"
#include "core/policy_od.h"
#include "core/policy_su.h"
#include "core/policy_tf.h"
#include "core/policy_uf.h"

namespace strip::core {

std::unique_ptr<Policy> MakePolicy(const Config& config) {
  switch (config.policy) {
    case PolicyKind::kUpdateFirst:
      return std::make_unique<UpdateFirstPolicy>();
    case PolicyKind::kTransactionFirst:
      return std::make_unique<TransactionFirstPolicy>();
    case PolicyKind::kSplitUpdates:
      return std::make_unique<SplitUpdatesPolicy>();
    case PolicyKind::kOnDemand:
      return std::make_unique<OnDemandPolicy>();
    case PolicyKind::kFixedFraction:
      return std::make_unique<FixedFractionPolicy>(
          config.update_cpu_fraction);
  }
  STRIP_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

}  // namespace strip::core
