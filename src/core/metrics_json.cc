#include "core/metrics_json.h"

#include <cstdio>
#include <string>

namespace strip::core {

namespace {

// JSON has no inf/nan; clamp to null. %.17g round-trips doubles
// exactly, keeping the document bit-identical for identical runs.
std::string Number(double v) {
  char buffer[32];
  if (v != v || v > 1e308 || v < -1e308) return "null";
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::string Number(std::uint64_t v) { return std::to_string(v); }

}  // namespace

void WriteRunMetricsJson(std::ostream& out, const RunMetrics& m,
                         const char* member_indent,
                         const char* close_indent) {
  const auto field = [&](const char* name, const std::string& value,
                         bool last = false) {
    out << member_indent << "\"" << name << "\": " << value
        << (last ? "\n" : ",\n");
  };
  out << "{\n";
  field("observed_seconds", Number(m.observed_seconds));
  field("txns_arrived", Number(m.txns_arrived));
  field("txns_committed", Number(m.txns_committed));
  field("txns_committed_fresh", Number(m.txns_committed_fresh));
  field("txns_committed_stale", Number(m.txns_committed_stale));
  field("txns_missed_deadline", Number(m.txns_missed_deadline));
  field("txns_infeasible", Number(m.txns_infeasible));
  field("txns_stale_aborted", Number(m.txns_stale_aborted));
  field("txns_overload_dropped", Number(m.txns_overload_dropped));
  field("txns_inflight_at_end", Number(m.txns_inflight_at_end));
  field("value_committed", Number(m.value_committed));
  field("updates_arrived", Number(m.updates_arrived));
  field("updates_installed", Number(m.updates_installed));
  field("updates_unworthy", Number(m.updates_unworthy));
  field("updates_applied_on_demand", Number(m.updates_applied_on_demand));
  field("updates_dropped_os_full", Number(m.updates_dropped_os_full));
  field("updates_dropped_uq_overflow", Number(m.updates_dropped_uq_overflow));
  field("updates_dropped_expired", Number(m.updates_dropped_expired));
  field("updates_dropped_superseded", Number(m.updates_dropped_superseded));
  field("triggers_fired", Number(m.triggers_fired));
  field("io_stalls", Number(m.io_stalls));
  field("cpu_txn_seconds", Number(m.cpu_txn_seconds));
  field("cpu_update_seconds", Number(m.cpu_update_seconds));
  field("f_old_low", Number(m.f_old_low));
  field("f_old_high", Number(m.f_old_high));
  field("response_mean", Number(m.response_mean));
  field("response_p50", Number(m.response_p50));
  field("response_p95", Number(m.response_p95));
  field("response_p99", Number(m.response_p99));
  field("uq_length_avg", Number(m.uq_length_avg));
  field("uq_length_max", Number(m.uq_length_max));
  field("os_length_avg", Number(m.os_length_avg));
  // Robustness (fault injection & graceful degradation).
  field("fault_windows", Number(m.fault_windows));
  field("updates_lost_fault", Number(m.updates_lost_fault));
  field("updates_duplicated_fault", Number(m.updates_duplicated_fault));
  field("updates_reordered_fault", Number(m.updates_reordered_fault));
  field("updates_outage_deferred", Number(m.updates_outage_deferred));
  field("updates_shed_low", Number(m.updates_shed_by_class[0]));
  field("updates_shed_high", Number(m.updates_shed_by_class[1]));
  field("governor_engagements", Number(m.governor_engagements));
  field("governor_engaged_seconds", Number(m.governor_engaged_seconds));
  field("outage_recovery_seconds",
        m.outage_recovery_seconds < 0
            ? std::string("null")
            : Number(m.outage_recovery_seconds));
  field("max_stale_excursion", Number(m.max_stale_excursion));
  field("txns_missed_in_fault", Number(m.txns_missed_in_fault));
  // Cross-shard rendezvous (sharded model; all zero at shards=1).
  field("txns_cross_shard", Number(m.txns_cross_shard));
  field("remote_reads_issued", Number(m.remote_reads_issued));
  field("remote_reads_served", Number(m.remote_reads_served));
  field("remote_replies_orphaned", Number(m.remote_replies_orphaned));
  field("remote_heals", Number(m.remote_heals));
  field("remote_stale_replies", Number(m.remote_stale_replies));
  field("remote_wait_seconds", Number(m.remote_wait_seconds));
  field("cpu_remote_seconds", Number(m.cpu_remote_seconds));
  // Interconnect robustness (delayed/lossy/partitioned links). The
  // last four live only on a cluster aggregate; time_to_reconnect is
  // null when no cut window healed before a successful delivery.
  field("remote_retries", Number(m.remote_retries));
  field("remote_timeouts", Number(m.remote_timeouts));
  field("remote_degraded_reads", Number(m.remote_degraded_reads));
  field("txns_remote_unavailable", Number(m.txns_remote_unavailable));
  field("link_messages_lost", Number(m.link_messages_lost));
  field("partition_windows", Number(m.partition_windows));
  field("partition_seconds", Number(m.partition_seconds));
  field("time_to_reconnect", m.time_to_reconnect < 0
                                 ? std::string("null")
                                 : Number(m.time_to_reconnect));
  // Cluster-true percentiles (bucket-merged across shards); null when
  // not computed — per-shard metrics and uniprocessor runs.
  field("response_p50_cluster", m.response_p50_cluster < 0
                                    ? std::string("null")
                                    : Number(m.response_p50_cluster));
  field("response_p95_cluster", m.response_p95_cluster < 0
                                    ? std::string("null")
                                    : Number(m.response_p95_cluster));
  field("response_p99_cluster", m.response_p99_cluster < 0
                                    ? std::string("null")
                                    : Number(m.response_p99_cluster));
  // Derived ratios.
  field("p_md", Number(m.p_md()));
  field("p_success", Number(m.p_success()));
  field("p_suc_nontardy", Number(m.p_suc_nontardy()));
  field("av", Number(m.av()));
  field("rho_t", Number(m.rho_t()));
  field("rho_u", Number(m.rho_u()), /*last=*/true);
  out << close_indent << "}";
}

}  // namespace strip::core
