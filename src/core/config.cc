#include "core/config.h"

#include <cmath>

#include "fault/fault_schedule.h"

namespace strip::core {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kUpdateFirst:
      return "UF";
    case PolicyKind::kTransactionFirst:
      return "TF";
    case PolicyKind::kSplitUpdates:
      return "SU";
    case PolicyKind::kOnDemand:
      return "OD";
    case PolicyKind::kFixedFraction:
      return "FCF";
  }
  return "?";
}

const char* QueueDisciplineName(QueueDiscipline discipline) {
  return discipline == QueueDiscipline::kFifo ? "FIFO" : "LIFO";
}

const char* RemoteFallbackName(RemoteFallback fallback) {
  return fallback == RemoteFallback::kStale ? "stale" : "abort";
}

workload::UpdateStream::Params Config::UpdateStreamParams() const {
  workload::UpdateStream::Params p;
  p.arrival_rate = lambda_u;
  p.p_low = p_ul;
  p.mean_age = a_update;
  p.n_low = n_low;
  p.n_high = n_high;
  p.periodic = periodic_updates;
  p.n_attributes = n_attributes;
  p.bursty = bursty_updates;
  p.burst_rate = lambda_u_peak;
  p.normal_dwell = normal_dwell_seconds;
  p.burst_dwell = burst_dwell_seconds;
  return p;
}

workload::TxnSource::Params Config::TxnSourceParams() const {
  workload::TxnSource::Params p;
  p.arrival_rate = lambda_t;
  p.p_low = p_tl;
  p.slack_min = s_min;
  p.slack_max = s_max;
  p.value_mean_low = v_low_mean;
  p.value_mean_high = v_high_mean;
  p.value_sd_low = v_low_sd;
  p.value_sd_high = v_high_sd;
  p.reads_mean = reads_mean;
  p.reads_sd = reads_sd;
  p.comp_mean = comp_mean;
  p.comp_sd = comp_sd;
  p.p_view = p_view;
  p.lookup_instructions = x_lookup;
  p.ips = ips;
  p.n_low = n_low;
  p.n_high = n_high;
  return p;
}

std::optional<std::string> Config::Validate() const {
  // Reject NaN/inf up front: NaN slips through every ordered
  // comparison below (NaN <= 0 is false), so without this a NaN rate
  // would "validate" and silently poison every derived statistic.
  struct Named {
    const char* name;
    double value;
  };
  const Named doubles[] = {
      {"lambda_u", lambda_u},
      {"p_ul", p_ul},
      {"a_update", a_update},
      {"lambda_t", lambda_t},
      {"p_tl", p_tl},
      {"s_min", s_min},
      {"s_max", s_max},
      {"v_low_mean", v_low_mean},
      {"v_high_mean", v_high_mean},
      {"v_low_sd", v_low_sd},
      {"v_high_sd", v_high_sd},
      {"reads_mean", reads_mean},
      {"reads_sd", reads_sd},
      {"alpha", alpha},
      {"comp_mean", comp_mean},
      {"comp_sd", comp_sd},
      {"p_view", p_view},
      {"ips", ips},
      {"x_lookup", x_lookup},
      {"x_update", x_update},
      {"x_switch", x_switch},
      {"x_queue", x_queue},
      {"x_scan", x_scan},
      {"sim_seconds", sim_seconds},
      {"warmup_seconds", warmup_seconds},
      {"update_cpu_fraction", update_cpu_fraction},
      {"trigger_probability", trigger_probability},
      {"x_trigger", x_trigger},
      {"buffer_hit_ratio", buffer_hit_ratio},
      {"io_seconds", io_seconds},
      {"lambda_u_peak", lambda_u_peak},
      {"normal_dwell_seconds", normal_dwell_seconds},
      {"burst_dwell_seconds", burst_dwell_seconds},
      {"governor_high_watermark", governor_high_watermark},
      {"governor_low_watermark", governor_low_watermark},
      {"governor_stale_threshold", governor_stale_threshold},
      {"remote_timeout_s", remote_timeout_s},
      {"remote_retry_backoff", remote_retry_backoff},
  };
  for (const Named& d : doubles) {
    if (!std::isfinite(d.value)) {
      return std::string(d.name) + " must be finite";
    }
  }
  if (lambda_u <= 0) return "lambda_u must be positive";
  if (p_ul < 0 || p_ul > 1) return "p_ul must be in [0, 1]";
  if (a_update <= 0) return "a_update must be positive";
  if (n_low <= 0 || n_high <= 0) return "partitions must be non-empty";
  if (lambda_t <= 0) return "lambda_t must be positive";
  if (p_tl < 0 || p_tl > 1) return "p_tl must be in [0, 1]";
  if (s_min < 0 || s_min > s_max) return "slack range invalid";
  if (reads_mean < 0) return "reads_mean must be non-negative";
  if (comp_mean < 0) return "comp_mean must be non-negative";
  if (p_view < 0 || p_view > 1) return "p_view must be in [0, 1]";
  if (ips <= 0) return "ips must be positive";
  if (x_lookup < 0 || x_update < 0 || x_switch < 0 || x_queue < 0 ||
      x_scan < 0) {
    return "instruction costs must be non-negative";
  }
  if (os_max <= 0) return "os_max must be positive";
  if (uq_max <= 0) return "uq_max must be positive";
  if (staleness != db::StalenessCriterion::kUnappliedUpdate && alpha <= 0) {
    return "alpha must be positive under a Maximum Age criterion";
  }
  if (sim_seconds <= 0) return "sim_seconds must be positive";
  if (warmup_seconds < 0 || warmup_seconds >= sim_seconds) {
    return "warmup must lie within the run";
  }
  if (policy == PolicyKind::kFixedFraction &&
      (update_cpu_fraction < 0 || update_cpu_fraction > 1)) {
    return "update_cpu_fraction must be in [0, 1]";
  }
  if (trigger_probability < 0 || trigger_probability > 1) {
    return "trigger_probability must be in [0, 1]";
  }
  if (x_trigger < 0) return "x_trigger must be non-negative";
  if (buffer_hit_ratio < 0 || buffer_hit_ratio > 1) {
    return "buffer_hit_ratio must be in [0, 1]";
  }
  if (io_seconds < 0) return "io_seconds must be non-negative";
  if (history_depth < 0) return "history_depth must be non-negative";
  if (n_attributes < 1) return "n_attributes must be at least 1";
  if (bursty_updates) {
    if (lambda_u_peak <= 0) return "lambda_u_peak must be positive";
    if (normal_dwell_seconds <= 0 || burst_dwell_seconds <= 0) {
      return "burst dwell times must be positive";
    }
    if (periodic_updates) return "bursty and periodic modes are exclusive";
  }
  if (admission_limit < 0) return "admission_limit must be non-negative";
  if (dedup_update_queue && n_attributes > 1) {
    return "dedup_update_queue requires complete updates "
           "(n_attributes = 1): a partial update does not supersede "
           "one for a different attribute";
  }
  if (!faults.empty()) {
    std::string fault_error;
    const std::optional<fault::FaultSchedule> schedule =
        fault::FaultSchedule::Parse(faults, &fault_error);
    if (!schedule.has_value()) return fault_error;
    for (const fault::FaultWindow& w : schedule->windows()) {
      if (fault::IsClusterScoped(w.kind)) {
        return std::string("faults: \"") + fault::FaultKindName(w.kind) +
               "\" is cluster-scoped (use cluster_faults)";
      }
    }
  }
  if (remote_timeout_s < 0) return "remote_timeout_s must be non-negative";
  if (remote_retry_backoff < 1) return "remote_retry_backoff must be >= 1";
  if (remote_retry_max < 0) return "remote_retry_max must be non-negative";
  if (overload_governor) {
    if (governor_low_watermark <= 0 ||
        governor_low_watermark >= governor_high_watermark ||
        governor_high_watermark > 1) {
      return "governor watermarks must satisfy 0 < low < high <= 1";
    }
    if (governor_stale_threshold < 0 || governor_stale_threshold > 1) {
      return "governor_stale_threshold must be in [0, 1]";
    }
  }
  return std::nullopt;
}

}  // namespace strip::core
