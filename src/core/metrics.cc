#include "core/metrics.h"

#include <cstdio>

namespace strip::core {

double RunMetrics::p_md() const {
  const std::uint64_t total = txns_terminal();
  if (total == 0) return 0.0;
  return static_cast<double>(total - txns_committed) /
         static_cast<double>(total);
}

double RunMetrics::p_success() const {
  const std::uint64_t total = txns_terminal();
  if (total == 0) return 0.0;
  return static_cast<double>(txns_committed_fresh) /
         static_cast<double>(total);
}

double RunMetrics::p_suc_nontardy() const {
  if (txns_committed == 0) return 0.0;
  return static_cast<double>(txns_committed_fresh) /
         static_cast<double>(txns_committed);
}

double RunMetrics::av() const {
  if (observed_seconds <= 0) return 0.0;
  return value_committed / observed_seconds;
}

double RunMetrics::rho_t() const {
  if (observed_seconds <= 0) return 0.0;
  return cpu_txn_seconds / observed_seconds;
}

double RunMetrics::rho_u() const {
  if (observed_seconds <= 0) return 0.0;
  return cpu_update_seconds / observed_seconds;
}

double RunMetrics::rho_r() const {
  if (observed_seconds <= 0) return 0.0;
  return cpu_remote_seconds / observed_seconds;
}

std::string RunMetrics::ToString() const {
  char buffer[1536];
  std::snprintf(
      buffer, sizeof(buffer),
      "observed %.1fs\n"
      "txns: arrived=%llu committed=%llu (fresh=%llu stale=%llu) "
      "missed=%llu infeasible=%llu stale-aborted=%llu inflight=%llu\n"
      "updates: arrived=%llu installed=%llu unworthy=%llu on-demand=%llu "
      "dropped(os=%llu uq=%llu expired=%llu)\n"
      "cpu: rho_t=%.3f rho_u=%.3f total=%.3f\n"
      "staleness: f_old_l=%.3f f_old_h=%.3f\n"
      "derived: p_MD=%.3f p_success=%.3f p_suc|nontardy=%.3f AV=%.2f\n"
      "response: mean=%.3fs p50=%.3fs p95=%.3fs p99=%.3fs\n"
      "queues: uq_avg=%.1f uq_max=%llu os_avg=%.1f\n"
      "extensions: triggers=%llu io_stalls=%llu\n",
      observed_seconds, (unsigned long long)txns_arrived,
      (unsigned long long)txns_committed,
      (unsigned long long)txns_committed_fresh,
      (unsigned long long)txns_committed_stale,
      (unsigned long long)txns_missed_deadline,
      (unsigned long long)txns_infeasible,
      (unsigned long long)txns_stale_aborted,
      (unsigned long long)txns_inflight_at_end,
      (unsigned long long)updates_arrived,
      (unsigned long long)updates_installed,
      (unsigned long long)updates_unworthy,
      (unsigned long long)updates_applied_on_demand,
      (unsigned long long)updates_dropped_os_full,
      (unsigned long long)updates_dropped_uq_overflow,
      (unsigned long long)updates_dropped_expired, rho_t(), rho_u(),
      rho_total(), f_old_low, f_old_high, p_md(), p_success(),
      p_suc_nontardy(), av(), response_mean, response_p50, response_p95,
      response_p99, uq_length_avg, (unsigned long long)uq_length_max,
      os_length_avg, (unsigned long long)triggers_fired,
      (unsigned long long)io_stalls);
  std::string out = buffer;
  // The fault block only appears when something fault-related actually
  // happened, keeping no-fault output byte-identical to older builds.
  const bool any_fault_activity =
      fault_windows != 0 || updates_lost_fault != 0 ||
      updates_duplicated_fault != 0 || updates_reordered_fault != 0 ||
      updates_outage_deferred != 0 || updates_shed_by_class[0] != 0 ||
      updates_shed_by_class[1] != 0 || governor_engagements != 0 ||
      outage_recovery_seconds >= 0 || txns_missed_in_fault != 0;
  if (any_fault_activity) {
    std::snprintf(
        buffer, sizeof(buffer),
        "faults: windows=%llu lost=%llu dup=%llu reordered=%llu "
        "deferred=%llu shed(l=%llu h=%llu) governor(n=%llu t=%.1fs) "
        "recovery=%.3fs max_stale=%.3f missed_in_fault=%llu\n",
        (unsigned long long)fault_windows,
        (unsigned long long)updates_lost_fault,
        (unsigned long long)updates_duplicated_fault,
        (unsigned long long)updates_reordered_fault,
        (unsigned long long)updates_outage_deferred,
        (unsigned long long)updates_shed_by_class[0],
        (unsigned long long)updates_shed_by_class[1],
        (unsigned long long)governor_engagements,
        governor_engaged_seconds, outage_recovery_seconds,
        max_stale_excursion, (unsigned long long)txns_missed_in_fault);
    out += buffer;
  }
  // Likewise the cross-shard block: only printed when the run actually
  // exchanged remote reads, so uniprocessor (shards=1) output stays
  // byte-identical to the pre-sharding model.
  const bool any_remote_activity =
      txns_cross_shard != 0 || remote_reads_issued != 0 ||
      remote_reads_served != 0 || remote_replies_orphaned != 0 ||
      remote_heals != 0 || remote_stale_replies != 0 ||
      remote_wait_seconds != 0 || cpu_remote_seconds != 0;
  if (any_remote_activity) {
    std::snprintf(
        buffer, sizeof(buffer),
        "remote: txns=%llu issued=%llu served=%llu orphaned=%llu "
        "heals=%llu stale=%llu wait=%.3fs rho_r=%.3f\n",
        (unsigned long long)txns_cross_shard,
        (unsigned long long)remote_reads_issued,
        (unsigned long long)remote_reads_served,
        (unsigned long long)remote_replies_orphaned,
        (unsigned long long)remote_heals,
        (unsigned long long)remote_stale_replies, remote_wait_seconds,
        rho_r());
    out += buffer;
  }
  // The interconnect block: only when the link model actually bit — a
  // retry, a timeout, a lost message, or a partition window — so
  // perfect-fabric output stays byte-identical.
  const bool any_link_activity =
      remote_retries != 0 || remote_timeouts != 0 ||
      remote_degraded_reads != 0 || txns_remote_unavailable != 0 ||
      link_messages_lost != 0 || partition_windows != 0;
  if (any_link_activity) {
    std::snprintf(
        buffer, sizeof(buffer),
        "interconnect: retries=%llu timeouts=%llu degraded=%llu "
        "unavailable=%llu lost=%llu partitions(n=%llu t=%.1fs) "
        "reconnect=%.3fs\n",
        (unsigned long long)remote_retries,
        (unsigned long long)remote_timeouts,
        (unsigned long long)remote_degraded_reads,
        (unsigned long long)txns_remote_unavailable,
        (unsigned long long)link_messages_lost,
        (unsigned long long)partition_windows, partition_seconds,
        time_to_reconnect);
    out += buffer;
  }
  // Cluster-true percentiles: only present on a multi-shard aggregate
  // (the -1 sentinel keeps every other dump byte-identical).
  if (response_p50_cluster >= 0) {
    std::snprintf(buffer, sizeof(buffer),
                  "cluster response: p50=%.3fs p95=%.3fs p99=%.3fs "
                  "(worst-shard p99=%.3fs)\n",
                  response_p50_cluster, response_p95_cluster,
                  response_p99_cluster, response_p99);
    out += buffer;
  }
  return out;
}

}  // namespace strip::core
