// Fan-out of SystemObserver callbacks to any number of observers.
//
// The bus replaces the System's former single set_observer slot: the
// trace writer, the observability layer's sampler and telemetry
// recorder (src/obs), and application monitors can all listen to one
// run at once. Observers are notified in registration order.
//
// Dispatch is reentrancy-safe: an observer may add or remove observers
// (including itself) from inside a callback. Observers removed during
// a dispatch stop receiving events immediately; observers added during
// a dispatch first hear the *next* event. With no observers attached
// every Notify* call is a single inline emptiness test — no allocation,
// no virtual call — preserving the simulation core's zero-alloc hot
// path.
//
// ScopedObserver provides RAII registration:
//
//   obs::PeriodicSampler sampler(...);
//   core::ScopedObserver scoped(&system.observer_bus(), &sampler);
//   system.Run();   // sampler detaches when `scoped` dies

#ifndef STRIP_CORE_OBSERVER_BUS_H_
#define STRIP_CORE_OBSERVER_BUS_H_

#include <cstddef>
#include <vector>

#include "core/observer.h"

namespace strip::core {

class ObserverBus {
 public:
  ObserverBus() = default;
  ObserverBus(const ObserverBus&) = delete;
  ObserverBus& operator=(const ObserverBus&) = delete;

  // Registers `observer` (must be non-null and outlive its
  // registration). Registering the same observer twice is an error.
  void Add(SystemObserver* observer);

  // Unregisters `observer`. Returns false if it was not registered.
  // Safe to call from inside a dispatch.
  bool Remove(SystemObserver* observer);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // --- dispatch (called by System) -----------------------------------------

  void NotifyTransactionTerminal(sim::Time now,
                                 const txn::Transaction& transaction);
  void NotifyUpdateInstalled(sim::Time now, const db::Update& update,
                             const txn::Transaction* on_demand_by);
  void NotifyUpdateDropped(sim::Time now, const db::Update& update,
                           SystemObserver::DropReason reason);
  void NotifyStaleRead(sim::Time now, const txn::Transaction& transaction,
                       db::ObjectId object);
  void NotifyPhase(sim::Time now, SystemObserver::Phase phase);
  void NotifyTxnAdmitted(sim::Time now, const txn::Transaction& transaction);
  void NotifyUpdateArrival(sim::Time now, const db::Update& update);
  void NotifyUpdateEnqueued(sim::Time now, const db::Update& update);
  void NotifyDispatch(sim::Time now,
                      const SystemObserver::DispatchInfo& dispatch);
  void NotifySegmentComplete(sim::Time now,
                             const SystemObserver::DispatchInfo& dispatch);
  void NotifyPreempt(sim::Time now, const txn::Transaction& transaction,
                     SystemObserver::PreemptReason reason);
  void NotifyPolicyDecision(sim::Time now, PolicyKind policy,
                            SystemObserver::SchedulerChoice choice,
                            const char* reason);
  void NotifyFaultWindow(sim::Time now,
                         const SystemObserver::FaultWindowInfo& window);
  void NotifyShardRemoteIssued(sim::Time now, const RemoteRead& read);
  void NotifyShardRemoteQueued(sim::Time now, const RemoteRead& read);
  void NotifyShardRemoteServiced(sim::Time now, const RemoteRead& read);
  void NotifyShardRemoteResolved(sim::Time now, const RemoteRead& read,
                                 bool txn_live);
  void NotifyShardRemoteDropped(sim::Time now, const RemoteRead& read,
                                bool reply_leg);
  void NotifyRemoteTimeout(sim::Time now, const RemoteRead& read, int attempt,
                           bool will_retry);
  void NotifyDegradedRead(sim::Time now, const RemoteRead& read);

 private:
  // Runs `fn(observer)` over the registration order, tolerating
  // add/remove from inside the callbacks.
  template <typename Fn>
  void Dispatch(Fn&& fn);

  // Drops slots nulled by Remove() once no dispatch is walking them.
  void Compact();

  // Removed observers are nulled in place (so walking indexes stay
  // valid mid-dispatch) and compacted when the outermost dispatch
  // finishes.
  std::vector<SystemObserver*> observers_;
  std::size_t live_count_ = 0;
  int dispatch_depth_ = 0;
  bool needs_compaction_ = false;
};

// RAII registration on a bus: adds in the constructor, removes in the
// destructor. The bus and the observer must outlive the registration.
class ScopedObserver {
 public:
  ScopedObserver(ObserverBus* bus, SystemObserver* observer)
      : bus_(bus), observer_(observer) {
    bus_->Add(observer_);
  }
  ~ScopedObserver() { bus_->Remove(observer_); }

  ScopedObserver(const ScopedObserver&) = delete;
  ScopedObserver& operator=(const ScopedObserver&) = delete;

 private:
  ObserverBus* bus_;
  SystemObserver* observer_;
};

}  // namespace strip::core

#endif  // STRIP_CORE_OBSERVER_BUS_H_
