// Split Updates (SU), Section 4.3.
//
// A compromise: updates to high-importance data are applied on arrival
// (preempting transactions, as UF does); updates to low-importance data
// are queued by the controller and installed only when no transaction
// is waiting (as TF does). High-importance updates are never queued by
// the controller: the receive path installs them straight from the OS
// buffer.

#ifndef STRIP_CORE_POLICY_SU_H_
#define STRIP_CORE_POLICY_SU_H_

#include "core/policy.h"

namespace strip::core {

class SplitUpdatesPolicy final : public Policy {
 public:
  PolicyKind kind() const override { return PolicyKind::kSplitUpdates; }

  bool InstallOnArrival(const db::Update& update) const override {
    return update.object.cls == db::ObjectClass::kHighImportance;
  }

  // Low-importance installs from the update queue wait for an idle
  // system, exactly as under TF. (High-importance updates never reach
  // the update queue.)
  bool UpdaterHasPriority(const UpdaterContext&) const override {
    return false;
  }

  bool AppliesOnDemand() const override { return false; }

  bool UsesUpdateQueue() const override { return true; }

  // SU splits by importance: high-importance arrivals preempt, the
  // rest queue and wait like TF.
  const char* ArrivalReason(const db::Update& update) const override {
    return update.object.cls == db::ObjectClass::kHighImportance
               ? "su-high-install-on-arrival"
               : "su-low-queue-on-arrival";
  }

  const char* PriorityReason(const UpdaterContext&) const override {
    return "su-low-txns-first";
  }
};

}  // namespace strip::core

#endif  // STRIP_CORE_POLICY_SU_H_
