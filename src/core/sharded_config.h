// Configuration of a sharded (multiprocessor) run: the base Config of
// every shard engine plus the cluster-level knobs — shard count,
// object placement, per-shard hardware/fault overrides, and feed-skew
// controls for hot-shard scenarios.
//
// shards == 1 is the uniprocessor model: core::Cluster then constructs
// exactly one System from `base` verbatim and the run is byte-identical
// to constructing the System directly (pinned by tests).

#ifndef STRIP_CORE_SHARDED_CONFIG_H_
#define STRIP_CORE_SHARDED_CONFIG_H_

#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "db/placement.h"

namespace strip::core {

struct ShardedConfig {
  // Every shard engine starts from this config; n_low/n_high describe
  // the *global* object space (the cluster gives each shard its owned
  // slice), lambda_u/lambda_t the global feed and workload rates.
  Config base;

  // Number of shard engines (simulated CPUs). 1 = the paper's model.
  int shards = 1;

  // How the global object space maps onto shards.
  db::PlacementKind placement = db::PlacementKind::kHash;

  // Per-shard overrides; empty = every shard uses the base value.
  // Non-empty vectors must have exactly `shards` entries.
  std::vector<double> shard_ips;        // CPU speed per shard
  std::vector<double> shard_x_switch;   // context-switch cost per shard
  std::vector<std::string> shard_faults;  // fault schedule per shard
                                          // ("" = no faults there)

  // Feed skew: with probability feed_hot_fraction an update is
  // redirected to a (uniformly drawn) object owned by feed_hot_shard,
  // preserving the update's importance class. 0 disables; models a hot
  // feed hammering one shard's key range.
  int feed_hot_shard = -1;
  double feed_hot_fraction = 0.0;

  // Interconnect model (core/interconnect.h). All zero / empty is the
  // perfect interconnect: cross-shard messages are delivered
  // synchronously, byte-identical to the pre-interconnect cluster.
  // Any non-zero knob turns deliveries into simulator events.
  double link_latency_us = 0.0;  // fixed per-message delay, microseconds
  double link_jitter_us = 0.0;   // mean exponential extra delay, microseconds
  double link_loss_p = 0.0;      // steady-state per-message loss probability
  // Scheduled interconnect faults: a FaultSchedule spec restricted to
  // the cluster-scoped kinds (link-latency@, link-loss@, partition@,
  // shard-outage@).
  std::string cluster_faults;

  bool single_shard() const { return shards <= 1; }

  // The effective Config of one shard engine: base with the per-shard
  // overrides applied and n_low/n_high cut down to the shard's owned
  // object counts. Only meaningful for shards > 1 (the single-shard
  // cluster uses `base` verbatim).
  Config ShardConfig(int shard) const;

  // Returns an error message if any parameter is out of range
  // (including base.Validate()), or nullopt if valid.
  [[nodiscard]] std::optional<std::string> Validate() const;
};

}  // namespace strip::core

#endif  // STRIP_CORE_SHARDED_CONFIG_H_
