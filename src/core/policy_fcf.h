// Fixed CPU Fraction (FCF) — an extension.
//
// The paper's future-work list (Section 7) suggests "giving a fixed CPU
// fraction to updates". This policy grants the update process priority
// whenever its cumulative CPU usage since observation start is below a
// configured share of elapsed time and it has work pending; otherwise
// transactions run first (as under TF). A deficit-style guarantee: the
// updater can never starve below its share while updates are pending,
// and never exceeds it while transactions wait.

#ifndef STRIP_CORE_POLICY_FCF_H_
#define STRIP_CORE_POLICY_FCF_H_

#include "core/policy.h"

namespace strip::core {

class FixedFractionPolicy final : public Policy {
 public:
  // `fraction` is the updater's guaranteed CPU share in [0, 1].
  explicit FixedFractionPolicy(double fraction) : fraction_(fraction) {}

  PolicyKind kind() const override { return PolicyKind::kFixedFraction; }

  bool InstallOnArrival(const db::Update&) const override { return false; }

  bool UpdaterHasPriority(const UpdaterContext& context) const override {
    if (context.os_pending + context.uq_pending == 0) return false;
    const sim::Duration elapsed =
        context.now - context.observation_start;
    return context.updater_cpu_seconds < fraction_ * elapsed;
  }

  bool AppliesOnDemand() const override { return false; }

  bool UsesUpdateQueue() const override { return true; }

  // FCF's updater priority is a deficit test against its CPU share.
  const char* ArrivalReason(const db::Update&) const override {
    return "fcf-queue-on-arrival";
  }

  const char* PriorityReason(const UpdaterContext& context) const override {
    if (context.os_pending + context.uq_pending == 0) return "fcf-no-work";
    return UpdaterHasPriority(context) ? "fcf-below-share"
                                       : "fcf-share-spent";
  }

  double fraction() const { return fraction_; }

 private:
  double fraction_;
};

}  // namespace strip::core

#endif  // STRIP_CORE_POLICY_FCF_H_
