// CSV trace of a run's discrete outcomes.
//
// Attach to a System (System::AddObserver) before Run() to stream
// per-transaction and per-update records to any std::ostream:
//
//   txn,<time>,<id>,<class>,<value>,<arrival>,<deadline>,<outcome>,<stale_reads>
//   update,<time>,<id>,<class>,<index>,<generation>,<event>
//   stale,<time>,<txn_id>,<txn_class>,<obj_class>,<obj_index>
//   phase,<time>,,,<phase>
//
// where <event> is installed / installed-od / a drop reason. Handy for
// post-hoc latency and loss analysis outside the built-in metrics.

#ifndef STRIP_CORE_TRACE_WRITER_H_
#define STRIP_CORE_TRACE_WRITER_H_

#include <cstdint>
#include <ostream>

#include "core/observer.h"

namespace strip::core {

class TraceWriter : public SystemObserver {
 public:
  // What to include in the trace.
  struct Options {
    bool transactions = true;
    bool updates = false;  // 400/s of updates makes for large traces
    bool stale_reads = true;
    bool phases = true;
  };

  // Writes CSV (with a header line) to `out`, which must outlive the
  // writer.
  explicit TraceWriter(std::ostream* out) : TraceWriter(out, Options()) {}
  TraceWriter(std::ostream* out, Options options);

  void OnTransactionTerminal(sim::Time now,
                             const txn::Transaction& transaction) override;
  void OnUpdateInstalled(sim::Time now, const db::Update& update,
                         const txn::Transaction* on_demand_by) override;
  void OnUpdateDropped(sim::Time now, const db::Update& update,
                       DropReason reason) override;
  void OnStaleRead(sim::Time now, const txn::Transaction& transaction,
                   db::ObjectId object) override;
  void OnPhase(sim::Time now, Phase phase) override;

  std::uint64_t records_written() const { return records_written_; }

 private:
  void WriteUpdateRecord(sim::Time now, const db::Update& update,
                         const char* event);

  std::ostream* out_;
  Options options_;
  std::uint64_t records_written_ = 0;
};

}  // namespace strip::core

#endif  // STRIP_CORE_TRACE_WRITER_H_
