// Run-level performance metrics (Section 3.5).
//
// The paper extends the traditional missed-deadline metric with data-
// timeliness metrics. RunMetrics carries the raw event counts and CPU
// integrals of one run; the derived quantities are the paper's:
//
//   f_old_l / f_old_h — time-averaged fraction of stale view objects,
//   p_MD              — fraction of transactions missing their deadline,
//   p_success         — fraction committing on time with only fresh reads,
//   p_suc_nontardy    — of the on-time ones, the fraction reading fresh,
//   AV                — value returned per second,
//   rho_t / rho_u     — CPU fractions spent on transactions / updates.

#ifndef STRIP_CORE_METRICS_H_
#define STRIP_CORE_METRICS_H_

#include <cstdint>
#include <string>

#include "sim/sim_time.h"

namespace strip::core {

struct RunMetrics {
  // Observation window (warm-up excluded).
  sim::Duration observed_seconds = 0;

  // --- transactions -------------------------------------------------------
  std::uint64_t txns_arrived = 0;
  std::uint64_t txns_committed = 0;
  // Committed without ever reading stale data.
  std::uint64_t txns_committed_fresh = 0;
  // Firm deadline fired before completion.
  std::uint64_t txns_missed_deadline = 0;
  // Screened out by the feasible-deadline policy.
  std::uint64_t txns_infeasible = 0;
  // Aborted for reading stale data (Section 6.2 scenario).
  std::uint64_t txns_stale_aborted = 0;
  // Rejected at arrival by admission control (extension).
  std::uint64_t txns_overload_dropped = 0;
  // Still executing or queued when the run ended.
  std::uint64_t txns_inflight_at_end = 0;
  // Committed transactions that read at least one stale object.
  std::uint64_t txns_committed_stale = 0;
  double value_committed = 0;
  // Per-value-class breakdowns, indexed by txn::TxnClass (0 = low,
  // 1 = high); SU's whole point is to treat these differently.
  std::uint64_t txns_arrived_by_class[2] = {0, 0};
  std::uint64_t txns_committed_by_class[2] = {0, 0};
  double value_committed_by_class[2] = {0, 0};

  // --- updates ---------------------------------------------------------------
  std::uint64_t updates_arrived = 0;
  std::uint64_t updates_dropped_os_full = 0;
  std::uint64_t updates_dropped_uq_overflow = 0;
  std::uint64_t updates_dropped_expired = 0;
  // Installs that wrote the database.
  std::uint64_t updates_installed = 0;
  // Installs skipped by the worthiness check (older than DB value).
  std::uint64_t updates_unworthy = 0;
  // Discarded at receive because a newer update for the same object
  // made them worthless (dedup_update_queue extension).
  std::uint64_t updates_dropped_superseded = 0;
  // Installs performed on demand by transactions (OD).
  std::uint64_t updates_applied_on_demand = 0;
  // Extension counters: derived-data rules fired by installs, and
  // buffer-pool misses under the disk-residence model.
  std::uint64_t triggers_fired = 0;
  std::uint64_t io_stalls = 0;

  // --- CPU -----------------------------------------------------------------
  sim::Duration cpu_txn_seconds = 0;
  sim::Duration cpu_update_seconds = 0;

  // --- staleness -----------------------------------------------------------
  double f_old_low = 0;
  double f_old_high = 0;

  // --- response times (committed transactions; seconds) ----------------------
  double response_mean = 0;
  double response_p50 = 0;
  double response_p95 = 0;
  double response_p99 = 0;

  // --- queues ----------------------------------------------------------------
  double uq_length_avg = 0;
  std::uint64_t uq_length_max = 0;
  double os_length_avg = 0;

  // --- robustness (fault injection & graceful degradation) -------------------
  // All zero / negative-sentinel when the run had no fault schedule
  // and no shedding, so no-fault output is unchanged.
  //
  // Injector activity counts are whole-run (the injector acts between
  // the feed and the system, so its counts are not reset at warm-up;
  // everything else below observes the post-warm-up window).
  std::uint64_t fault_windows = 0;  // window begins seen
  std::uint64_t updates_lost_fault = 0;
  std::uint64_t updates_duplicated_fault = 0;
  std::uint64_t updates_reordered_fault = 0;
  std::uint64_t updates_outage_deferred = 0;
  // Importance-aware overload shedding, by evicted class (0 = low,
  // 1 = high importance).
  std::uint64_t updates_shed_by_class[2] = {0, 0};
  // Overload-governor activity.
  std::uint64_t governor_engagements = 0;
  sim::Duration governor_engaged_seconds = 0;
  // Time from the end of the (last) outage window until the combined
  // stale fraction recovered to its pre-outage level; -1 when no
  // outage ended or freshness never recovered.
  double outage_recovery_seconds = -1;
  // Peak combined stale fraction sampled while any fault window was
  // active or an outage recovery was pending.
  double max_stale_excursion = 0;
  // Deadline misses (incl. infeasible screens) while a fault window
  // was active or an outage recovery was pending — the miss excess
  // attributable to faults.
  std::uint64_t txns_missed_in_fault = 0;

  // --- cross-shard rendezvous (sharded model; core/cluster.h) ----------------
  // All zero in a uniprocessor run (shards=1 never issues remote
  // reads), so single-shard output is unchanged.
  //
  // Transactions admitted on this shard with at least one remote read.
  std::uint64_t txns_cross_shard = 0;
  // Remote read requests this shard issued as a home (one per remote
  // view read) / serviced as a peer.
  std::uint64_t remote_reads_issued = 0;
  std::uint64_t remote_reads_served = 0;
  // Replies whose transaction had already died (deadline during the
  // remote wait); delivered for the census, dropped for the model.
  std::uint64_t remote_replies_orphaned = 0;
  // Peer-side on-demand installs performed while servicing a remote
  // read (OD policy only).
  std::uint64_t remote_heals = 0;
  // Replies that reported the read stale after any heal.
  std::uint64_t remote_stale_replies = 0;
  // Home-side CPU hold time spent waiting on remote replies (the CPU
  // is occupied but does no work; not part of cpu_txn_seconds).
  sim::Duration remote_wait_seconds = 0;
  // Peer-side CPU spent servicing remote reads (lookups + heals).
  sim::Duration cpu_remote_seconds = 0;
  // True cluster-level response percentiles, from bucket-merging the
  // per-shard response histograms (the response_p50/p95/p99 above are
  // the worst shard's in an aggregate — an upper bound). -1 when not
  // computed: uniprocessor runs, per-shard metrics, or a histogram
  // layout mismatch across shards.
  double response_p50_cluster = -1;
  double response_p95_cluster = -1;
  double response_p99_cluster = -1;

  // --- interconnect robustness (delayed/lossy/partitioned links) -------------
  // All zero / -1 sentinel under the perfect interconnect (and in any
  // uniprocessor run), so pre-interconnect output is unchanged.
  //
  // Remote reads re-issued after a timeout (home side).
  std::uint64_t remote_retries = 0;
  // Remote reads whose whole retry budget expired (one per fallback,
  // degraded or abort).
  std::uint64_t remote_timeouts = 0;
  // Timed-out reads that proceeded on the locally cached value
  // (--remote_fallback=stale); each also counts as a stale read.
  std::uint64_t remote_degraded_reads = 0;
  // Transactions aborted remote-unavailable (--remote_fallback=abort).
  std::uint64_t txns_remote_unavailable = 0;
  // Cluster-aggregate only (the interconnect is shared, so these never
  // appear on a shard): messages the links dropped on either leg,
  // partition + shard-outage windows that opened and their total
  // seconds, and the longest gap between a cut healing and the next
  // successful delivery (-1 when never measured).
  std::uint64_t link_messages_lost = 0;
  std::uint64_t partition_windows = 0;
  double partition_seconds = 0;
  double time_to_reconnect = -1;

  // --- derived metrics -------------------------------------------------------

  // Terminal transactions: everything that reached an outcome.
  std::uint64_t txns_terminal() const {
    return txns_committed + txns_missed_deadline + txns_infeasible +
           txns_stale_aborted + txns_overload_dropped +
           txns_remote_unavailable;
  }

  // Fraction of transactions that did not complete by their deadline.
  double p_md() const;
  // Fraction that committed on time having read only fresh data.
  double p_success() const;
  // Of the transactions that met their deadline, the fraction that
  // read only fresh data.
  double p_suc_nontardy() const;
  // Average value returned per second.
  double av() const;
  // CPU utilization fractions.
  double rho_t() const;
  double rho_u() const;
  // Remote-service share (0 in a uniprocessor run).
  double rho_r() const;
  double rho_total() const { return rho_t() + rho_u() + rho_r(); }

  // Multi-line human-readable dump (for examples and debugging).
  std::string ToString() const;
};

}  // namespace strip::core

#endif  // STRIP_CORE_METRICS_H_
