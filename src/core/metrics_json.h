// JSON rendering of RunMetrics, shared by the telemetry exporter and
// the sweep runner's per-cell result files. Keeping one writer means
// the two documents can never drift apart field-by-field, and a
// resumed sweep reproduces byte-identical cell files (the writer is
// fully deterministic: fixed field order, %.17g doubles, no
// timestamps).

#ifndef STRIP_CORE_METRICS_JSON_H_
#define STRIP_CORE_METRICS_JSON_H_

#include <ostream>

#include "core/metrics.h"

namespace strip::core {

// Writes the metrics of one run as a JSON object: the opening brace in
// place, one member per line prefixed with `member_indent`, and the
// closing brace prefixed with `close_indent` (no trailing newline).
// Non-finite doubles render as null; outage_recovery_seconds renders
// as null when the run never recovered from an outage (sentinel < 0).
void WriteRunMetricsJson(std::ostream& out, const RunMetrics& m,
                         const char* member_indent,
                         const char* close_indent);

}  // namespace strip::core

#endif  // STRIP_CORE_METRICS_JSON_H_
