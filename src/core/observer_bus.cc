#include "core/observer_bus.h"

#include <algorithm>

#include "base/check.h"

namespace strip::core {

void ObserverBus::Add(SystemObserver* observer) {
  STRIP_CHECK(observer != nullptr);
  const bool already_registered =
      std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end();
  STRIP_CHECK_MSG(!already_registered, "observer registered twice");
  observers_.push_back(observer);
  ++live_count_;
}

bool ObserverBus::Remove(SystemObserver* observer) {
  const auto it = std::find(observers_.begin(), observers_.end(), observer);
  if (it == observers_.end()) return false;
  if (dispatch_depth_ > 0) {
    // A dispatch is walking the vector: null the slot so the walk skips
    // it, and compact when the outermost dispatch unwinds.
    *it = nullptr;
    needs_compaction_ = true;
  } else {
    observers_.erase(it);
  }
  --live_count_;
  return true;
}

void ObserverBus::Compact() {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), nullptr),
                   observers_.end());
  needs_compaction_ = false;
}

template <typename Fn>
void ObserverBus::Dispatch(Fn&& fn) {
  ++dispatch_depth_;
  // Observers appended mid-dispatch grow the vector past `end`; they
  // hear the next event, not this one.
  const std::size_t end = observers_.size();
  for (std::size_t i = 0; i < end; ++i) {
    SystemObserver* observer = observers_[i];
    if (observer != nullptr) fn(observer);
  }
  --dispatch_depth_;
  if (dispatch_depth_ == 0 && needs_compaction_) Compact();
}

void ObserverBus::NotifyTransactionTerminal(
    sim::Time now, const txn::Transaction& transaction) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnTransactionTerminal(now, transaction);
  });
}

void ObserverBus::NotifyUpdateInstalled(sim::Time now, const db::Update& update,
                                        bool on_demand) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnUpdateInstalled(now, update, on_demand);
  });
}

void ObserverBus::NotifyUpdateDropped(sim::Time now, const db::Update& update,
                                      SystemObserver::DropReason reason) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnUpdateDropped(now, update, reason);
  });
}

void ObserverBus::NotifyStaleRead(sim::Time now,
                                  const txn::Transaction& transaction,
                                  db::ObjectId object) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnStaleRead(now, transaction, object);
  });
}

void ObserverBus::NotifyPhase(sim::Time now, SystemObserver::Phase phase) {
  if (empty()) return;
  Dispatch(
      [&](SystemObserver* observer) { observer->OnPhase(now, phase); });
}

}  // namespace strip::core
