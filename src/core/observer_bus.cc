#include "core/observer_bus.h"

#include <algorithm>

#include "base/check.h"

namespace strip::core {

void ObserverBus::Add(SystemObserver* observer) {
  STRIP_CHECK(observer != nullptr);
  const bool already_registered =
      std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end();
  STRIP_CHECK_MSG(!already_registered, "observer registered twice");
  observers_.push_back(observer);
  ++live_count_;
}

bool ObserverBus::Remove(SystemObserver* observer) {
  const auto it = std::find(observers_.begin(), observers_.end(), observer);
  if (it == observers_.end()) return false;
  if (dispatch_depth_ > 0) {
    // A dispatch is walking the vector: null the slot so the walk skips
    // it, and compact when the outermost dispatch unwinds.
    *it = nullptr;
    needs_compaction_ = true;
  } else {
    observers_.erase(it);
  }
  --live_count_;
  return true;
}

void ObserverBus::Compact() {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), nullptr),
                   observers_.end());
  needs_compaction_ = false;
}

template <typename Fn>
void ObserverBus::Dispatch(Fn&& fn) {
  ++dispatch_depth_;
  // Observers appended mid-dispatch grow the vector past `end`; they
  // hear the next event, not this one.
  const std::size_t end = observers_.size();
  for (std::size_t i = 0; i < end; ++i) {
    SystemObserver* observer = observers_[i];
    if (observer == nullptr) continue;
    fn(observer);
    // An observer removed from inside a callback must have been
    // nulled in place, never erased: erasure would shift the slots a
    // concurrent walk indexes, invoking a removed observer later in
    // the same notify round.
    STRIP_CHECK_MSG(i < observers_.size() &&
                        (observers_[i] == observer ||
                         observers_[i] == nullptr),
                    "observer slot moved mid-dispatch");
  }
  --dispatch_depth_;
  if (dispatch_depth_ == 0 && needs_compaction_) Compact();
}

void ObserverBus::NotifyTransactionTerminal(
    sim::Time now, const txn::Transaction& transaction) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnTransactionTerminal(now, transaction);
  });
}

void ObserverBus::NotifyUpdateInstalled(sim::Time now, const db::Update& update,
                                        const txn::Transaction* on_demand_by) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnUpdateInstalled(now, update, on_demand_by);
  });
}

void ObserverBus::NotifyUpdateDropped(sim::Time now, const db::Update& update,
                                      SystemObserver::DropReason reason) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnUpdateDropped(now, update, reason);
  });
}

void ObserverBus::NotifyStaleRead(sim::Time now,
                                  const txn::Transaction& transaction,
                                  db::ObjectId object) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnStaleRead(now, transaction, object);
  });
}

void ObserverBus::NotifyPhase(sim::Time now, SystemObserver::Phase phase) {
  if (empty()) return;
  Dispatch(
      [&](SystemObserver* observer) { observer->OnPhase(now, phase); });
}

void ObserverBus::NotifyTxnAdmitted(sim::Time now,
                                    const txn::Transaction& transaction) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnTxnAdmitted(now, transaction);
  });
}

void ObserverBus::NotifyUpdateArrival(sim::Time now,
                                      const db::Update& update) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnUpdateArrival(now, update);
  });
}

void ObserverBus::NotifyUpdateEnqueued(sim::Time now,
                                       const db::Update& update) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnUpdateEnqueued(now, update);
  });
}

void ObserverBus::NotifyDispatch(
    sim::Time now, const SystemObserver::DispatchInfo& dispatch) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnDispatch(now, dispatch);
  });
}

void ObserverBus::NotifySegmentComplete(
    sim::Time now, const SystemObserver::DispatchInfo& dispatch) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnSegmentComplete(now, dispatch);
  });
}

void ObserverBus::NotifyPreempt(sim::Time now,
                                const txn::Transaction& transaction,
                                SystemObserver::PreemptReason reason) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnPreempt(now, transaction, reason);
  });
}

void ObserverBus::NotifyPolicyDecision(sim::Time now, PolicyKind policy,
                                       SystemObserver::SchedulerChoice choice,
                                       const char* reason) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnPolicyDecision(now, policy, choice, reason);
  });
}

void ObserverBus::NotifyFaultWindow(
    sim::Time now, const SystemObserver::FaultWindowInfo& window) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnFaultWindow(now, window);
  });
}

void ObserverBus::NotifyShardRemoteIssued(sim::Time now,
                                          const RemoteRead& read) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnShardRemoteIssued(now, read);
  });
}

void ObserverBus::NotifyShardRemoteQueued(sim::Time now,
                                          const RemoteRead& read) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnShardRemoteQueued(now, read);
  });
}

void ObserverBus::NotifyShardRemoteServiced(sim::Time now,
                                            const RemoteRead& read) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnShardRemoteServiced(now, read);
  });
}

void ObserverBus::NotifyShardRemoteResolved(sim::Time now,
                                            const RemoteRead& read,
                                            bool txn_live) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnShardRemoteResolved(now, read, txn_live);
  });
}

void ObserverBus::NotifyShardRemoteDropped(sim::Time now,
                                           const RemoteRead& read,
                                           bool reply_leg) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnShardRemoteDropped(now, read, reply_leg);
  });
}

void ObserverBus::NotifyRemoteTimeout(sim::Time now, const RemoteRead& read,
                                      int attempt, bool will_retry) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnRemoteTimeout(now, read, attempt, will_retry);
  });
}

void ObserverBus::NotifyDegradedRead(sim::Time now, const RemoteRead& read) {
  if (empty()) return;
  Dispatch([&](SystemObserver* observer) {
    observer->OnDegradedRead(now, read);
  });
}

}  // namespace strip::core
