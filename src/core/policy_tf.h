// Transaction First (TF), Section 4.2.
//
// Transactions always take precedence. Updates accumulate in the OS
// queue and are received into the update queue — then installed from it
// in FIFO or LIFO generation order — only when no transaction is ready
// to run. A transaction arriving mid-install waits for that single
// install to finish (no update preemption).

#ifndef STRIP_CORE_POLICY_TF_H_
#define STRIP_CORE_POLICY_TF_H_

#include "core/policy.h"

namespace strip::core {

class TransactionFirstPolicy final : public Policy {
 public:
  PolicyKind kind() const override { return PolicyKind::kTransactionFirst; }

  bool InstallOnArrival(const db::Update&) const override { return false; }

  bool UpdaterHasPriority(const UpdaterContext&) const override {
    return false;
  }

  bool AppliesOnDemand() const override { return false; }

  bool UsesUpdateQueue() const override { return true; }

  // TF never installs on arrival and never outranks a waiting
  // transaction: installs wait for an idle system.
  const char* ArrivalReason(const db::Update&) const override {
    return "tf-queue-on-arrival";
  }

  const char* PriorityReason(const UpdaterContext&) const override {
    return "tf-txns-first";
  }
};

}  // namespace strip::core

#endif  // STRIP_CORE_POLICY_TF_H_
