// Cross-shard read rendezvous record (sharded model; core/cluster.h).
//
// When a transaction running on its home shard reaches a view read of
// an object another shard owns, the home shard posts a RemoteRead to
// the owner ("peer") shard and holds its CPU until the reply comes
// back (the two-phase hold of DESIGN.md's rendezvous protocol). One
// flat struct carries the exchange through its whole life: the request
// fields are set at issue time; the peer fills the reply fields when
// it services the read.

#ifndef STRIP_CORE_REMOTE_H_
#define STRIP_CORE_REMOTE_H_

#include <cstdint>

#include "base/strong_types.h"
#include "db/object.h"
#include "sim/sim_time.h"

namespace strip::core {

struct RemoteRead {
  // Cluster-unique id, assigned at issue; the auditors' census key.
  std::uint64_t request_id = 0;
  // The reading transaction (lives on the home shard).
  base::TxnId txn_id{};
  base::ShardId home_shard{0};
  base::ShardId peer_shard{0};
  // The object read, in the *peer's local* id space.
  db::ObjectId object{};
  // The transaction's firm deadline, carried so the peer can bound
  // on-demand heal work the way the home shard would.
  sim::Time deadline = 0;

  // --- reply fields (set by the peer at service completion) ---------------
  // The object was stale on the peer after any on-demand heal.
  bool stale = false;
  // The peer could *detect* the staleness (timestamped criterion, or
  // an OD queue scan ran); an undetected stale read cannot trigger
  // abort-on-stale.
  bool detected = false;
  // The peer installed a queued update on demand before replying.
  bool healed = false;
};

}  // namespace strip::core

#endif  // STRIP_CORE_REMOTE_H_
