#include "core/system.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "base/check.h"
#include "sim/random.h"

namespace strip::core {

namespace {

// Process ids for context-switch accounting.
constexpr std::uint64_t kNoProcess = 0;
constexpr std::uint64_t kUpdaterProcess = 1;

std::uint64_t TxnProcessId(const txn::Transaction& t) {
  return t.id().value() + 1;
}

SystemObserver::DispatchKind StepDispatchKind(
    txn::Transaction::NextStep::Kind kind) {
  switch (kind) {
    case txn::Transaction::NextStep::Kind::kCompute:
      return SystemObserver::DispatchKind::kTxnCompute;
    case txn::Transaction::NextStep::Kind::kViewRead:
      return SystemObserver::DispatchKind::kTxnViewRead;
    case txn::Transaction::NextStep::Kind::kOdScan:
      return SystemObserver::DispatchKind::kTxnOdScan;
    case txn::Transaction::NextStep::Kind::kOdApply:
      return SystemObserver::DispatchKind::kTxnOdApply;
    case txn::Transaction::NextStep::Kind::kDone:
      break;
  }
  STRIP_CHECK_MSG(false, "no dispatch kind for a finished step");
  return SystemObserver::DispatchKind::kTxnCompute;
}

}  // namespace

System::System(sim::Simulator* simulator, const Config& config,
               base::RngSeed seed)
    : simulator_(simulator),
      config_(config),
      policy_(MakePolicy(config)),
      system_random_(base::RngSeed(seed.value() ^ 0xa5a5a5a5a5a5a5a5ull)),
      database_(config.n_low, config.n_high, config.n_attributes),
      tracker_(simulator, config.staleness, config.alpha, config.n_low,
               config.n_high),
      update_queue_(static_cast<std::size_t>(config.uq_max)),
      os_queue_(static_cast<std::size_t>(config.os_max)),
      // Response times are bounded by slack + execution; the paper
      // baseline tops out well under 2 s, and overflow is clamped.
      response_times_(0.0, 2.0 * (config.s_max + 1.0), 400) {
  STRIP_CHECK(simulator != nullptr);
  const std::optional<std::string> error = config.Validate();
  STRIP_CHECK_MSG(!error.has_value(),
                  error.has_value() ? error->c_str() : "");

  if (config_.history_depth > 0) {
    history_ = std::make_unique<db::HistoryStore>(
        config_.n_low, config_.n_high, config_.history_depth);
  }

  if (!config_.faults.empty()) {
    std::string fault_error;
    std::optional<fault::FaultSchedule> schedule =
        fault::FaultSchedule::Parse(config_.faults, &fault_error);
    STRIP_CHECK_MSG(schedule.has_value(), fault_error.c_str());
    fault_schedule_ =
        std::make_unique<fault::FaultSchedule>(*std::move(schedule));
  }

  sim::RandomStream master(seed);
  if (!config_.external_workload) {
    const base::RngSeed update_seed = master.Fork();
    const base::RngSeed txn_seed = master.Fork();
    // With a fault schedule, the stream feeds the injector and the
    // injector feeds the system; without one, the stream feeds the
    // system directly (identical draws either way — the fault seed is
    // forked only after the stream seeds, so fault-free runs keep the
    // historical random sequence).
    update_stream_ = std::make_unique<workload::UpdateStream>(
        simulator_, config_.UpdateStreamParams(), update_seed,
        [this](const db::Update& u) {
          if (fault_injector_ != nullptr) {
            fault_injector_->Offer(u);
          } else {
            OnUpdateArrival(u);
          }
        });
    txn_source_ = std::make_unique<workload::TxnSource>(
        simulator_, config_.TxnSourceParams(), txn_seed,
        [this](const txn::Transaction::Params& p) { OnTxnArrival(p); });
  }
  if (fault_schedule_ != nullptr) {
    fault::FaultInjector::Hooks hooks;
    hooks.deliver = [this](const db::Update& u) { OnUpdateArrival(u); };
    hooks.set_rate_factor = [this](double f) {
      if (update_stream_ != nullptr) update_stream_->SetRateFactor(f);
    };
    hooks.set_cpu_factor = [this](double f) { SetCpuFactor(f); };
    hooks.on_window = [this](const fault::FaultWindow& w, bool begin) {
      OnFaultWindowBoundary(w, begin);
    };
    fault_injector_ = std::make_unique<fault::FaultInjector>(
        simulator_, *fault_schedule_, master.Fork(), config_.lambda_u,
        std::move(hooks));
  }

  uq_length_.StartAt(simulator_->now(), 0.0);
  os_length_.StartAt(simulator_->now(), 0.0);
  observation_start_ = simulator_->now();

  if (config_.warmup_seconds > 0) {
    simulator_->ScheduleAfter(config_.warmup_seconds,
                              [this] { ResetObservation(); });
  }
}

RunMetrics System::Run() {
  STRIP_CHECK_MSG(!finalized_, "System::Run called twice");
  simulator_->RunUntil(config_.sim_seconds);
  Finalize(config_.sim_seconds);
  return metrics_;
}

bool System::RunSlice(sim::Duration max_slice) {
  STRIP_CHECK_MSG(!finalized_, "System::RunSlice after finalization");
  STRIP_CHECK_MSG(max_slice > 0, "slice must be positive");
  const sim::Time target =
      std::min(simulator_->now() + max_slice, config_.sim_seconds);
  // Repeated RunUntil calls dispatch each event exactly once, so a
  // sliced run replays the identical event sequence as one Run().
  simulator_->RunUntil(target);
  if (target >= config_.sim_seconds) {
    Finalize(config_.sim_seconds);
    return true;
  }
  return false;
}

RunMetrics System::HaltEarly() {
  STRIP_CHECK_MSG(!finalized_, "System::HaltEarly after finalization");
  Finalize(simulator_->now());
  return metrics_;
}

// --- accounting helpers -----------------------------------------------------

void System::ChargeSegmentCpu() {
  const sim::Time start = std::max(segment_start_, observation_start_);
  const sim::Duration elapsed = simulator_->now() - start;
  if (elapsed <= 0) return;
  if (segment_is_remote_work_) {
    metrics_.cpu_remote_seconds += elapsed;
  } else if (segment_is_update_work_) {
    metrics_.cpu_update_seconds += elapsed;
  } else {
    metrics_.cpu_txn_seconds += elapsed;
  }
}

double System::ScanCostInstructions() const {
  if (config_.indexed_update_queue) return config_.x_scan;
  return config_.x_scan * static_cast<double>(update_queue_.size());
}

double System::QueueOpCostInstructions(std::size_t queue_size) const {
  const double n = static_cast<double>(std::max<std::size_t>(queue_size, 1));
  return config_.x_queue * std::log(n);
}

double System::MaybeIoStallInstructions() {
  if (config_.buffer_hit_ratio >= 1.0 || config_.io_seconds <= 0) return 0;
  if (system_random_.WithProbability(config_.buffer_hit_ratio)) return 0;
  ++metrics_.io_stalls;
  return config_.io_seconds * config_.ips;
}

double System::MaybeTriggerInstructions() {
  if (config_.trigger_probability <= 0 || config_.x_trigger <= 0) return 0;
  if (!system_random_.WithProbability(config_.trigger_probability)) return 0;
  ++metrics_.triggers_fired;
  return config_.x_trigger;
}

void System::NoteUqLength() {
  const std::uint64_t size = update_queue_.size();
  uq_length_.Set(simulator_->now(), static_cast<double>(size));
  uq_length_max_ = std::max(uq_length_max_, size);
}

void System::NoteOsLength() {
  os_length_.Set(simulator_->now(), static_cast<double>(os_queue_.size()));
}

void System::ResetObservation() {
  metrics_ = RunMetrics{};
  // Work already in flight at the warm-up boundary will reach its
  // outcome inside the observed window; count it as arrived so the
  // conservation identities hold over the window.
  metrics_.txns_arrived = live_txns_.size();
  for (const auto& [id, live] : live_txns_) {
    ++metrics_.txns_arrived_by_class[static_cast<int>(
        live.transaction->cls())];
  }
  metrics_.updates_arrived = os_queue_.size() + update_queue_.size();
  if (updater_job_.kind != UpdaterJob::Kind::kNone) {
    // One more is mid-install on the CPU.
    ++metrics_.updates_arrived;
  }
  response_times_ =
      sim::Histogram(0.0, 2.0 * (config_.s_max + 1.0), 400);
  observation_start_ = simulator_->now();
  tracker_.ResetObservation();
  uq_length_.StartAt(simulator_->now(),
                     static_cast<double>(update_queue_.size()));
  os_length_.StartAt(simulator_->now(),
                     static_cast<double>(os_queue_.size()));
  uq_length_max_ = update_queue_.size();
  if (!bus_.empty()) {
    bus_.NotifyPhase(simulator_->now(), SystemObserver::Phase::kWarmupEnd);
  }
}

void System::Finalize(sim::Time end) {
  STRIP_CHECK(!finalized_);
  finalized_ = true;
  // A segment still on the CPU at the end of the run is charged up to
  // the cut-off so utilization fractions are exact. Advancing
  // segment_start_ keeps the Cpu*SecondsNow probes from counting the
  // settled remainder twice.
  if (cpu_owner_ != CpuOwner::kIdle) {
    ChargeSegmentCpu();
    segment_start_ = end;
  }
  if (update_stream_ != nullptr) update_stream_->Stop();
  if (txn_source_ != nullptr) txn_source_->Stop();
  if (remote_waiting_ != nullptr) {
    // A transaction still parked on a remote read at the cut-off: its
    // wait so far counts toward the window.
    CancelRemoteTimer();
    metrics_.remote_wait_seconds +=
        end - std::max(remote_wait_start_, observation_start_);
    remote_waiting_ = nullptr;
  }
  metrics_.observed_seconds = end - observation_start_;
  metrics_.f_old_low =
      tracker_.FractionStaleAverage(db::ObjectClass::kLowImportance, end);
  metrics_.f_old_high =
      tracker_.FractionStaleAverage(db::ObjectClass::kHighImportance, end);
  metrics_.uq_length_avg = uq_length_.Average(end);
  metrics_.uq_length_max = uq_length_max_;
  metrics_.os_length_avg = os_length_.Average(end);
  metrics_.txns_inflight_at_end = live_txns_.size();
  metrics_.response_mean = response_times_.mean();
  metrics_.response_p50 = response_times_.Quantile(0.50);
  metrics_.response_p95 = response_times_.Quantile(0.95);
  metrics_.response_p99 = response_times_.Quantile(0.99);
  if (fault_injector_ != nullptr) {
    // Injector activity is whole-run (the injector sits upstream of
    // the system, so its counters are not reset at warm-up).
    const fault::FaultCounts& counts = fault_injector_->counts();
    metrics_.updates_lost_fault = counts.lost;
    metrics_.updates_duplicated_fault = counts.duplicated;
    metrics_.updates_reordered_fault = counts.reordered;
    metrics_.updates_outage_deferred = counts.outage_deferred;
  }
  if (governor_engaged_) {
    metrics_.governor_engaged_seconds +=
        end - std::max(governor_engage_time_, observation_start_);
  }
  if (!bus_.empty()) {
    bus_.NotifyPhase(end, SystemObserver::Phase::kRunEnd);
  }
}

sim::Duration System::CpuTxnSecondsNow() const {
  sim::Duration seconds = metrics_.cpu_txn_seconds;
  if (cpu_owner_ == CpuOwner::kTxn && !segment_is_update_work_) {
    seconds += simulator_->now() - std::max(segment_start_,
                                            observation_start_);
  }
  return seconds;
}

sim::Duration System::CpuUpdateSecondsNow() const {
  sim::Duration seconds = metrics_.cpu_update_seconds;
  // OD scan/apply segments run inside a transaction's slice but are
  // charged as update work, matching ChargeSegmentCpu.
  if (cpu_owner_ != CpuOwner::kIdle && segment_is_update_work_) {
    seconds += simulator_->now() - std::max(segment_start_,
                                            observation_start_);
  }
  return seconds;
}

// --- arrivals ------------------------------------------------------------

void System::InjectUpdate(const db::Update& update) {
  if (fault_injector_ != nullptr) {
    fault_injector_->Offer(update);
  } else {
    OnUpdateArrival(update);
  }
}

void System::OnUpdateArrival(const db::Update& update) {
  ++metrics_.updates_arrived;
  if (!bus_.empty()) {
    bus_.NotifyUpdateArrival(simulator_->now(), update);
  }
  if (!os_queue_.Push(update)) {
    ++metrics_.updates_dropped_os_full;
    if (!bus_.empty()) {
      bus_.NotifyUpdateDropped(simulator_->now(), update,
                               SystemObserver::DropReason::kOsQueueFull);
    }
    return;
  }
  if (update.object.cls == db::ObjectClass::kHighImportance) {
    ++os_pending_high_;
  }
  NoteOsLength();

  if (policy_->InstallOnArrival(update)) {
    if (cpu_owner_ == CpuOwner::kTxn) {
      // Receive immediately: preempt the running transaction. The
      // 2·x_switch receive penalty is charged to the update work about
      // to start (Section 3.3, step 2).
      if (!bus_.empty()) {
        bus_.NotifyPolicyDecision(
            simulator_->now(), config_.policy,
            SystemObserver::SchedulerChoice::kInstallOnArrival,
            policy_->ArrivalReason(update));
      }
      PreemptRunningTxn(SystemObserver::PreemptReason::kUpdateArrival);
      StartUpdaterJob(/*preempting=*/true);
    } else if (cpu_owner_ == CpuOwner::kIdle) {
      ScheduleNext();
    }
    // If the updater is already on the CPU the new arrival waits in
    // the OS queue; the updater keeps priority and drains it next.
  } else if (cpu_owner_ == CpuOwner::kIdle) {
    ScheduleNext();
  }
}

void System::OnTxnArrival(const txn::Transaction::Params& params) {
  ++metrics_.txns_arrived;
  ++metrics_.txns_arrived_by_class[static_cast<int>(params.cls)];
  if (config_.admission_limit > 0 &&
      static_cast<int>(ready_.size()) >= config_.admission_limit) {
    // Admission control: the backlog is full; reject at the door
    // rather than competing for the CPU.
    ++metrics_.txns_overload_dropped;
    if (!bus_.empty()) {
      txn::Transaction rejected(params);
      rejected.set_outcome(txn::TxnOutcome::kOverloadDrop);
      rejected.set_completion_time(simulator_->now());
      bus_.NotifyTransactionTerminal(simulator_->now(), rejected);
    }
    return;
  }
  auto transaction = std::make_unique<txn::Transaction>(params);
  txn::Transaction* t = transaction.get();
  const base::TxnId id = t->id();
  LiveTxn entry;
  entry.transaction = std::move(transaction);
  entry.deadline_event = simulator_->ScheduleAt(
      t->deadline(), [this, id] { OnDeadline(id); });
  live_txns_.emplace(id, std::move(entry));
  ready_.Add(t);
  if (!bus_.empty()) {
    bus_.NotifyTxnAdmitted(simulator_->now(), *t);
  }
  if (sharded_) {
    for (const base::ShardId owner : params.read_owners) {
      if (owner != shard_link_.shard_id) {
        ++metrics_.txns_cross_shard;
        break;
      }
    }
  }

  if (cpu_owner_ == CpuOwner::kIdle) {
    ScheduleNext();
  } else if (cpu_owner_ == CpuOwner::kTxn && config_.txn_preemption &&
             txn::HigherPriority(*t, *running_, config_.txn_sched,
                                 EffectiveIps())) {
    PreemptRunningTxn(SystemObserver::PreemptReason::kHigherPriorityTxn);
    ScheduleNext();
  }
}

void System::OnDeadline(base::TxnId txn_id) {
  auto it = live_txns_.find(txn_id);
  if (it == live_txns_.end()) return;  // already terminal
  txn::Transaction* t = it->second.transaction.get();
  if (t == running_) {
    // Firm deadline: the transaction is cut down mid-flight.
    ChargeSegmentCpu();
    const double executed = std::max(
        0.0, (simulator_->now() - segment_start_) * segment_ips_ -
                 segment_extra_instructions_);
    t->ChargePartial(std::min(executed, RemainingOfCurrentStep(*t)));
    simulator_->Cancel(completion_);
    if (!bus_.empty()) {
      // Close the open dispatch span: the deadline cut it short.
      bus_.NotifyPreempt(simulator_->now(), *t,
                         SystemObserver::PreemptReason::kDeadline);
    }
    running_ = nullptr;
    cpu_owner_ = CpuOwner::kIdle;
    Terminate(t, txn::TxnOutcome::kMissedDeadline);
    ScheduleNext();
  } else if (t == remote_waiting_) {
    // Parked on a remote read: the firm deadline releases the hold (the
    // peer's reply, if it ever arrives, resolves as orphaned).
    CancelRemoteTimer();
    remote_waiting_ = nullptr;
    metrics_.remote_wait_seconds +=
        simulator_->now() - std::max(remote_wait_start_, observation_start_);
    Terminate(t, txn::TxnOutcome::kMissedDeadline);
    if (cpu_owner_ == CpuOwner::kIdle) ScheduleNext();
  } else if (t == remote_resume_) {
    // Reply arrived but the resume never got the CPU back in time.
    remote_resume_ = nullptr;
    Terminate(t, txn::TxnOutcome::kMissedDeadline);
    if (cpu_owner_ == CpuOwner::kIdle) ScheduleNext();
  } else {
    const bool was_ready = ready_.Remove(t);
    STRIP_CHECK_MSG(was_ready, "pending txn neither ready nor running");
    Terminate(t, txn::TxnOutcome::kMissedDeadline);
  }
}

// --- the scheduler ----------------------------------------------------------

UpdaterContext System::MakeUpdaterContext() const {
  UpdaterContext context;
  context.now = simulator_->now();
  context.os_pending = static_cast<int>(os_queue_.size());
  context.os_pending_high = os_pending_high_;
  context.uq_pending = static_cast<int>(update_queue_.size());
  context.updater_cpu_seconds = metrics_.cpu_update_seconds;
  context.observation_start = observation_start_;
  return context;
}

void System::ScheduleNext() {
  STRIP_CHECK(cpu_owner_ == CpuOwner::kIdle);
  PurgeExpired();
  if (fault_schedule_ != nullptr &&
      (fault_windows_active_ > 0 || outage_recovering_)) {
    SampleStaleExcursion();
  }
  if (config_.overload_governor) MaybeToggleGovernor();
  if (config_.feasible_deadline) {
    for (txn::Transaction* t :
         ready_.ExtractInfeasible(simulator_->now(), EffectiveIps())) {
      Terminate(t, txn::TxnOutcome::kInfeasible);
    }
  }
  if (sharded_) {
    // Cross-shard service outranks all local work: a shard whose own
    // transaction is parked on a peer still serves its peers' reads, so
    // circular rendezvous always drain (no cross-shard deadlock).
    if (!remote_queue_.empty()) {
      if (!bus_.empty()) {
        bus_.NotifyPolicyDecision(
            simulator_->now(), config_.policy,
            SystemObserver::SchedulerChoice::kServeRemote, "remote-pending");
      }
      StartRemoteService();
      return;
    }
    if (remote_resume_ != nullptr) {
      // The reply for the parked transaction arrived while the CPU was
      // busy; it still owns its claim — resume it first.
      txn::Transaction* t = remote_resume_;
      remote_resume_ = nullptr;
      StartTxnSegment(t);
      return;
    }
    // Two-phase hold: a transaction parked on a remote read keeps its
    // claim on this CPU, so no other local work may take it.
    if (remote_waiting_ != nullptr) return;
  }
  // Receiving takes precedence whenever the controller has the CPU:
  // arrivals are moved out of the small kernel buffer — transferred to
  // the update queue, or installed directly under UF (all updates) and
  // SU (high-importance updates). Section 3.3: transactions are not
  // *interrupted* to receive, but once the controller gets control the
  // accumulated arrivals are received at once.
  if (!os_queue_.empty()) {
    if (!bus_.empty()) {
      bus_.NotifyPolicyDecision(simulator_->now(), config_.policy,
                                SystemObserver::SchedulerChoice::kReceive,
                                "os-pending");
    }
    StartUpdaterJob(/*preempting=*/false);
    return;
  }
  // Installing from the update queue is what the policies disagree on:
  // TF/OD/SU only when no transaction is ready, FCF while below its
  // CPU share.
  const bool install_work =
      policy_->UsesUpdateQueue() && !update_queue_.empty();
  if (install_work &&
      (ready_.empty() || policy_->UpdaterHasPriority(MakeUpdaterContext()))) {
    if (!bus_.empty()) {
      bus_.NotifyPolicyDecision(
          simulator_->now(), config_.policy,
          SystemObserver::SchedulerChoice::kInstall,
          ready_.empty() ? "system-idle"
                         : policy_->PriorityReason(MakeUpdaterContext()));
    }
    StartUpdaterJob(/*preempting=*/false);
    return;
  }
  if (!ready_.empty()) {
    if (!bus_.empty()) {
      bus_.NotifyPolicyDecision(
          simulator_->now(), config_.policy,
          SystemObserver::SchedulerChoice::kRunTransaction,
          install_work ? policy_->PriorityReason(MakeUpdaterContext())
                       : "txn-ready");
    }
    txn::Transaction* t = ready_.PopBest(EffectiveIps(), config_.txn_sched);
    STRIP_CHECK(t != nullptr);
    StartTxnSegment(t);
    return;
  }
  // Otherwise: idle until the next arrival.
  if (!bus_.empty()) {
    bus_.NotifyPolicyDecision(simulator_->now(), config_.policy,
                              SystemObserver::SchedulerChoice::kIdle,
                              "no-work");
  }
}

// --- update process -----------------------------------------------------------

void System::PurgeExpired() {
  // Generation-based expiry only: under UU nothing expires, and under
  // arrival-based MA an old-generation update may still have arrived
  // recently, so the generation-ordered queue cannot be purged from
  // the front.
  if (config_.staleness != db::StalenessCriterion::kMaxAge &&
      config_.staleness != db::StalenessCriterion::kCombined) {
    return;
  }
  const sim::Time cutoff = simulator_->now() - config_.alpha;
  if (cutoff <= 0) return;
  const std::vector<db::Update> purged =
      update_queue_.PurgeGeneratedBefore(cutoff);
  if (purged.empty()) return;
  // Identifying expired updates is constant time (the queue is in
  // generation order), but each removal is still a queue operation;
  // its cost accrues as a debt charged to the update process's next
  // CPU slice.
  std::size_t size_before = update_queue_.size() + purged.size();
  for (const db::Update& u : purged) {
    tracker_.OnRemovedFromQueue(u);
    ++metrics_.updates_dropped_expired;
    purge_debt_instructions_ += QueueOpCostInstructions(size_before--);
    if (!bus_.empty()) {
      bus_.NotifyUpdateDropped(simulator_->now(), u,
                               SystemObserver::DropReason::kExpired);
    }
  }
  NoteUqLength();
}

System::UpdaterJob System::SelectUpdaterJob() {
  UpdaterJob job;
  if (!os_queue_.empty()) {
    const std::optional<db::Update> u = os_queue_.Pop();
    STRIP_CHECK(u.has_value());
    if (u->object.cls == db::ObjectClass::kHighImportance) {
      --os_pending_high_;
    }
    NoteOsLength();
    job.update = *u;
    if (!policy_->UsesUpdateQueue() || policy_->InstallOnArrival(*u)) {
      // UF installs everything straight from the OS queue; SU installs
      // high-importance updates directly.
      job.kind = UpdaterJob::Kind::kInstallFromOs;
      job.worthy = database_.IsWorthy(*u);
      job.cost_instructions =
          config_.x_lookup + MaybeIoStallInstructions() +
          (job.worthy ? config_.x_update + MaybeTriggerInstructions()
                      : 0.0);
    } else {
      job.kind = UpdaterJob::Kind::kTransferToQueue;
      job.cost_instructions =
          QueueOpCostInstructions(update_queue_.size() + 1);
    }
    return job;
  }
  if (policy_->UsesUpdateQueue() && !update_queue_.empty()) {
    const std::size_t size_before = update_queue_.size();
    // While the overload governor is engaged the updater triages:
    // newest-first (LIFO freshens objects fastest per install) and
    // high-importance before low, regardless of the configured
    // discipline.
    const bool fifo =
        config_.queue_discipline == QueueDiscipline::kFifo &&
        !governor_engaged_;
    std::optional<db::Update> u;
    if (config_.split_importance_queues || governor_engaged_) {
      // Drain queued high-importance updates before low-importance
      // ones (split-queue extension).
      u = fifo ? update_queue_.PopOldestOfClass(
                     db::ObjectClass::kHighImportance)
               : update_queue_.PopNewestOfClass(
                     db::ObjectClass::kHighImportance);
      if (!u.has_value()) {
        u = fifo ? update_queue_.PopOldestOfClass(
                       db::ObjectClass::kLowImportance)
                 : update_queue_.PopNewestOfClass(
                       db::ObjectClass::kLowImportance);
      }
    } else {
      u = fifo ? update_queue_.PopOldest() : update_queue_.PopNewest();
    }
    STRIP_CHECK(u.has_value());
    tracker_.OnRemovedFromQueue(*u);
    NoteUqLength();
    job.kind = UpdaterJob::Kind::kInstallFromUq;
    job.update = *u;
    job.worthy = database_.IsWorthy(*u);
    job.cost_instructions =
        QueueOpCostInstructions(size_before) + config_.x_lookup +
        MaybeIoStallInstructions() +
        (job.worthy ? config_.x_update + MaybeTriggerInstructions() : 0.0);
    return job;
  }
  return job;
}

void System::StartUpdaterJob(bool preempting) {
  STRIP_CHECK(cpu_owner_ == CpuOwner::kIdle);
  PurgeExpired();
  updater_job_ = SelectUpdaterJob();
  STRIP_CHECK_MSG(updater_job_.kind != UpdaterJob::Kind::kNone,
                  "updater started with no work");
  cpu_owner_ = CpuOwner::kUpdater;
  double extra = purge_debt_instructions_;
  purge_debt_instructions_ = 0;
  if (preempting) {
    extra += 2 * config_.x_switch;
  } else if (last_process_ != kUpdaterProcess &&
             last_process_ != kNoProcess) {
    extra += config_.x_switch;
  }
  last_process_ = kUpdaterProcess;
  segment_start_ = simulator_->now();
  segment_extra_instructions_ = extra;
  segment_is_update_work_ = true;
  segment_is_remote_work_ = false;
  segment_ips_ = EffectiveIps();
  if (!bus_.empty()) {
    bus_.NotifyDispatch(simulator_->now(), CurrentDispatchInfo());
  }
  completion_ = simulator_->ScheduleAfter(
      sim::InstructionsToSeconds(updater_job_.cost_instructions + extra,
                                 segment_ips_),
      [this] { OnUpdaterJobComplete(); });
}

bool System::DedupAgainstQueue(const db::Update& update) {
  // The hash table of Section 4.2 keeps at most one update per object:
  // discard everything the incoming update supersedes, or the incoming
  // update itself if something newer is already queued. Hash-assisted,
  // so the removals are free in the cost model.
  while (true) {
    const std::optional<db::Update> existing =
        update_queue_.PeekNewestFor(update.object);
    if (!existing.has_value()) return true;
    if (existing->generation_time >= update.generation_time) {
      ++metrics_.updates_dropped_superseded;
      if (!bus_.empty()) {
        bus_.NotifyUpdateDropped(simulator_->now(), update,
                                 SystemObserver::DropReason::kSuperseded);
      }
      return false;
    }
    const bool removed = update_queue_.Remove(*existing);
    STRIP_CHECK(removed);
    tracker_.OnRemovedFromQueue(*existing);
    ++metrics_.updates_dropped_superseded;
    if (!bus_.empty()) {
      bus_.NotifyUpdateDropped(simulator_->now(), *existing,
                               SystemObserver::DropReason::kSuperseded);
    }
  }
}

bool System::ShedForIncoming(const db::Update& incoming) {
  // Victim order: stalest (oldest-generation) low-importance update
  // first; a high-importance arrival may displace queued high work as
  // a last resort, but a low-importance arrival never does.
  std::optional<db::Update> victim =
      update_queue_.PopOldestOfClass(db::ObjectClass::kLowImportance);
  if (!victim.has_value() &&
      incoming.object.cls == db::ObjectClass::kHighImportance) {
    victim = update_queue_.PopOldestOfClass(db::ObjectClass::kHighImportance);
  }
  const db::Update& shed = victim.has_value() ? *victim : incoming;
  if (victim.has_value()) tracker_.OnRemovedFromQueue(*victim);
  ++metrics_.updates_shed_by_class[static_cast<int>(shed.object.cls)];
  if (!bus_.empty()) {
    bus_.NotifyUpdateDropped(simulator_->now(), shed,
                             SystemObserver::DropReason::kOverloadShed);
  }
  return victim.has_value();
}

void System::InstallNow(const db::Update& update,
                        const txn::Transaction* on_demand_by) {
  if (database_.Apply(update)) {
    // The tracker follows the *effective* generation — identical to
    // the update's own timestamp for complete updates, the oldest
    // attribute's for partial ones. The arrival time feeds the
    // arrival-based MA variant.
    tracker_.OnApply(update.object,
                     database_.generation_time(update.object),
                     update.arrival_time);
    if (history_ != nullptr) {
      history_->Record(update.object,
                       database_.generation_time(update.object),
                       database_.value(update.object));
    }
    ++metrics_.updates_installed;
    if (!bus_.empty()) {
      bus_.NotifyUpdateInstalled(simulator_->now(), update, on_demand_by);
    }
    if (fault_windows_active_ > 0 || outage_recovering_) {
      // Installs are what heal freshness — check the recovery clock at
      // each one so time-to-fresh is measured at the healing install,
      // not the next scheduler pass.
      SampleStaleExcursion();
    }
  } else {
    ++metrics_.updates_unworthy;
    if (!bus_.empty()) {
      bus_.NotifyUpdateDropped(simulator_->now(), update,
                               SystemObserver::DropReason::kUnworthy);
    }
  }
}

void System::OnUpdaterJobComplete() {
  STRIP_CHECK(cpu_owner_ == CpuOwner::kUpdater);
  if (!bus_.empty()) {
    bus_.NotifySegmentComplete(simulator_->now(), CurrentDispatchInfo());
  }
  ChargeSegmentCpu();
  const UpdaterJob job = updater_job_;
  updater_job_ = UpdaterJob{};
  cpu_owner_ = CpuOwner::kIdle;
  switch (job.kind) {
    case UpdaterJob::Kind::kTransferToQueue: {
      if (config_.dedup_update_queue && !DedupAgainstQueue(job.update)) {
        // A newer update for the same object is already queued: this
        // one is worthless (complete updates to snapshot views) and is
        // dropped at receive.
        break;
      }
      if (config_.shed_by_importance &&
          update_queue_.size() >= update_queue_.max_size() &&
          !ShedForIncoming(job.update)) {
        // The queue is full of higher-importance work than this
        // low-importance arrival: shed the arrival itself.
        break;
      }
      const std::vector<db::Update> evicted =
          update_queue_.Push(job.update);
      tracker_.OnEnqueued(job.update);
      if (!bus_.empty()) {
        bus_.NotifyUpdateEnqueued(simulator_->now(), job.update);
      }
      for (const db::Update& e : evicted) {
        tracker_.OnRemovedFromQueue(e);
        ++metrics_.updates_dropped_uq_overflow;
        if (!bus_.empty()) {
          bus_.NotifyUpdateDropped(simulator_->now(), e,
                                   SystemObserver::DropReason::kQueueOverflow);
        }
      }
      NoteUqLength();
      break;
    }
    case UpdaterJob::Kind::kInstallFromOs:
    case UpdaterJob::Kind::kInstallFromUq:
      InstallNow(job.update);
      break;
    case UpdaterJob::Kind::kNone:
      STRIP_CHECK_MSG(false, "updater job completed with no job");
      break;
  }
  ScheduleNext();
}

// --- transaction processes -------------------------------------------------------

double System::RemainingOfCurrentStep(const txn::Transaction& t) const {
  return t.next_step().instructions;
}

void System::StartTxnSegment(txn::Transaction* transaction) {
  STRIP_CHECK(cpu_owner_ == CpuOwner::kIdle);
  STRIP_CHECK(transaction != nullptr);
  cpu_owner_ = CpuOwner::kTxn;
  running_ = transaction;
  double extra = 0;
  const std::uint64_t pid = TxnProcessId(*transaction);
  if (last_process_ != pid && last_process_ != kNoProcess) {
    extra = config_.x_switch;
  }
  last_process_ = pid;
  ScheduleTxnStep(extra);
}

void System::ScheduleTxnStep(double extra_instructions) {
  txn::Transaction* t = running_;
  STRIP_CHECK(t != nullptr);
  const txn::Transaction::NextStep step = t->next_step();
  if (step.kind == txn::Transaction::NextStep::Kind::kDone) {
    // Degenerate zero-work transaction: commits immediately.
    running_ = nullptr;
    cpu_owner_ = CpuOwner::kIdle;
    Commit(t);
    ScheduleNext();
    return;
  }
  if (step.kind == txn::Transaction::NextStep::Kind::kViewRead) {
    if (sharded_ && step.owner_shard != base::kNoShard &&
        step.owner_shard != shard_link_.shard_id) {
      // The object lives on a peer shard: park the transaction and send
      // the read there (two-phase hold). The lookup cost — including
      // any buffer-miss stall — is charged on the peer, not here.
      EnterRemoteWait(t, step);
      return;
    }
    // Disk-residence extension: the view read may stall on a buffer
    // miss; the stall is wait, not transaction work, so it rides in
    // the extra-instruction slot. (A read resumed after preemption
    // re-probes the buffer — the page may have been evicted since.)
    extra_instructions += MaybeIoStallInstructions();
  }
  segment_start_ = simulator_->now();
  segment_extra_instructions_ = extra_instructions;
  segment_is_update_work_ =
      step.kind == txn::Transaction::NextStep::Kind::kOdScan ||
      step.kind == txn::Transaction::NextStep::Kind::kOdApply;
  segment_is_remote_work_ = false;
  segment_ips_ = EffectiveIps();
  if (!bus_.empty()) {
    bus_.NotifyDispatch(simulator_->now(), CurrentDispatchInfo());
  }
  completion_ = simulator_->ScheduleAfter(
      sim::InstructionsToSeconds(step.instructions + extra_instructions,
                                 segment_ips_),
      [this] { OnTxnSegmentComplete(); });
}

void System::OnTxnSegmentComplete() {
  STRIP_CHECK(cpu_owner_ == CpuOwner::kTxn);
  STRIP_CHECK(running_ != nullptr);
  if (!bus_.empty()) {
    bus_.NotifySegmentComplete(simulator_->now(), CurrentDispatchInfo());
  }
  ChargeSegmentCpu();
  txn::Transaction* t = running_;
  const txn::Transaction::NextStep step = t->next_step();
  switch (step.kind) {
    case txn::Transaction::NextStep::Kind::kCompute:
      t->CompleteStep();
      break;
    case txn::Transaction::NextStep::Kind::kViewRead:
      HandleViewRead(t, step.object);
      break;
    case txn::Transaction::NextStep::Kind::kOdScan:
      t->CompleteStep();
      ResolveOdScan(t, step.object);
      break;
    case txn::Transaction::NextStep::Kind::kOdApply:
      t->CompleteStep();
      PerformOdApply(t, step.object);
      break;
    case txn::Transaction::NextStep::Kind::kDone:
      STRIP_CHECK_MSG(false, "segment completed on a finished txn");
      break;
  }
  // A stale-read abort inside a handler frees the transaction (and may
  // already have handed the CPU to someone else), so `t` must not be
  // dereferenced unless it still owns the CPU.
  if (running_ != t) {
    return;
  }
  if (t->finished()) {
    running_ = nullptr;
    cpu_owner_ = CpuOwner::kIdle;
    Commit(t);
    ScheduleNext();
    return;
  }
  ScheduleTxnStep(0);
}

bool System::CanAffordExtraWork(const txn::Transaction& transaction,
                                double extra_instructions) const {
  if (!config_.feasible_deadline) return true;
  const sim::Duration needed = sim::InstructionsToSeconds(
      extra_instructions + transaction.remaining_base_instructions(),
      EffectiveIps());
  return simulator_->now() + needed <= transaction.deadline();
}

void System::HandleViewRead(txn::Transaction* transaction,
                            db::ObjectId object) {
  transaction->CompleteStep();
  if (policy_->AppliesOnDemand()) {
    const bool timestamped = db::DetectableByTimestamp(config_.staleness);
    // Under the MA family the timestamp reveals staleness for free and
    // the queue is searched only when the value actually is stale;
    // under UU (and MA+UU) the search *is* the staleness check, so
    // every read needs one. Either way, a search the transaction
    // cannot afford without blowing its firm deadline is pointless —
    // the feasible-deadline principle (Section 3.4) says not to burn
    // CPU on doomed work — so an unaffordable search is skipped and
    // the read proceeds as it would under TF.
    if (timestamped && !tracker_.IsStale(object)) return;
    // Under the MA family staleness is *detected* here, before the
    // queue search that may yet heal the read — the OnStaleRead event
    // fires at detection time, whether or not an on-demand install
    // follows. (Metrics still only count reads that stay stale.)
    if (timestamped && !bus_.empty()) {
      bus_.NotifyStaleRead(simulator_->now(), *transaction, object);
    }
    const double scan_cost = ScanCostInstructions();
    if (CanAffordExtraWork(*transaction, scan_cost)) {
      transaction->PushExtraStep(
          {txn::Transaction::NextStep::Kind::kOdScan, scan_cost, object});
      return;
    }
    if (tracker_.IsStale(object)) {
      // Under the MA family the system knows the data is stale
      // (timestamp); under UU the staleness went undetected — the
      // simulator still records it for the metrics, but the system
      // cannot act on it.
      RecordStaleRead(transaction, object, /*detected=*/timestamped,
                      /*notify=*/!timestamped);
    }
    return;
  }
  if (tracker_.IsStale(object)) {
    RecordStaleRead(transaction, object);
  }
}

bool System::UpdateCouldFreshen(const db::Update& update) const {
  switch (config_.staleness) {
    case db::StalenessCriterion::kMaxAge:
    case db::StalenessCriterion::kCombined:
      return simulator_->now() - update.generation_time < config_.alpha;
    case db::StalenessCriterion::kMaxAgeArrival:
      return simulator_->now() - update.arrival_time < config_.alpha;
    case db::StalenessCriterion::kUnappliedUpdate:
      return true;
  }
  return true;
}

void System::ResolveOdScan(txn::Transaction* transaction,
                           db::ObjectId object) {
  // Under UU (and MA+UU) the queue search *is* the staleness check:
  // detection happens as the scan completes, so the OnStaleRead event
  // fires here — even when the apply that follows heals the read. The
  // MA-family path already fired it at the timestamp check.
  if (!db::DetectableByTimestamp(config_.staleness) &&
      tracker_.IsStale(object) && !bus_.empty()) {
    bus_.NotifyStaleRead(simulator_->now(), *transaction, object);
  }
  const std::optional<db::Update> candidate =
      update_queue_.PeekNewestFor(object);
  const bool usable = candidate.has_value() &&
                      database_.IsWorthy(*candidate) &&
                      UpdateCouldFreshen(*candidate);
  if (usable) {
    const double cost =
        config_.x_update + QueueOpCostInstructions(update_queue_.size());
    transaction->PushExtraStep(
        {txn::Transaction::NextStep::Kind::kOdApply, cost, object});
    return;
  }
  if (tracker_.IsStale(object)) {
    RecordStaleRead(transaction, object, /*detected=*/true,
                    /*notify=*/false);
  }
}

void System::PerformOdApply(txn::Transaction* transaction,
                            db::ObjectId object) {
  const std::optional<db::Update> candidate =
      update_queue_.PeekNewestFor(object);
  const bool usable = candidate.has_value() &&
                      database_.IsWorthy(*candidate) &&
                      UpdateCouldFreshen(*candidate);
  if (usable) {
    const bool removed = update_queue_.Remove(*candidate);
    STRIP_CHECK(removed);
    tracker_.OnRemovedFromQueue(*candidate);
    NoteUqLength();
    InstallNow(*candidate, transaction);
    ++metrics_.updates_applied_on_demand;
  }
  if (tracker_.IsStale(object)) {
    RecordStaleRead(transaction, object, /*detected=*/true,
                    /*notify=*/false);
  }
}

bool System::RecordStaleRead(txn::Transaction* transaction,
                             db::ObjectId object, bool detected,
                             bool notify) {
  transaction->MarkStaleRead();
  if (notify && !bus_.empty()) {
    bus_.NotifyStaleRead(simulator_->now(), *transaction, object);
  }
  if (!config_.abort_on_stale || !detected) return false;
  STRIP_CHECK(transaction == running_);
  running_ = nullptr;
  cpu_owner_ = CpuOwner::kIdle;
  Terminate(transaction, txn::TxnOutcome::kStaleAbort);
  ScheduleNext();
  return true;
}

void System::PreemptRunningTxn(SystemObserver::PreemptReason reason) {
  STRIP_CHECK(cpu_owner_ == CpuOwner::kTxn);
  STRIP_CHECK(running_ != nullptr);
  if (!bus_.empty()) {
    bus_.NotifyPreempt(simulator_->now(), *running_, reason);
  }
  ChargeSegmentCpu();
  const double executed = std::max(
      0.0, (simulator_->now() - segment_start_) * segment_ips_ -
               segment_extra_instructions_);
  running_->ChargePartial(
      std::min(executed, RemainingOfCurrentStep(*running_)));
  simulator_->Cancel(completion_);
  ready_.Add(running_);
  running_ = nullptr;
  cpu_owner_ = CpuOwner::kIdle;
}

SystemObserver::DispatchInfo System::CurrentDispatchInfo() const {
  SystemObserver::DispatchInfo info;
  if (cpu_owner_ == CpuOwner::kUpdater) {
    switch (updater_job_.kind) {
      case UpdaterJob::Kind::kTransferToQueue:
        info.kind = SystemObserver::DispatchKind::kUpdaterTransfer;
        break;
      case UpdaterJob::Kind::kInstallFromOs:
        info.kind = SystemObserver::DispatchKind::kUpdaterInstallOs;
        break;
      case UpdaterJob::Kind::kInstallFromUq:
        info.kind = SystemObserver::DispatchKind::kUpdaterInstallUq;
        break;
      case UpdaterJob::Kind::kNone:
        STRIP_CHECK_MSG(false, "dispatch info with no updater job");
        break;
    }
    info.update = &updater_job_.update;
    info.instructions =
        updater_job_.cost_instructions + segment_extra_instructions_;
    return info;
  }
  if (cpu_owner_ == CpuOwner::kRemote) {
    info.kind = SystemObserver::DispatchKind::kRemoteService;
    info.remote = &remote_job_.read;
    info.instructions =
        remote_job_.cost_instructions + segment_extra_instructions_;
    return info;
  }
  STRIP_CHECK(cpu_owner_ == CpuOwner::kTxn && running_ != nullptr);
  const txn::Transaction::NextStep step = running_->next_step();
  info.kind = StepDispatchKind(step.kind);
  info.transaction = running_;
  info.instructions = step.instructions + segment_extra_instructions_;
  return info;
}

// --- cross-shard rendezvous (sharded model) ----------------------------------

void System::set_shard_link(ShardLink link) {
  STRIP_CHECK(link.shards >= 1);
  STRIP_CHECK(link.shard_id.value() >= 0 &&
              link.shard_id.value() < link.shards);
  sharded_ = link.shards > 1;
  if (sharded_) {
    STRIP_CHECK(link.send_request != nullptr);
    STRIP_CHECK(link.send_reply != nullptr);
    STRIP_CHECK(link.next_request_id != nullptr);
  }
  shard_link_ = std::move(link);
}

void System::EnterRemoteWait(txn::Transaction* transaction,
                             const txn::Transaction::NextStep& step) {
  STRIP_CHECK(cpu_owner_ == CpuOwner::kTxn && transaction == running_);
  STRIP_CHECK_MSG(remote_waiting_ == nullptr,
                  "second remote wait on one shard");
  RemoteRead read;
  read.request_id = shard_link_.next_request_id();
  read.txn_id = transaction->id();
  read.home_shard = shard_link_.shard_id;
  read.peer_shard = step.owner_shard;
  read.object = step.object;
  read.deadline = transaction->deadline();
  // The transaction keeps its claim on this CPU but runs nothing while
  // the request is in flight: the wait is not CPU work, so no segment
  // is dispatched (any pending switch charge dissolves — the CPU's
  // process does not change during the hold).
  running_ = nullptr;
  cpu_owner_ = CpuOwner::kIdle;
  remote_waiting_ = transaction;
  remote_wait_start_ = simulator_->now();
  remote_inflight_ = read;
  remote_attempt_ = 1;
  ++metrics_.remote_reads_issued;
  if (!bus_.empty()) {
    bus_.NotifyShardRemoteIssued(simulator_->now(), read);
  }
  // Arm before sending: a synchronous loopback reply cancels the timer
  // inside the send.
  ArmRemoteTimer();
  shard_link_.send_request(read);
  // The hold blocks local work, but peer requests queued here must
  // still be served (deadlock avoidance) — let the scheduler see them.
  if (cpu_owner_ == CpuOwner::kIdle) ScheduleNext();
}

void System::ReceiveRemoteRequest(const RemoteRead& read) {
  STRIP_CHECK(sharded_);
  remote_queue_.push_back(read);
  if (!bus_.empty()) {
    bus_.NotifyShardRemoteQueued(simulator_->now(), read);
  }
  if (cpu_owner_ == CpuOwner::kIdle) ScheduleNext();
}

void System::StartRemoteService() {
  STRIP_CHECK(cpu_owner_ == CpuOwner::kIdle);
  STRIP_CHECK(!remote_queue_.empty());
  remote_job_ = RemoteJob{};
  remote_job_.read = remote_queue_.front();
  remote_queue_.pop_front();
  double cost = config_.x_lookup + MaybeIoStallInstructions();
  if (policy_->AppliesOnDemand()) {
    // On Demand heals remote reads too: search the local update queue
    // for a fresher value before answering, exactly as a local read
    // would (HandleViewRead), gated by the affordability screen against
    // the deadline carried in the request.
    const bool timestamped = db::DetectableByTimestamp(config_.staleness);
    if (!timestamped || tracker_.IsStale(remote_job_.read.object)) {
      const double scan_cost = ScanCostInstructions();
      const bool affordable =
          !config_.feasible_deadline ||
          simulator_->now() + sim::InstructionsToSeconds(cost + scan_cost,
                                                         EffectiveIps()) <=
              remote_job_.read.deadline;
      if (affordable) {
        remote_job_.scan_planned = true;
        cost += scan_cost;
        // The update queue cannot change while this segment holds the
        // CPU, so the heal decision is safe to make at dispatch.
        const std::optional<db::Update> candidate =
            update_queue_.PeekNewestFor(remote_job_.read.object);
        if (candidate.has_value() && database_.IsWorthy(*candidate) &&
            UpdateCouldFreshen(*candidate)) {
          remote_job_.apply = true;
          remote_job_.candidate = *candidate;
          cost += config_.x_update +
                  QueueOpCostInstructions(update_queue_.size());
        }
      }
    }
  }
  remote_job_.cost_instructions = cost;
  cpu_owner_ = CpuOwner::kRemote;
  // The service runs in the update process's context.
  double extra = 0;
  if (last_process_ != kUpdaterProcess && last_process_ != kNoProcess) {
    extra = config_.x_switch;
  }
  last_process_ = kUpdaterProcess;
  segment_start_ = simulator_->now();
  segment_extra_instructions_ = extra;
  segment_is_update_work_ = false;
  segment_is_remote_work_ = true;
  segment_ips_ = EffectiveIps();
  if (!bus_.empty()) {
    bus_.NotifyDispatch(simulator_->now(), CurrentDispatchInfo());
  }
  completion_ = simulator_->ScheduleAfter(
      sim::InstructionsToSeconds(cost + extra, segment_ips_),
      [this] { OnRemoteServiceComplete(); });
}

void System::OnRemoteServiceComplete() {
  STRIP_CHECK(cpu_owner_ == CpuOwner::kRemote);
  if (!bus_.empty()) {
    bus_.NotifySegmentComplete(simulator_->now(), CurrentDispatchInfo());
  }
  ChargeSegmentCpu();
  segment_is_remote_work_ = false;
  const RemoteJob job = remote_job_;
  remote_job_ = RemoteJob{};
  cpu_owner_ = CpuOwner::kIdle;
  RemoteRead reply = job.read;
  if (job.apply) {
    const bool removed = update_queue_.Remove(job.candidate);
    STRIP_CHECK(removed);
    tracker_.OnRemovedFromQueue(job.candidate);
    NoteUqLength();
    InstallNow(job.candidate);
    ++metrics_.remote_heals;
    reply.healed = true;
  }
  reply.stale = tracker_.IsStale(reply.object);
  // Under the MA family the peer's timestamp check detects staleness
  // for free; under UU only a performed scan counts as detection.
  reply.detected =
      db::DetectableByTimestamp(config_.staleness) || job.scan_planned;
  ++metrics_.remote_reads_served;
  if (!bus_.empty()) {
    bus_.NotifyShardRemoteServiced(simulator_->now(), reply);
  }
  shard_link_.send_reply(reply);
  // The reply can loop back synchronously: the home shard may resume
  // its transaction, reach another cross-shard read, and post it to
  // *this* shard — whose idle CPU then starts the next remote service
  // before the send returns. Only settle if the CPU is still free.
  if (cpu_owner_ == CpuOwner::kIdle) ScheduleNext();
}

void System::ReceiveRemoteReply(const RemoteRead& read) {
  // A reply resolves the parked transaction only if it answers the
  // *current* request: after a timeout re-issue (or a fallback, or the
  // firm deadline) a late reply for an earlier request id has no home.
  // With the perfect interconnect delivery is synchronous, so the
  // request-id test never fails while the transaction is parked.
  const bool txn_live = remote_waiting_ != nullptr &&
                        remote_waiting_->id() == read.txn_id &&
                        remote_inflight_.request_id == read.request_id;
  if (!bus_.empty()) {
    bus_.NotifyShardRemoteResolved(simulator_->now(), read, txn_live);
  }
  if (!txn_live) {
    // The firm deadline fired during the wait; the reply has no home.
    ++metrics_.remote_replies_orphaned;
    return;
  }
  CancelRemoteTimer();
  txn::Transaction* t = remote_waiting_;
  remote_waiting_ = nullptr;
  metrics_.remote_wait_seconds +=
      simulator_->now() - std::max(remote_wait_start_, observation_start_);
  t->CompleteStep();
  if (read.stale) {
    ++metrics_.remote_stale_replies;
    // The read stayed stale on the peer. Recorded against the
    // transaction directly: the object id is peer-local, so the home
    // bus's OnStaleRead (whose observers resolve objects against the
    // local database) must not fire — observers see the staleness via
    // OnShardRemoteResolved above.
    t->MarkStaleRead();
    if (config_.abort_on_stale && read.detected) {
      Terminate(t, txn::TxnOutcome::kStaleAbort);
      if (cpu_owner_ == CpuOwner::kIdle) ScheduleNext();
      return;
    }
  }
  if (t->finished()) {
    Commit(t);
    if (cpu_owner_ == CpuOwner::kIdle) ScheduleNext();
    return;
  }
  // Resume on the CPU the transaction still holds; if a remote service
  // segment occupies it right now, resume at the next settle point.
  remote_resume_ = t;
  if (cpu_owner_ == CpuOwner::kIdle) ScheduleNext();
}

void System::ArmRemoteTimer() {
  if (config_.remote_timeout_s <= 0) return;
  remote_timeout_current_ =
      remote_attempt_ == 1
          ? config_.remote_timeout_s
          : remote_timeout_current_ * config_.remote_retry_backoff;
  remote_timeout_event_ = simulator_->ScheduleAfter(
      remote_timeout_current_, [this] { OnRemoteTimeout(); });
  remote_timer_armed_ = true;
}

void System::CancelRemoteTimer() {
  if (!remote_timer_armed_) return;
  simulator_->Cancel(remote_timeout_event_);
  remote_timer_armed_ = false;
}

void System::OnRemoteTimeout() {
  remote_timer_armed_ = false;
  if (remote_waiting_ == nullptr) return;  // resolved at this instant
  txn::Transaction* t = remote_waiting_;
  // Retry while the budget lasts *and* a full backed-off wait still
  // fits before the firm deadline — a retry whose timer cannot fire in
  // time would just die waiting, so fall back now instead and give the
  // degraded read a chance to commit.
  const double next_timeout =
      remote_timeout_current_ * config_.remote_retry_backoff;
  if (remote_attempt_ <= config_.remote_retry_max &&
      simulator_->now() + next_timeout <= t->deadline()) {
    if (!bus_.empty()) {
      bus_.NotifyRemoteTimeout(simulator_->now(), remote_inflight_,
                               remote_attempt_, /*will_retry=*/true);
      bus_.NotifyPolicyDecision(simulator_->now(), config_.policy,
                                SystemObserver::SchedulerChoice::kRemoteRetry,
                                "remote-timeout");
    }
    ++metrics_.remote_retries;
    // Re-issue under a fresh request id: the census tracks each issue
    // separately, and a late reply to the old id resolves as orphaned.
    RemoteRead read = remote_inflight_;
    read.request_id = shard_link_.next_request_id();
    remote_inflight_ = read;
    ++remote_attempt_;
    ++metrics_.remote_reads_issued;
    if (!bus_.empty()) {
      bus_.NotifyShardRemoteIssued(simulator_->now(), read);
    }
    ArmRemoteTimer();
    shard_link_.send_request(read);
    if (cpu_owner_ == CpuOwner::kIdle) ScheduleNext();
    return;
  }
  // Budget exhausted: the peer is unreachable as far as this
  // transaction is concerned. Release the hold and fall back.
  ++metrics_.remote_timeouts;
  if (!bus_.empty()) {
    bus_.NotifyRemoteTimeout(simulator_->now(), remote_inflight_,
                             remote_attempt_, /*will_retry=*/false);
  }
  remote_waiting_ = nullptr;
  metrics_.remote_wait_seconds +=
      simulator_->now() - std::max(remote_wait_start_, observation_start_);
  if (config_.remote_fallback == RemoteFallback::kStale) {
    // Degraded-mode read: proceed on the locally cached last-installed
    // value. By construction it may be arbitrarily old, so it counts
    // as a stale read; it deliberately does *not* trigger
    // abort-on-stale (the whole point of the fallback is to commit
    // something rather than nothing).
    ++metrics_.remote_degraded_reads;
    if (!bus_.empty()) {
      bus_.NotifyDegradedRead(simulator_->now(), remote_inflight_);
      bus_.NotifyPolicyDecision(
          simulator_->now(), config_.policy,
          SystemObserver::SchedulerChoice::kRemoteDegrade,
          "retries-exhausted");
    }
    t->MarkStaleRead();
    t->CompleteStep();
    if (t->finished()) {
      Commit(t);
      if (cpu_owner_ == CpuOwner::kIdle) ScheduleNext();
      return;
    }
    remote_resume_ = t;
    if (cpu_owner_ == CpuOwner::kIdle) ScheduleNext();
    return;
  }
  if (!bus_.empty()) {
    bus_.NotifyPolicyDecision(simulator_->now(), config_.policy,
                              SystemObserver::SchedulerChoice::kRemoteAbort,
                              "retries-exhausted");
  }
  Terminate(t, txn::TxnOutcome::kRemoteUnavailable);
  if (cpu_owner_ == CpuOwner::kIdle) ScheduleNext();
}

void System::Commit(txn::Transaction* transaction) {
  transaction->set_outcome(txn::TxnOutcome::kCommitted);
  transaction->set_completion_time(simulator_->now());
  if (!bus_.empty()) {
    bus_.NotifyTransactionTerminal(simulator_->now(), *transaction);
  }
  ++metrics_.txns_committed;
  ++metrics_.txns_committed_by_class[static_cast<int>(transaction->cls())];
  metrics_.value_committed_by_class[static_cast<int>(transaction->cls())] +=
      transaction->value();
  response_times_.Add(simulator_->now() - transaction->arrival_time());
  if (transaction->read_stale_data()) {
    ++metrics_.txns_committed_stale;
  } else {
    ++metrics_.txns_committed_fresh;
  }
  metrics_.value_committed += transaction->value();
  auto it = live_txns_.find(transaction->id());
  STRIP_CHECK(it != live_txns_.end());
  simulator_->Cancel(it->second.deadline_event);
  live_txns_.erase(it);
}

void System::Terminate(txn::Transaction* transaction,
                       txn::TxnOutcome outcome) {
  transaction->set_outcome(outcome);
  transaction->set_completion_time(simulator_->now());
  if (!bus_.empty()) {
    bus_.NotifyTransactionTerminal(simulator_->now(), *transaction);
  }
  switch (outcome) {
    case txn::TxnOutcome::kMissedDeadline:
    case txn::TxnOutcome::kInfeasible:
      if (outcome == txn::TxnOutcome::kMissedDeadline) {
        ++metrics_.txns_missed_deadline;
      } else {
        ++metrics_.txns_infeasible;
      }
      // Attribute the miss to the fault if one is active or an outage
      // recovery is still pending.
      if (fault_windows_active_ > 0 || outage_recovering_) {
        ++metrics_.txns_missed_in_fault;
      }
      break;
    case txn::TxnOutcome::kStaleAbort:
      ++metrics_.txns_stale_aborted;
      break;
    case txn::TxnOutcome::kRemoteUnavailable:
      ++metrics_.txns_remote_unavailable;
      if (fault_windows_active_ > 0 || outage_recovering_) {
        ++metrics_.txns_missed_in_fault;
      }
      break;
    default:
      STRIP_CHECK_MSG(false, "Terminate with non-terminal outcome");
  }
  auto it = live_txns_.find(transaction->id());
  STRIP_CHECK(it != live_txns_.end());
  simulator_->Cancel(it->second.deadline_event);
  live_txns_.erase(it);
}

// --- fault handling ----------------------------------------------------------

double System::CombinedStaleFraction() const {
  const int stale =
      tracker_.StaleCount(db::ObjectClass::kLowImportance) +
      tracker_.StaleCount(db::ObjectClass::kHighImportance);
  return static_cast<double>(stale) /
         static_cast<double>(config_.n_low + config_.n_high);
}

void System::OnFaultWindowBoundary(const fault::FaultWindow& window,
                                   bool begin) {
  if (begin) {
    ++fault_windows_active_;
    ++metrics_.fault_windows;
    if (window.kind == fault::FaultKind::kOutage) {
      // The recovery target: freshness as it stood when the feed went
      // down. A new outage restarts any pending recovery clock.
      pre_outage_stale_ = CombinedStaleFraction();
      outage_recovering_ = false;
    }
  } else {
    --fault_windows_active_;
    if (window.kind == fault::FaultKind::kOutage) {
      outage_recovering_ = true;
      outage_end_time_ = simulator_->now();
    }
  }
  SampleStaleExcursion();
  if (!bus_.empty()) {
    SystemObserver::FaultWindowInfo info;
    info.kind = fault::FaultKindName(window.kind);
    info.label = window.label.c_str();
    info.begin = begin;
    info.start = window.start;
    info.end = window.end();
    if (sharded_) info.shard = shard_link_.shard_id.value();
    bus_.NotifyFaultWindow(simulator_->now(), info);
  }
}

void System::OnClusterFaultBoundary(const fault::FaultWindow& window,
                                    bool begin) {
  // Interconnect windows feed fault attribution (a deadline missed
  // while the links are degraded counts as missed-in-fault) but not
  // this shard's own fault_windows counter — the cluster-level
  // partition metrics own these windows, and summing per-shard
  // counters across the cluster must not multiply-count them.
  if (begin) {
    ++fault_windows_active_;
  } else {
    --fault_windows_active_;
  }
  if (!bus_.empty()) {
    SystemObserver::FaultWindowInfo info;
    info.kind = fault::FaultKindName(window.kind);
    info.label = window.label.c_str();
    info.begin = begin;
    info.start = window.start;
    info.end = window.end();
    info.shard = shard_link_.shard_id.value();
    bus_.NotifyFaultWindow(simulator_->now(), info);
  }
}

void System::SampleStaleExcursion() {
  if (fault_windows_active_ <= 0 && !outage_recovering_) return;
  const double fraction = CombinedStaleFraction();
  metrics_.max_stale_excursion =
      std::max(metrics_.max_stale_excursion, fraction);
  if (outage_recovering_ && fraction <= pre_outage_stale_) {
    metrics_.outage_recovery_seconds =
        simulator_->now() - outage_end_time_;
    outage_recovering_ = false;
  }
}

void System::MaybeToggleGovernor() {
  const double capacity = static_cast<double>(config_.uq_max);
  const double depth = static_cast<double>(update_queue_.size());
  double stale = 0;
  if (config_.governor_stale_threshold > 0) {
    stale = std::max(
        tracker_.FractionStaleNow(db::ObjectClass::kLowImportance),
        tracker_.FractionStaleNow(db::ObjectClass::kHighImportance));
  }
  if (!governor_engaged_) {
    const char* reason = nullptr;
    if (depth >= config_.governor_high_watermark * capacity) {
      reason = "uq-high-watermark";
    } else if (config_.governor_stale_threshold > 0 &&
               stale >= config_.governor_stale_threshold) {
      reason = "stale-threshold";
    }
    if (reason == nullptr) return;
    governor_engaged_ = true;
    governor_engage_time_ = simulator_->now();
    ++metrics_.governor_engagements;
    if (!bus_.empty()) {
      bus_.NotifyPolicyDecision(
          simulator_->now(), config_.policy,
          SystemObserver::SchedulerChoice::kGovernorEngage, reason);
    }
    return;
  }
  // Hysteresis: disengage only once the depth has drained past the low
  // watermark AND staleness is strictly below its threshold.
  if (depth > config_.governor_low_watermark * capacity) return;
  if (config_.governor_stale_threshold > 0 &&
      stale >= config_.governor_stale_threshold) {
    return;
  }
  governor_engaged_ = false;
  metrics_.governor_engaged_seconds +=
      simulator_->now() -
      std::max(governor_engage_time_, observation_start_);
  if (!bus_.empty()) {
    bus_.NotifyPolicyDecision(
        simulator_->now(), config_.policy,
        SystemObserver::SchedulerChoice::kGovernorDisengage, "recovered");
  }
}

}  // namespace strip::core
