// The RTDB controller: ties the whole model together.
//
// Implements the conceptual architecture of Section 3.1 — a controller
// process that multiplexes one simulated CPU between the single update
// process and many transaction processes, under a pluggable scheduling
// Policy (Section 4). It owns the database, the OS queue, the update
// queue, the staleness tracker, the workload generators, and the
// metrics collectors; one System instance models one run.
//
// Execution is event-driven: every update arrival, transaction arrival,
// CPU segment completion, firm deadline, and MA expiry is a simulator
// event. CPU work is charged in instructions and converted to simulated
// seconds at `ips`; context-switch costs are charged to the activity
// being started (2·x_switch when an arrival preempts a transaction to
// receive an update, x_switch for ordinary process switches).
//
// Typical use:
//   sim::Simulator simulator;
//   core::Config config;                 // paper baseline
//   config.policy = core::PolicyKind::kOnDemand;
//   core::System system(&simulator, config, /*seed=*/1);
//   core::RunMetrics metrics = system.Run();

#ifndef STRIP_CORE_SYSTEM_H_
#define STRIP_CORE_SYSTEM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "base/strong_types.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/observer.h"
#include "core/observer_bus.h"
#include "core/policy.h"
#include "core/remote.h"
#include "db/database.h"
#include "db/history_store.h"
#include "db/os_queue.h"
#include "db/staleness.h"
#include "db/update_queue.h"
#include "fault/fault_injector.h"
#include "fault/fault_schedule.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "txn/ready_queue.h"
#include "txn/transaction.h"

namespace strip::core {

class System {
 public:
  // Wires the model onto `simulator` and schedules the first arrivals.
  // `config` must validate; `seed` determines every random draw of the
  // run. The simulator must outlive the System.
  System(sim::Simulator* simulator, const Config& config,
         base::RngSeed seed);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // Runs the simulation to config.sim_seconds and returns the metrics
  // for the observation window (warm-up excluded). Callable once.
  RunMetrics Run();

  // Incremental alternative to Run() for callers that need to check a
  // wall-clock budget between slices (crash-safe sweeps): advances the
  // simulation by at most `max_slice` simulated seconds. Returns true
  // when the run reached config.sim_seconds (metrics finalized — read
  // them with HaltEarly()'s return or keep the value from the final
  // RunSlice caller side via metrics()); false when more slices remain.
  bool RunSlice(sim::Duration max_slice);

  // Abandons an unfinished sliced run: finalizes metrics at the
  // current simulated time and returns them. The System is spent
  // afterwards (like after Run()).
  RunMetrics HaltEarly();

  // The metrics finalized by Run() / the last RunSlice; valid only
  // after finalization.
  const RunMetrics& metrics() const { return metrics_; }
  // The raw commit response-time histogram behind the percentile
  // metrics; the cluster bucket-merges these for true cluster-level
  // percentiles.
  const sim::Histogram& response_times() const { return response_times_; }

  // Registers an observer notified of discrete outcomes (transaction
  // terminals, update installs/drops, stale reads, phase boundaries).
  // Any number of observers can be attached; they are notified in
  // registration order and must outlive their registration.
  void AddObserver(SystemObserver* observer) { bus_.Add(observer); }

  // Unregisters an observer. Returns false if it was not registered.
  // Safe to call from inside an observer callback.
  bool RemoveObserver(SystemObserver* observer) {
    return bus_.Remove(observer);
  }

  // The underlying bus, for RAII registration (core::ScopedObserver).
  // (The deprecated single-observer set_observer shim was removed
  // after its one-release grace period; use AddObserver/ScopedObserver.)
  ObserverBus& observer_bus() { return bus_; }

  // --- sharded-model integration (core/cluster.h) ---------------------------

  // Wiring that makes this System one shard engine of a Cluster. The
  // callbacks route cross-shard read requests/replies between shard
  // engines (delivered via ReceiveRemoteRequest / ReceiveRemoteReply
  // on the target engine, at the same simulated instant — service
  // itself takes simulated CPU time on the peer). With no link set (or
  // shards == 1) none of the remote machinery runs and the System is
  // byte-identical to the pre-sharding uniprocessor model.
  struct ShardLink {
    base::ShardId shard_id{0};
    int shards = 1;
    std::function<void(const RemoteRead&)> send_request;
    std::function<void(const RemoteRead&)> send_reply;
    // Cluster-unique request ids (the auditors' census key).
    std::function<std::uint64_t()> next_request_id;
  };

  // Must be called before the first event runs.
  void set_shard_link(ShardLink link);
  base::ShardId shard_id() const { return shard_link_.shard_id; }

  // Peer-side entry: queues a remote read for service on this shard's
  // CPU (serviced ahead of all other work at the next settle point).
  void ReceiveRemoteRequest(const RemoteRead& read);
  // Home-side entry: resolves a read this shard issued earlier.
  void ReceiveRemoteReply(const RemoteRead& read);

  // Probes for the cluster auditor's end-of-run census.
  std::size_t remote_queue_depth() const { return remote_queue_.size(); }
  bool remote_in_service() const {
    return cpu_owner_ == CpuOwner::kRemote;
  }
  // A transaction is parked on (or resuming from) a remote read.
  bool remote_waiting() const {
    return remote_waiting_ != nullptr || remote_resume_ != nullptr;
  }

  // External-workload injection (config.external_workload): delivers
  // an arrival *at the current simulation time*. Call from simulator
  // events scheduled at the desired arrival instants — e.g., the sinks
  // of a workload::TraceReplay — before or during Run(). Injected
  // updates pass through the fault layer when the run has a --faults
  // schedule.
  void InjectUpdate(const db::Update& update);
  void InjectTransaction(const txn::Transaction::Params& params) {
    OnTxnArrival(params);
  }

  // --- inspection (tests, examples) ---------------------------------------

  const Config& config() const { return config_; }
  // The simulator this run executes on (observers that schedule their
  // own probe events — e.g. obs::PeriodicSampler — ride on it).
  sim::Simulator* simulator() const { return simulator_; }
  const db::Database& database() const { return database_; }
  const db::StalenessTracker& staleness() const { return tracker_; }
  const db::UpdateQueue& update_queue() const { return update_queue_; }
  const db::OsQueue& os_queue() const { return os_queue_; }
  const txn::ReadyQueue& ready_queue() const { return ready_; }
  const Policy& policy() const { return *policy_; }
  // Version history of installed values; nullptr unless
  // config.history_depth > 0.
  const db::HistoryStore* history() const { return history_.get(); }
  // The fault injector; nullptr unless config.faults is non-empty.
  const fault::FaultInjector* fault_injector() const {
    return fault_injector_.get();
  }
  // Whether the overload governor is currently engaged.
  bool governor_engaged() const { return governor_engaged_; }

  // --- live probes (observability; see src/obs) ----------------------------

  // Transactions currently in the system (running or ready).
  std::size_t live_txn_count() const { return live_txns_.size(); }
  // Start of the current observation window (0, or the warm-up end).
  sim::Time observation_start() const { return observation_start_; }
  // CPU seconds charged to transactions / the update process so far in
  // the observation window, including the segment currently on the CPU
  // (unlike RunMetrics, which is settled only at segment boundaries).
  sim::Duration CpuTxnSecondsNow() const;
  sim::Duration CpuUpdateSecondsNow() const;

 private:
  friend class Cluster;  // drives Finalize for sliced/halted runs

  enum class CpuOwner { kIdle, kTxn, kUpdater, kRemote };

  // One unit of update-process work.
  struct UpdaterJob {
    enum class Kind {
      kNone,
      kTransferToQueue,  // OS queue head -> update queue
      kInstallFromOs,    // OS queue head -> database (UF, SU-high)
      kInstallFromUq,    // update queue (FIFO/LIFO) -> database
    };
    Kind kind = Kind::kNone;
    db::Update update;
    bool worthy = false;
    double cost_instructions = 0;
  };

  struct LiveTxn {
    std::unique_ptr<txn::Transaction> transaction;
    sim::EventQueue::Handle deadline_event;
  };

  // One remote read being serviced on this shard's CPU (peer side).
  // The heal decision is made at dispatch: the update queue cannot
  // change while the service segment occupies the CPU.
  struct RemoteJob {
    RemoteRead read;
    bool scan_planned = false;  // OD queue scan folded into the segment
    bool apply = false;         // a usable queued update will be installed
    db::Update candidate;       // the update to install when `apply`
    double cost_instructions = 0;
  };

  // --- arrival handlers -----------------------------------------------------
  void OnUpdateArrival(const db::Update& update);
  void OnTxnArrival(const txn::Transaction::Params& params);
  void OnDeadline(base::TxnId txn_id);

  // --- the scheduler ---------------------------------------------------------
  // Decides what runs next. Precondition: the CPU is idle.
  void ScheduleNext();
  UpdaterContext MakeUpdaterContext() const;

  // --- update process --------------------------------------------------------
  // Starts one updater job. `preempting` means an arrival just
  // preempted a running transaction, which costs 2·x_switch charged to
  // this job (otherwise an ordinary x_switch applies when the CPU
  // changes process). Precondition: the CPU is idle and work exists.
  void StartUpdaterJob(bool preempting);
  UpdaterJob SelectUpdaterJob();
  void OnUpdaterJobComplete();
  // Installs `update` into the database with tracker bookkeeping.
  // `on_demand_by` is the transaction whose stale read demanded the
  // install (OD), or nullptr for an ordinary update-process install.
  void InstallNow(const db::Update& update,
                  const txn::Transaction* on_demand_by = nullptr);
  // Dedup extension: discards queued updates `update` supersedes.
  // Returns false if `update` itself is superseded (and dropped).
  bool DedupAgainstQueue(const db::Update& update);
  // Importance-aware shedding (shed_by_importance): makes room for
  // `incoming` in the full update queue by evicting the oldest queued
  // low-importance update (or, for a high-importance arrival, the
  // oldest high one as a last resort). Returns false when `incoming`
  // itself should be dropped instead (a low-importance arrival never
  // displaces queued high-importance work).
  bool ShedForIncoming(const db::Update& incoming);
  // Drops updates whose generation age exceeds alpha from the update
  // queue (free bookkeeping; see DESIGN.md).
  void PurgeExpired();

  // --- transaction processes ---------------------------------------------------
  void StartTxnSegment(txn::Transaction* transaction);
  // Schedules the running transaction's current step on the CPU;
  // `extra_instructions` carries context-switch charges.
  void ScheduleTxnStep(double extra_instructions);
  void OnTxnSegmentComplete();
  void HandleViewRead(txn::Transaction* transaction, db::ObjectId object);
  void ResolveOdScan(txn::Transaction* transaction, db::ObjectId object);
  void PerformOdApply(txn::Transaction* transaction, db::ObjectId object);
  // Records a stale read of `object`; under abort-on-stale terminates
  // the running transaction (only if the *system* detected the
  // staleness — an undetected one is recorded for the metrics but
  // cannot trigger an abort). Returns true if the transaction was
  // aborted. `notify` suppresses the OnStaleRead observer event when
  // the OD path already fired it at detection time.
  bool RecordStaleRead(txn::Transaction* transaction, db::ObjectId object,
                       bool detected = true, bool notify = true);
  // Can the transaction absorb `extra_instructions` of unplanned work
  // (an OD queue search) and still meet its deadline?
  bool CanAffordExtraWork(const txn::Transaction& transaction,
                          double extra_instructions) const;
  // Would installing `update` leave its object fresh under the active
  // criterion?
  bool UpdateCouldFreshen(const db::Update& update) const;
  // Moves the running transaction back to the ready queue; `reason`
  // feeds the OnPreempt observer hook.
  void PreemptRunningTxn(SystemObserver::PreemptReason reason);
  // The DispatchInfo describing the segment currently on the CPU
  // (observer hooks; call only while the CPU is busy).
  SystemObserver::DispatchInfo CurrentDispatchInfo() const;
  void Commit(txn::Transaction* transaction);
  // Removes a transaction from the system with the given outcome.
  void Terminate(txn::Transaction* transaction, txn::TxnOutcome outcome);

  // --- accounting --------------------------------------------------------------
  // Charges the CPU interval [segment_start_, now] to the right bucket
  // (clamped to the observation window).
  void ChargeSegmentCpu();
  // Instructions left in the transaction's current step (preemption /
  // deadline clamp).
  double RemainingOfCurrentStep(const txn::Transaction& t) const;
  double ScanCostInstructions() const;
  double QueueOpCostInstructions(std::size_t queue_size_after) const;
  // Disk-residence extension: draws a buffer-pool outcome for one
  // object lookup; returns the stall expressed in instructions (0 on a
  // hit, and always 0 at the main-memory baseline).
  double MaybeIoStallInstructions();
  // Trigger extension: draws whether a database write fires a rule;
  // returns the recomputation cost in instructions.
  double MaybeTriggerInstructions();

  // --- cross-shard rendezvous (sharded model) --------------------------------
  // Parks the running transaction on a remote read: it keeps its claim
  // on this CPU (two-phase hold) while the request travels to the peer
  // named by `step.owner_shard`.
  void EnterRemoteWait(txn::Transaction* transaction,
                       const txn::Transaction::NextStep& step);
  // Timeout/retry/fallback for the in-flight remote read (armed only
  // when config.remote_timeout_s > 0; see the knobs in core/config.h).
  void ArmRemoteTimer();
  void CancelRemoteTimer();
  void OnRemoteTimeout();
  // Dispatches the head of the remote queue as one service segment
  // (lookup + optional on-demand heal). Precondition: CPU idle,
  // queue non-empty.
  void StartRemoteService();
  void OnRemoteServiceComplete();
  void NoteUqLength();
  void NoteOsLength();
  void ResetObservation();
  void Finalize(sim::Time end);

  // --- fault handling (src/fault integration) --------------------------------
  // CPU speed with any active cpu-degradation fault window applied.
  // Exactly config_.ips when no fault is active, so fault-free runs
  // are bit-identical to builds without the fault layer.
  double EffectiveIps() const {
    return cpu_factor_ == 1.0 ? config_.ips : config_.ips * cpu_factor_;
  }
  void SetCpuFactor(double factor) { cpu_factor_ = factor; }
  // Fired by the injector at every fault-window boundary.
  void OnFaultWindowBoundary(const fault::FaultWindow& window, bool begin);
  // Fired by the Cluster at every cluster-scoped (interconnect) fault
  // window boundary, on every shard. Feeds fault attribution and the
  // observer bus, but not this shard's own fault_windows metric — the
  // cluster-level counters (partition_windows, partition_seconds) own
  // those windows.
  void OnClusterFaultBoundary(const fault::FaultWindow& window, bool begin);
  // Tracks the staleness excursion and the time-to-fresh recovery
  // clock while faults are active or an outage recovery is pending.
  void SampleStaleExcursion();
  double CombinedStaleFraction() const;
  // Engages / disengages the overload governor with hysteresis.
  void MaybeToggleGovernor();

  sim::Simulator* simulator_;
  Config config_;
  std::unique_ptr<Policy> policy_;
  ObserverBus bus_;
  // Draws for the system-side stochastic extensions (buffer misses,
  // trigger firings); independent of the workload streams.
  sim::RandomStream system_random_;

  db::Database database_;
  db::StalenessTracker tracker_;
  db::UpdateQueue update_queue_;
  db::OsQueue os_queue_;
  std::unique_ptr<db::HistoryStore> history_;
  txn::ReadyQueue ready_;

  std::unique_ptr<workload::UpdateStream> update_stream_;
  std::unique_ptr<workload::TxnSource> txn_source_;

  // Fault injection (both null when config.faults is empty).
  std::unique_ptr<fault::FaultSchedule> fault_schedule_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  // CPU-degradation factor from an active cpu fault window.
  double cpu_factor_ = 1.0;
  // The ips the segment currently on the CPU was dispatched at, so
  // partial-execution accounting (deadline cuts, preemptions) matches
  // the rate the completion event was scheduled with even if a cpu
  // fault toggled mid-segment.
  double segment_ips_ = 0;
  // Fault-attribution state for the recovery metrics.
  int fault_windows_active_ = 0;
  bool outage_recovering_ = false;
  sim::Time outage_end_time_ = 0;
  double pre_outage_stale_ = 0;
  // Overload-governor state.
  bool governor_engaged_ = false;
  sim::Time governor_engage_time_ = 0;

  std::unordered_map<base::TxnId, LiveTxn> live_txns_;

  // CPU state.
  CpuOwner cpu_owner_ = CpuOwner::kIdle;
  txn::Transaction* running_ = nullptr;
  UpdaterJob updater_job_;
  sim::EventQueue::Handle completion_;
  sim::Time segment_start_ = 0;
  // Switch/receive charge embedded at the front of the current segment
  // (not part of the activity's own work).
  double segment_extra_instructions_ = 0;
  bool segment_is_update_work_ = false;
  // Last process that held the CPU, for x_switch charging:
  // 0 = none, 1 = the update process, txn id + 1 otherwise.
  std::uint64_t last_process_ = 0;

  // Sharded-model state (inert at shards=1 / no link).
  ShardLink shard_link_;
  bool sharded_ = false;  // link set with shards > 1
  // Remote reads awaiting service on this shard's CPU, FIFO.
  std::deque<RemoteRead> remote_queue_;
  RemoteJob remote_job_;
  // The transaction holding this CPU while a remote read is in flight.
  txn::Transaction* remote_waiting_ = nullptr;
  sim::Time remote_wait_start_ = 0;
  // Reply arrived while the CPU was busy servicing a peer: resume this
  // transaction at the next settle point.
  txn::Transaction* remote_resume_ = nullptr;
  bool segment_is_remote_work_ = false;
  // Timeout/retry state for the read remote_waiting_ is parked on. The
  // in-flight copy keeps the *current* request id: a reply for an
  // earlier (timed-out, re-issued) request resolves as orphaned.
  RemoteRead remote_inflight_;
  sim::EventQueue::Handle remote_timeout_event_;
  bool remote_timer_armed_ = false;
  int remote_attempt_ = 0;
  double remote_timeout_current_ = 0;

  int os_pending_high_ = 0;
  // Queue-removal cost of expiry purges, accrued as bookkeeping and
  // charged to the update process's next CPU slice.
  double purge_debt_instructions_ = 0;

  // Metrics.
  RunMetrics metrics_;
  // Commit response times (completion − arrival).
  sim::Histogram response_times_;
  sim::Time observation_start_ = 0;
  sim::TimeWeighted uq_length_;
  sim::TimeWeighted os_length_;
  std::uint64_t uq_length_max_ = 0;
  bool finalized_ = false;
};

}  // namespace strip::core

#endif  // STRIP_CORE_SYSTEM_H_
