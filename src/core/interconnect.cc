#include "core/interconnect.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace strip::core {

namespace {

bool InSet(const std::vector<int>& set, int shard) {
  return std::find(set.begin(), set.end(), shard) != set.end();
}

bool IsCutKind(fault::FaultKind kind) {
  return kind == fault::FaultKind::kPartition ||
         kind == fault::FaultKind::kShardOutage;
}

}  // namespace

Interconnect::Interconnect(sim::Simulator* simulator, const Params& params,
                           base::RngSeed seed, Deliver deliver_request,
                           Deliver deliver_reply)
    : simulator_(simulator),
      params_(params),
      inert_(params.latency_s == 0 && params.jitter_s == 0 &&
             params.loss_p == 0 && params.schedule.empty()),
      random_(seed),
      deliver_request_(std::move(deliver_request)),
      deliver_reply_(std::move(deliver_reply)) {
  STRIP_CHECK(simulator != nullptr);
  STRIP_CHECK(deliver_request_ != nullptr && deliver_reply_ != nullptr);
  for (const fault::FaultWindow& w : params_.schedule.windows()) {
    STRIP_CHECK_MSG(fault::IsClusterScoped(w.kind),
                    "interconnect schedule must be cluster-scoped");
    if (IsCutKind(w.kind)) heal_times_.push_back(w.end());
  }
  std::sort(heal_times_.begin(), heal_times_.end());
}

void Interconnect::ScheduleWindowEvents(WindowHook hook) {
  STRIP_CHECK(hook != nullptr);
  for (const fault::FaultWindow& window : params_.schedule.windows()) {
    // Point into the stored schedule, not a per-lambda copy: observer
    // payloads (FaultWindowInfo::label) carry the run's lifetime.
    const fault::FaultWindow* w = &window;
    simulator_->ScheduleAt(window.start, [hook, w] { hook(*w, true); });
    simulator_->ScheduleAt(window.end(), [hook, w] { hook(*w, false); });
  }
}

bool Interconnect::Dropped(const RemoteRead& read, sim::Time now) {
  // Deterministic cuts first (no RNG draw): a message crossing an
  // active partition, or touching a downed shard, is always lost.
  if (const fault::FaultWindow* w =
          params_.schedule.ActiveAt(fault::FaultKind::kPartition, now)) {
    if (InSet(w->shard_set, read.home_shard.value()) !=
        InSet(w->shard_set, read.peer_shard.value())) {
      return true;
    }
  }
  if (const fault::FaultWindow* w =
          params_.schedule.ActiveAt(fault::FaultKind::kShardOutage, now)) {
    if (w->shard == read.home_shard.value() ||
        w->shard == read.peer_shard.value()) {
      return true;
    }
  }
  // Random loss: the steady-state link first, then any scheduled
  // link-loss window (draw order is part of the deterministic replay).
  if (params_.loss_p > 0 && random_.WithProbability(params_.loss_p)) {
    return true;
  }
  if (const fault::FaultWindow* w =
          params_.schedule.ActiveAt(fault::FaultKind::kLinkLoss, now)) {
    if (random_.WithProbability(w->probability)) return true;
  }
  return false;
}

void Interconnect::Send(const RemoteRead& read, bool reply_leg) {
  const Deliver& deliver = reply_leg ? deliver_reply_ : deliver_request_;
  if (inert_) {
    // The perfect fabric: same-instant direct call, no events, no
    // draws — byte-identical to the pre-interconnect cluster.
    deliver(read);
    return;
  }
  const sim::Time now = simulator_->now();
  if (Dropped(read, now)) {
    ++messages_lost_;
    if (on_drop_ != nullptr) on_drop_(read, reply_leg);
    return;
  }
  double delay = params_.latency_s;
  double jitter_mean = params_.jitter_s;
  if (const fault::FaultWindow* w =
          params_.schedule.ActiveAt(fault::FaultKind::kLinkLatency, now)) {
    delay += w->latency;
    jitter_mean += w->jitter;
  }
  if (jitter_mean > 0) delay += random_.Exponential(jitter_mean);
  if (delay <= 0) {
    NoteDelivered(now);
    deliver(read);
    return;
  }
  simulator_->ScheduleAfter(delay, [this, read, reply_leg] {
    NoteDelivered(simulator_->now());
    (reply_leg ? deliver_reply_ : deliver_request_)(read);
  });
}

void Interconnect::NoteDelivered(sim::Time at) {
  double latest = -1;
  while (next_heal_ < heal_times_.size() && heal_times_[next_heal_] <= at) {
    latest = heal_times_[next_heal_++];
  }
  if (latest >= 0) {
    time_to_reconnect_ = std::max(time_to_reconnect_, at - latest);
  }
}

std::uint64_t Interconnect::PartitionWindows(sim::Time end) const {
  std::uint64_t count = 0;
  for (const fault::FaultWindow& w : params_.schedule.windows()) {
    if (IsCutKind(w.kind) && w.start < end) ++count;
  }
  return count;
}

double Interconnect::PartitionSeconds(sim::Time end) const {
  double seconds = 0;
  for (const fault::FaultWindow& w : params_.schedule.windows()) {
    if (IsCutKind(w.kind) && w.start < end) {
      seconds += std::min(w.end(), end) - w.start;
    }
  }
  return seconds;
}

}  // namespace strip::core
