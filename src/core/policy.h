// The scheduling-policy interface (Section 4).
//
// The controller (core/system.h) implements the shared machinery —
// queues, CPU accounting, preemption, transaction execution — and
// consults a Policy for the three decisions that distinguish the
// paper's algorithms:
//
//   1. Is this just-arrived update installed immediately, preempting a
//      running transaction? (UF: all updates; SU: high-importance.)
//   2. May the update process *install from the update queue* while
//      transactions are waiting? (FCF: while the updater is below its
//      CPU share; TF/OD/SU: never — installs wait for an idle system.)
//      Receiving — moving arrivals from the OS buffer into the update
//      queue — is not a policy decision: the controller does it
//      whenever it holds the CPU (Section 3.3).
//   3. Does a transaction that encounters stale data search the update
//      queue and install on demand? (OD only.)
//
// Policies are stateless decision tables; all state lives in the
// controller and is passed in via UpdaterContext.

#ifndef STRIP_CORE_POLICY_H_
#define STRIP_CORE_POLICY_H_

#include <memory>

#include "core/config.h"
#include "db/update.h"
#include "sim/sim_time.h"

namespace strip::core {

// Controller state relevant to update-priority decisions.
struct UpdaterContext {
  sim::Time now = 0;
  // Updates waiting in the OS queue, and how many of those target the
  // high-importance partition.
  int os_pending = 0;
  int os_pending_high = 0;
  // Updates waiting in the controller's update queue.
  int uq_pending = 0;
  // CPU seconds consumed by update work since observation start, and
  // the observation start time (for share-based policies).
  sim::Duration updater_cpu_seconds = 0;
  sim::Time observation_start = 0;
};

class Policy {
 public:
  virtual ~Policy() = default;

  virtual PolicyKind kind() const = 0;
  const char* name() const { return PolicyKindName(kind()); }

  // Decision 1: install `update` the moment it arrives, preempting any
  // running transaction.
  virtual bool InstallOnArrival(const db::Update& update) const = 0;

  // Decision 2: run the update process even though transactions are
  // waiting.
  virtual bool UpdaterHasPriority(const UpdaterContext& context) const = 0;

  // Decision 3: on a stale view read, search the update queue and
  // install a fresh value on demand.
  virtual bool AppliesOnDemand() const = 0;

  // Whether the controller maintains an update queue at all. UF
  // installs straight from the OS queue and needs none (Section 4.1).
  virtual bool UsesUpdateQueue() const = 0;

  // --- decision rationale (observability; see SystemObserver) --------------
  // Short stable tokens (static storage duration) naming *why* the
  // policy decided as it did, fed to the OnPolicyDecision trace hook.

  // Why Decision 1 went the way it did for `update`.
  virtual const char* ArrivalReason(const db::Update& update) const = 0;

  // Why Decision 2 went the way it did under `context`.
  virtual const char* PriorityReason(const UpdaterContext& context) const = 0;
};

// Creates the policy implementation for `config.policy`.
std::unique_ptr<Policy> MakePolicy(const Config& config);

}  // namespace strip::core

#endif  // STRIP_CORE_POLICY_H_
