// Fuzz target: the trace_analysis parsers.
//
// strip_trace reads flight-recorder dumps and Chrome trace-event JSON
// back in for offline dissection; both formats are hand-parsed. The
// first input byte selects the parser (so one corpus can carry both
// formats); the rest is the document. Contract on arbitrary bytes:
// parse or reject-with-error, never crash.

#include <cstdint>
#include <sstream>
#include <string>

#include "fuzz/standalone_driver.h"
#include "obs/trace/trace_analysis.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const bool chrome = (data[0] & 1) != 0;
  const std::string document(reinterpret_cast<const char*>(data + 1),
                             size - 1);
  std::istringstream in(document);
  std::string error;
  const auto parsed =
      chrome ? strip::obs::trace::ParseChromeTrace(in, &error)
             : strip::obs::trace::ParseFlightDump(in, &error);
  if (!parsed.has_value() && error.empty()) __builtin_trap();
  return 0;
}
