// Fuzz target: the --faults grammar parser.
//
// FaultSchedule::Parse sits directly on the command-line boundary
// (strip_sim --faults=, config files, sweep specs) and hand-parses
// `kind@start+duration[:k=v,...]` windows separated by ';'. The target
// asserts the parser's contract on arbitrary bytes: it either returns
// a schedule (which must round-trip through ToString -> Parse) or
// returns nullopt with a non-empty error — never crashes, never reads
// out of bounds, never accepts-and-corrupts.

#include <cstdint>
#include <optional>
#include <string>

#include "fault/fault_schedule.h"
#include "fuzz/standalone_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string spec(reinterpret_cast<const char*>(data), size);
  std::string error;
  const std::optional<strip::fault::FaultSchedule> schedule =
      strip::fault::FaultSchedule::Parse(spec, &error);
  if (!schedule.has_value()) {
    // Rejections must carry a diagnostic.
    if (error.empty()) __builtin_trap();
    return 0;
  }
  // Accepted specs must round-trip: the canonical form parses back to
  // the same canonical form.
  const std::string canonical = schedule->ToString();
  std::string error2;
  const std::optional<strip::fault::FaultSchedule> again =
      strip::fault::FaultSchedule::Parse(canonical, &error2);
  if (!again.has_value()) __builtin_trap();
  if (again->ToString() != canonical) __builtin_trap();
  return 0;
}
