// Fuzz target: the name=value config-flag parser.
//
// ApplyConfigFlag handles every --name=value the tools accept — base
// Config parameters and the cluster-level ShardedConfig names
// (shards=, placement=, shard_ips=, ...) — plus whole config files
// line by line. On arbitrary bytes it must either apply a value or
// return an error string — no crashes, and a *rejected* assignment
// must leave the config exactly as it was (the flag tables are
// transactional: neither a failed parse nor an eager range violation
// may half-write a field).

#include <cstdint>
#include <string>

#include "core/sharded_config.h"
#include "exp/config_flags.h"
#include "fuzz/standalone_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string assignment(reinterpret_cast<const char*>(data), size);
  strip::core::ShardedConfig config;
  const auto error = strip::exp::ApplyConfigFlag(assignment, config);
  if (error.has_value()) {
    if (error->empty()) __builtin_trap();
    // A rejected assignment must leave the default config intact.
    if (config.Validate().has_value()) __builtin_trap();
  }
  return 0;
}
