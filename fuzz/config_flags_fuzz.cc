// Fuzz target: the name=value config-flag parser.
//
// ApplyConfigFlag handles every --name=value the tools accept, plus
// whole config files line by line. On arbitrary bytes it must either
// apply a value or return an error string — no crashes, and a config
// that validated before a *rejected* assignment must still validate
// after it (rejected input can't half-write a field; numeric parses
// may legitimately store values Validate() then rejects, which is the
// caller's documented flow).

#include <cstdint>
#include <string>

#include "core/config.h"
#include "exp/config_flags.h"
#include "fuzz/standalone_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string assignment(reinterpret_cast<const char*>(data), size);
  strip::core::Config config;
  const auto error = strip::exp::ApplyConfigFlag(assignment, config);
  if (error.has_value()) {
    if (error->empty()) __builtin_trap();
    // A rejected assignment must leave the default config intact.
    if (config.Validate().has_value()) __builtin_trap();
  }
  return 0;
}
