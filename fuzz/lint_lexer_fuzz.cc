// Fuzz target: the determinism linter's lexer and rule engine.
//
// tools/strip_lint is pointed at whole source trees, so the lexer's
// contract is "any byte sequence in, token stream out": unterminated
// literals, raw-string prefixes cut mid-delimiter, and stray control
// bytes must all close cleanly at end of input. The rules then run
// over whatever tokens came out — they index the stream defensively
// and must never read past it. Contract on arbitrary bytes: lex and
// lint, never crash, and every token's position stays inside the
// input's line/column space.

#include <cstdint>
#include <string>
#include <string_view>

#include "check/lint/lexer.h"
#include "check/lint/rules.h"
#include "fuzz/standalone_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view source(reinterpret_cast<const char*>(data), size);
  const auto tokens = strip::check::lint::Lex(source);
  for (const auto& token : tokens) {
    if (token.line < 1 || token.col < 1) __builtin_trap();
  }
  strip::check::lint::LintOptions options;
  options.in_src_tree = true;  // exercise every rule
  options.companion_sources.push_back(std::string(source));
  (void)strip::check::lint::LintSource("fuzz.cc", source, options);
  return 0;
}
