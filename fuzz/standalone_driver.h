// Fallback driver for fuzz targets on toolchains without libFuzzer.
//
// Every harness defines the standard entry point
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t*, size_t);
// With clang and -fsanitize=fuzzer that symbol is driven by libFuzzer
// (coverage-guided mutation). Elsewhere — gcc-only containers, plain
// CI smoke — STRIP_FUZZ_STANDALONE is defined and this header supplies
// a main() that replays files: every argv path is read whole and fed
// to the target once, with a byte count per file and a summary line.
// That is exactly what running a checked-in seed corpus needs, and a
// crash reproduces under a debugger with no fuzzer runtime involved.

#ifndef STRIP_FUZZ_STANDALONE_DRIVER_H_
#define STRIP_FUZZ_STANDALONE_DRIVER_H_

#include <cstdint>
#include <cstdio>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#if defined(STRIP_FUZZ_STANDALONE)

#include <fstream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    std::printf("%s: %zu bytes OK\n", argv[i], bytes.size());
    ++ran;
  }
  std::printf("standalone fuzz driver: %d input(s), no crashes\n", ran);
  return 0;
}

#endif  // STRIP_FUZZ_STANDALONE

#endif  // STRIP_FUZZ_STANDALONE_DRIVER_H_
