auto s = R"delim(time(nullptr) rand() "quoted")delim";
auto t = u8R"(x)" ; auto u = LR"(y)";
