#include <chrono>
#include "db/object.h"
#   include <ctime>
