void F(RandomStream rng, RandomStream& ref);
RandomStream a = b;
RandomStream c(parent.Fork());
