#include <unordered_map>
int main() {
  std::unordered_map<int, int> m;
  for (const auto& kv : m) { (void)kv; }
  return rand();
}
