const char* s = "never closed
/* comment without end
R"(raw without end
