double a = 1.0e-3f == 0x1p-4 ? 1e9 : .5;
int b = 0x1f + 42u + 0b101;
