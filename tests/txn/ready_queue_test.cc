#include "txn/ready_queue.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace strip::txn {
namespace {

constexpr double kIps = 50e6;

std::unique_ptr<Transaction> MakeTxn(std::uint64_t id, double value,
                                     double comp_instructions,
                                     double deadline = 100.0) {
  Transaction::Params p;
  p.id = base::TxnId(id);
  p.value = value;
  p.arrival_time = 0.0;
  p.deadline = deadline;
  p.computation_instructions = comp_instructions;
  p.lookup_instructions = 0;
  return std::make_unique<Transaction>(p);
}

TEST(ReadyQueueTest, StartsEmpty) {
  ReadyQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.PeekBest(kIps), nullptr);
  EXPECT_EQ(queue.PopBest(kIps), nullptr);
}

TEST(ReadyQueueTest, PopBestPrefersValueDensity) {
  ReadyQueue queue;
  auto cheap_low = MakeTxn(1, 1.0, 1'000'000);    // density 50
  auto cheap_high = MakeTxn(2, 2.0, 1'000'000);   // density 100
  auto pricey_high = MakeTxn(3, 2.0, 4'000'000);  // density 25
  queue.Add(cheap_low.get());
  queue.Add(cheap_high.get());
  queue.Add(pricey_high.get());
  EXPECT_EQ(queue.PopBest(kIps)->id().value(), 2u);
  EXPECT_EQ(queue.PopBest(kIps)->id().value(), 1u);
  EXPECT_EQ(queue.PopBest(kIps)->id().value(), 3u);
}

TEST(ReadyQueueTest, TieBreaksByLowestId) {
  ReadyQueue queue;
  auto a = MakeTxn(5, 1.0, 1'000'000);
  auto b = MakeTxn(2, 1.0, 1'000'000);
  queue.Add(a.get());
  queue.Add(b.get());
  EXPECT_EQ(queue.PopBest(kIps)->id().value(), 2u);
}

TEST(ReadyQueueTest, PeekDoesNotRemove) {
  ReadyQueue queue;
  auto t = MakeTxn(1, 1.0, 1'000'000);
  queue.Add(t.get());
  EXPECT_EQ(queue.PeekBest(kIps), t.get());
  EXPECT_EQ(queue.size(), 1u);
}

TEST(ReadyQueueTest, RemoveSpecific) {
  ReadyQueue queue;
  auto a = MakeTxn(1, 1.0, 1'000'000);
  auto b = MakeTxn(2, 1.0, 1'000'000);
  queue.Add(a.get());
  queue.Add(b.get());
  EXPECT_TRUE(queue.Remove(a.get()));
  EXPECT_FALSE(queue.Remove(a.get()));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.PopBest(kIps), b.get());
}

TEST(ReadyQueueTest, ExtractInfeasibleRemovesHopelessOnly) {
  ReadyQueue queue;
  auto feasible = MakeTxn(1, 1.0, 1'000'000, /*deadline=*/10.0);
  auto hopeless = MakeTxn(2, 1.0, 600'000'000, /*deadline=*/10.0);  // 12 s
  queue.Add(feasible.get());
  queue.Add(hopeless.get());
  const std::vector<Transaction*> removed = queue.ExtractInfeasible(0.0, kIps);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0]->id().value(), 2u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(ReadyQueueTest, FeasibilityDependsOnNow) {
  ReadyQueue queue;
  auto t = MakeTxn(1, 1.0, 50'000'000, /*deadline=*/10.0);  // needs 1 s
  queue.Add(t.get());
  EXPECT_TRUE(queue.ExtractInfeasible(5.0, kIps).empty());
  const auto removed = queue.ExtractInfeasible(9.5, kIps);
  EXPECT_EQ(removed.size(), 1u);
}

TEST(ReadyQueueTest, WaitingExposesAll) {
  ReadyQueue queue;
  auto a = MakeTxn(1, 1.0, 1'000'000);
  auto b = MakeTxn(2, 1.0, 1'000'000);
  queue.Add(a.get());
  queue.Add(b.get());
  EXPECT_EQ(queue.waiting().size(), 2u);
}

TEST(ReadyQueueDeathTest, NullAddDies) {
  ReadyQueue queue;
  EXPECT_DEATH(queue.Add(nullptr), "nullptr");
}

std::unique_ptr<Transaction> MakeTimedTxn(std::uint64_t id, double arrival,
                                          double deadline) {
  Transaction::Params p;
  p.id = base::TxnId(id);
  p.value = 1.0;
  p.arrival_time = arrival;
  p.deadline = deadline;
  p.computation_instructions = 1'000'000;
  return std::make_unique<Transaction>(p);
}

TEST(TxnSchedPolicyTest, Names) {
  EXPECT_STREQ(TxnSchedPolicyName(TxnSchedPolicy::kValueDensity), "VD");
  EXPECT_STREQ(TxnSchedPolicyName(TxnSchedPolicy::kEarliestDeadline),
               "EDF");
  EXPECT_STREQ(TxnSchedPolicyName(TxnSchedPolicy::kFcfs), "FCFS");
}

TEST(TxnSchedPolicyTest, HigherPriorityPerPolicy) {
  auto early_deadline = MakeTimedTxn(1, 5.0, 8.0);
  auto early_arrival = MakeTimedTxn(2, 1.0, 20.0);
  // EDF: the earlier deadline wins.
  EXPECT_TRUE(HigherPriority(*early_deadline, *early_arrival,
                             TxnSchedPolicy::kEarliestDeadline, kIps));
  EXPECT_FALSE(HigherPriority(*early_arrival, *early_deadline,
                              TxnSchedPolicy::kEarliestDeadline, kIps));
  // FCFS: the earlier arrival wins.
  EXPECT_TRUE(HigherPriority(*early_arrival, *early_deadline,
                             TxnSchedPolicy::kFcfs, kIps));
  // VD: same value, same work -> neither is strictly higher.
  EXPECT_FALSE(HigherPriority(*early_deadline, *early_arrival,
                              TxnSchedPolicy::kValueDensity, kIps));
  EXPECT_FALSE(HigherPriority(*early_arrival, *early_deadline,
                              TxnSchedPolicy::kValueDensity, kIps));
}

TEST(TxnSchedPolicyTest, PopBestUnderEdf) {
  ReadyQueue queue;
  auto late = MakeTimedTxn(1, 0.0, 30.0);
  auto soon = MakeTimedTxn(2, 0.0, 10.0);
  auto mid = MakeTimedTxn(3, 0.0, 20.0);
  queue.Add(late.get());
  queue.Add(soon.get());
  queue.Add(mid.get());
  EXPECT_EQ(
      queue.PopBest(kIps, TxnSchedPolicy::kEarliestDeadline)->id().value(),
      2u);
  EXPECT_EQ(queue.PopBest(kIps, TxnSchedPolicy::kEarliestDeadline)->id().value(),
            3u);
  EXPECT_EQ(queue.PopBest(kIps, TxnSchedPolicy::kEarliestDeadline)->id().value(),
            1u);
}

TEST(TxnSchedPolicyTest, PopBestUnderFcfs) {
  ReadyQueue queue;
  auto second = MakeTimedTxn(1, 2.0, 30.0);
  auto first = MakeTimedTxn(2, 1.0, 30.0);
  queue.Add(second.get());
  queue.Add(first.get());
  EXPECT_EQ(queue.PopBest(kIps, TxnSchedPolicy::kFcfs)->id().value(), 2u);
  EXPECT_EQ(queue.PopBest(kIps, TxnSchedPolicy::kFcfs)->id().value(), 1u);
}

TEST(TxnSchedPolicyTest, EdfTieBreaksById) {
  ReadyQueue queue;
  auto a = MakeTimedTxn(9, 0.0, 10.0);
  auto b = MakeTimedTxn(4, 0.0, 10.0);
  queue.Add(a.get());
  queue.Add(b.get());
  EXPECT_EQ(queue.PopBest(kIps, TxnSchedPolicy::kEarliestDeadline)->id().value(),
            4u);
}

}  // namespace
}  // namespace strip::txn
